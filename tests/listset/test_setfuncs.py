"""Tests for the set-side function library."""

from repro.listset.setfuncs import (
    cardinality,
    poly,
    set_difference,
    set_filter,
    set_ins,
    set_map_fn,
    set_union,
)
from repro.mappings.function_maps import PolyValue
from repro.types.ast import INT
from repro.types.values import Tup, cvset


class TestSetFunctions:
    def test_union(self):
        assert set_union(Tup((cvset(1), cvset(2)))) == cvset(1, 2)

    def test_filter(self):
        f = set_filter(lambda x: x > 1)
        assert f(cvset(0, 1, 2, 3)) == cvset(2, 3)

    def test_map(self):
        f = set_map_fn(lambda x: x % 2)
        assert f(cvset(1, 2, 3)) == cvset(0, 1)

    def test_ins(self):
        assert set_ins(7)(cvset(1)) == cvset(1, 7)

    def test_difference(self):
        assert set_difference(Tup((cvset(1, 2), cvset(2)))) == cvset(1)

    def test_cardinality(self):
        assert cardinality(cvset()) == 0
        assert cardinality(cvset(1, 2)) == 2


class TestPolyWrapper:
    def test_uniform_components(self):
        pv = poly(set_union)
        assert isinstance(pv, PolyValue)
        assert pv[INT] is set_union
