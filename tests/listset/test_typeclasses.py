"""Tests for s-to-l / l-to-s / LtoS type classifiers (Defs 4.8-4.12)."""


from repro.listset.typeclasses import (
    classify_type,
    is_l_to_s,
    is_ltos,
    is_s_to_l,
    to_list_type,
    to_set_type,
)
from repro.types.ast import INT, Product, list_of, set_of, tvar
from repro.types.parser import parse_type


X = tvar("X")


class TestStoL:
    def test_flat_list_type_is_s_to_l(self):
        # Lists NOT under an arrow are fine.
        assert is_s_to_l(list_of(X))
        assert is_s_to_l(Product((list_of(X), INT)))

    def test_function_without_lists_is_s_to_l(self):
        assert is_s_to_l(parse_type("X -> bool"))
        assert is_s_to_l(parse_type("X -> Y -> Y"))

    def test_list_under_arrow_not_s_to_l(self):
        assert not is_s_to_l(parse_type("<X> -> bool"))
        assert not is_s_to_l(parse_type("X -> <Y>"))

    def test_forall_not_s_to_l(self):
        assert not is_s_to_l(parse_type("forall X. X"))


class TestLtoS:
    def test_argument_positions_must_be_s_to_l(self):
        assert is_l_to_s(parse_type("(X -> bool) -> <X> -> <X>"))
        assert not is_l_to_s(parse_type("(<X> -> bool) -> <X> -> <X>"))

    def test_result_lists_allowed(self):
        # <X> as a *top-level spine argument* is s-to-l (no arrow above
        # it inside itself), so sigma's tail is fine.
        assert is_l_to_s(parse_type("<X> -> <X>"))

    def test_list_producing_argument_rejected(self):
        assert not is_l_to_s(parse_type("(X -> <Y>) -> <X> -> <Y>"))

    def test_quantifier_rejected(self):
        assert not is_l_to_s(parse_type("forall X. <X>"))


class TestLtoSTop:
    def test_paper_examples(self):
        # Example 4.14 verbatim.
        assert is_ltos(parse_type("forall X. (X -> bool) -> <X> -> <X>"))
        assert not is_ltos(parse_type("forall X. (<X> -> bool) -> <X> -> <X>"))
        assert is_ltos(
            parse_type("forall X. forall Y. (X -> Y -> Y) -> Y -> <X> -> Y")
        )
        assert not is_ltos(
            parse_type("forall X. forall Y. (X -> <Y>) -> <X> -> <Y>")
        )

    def test_prelude_types(self):
        assert is_ltos(parse_type("forall X. <X> * <X> -> <X>"))   # append
        assert is_ltos(parse_type("forall X. <X> -> int"))          # count
        assert is_ltos(parse_type("forall X. X -> <X> -> <X>"))     # ins

    def test_classify_summary(self):
        summary = classify_type(parse_type("forall X. (X -> bool) -> <X> -> <X>"))
        assert summary["ltos"]
        assert summary["body_l_to_s"]
        assert not summary["s_to_l"]  # quantified, so not s-to-l


class TestRelatedTypes:
    def test_to_set_type(self):
        assert to_set_type(list_of(X)) == set_of(X)
        assert to_set_type(parse_type("forall X. <X> * <X> -> <X>")) == parse_type(
            "forall X. {X} * {X} -> {X}"
        )

    def test_to_list_type(self):
        assert to_list_type(set_of(X)) == list_of(X)
        assert to_list_type(set_of(set_of(INT))) == list_of(list_of(INT))

    def test_roundtrip_on_pure_list_types(self):
        t = parse_type("forall X. (X -> bool) -> <X> -> <X>")
        assert to_list_type(to_set_type(t)) == t

    def test_nested_translation(self):
        t = list_of(Product((INT, list_of(X))))
        assert to_set_type(t) == set_of(Product((INT, set_of(X))))
