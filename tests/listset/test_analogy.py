"""Tests for toset and the analogy relation (Definition 4.7)."""

import pytest

from repro.listset.analogy import (
    AnalogyError,
    analogous,
    deep_fromset,
    deep_toset,
    induced_set_function,
    toset,
)
from repro.listset.setfuncs import cardinality, set_union
from repro.types.ast import INT, FuncType, Product, list_of
from repro.types.values import Tup, cvlist, cvset, tup


class TestToset:
    def test_forgets_order_and_multiplicity(self):
        assert toset(cvlist(1, 2, 2, 1)) == cvset(1, 2)

    def test_empty(self):
        assert toset(cvlist()) == cvset()


class TestDeepToset:
    def test_flat(self):
        assert deep_toset(cvlist(1, 1, 2), list_of(INT)) == cvset(1, 2)

    def test_nested(self):
        v = cvlist(cvlist(1, 1), cvlist(2))
        t = list_of(list_of(INT))
        assert deep_toset(v, t) == cvset(cvset(1), cvset(2))

    def test_inner_collapse_merges_outer(self):
        # <⟨1,1⟩, ⟨1⟩> -> {{1}} : both inner lists become {1}.
        v = cvlist(cvlist(1, 1), cvlist(1))
        t = list_of(list_of(INT))
        assert deep_toset(v, t) == cvset(cvset(1))

    def test_through_products(self):
        v = tup(1, cvlist(2, 2))
        t = Product((INT, list_of(INT)))
        assert deep_toset(v, t) == tup(1, cvset(2))

    def test_shape_mismatch_raises(self):
        with pytest.raises(AnalogyError):
            deep_toset(cvset(1), list_of(INT))


class TestDeepFromset:
    def test_section_of_toset(self):
        s = cvset(cvset(1), cvset(1, 2))
        t = list_of(list_of(INT))
        l = deep_fromset(s, t)
        assert deep_toset(l, t) == s

    def test_deterministic(self):
        s = cvset(3, 1, 2)
        assert deep_fromset(s, list_of(INT)) == deep_fromset(s, list_of(INT))


class TestAnalogous:
    def test_base_values(self):
        assert analogous(1, 1, INT)
        assert not analogous(1, 2, INT)

    def test_complex_values(self):
        assert analogous(cvlist(1, 1, 2), cvset(1, 2), list_of(INT))
        assert not analogous(cvlist(1), cvset(1, 2), list_of(INT))

    def test_products_componentwise(self):
        t = Product((list_of(INT), INT))
        assert analogous(tup(cvlist(1, 1), 5), tup(cvset(1), 5), t)

    def test_append_union_analogy(self):
        t = FuncType(
            Product((list_of(INT), list_of(INT))), list_of(INT)
        )
        append = lambda p: p[0].append(p[1])
        samples = [
            Tup((cvlist(1, 2), cvlist(2, 3))),
            Tup((cvlist(), cvlist(0, 0))),
        ]
        assert analogous(append, set_union, t, samples)

    def test_count_card_not_analogous(self):
        t = FuncType(list_of(INT), INT)
        count = lambda l: len(l)
        samples = [cvlist(1, 1), cvlist(2)]
        assert not analogous(count, cardinality, t, samples)

    def test_function_analogy_needs_samples(self):
        t = FuncType(list_of(INT), INT)
        with pytest.raises(AnalogyError):
            analogous(lambda l: len(l), cardinality, t)

    def test_partial_function_fails_gracefully(self):
        t = FuncType(list_of(INT), INT)
        head = lambda l: l[0]
        # head crashes on the empty list sample; treated as non-analogous.
        assert not analogous(head, lambda s: 0, t, [cvlist()])


class TestInducedSetFunction:
    def test_induces_union_from_append(self):
        t = FuncType(
            Product((list_of(INT), list_of(INT))), list_of(INT)
        )
        append = lambda p: p[0].append(p[1])
        f_set = induced_set_function(append, t)
        out = f_set(Tup((cvset(1, 2), cvset(2, 3))))
        assert out == cvset(1, 2, 3)

    def test_induced_card_disagrees_with_count(self):
        t = FuncType(list_of(INT), INT)
        count = lambda l: len(l)
        f_set = induced_set_function(count, t)
        # On the set side duplicates are gone; the induced function is
        # cardinality, which is NOT analogous to count.
        assert f_set(cvset(1)) == 1
        assert count(cvlist(1, 1)) == 2

    def test_needs_function_type(self):
        with pytest.raises(AnalogyError):
            induced_set_function(lambda x: x, list_of(INT))
