"""Tests for the list-to-set transfer machinery (Lemmas 4.6-4.11, Thm 4.13)."""

import random

import pytest

from repro.lambda2.prelude import build_prelude
from repro.listset.setfuncs import cardinality, poly, set_union
from repro.listset.transfer import (
    check_list_to_set_transfer,
    lemma_4_6_part1,
    lemma_4_6_part2,
    lists_witness,
    transfer_parametricity,
)
from repro.mappings.extensions import ListRel
from repro.mappings.generators import random_domain, random_mapping_in_class
from repro.mappings.mapping import Mapping
from repro.types.ast import INT, FuncType, Product, list_of
from repro.types.values import CVList, CVSet, Tup, cvlist, cvset


def h() -> Mapping:
    return Mapping({(0, 10), (0, 11), (1, 11), (2, 12)}, INT, INT)


@pytest.fixture(scope="module")
def prelude():
    return build_prelude()


class TestLemma46:
    def test_part1_on_related_lists(self):
        assert lemma_4_6_part1(h(), cvlist(0, 1, 2), cvlist(10, 11, 12))
        assert lemma_4_6_part1(h(), cvlist(0, 0), cvlist(10, 11))

    def test_part1_vacuous_on_unrelated(self):
        # Premise fails: implication vacuously true.
        assert lemma_4_6_part1(h(), cvlist(0), cvlist(12))

    def test_part2_constructive(self):
        assert lemma_4_6_part2(h(), cvset(0, 1, 2), cvset(10, 11, 12))

    def test_lists_witness_properties(self):
        s1, s2 = cvset(0, 1, 2), cvset(10, 11, 12)
        witness = lists_witness(h(), s1, s2)
        assert witness is not None
        l1, l2 = witness
        assert CVSet(l1) == s1
        assert CVSet(l2) == s2
        assert ListRel(h()).holds(l1, l2)

    def test_lists_witness_none_when_unrelated(self):
        assert lists_witness(h(), cvset(0), cvset(12)) is None

    def test_witness_handles_uneven_cover(self):
        # s2 larger than s1's chosen partners: extra right elements get
        # partnered in the second pass.
        hm = Mapping({(0, 10), (0, 11)}, INT, INT)
        witness = lists_witness(hm, cvset(0), cvset(10, 11))
        assert witness is not None
        l1, l2 = witness
        assert ListRel(hm).holds(l1, l2)
        assert CVSet(l2) == cvset(10, 11)

    def test_random_sweep(self):
        rng = random.Random(0)
        for _ in range(60):
            left = random_domain(rng, 3, INT)
            right = random_domain(rng, 3, INT, offset=50)
            hm = random_mapping_in_class(rng, "all", left, right, INT)
            pairs = list(hm.pairs())
            chosen = [rng.choice(pairs) for _ in range(rng.randint(0, 4))]
            l1 = CVList(x for x, _ in chosen)
            l2 = CVList(y for _, y in chosen)
            assert lemma_4_6_part1(hm, l1, l2)
            assert lemma_4_6_part2(hm, CVSet(l1), CVSet(l2))


class TestLiftToLists:
    """Lemma 4.9, constructively, beyond flat sets."""

    def test_nested_sets(self):
        from repro.listset.transfer import lift_to_lists
        from repro.types.ast import list_of, tvar

        hm = h()
        t = list_of(list_of(tvar("X")))
        s1 = cvset(cvset(0, 1), cvset(2))
        s2 = cvset(cvset(10, 11), cvset(12))
        pair = lift_to_lists(hm, t, s1, s2)
        assert pair is not None
        l1, l2 = pair
        assert ListRel(ListRel(hm)).holds(l1, l2)

    def test_products(self):
        from repro.listset.transfer import lift_to_lists
        from repro.types.ast import Product, list_of, tvar
        from repro.types.values import Tup

        hm = h()
        t = Product((list_of(tvar("X")), tvar("X")))
        pair = lift_to_lists(
            hm, t, Tup((cvset(0), 2)), Tup((cvset(10, 11), 12))
        )
        assert pair is not None
        (l1, a1), (l2, a2) = pair
        assert ListRel(hm).holds(l1, l2)
        assert hm.holds(a1, a2)

    def test_unrelated_returns_none(self):
        from repro.listset.transfer import lift_to_lists
        from repro.types.ast import list_of, tvar

        hm = h()
        assert lift_to_lists(hm, list_of(tvar("X")), cvset(0), cvset(12)) is None

    def test_toset_of_lift_recovers_inputs(self):
        from repro.listset.analogy import deep_toset
        from repro.listset.transfer import lift_to_lists
        from repro.types.ast import list_of, tvar

        hm = h()
        t = list_of(list_of(tvar("X")))
        s1 = cvset(cvset(0, 1), cvset(2))
        s2 = cvset(cvset(10, 11), cvset(12))
        l1, l2 = lift_to_lists(hm, t, s1, s2)
        assert deep_toset(l1, t) == s1
        assert deep_toset(l2, t) == s2


class TestTransferCheck:
    def test_append_transfer_on_instance(self, prelude):
        from repro.types.ast import tvar

        append = prelude.value("append")[INT]
        x = tvar("X")
        # The *polymorphic* body: H is substituted for the variable.
        body = FuncType(Product((list_of(x), list_of(x))), list_of(x))
        set_inputs = []
        hm = h()
        s_pair = (
            Tup((cvset(0, 1), cvset(2))),
            Tup((cvset(10, 11), cvset(12))),
        )
        set_inputs.append(s_pair)
        ok = check_list_to_set_transfer(
            lambda p: append(p), set_union, body, hm, set_inputs
        )
        assert ok


class TestCorollary415Pipeline:
    def test_append_union(self, prelude):
        samples = [
            Tup((cvlist(0, 1), cvlist(1, 2))),
            Tup((cvlist(), cvlist(2,))),
        ]
        report = transfer_parametricity(
            "append", prelude.value("append"), poly(set_union),
            prelude.type_of("append"), samples,
        )
        assert report.transferred
        assert report.ltos and report.analogy_validated

    def test_count_card_blocked_by_analogy(self, prelude):
        samples = [cvlist(0, 0), cvlist(1)]
        report = transfer_parametricity(
            "count", prelude.value("count"), poly(cardinality),
            prelude.type_of("count"), samples,
        )
        assert report.ltos  # the *type* is fine...
        assert not report.analogy_validated  # ...the analogy is not
        assert not report.transferred

    def test_report_repr(self, prelude):
        samples = [Tup((cvlist(), cvlist()))]
        report = transfer_parametricity(
            "append", prelude.value("append"), poly(set_union),
            prelude.type_of("append"), samples,
        )
        assert "append" in repr(report)
