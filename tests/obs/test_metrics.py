"""MetricsRegistry semantics: instruments, snapshots, merge, deltas,
and the jobs=1 == jobs=N determinism guarantee end-to-end through the
fuzz harness's trace scenario.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    snapshot_delta,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Process-wide registry state must not leak between tests."""
    REGISTRY.clear()
    yield
    REGISTRY.clear()


class TestInstruments:
    def test_counter_accumulates_and_returns_total(self):
        reg = MetricsRegistry()
        assert reg.counter("c") == 1
        assert reg.counter("c", 4) == 5
        assert reg.snapshot()["counters"] == {"c": 5}

    def test_gauge_keeps_last_written_value(self):
        reg = MetricsRegistry()
        reg.gauge("g", 3.5)
        reg.gauge("g", 1.0)
        assert reg.snapshot()["gauges"] == {"g": 1.0}

    def test_histogram_buckets_are_deterministic(self):
        reg = MetricsRegistry()
        for value in (0, 1, 2, 3, 10, 10001):
            reg.observe("h", value)
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["count"] == 6
        assert hist["sum"] == 10017
        assert hist["boundaries"] == list(DEFAULT_BUCKETS)
        # bisect_left boundary semantics: a value equal to a boundary
        # lands in that boundary's bucket (le_ is inclusive).
        assert hist["buckets"]["le_1"] == 2  # 0 and 1
        assert hist["buckets"]["le_2"] == 1
        assert hist["buckets"]["le_5"] == 1  # 3
        assert hist["buckets"]["le_10"] == 1
        assert hist["buckets"]["inf"] == 1  # 10001 overflows
        assert sum(hist["buckets"].values()) == hist["count"]

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.observe("h", 1, buckets=())
        with pytest.raises(ValueError):
            reg.observe("h", 1, buckets=(5, 1))
        reg.observe("h", 1, buckets=(1, 2))
        with pytest.raises(ValueError):
            reg.observe("h", 1, buckets=(1, 2, 3))  # redeclaration

    def test_clear_and_repr(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g", 1)
        reg.observe("h", 1)
        assert "counters=1" in repr(reg)
        reg.clear()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestSnapshotDeterminism:
    def test_snapshot_is_sorted_and_json_stable(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        # Same writes, opposite order.
        a.counter("x")
        a.counter("b", 2)
        a.observe("h", 7)
        b.observe("h", 7)
        b.counter("b", 2)
        b.counter("x")
        assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())
        assert list(a.snapshot()["counters"]) == ["b", "x"]

    def test_render_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("runs", 3)
        reg.gauge("depth", 4)
        reg.observe("rows", 12)
        text = reg.render()
        assert "counter   runs = 3" in text
        assert "gauge     depth = 4" in text
        assert "histogram rows count=1 sum=12 le_25:1" in text


class TestMerge:
    def test_counters_and_histogram_cells_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", 2)
        a.observe("h", 3)
        b.counter("c", 5)
        b.counter("only_b")
        b.observe("h", 3000)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"c": 7, "only_b": 1}
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2 and hist["sum"] == 3003
        assert hist["buckets"]["le_5"] == 1
        assert hist["buckets"]["le_5000"] == 1

    def test_gauges_merge_by_max_so_order_is_irrelevant(self):
        snaps = []
        for value in (2.0, 9.0, 4.0):
            reg = MetricsRegistry()
            reg.gauge("g", value)
            snaps.append(reg.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()
        assert forward.snapshot()["gauges"]["g"] == 9.0

    def test_merge_rejects_boundary_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1, buckets=(1, 2))
        b.observe("h", 1, buckets=(1, 2, 3))
        with pytest.raises(ValueError, match="boundaries differ"):
            a.merge(b.snapshot())

    def test_merge_into_empty_registry_copies_everything(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.counter("c", 3)
        src.gauge("g", 1.5)
        src.observe("h", 42)
        dst.merge(src.snapshot())
        assert dst.snapshot() == src.snapshot()


class TestSnapshotDelta:
    def test_delta_isolates_new_activity(self):
        reg = MetricsRegistry()
        reg.counter("c", 3)
        reg.observe("h", 5)
        before = reg.snapshot()
        reg.counter("c", 2)
        reg.counter("new")
        reg.observe("h", 100)
        delta = snapshot_delta(reg.snapshot(), before)
        assert delta["counters"] == {"c": 2, "new": 1}
        hist = delta["histograms"]["h"]
        assert hist["count"] == 1 and hist["sum"] == 100
        assert hist["buckets"]["le_100"] == 1
        assert hist["buckets"]["le_5"] == 0

    def test_quiet_interval_produces_empty_delta(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.observe("h", 1)
        snap = reg.snapshot()
        delta = snapshot_delta(snap, snap)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_merging_deltas_reconstructs_the_whole(self):
        """delta(t2,t1) + delta(t1,t0) folded into a fresh registry
        equals the t2 snapshot — the worker-shipping invariant."""
        reg = MetricsRegistry()
        t0 = reg.snapshot()
        reg.counter("c", 2)
        reg.observe("h", 7)
        t1 = reg.snapshot()
        reg.counter("c", 5)
        reg.observe("h", 70)
        t2 = reg.snapshot()
        rebuilt = MetricsRegistry()
        rebuilt.merge(snapshot_delta(t1, t0))
        rebuilt.merge(snapshot_delta(t2, t1))
        assert rebuilt.snapshot() == t2


class TestParallelDeterminism:
    """jobs=1 and jobs=N leave byte-identical registry state."""

    def test_fuzz_trace_metrics_identical_serial_vs_parallel(self):
        from repro.engine.fuzz import run_fuzz

        REGISTRY.clear()
        serial_report = run_fuzz(18, base_seed=11, jobs=1)
        serial = REGISTRY.snapshot()
        REGISTRY.clear()
        parallel_report = run_fuzz(18, base_seed=11, jobs=2)
        parallel = REGISTRY.snapshot()
        assert serial_report.summary() == parallel_report.summary()
        assert json.dumps(serial) == json.dumps(parallel)
        assert serial["counters"]["fuzz.trace.plans"] > 0
        assert serial["histograms"]["fuzz.trace.spans"]["count"] > 0
