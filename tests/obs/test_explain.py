"""EXPLAIN ANALYZE: report contents, deterministic rendering, the
text tree layout, and the ``python -m repro explain`` command.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.engine.workload import hr_database
from repro.obs import (
    MODES,
    ExplainReport,
    Span,
    explain,
    render_span_tree,
)
from repro.optimizer.parser import parse_plan

PLAN_TEXT = "pi[1](employees - students)"


@pytest.fixture()
def db():
    return hr_database(random.Random(0), employees=60, students=40,
                       overlap=15)


@pytest.fixture()
def plan():
    return parse_plan(PLAN_TEXT)


class TestExplain:
    def test_all_modes_agree_on_answer_and_shape(self, plan, db):
        reference = db.run_reference(plan)
        reports = [
            explain(plan, db, mode=mode, use_cache=False) for mode in MODES
        ]
        for report in reports:
            assert report.rows == len(reference.value)
            assert report.work == reference.work
            assert report.root.total_work() == reference.work
            assert report.plan == str(plan)
        # Cold stream and batch trees are structurally identical.
        stream, batch = reports[1], reports[2]
        assert stream.root.structure() == batch.root.structure()

    def test_cache_stats_delta_shows_miss_then_hit(self, plan, db):
        cold = explain(plan, db, mode="stream")
        assert cold.cache_stats["misses"] >= 1
        assert cold.cache_stats["hits"] == 0
        assert cold.cache_stats["puts"] >= 1
        warm = explain(plan, db, mode="stream")
        assert warm.cache_stats["hits"] == 1
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["puts"] == 0
        assert warm.root.cache == "hit"
        assert warm.rows == cold.rows and warm.work == cold.work

    def test_use_cache_false_never_touches_the_database_cache(
        self, plan, db
    ):
        before = db.plan_cache.stats()
        report = explain(plan, db, mode="batch", use_cache=False)
        assert report.cache_stats is None
        assert db.plan_cache.stats() == before

    def test_plain_mapping_db_has_no_cache_stats(self, plan):
        relations = hr_database(
            random.Random(0), employees=30, students=20
        ).relations
        report = explain(plan, relations, mode="stream")
        assert report.cache_stats is None
        assert report.rows >= 0

    def test_invalid_mode_raises(self, plan, db):
        with pytest.raises(ValueError, match="mode must be one of"):
            explain(plan, db, mode="vectorized")

    def test_to_dict_without_wall_is_byte_deterministic(self, plan, db):
        first = explain(plan, db, mode="batch", use_cache=False)
        second = explain(plan, db, mode="batch", use_cache=False)
        assert (
            json.dumps(first.to_dict(wall=False))
            == json.dumps(second.to_dict(wall=False))
        )
        tree = first.to_dict(wall=False)["tree"]
        assert "wall_s" not in tree
        assert "wall_s" in first.to_dict()["tree"]

    def test_caller_supplied_tracer_keeps_the_raw_span(self, plan, db):
        from repro.obs import Tracer

        tracer = Tracer()
        report = explain(plan, db, mode="reference", tracer=tracer)
        assert tracer.last is report.root
        assert len(tracer) == 1


class TestRendering:
    def test_tree_layout_connectors(self):
        root = Span("minus")
        left, right = Span("employees"), Span("students")
        left.rows, right.rows, root.rows = 5, 3, 2
        root.children = [left, right]
        text = render_span_tree(root, wall=False)
        assert text.splitlines() == [
            "minus  [rows=2 work=0]",
            "├─ employees  [rows=5 work=0]",
            "└─ students  [rows=3 work=0]",
        ]

    def test_annotations_appear_in_the_line(self):
        span = Span("join")
        span.rows, span.work = 4, 9
        span.cache, span.source = "hit", "index"
        line = render_span_tree(span, wall=False)
        assert line == "join  [rows=4 work=9 cache=hit via=index]"
        assert "wall=" in render_span_tree(span, wall=True)

    def test_report_render_header(self, plan, db):
        report = explain(plan, db, mode="stream")
        text = report.render(wall=False)
        assert text.startswith(
            f"EXPLAIN ANALYZE (mode=stream) {report.plan}"
        )
        assert f"rows={report.rows} work={report.work}" in text
        assert "cache[hits=" in text
        plain = ExplainReport(
            mode="batch", plan="p", rows=1, work=2, root=Span("p")
        )
        assert "cache[" not in plain.render()

    def test_maintained_entries_render_in_the_header(self):
        report = ExplainReport(
            mode="stream", plan="p", rows=1, work=2, root=Span("p"),
            cache_stats={
                "hits": 1, "misses": 0, "puts": 0,
                "maintained": 1, "maintain_fallback": 0,
            },
        )
        text = report.render(wall=False)
        assert "1 entry patched in place by delta maintenance" in text
        assert "fell back" not in text

    def test_maintain_fallback_renders_in_the_header(self):
        report = ExplainReport(
            mode="stream", plan="p", rows=3, work=4, root=Span("p"),
            cache_stats={
                "hits": 2, "misses": 1, "puts": 1,
                "maintained": 2, "maintain_fallback": 1,
            },
        )
        text = report.render(wall=False)
        assert "2 entries patched in place" in text
        assert "(1 fell back to invalidation)" in text

    def test_degraded_events_surface_in_render_and_dict(self):
        events = [{"mode": "sharded", "to": "batch", "error": "X: boom"}]
        report = ExplainReport(
            mode="sharded", plan="p", rows=1, work=2, root=Span("p"),
            degraded=events,
        )
        assert "degraded: sharded -> batch (X: boom)" in report.render(
            wall=False
        )
        assert report.to_dict()["degraded"] == events


class TestPlainMapping:
    """``explain`` over a bare relation mapping (no Database attached)."""

    def test_reference_mode(self, plan, db):
        report = explain(plan, db.relations, mode="reference")
        want = db.run_reference(plan)
        assert report.rows == len(want.value)
        assert report.work == want.work
        assert report.cache_stats is None

    def test_sharded_mode(self, plan, db):
        report = explain(plan, db.relations, mode="sharded", shards=2)
        want = db.run_reference(plan)
        assert report.rows == len(want.value)
        assert report.work == want.work
        assert report.root.meta["sharded"]["shards"] == 2

    def test_auto_restricts_candidates_on_deep_plans(self):
        from repro.engine.exec import MAX_PIPELINE_DEPTH
        from repro.engine.workload import deep_chain_plan
        from repro.types.values import CVSet, Tup

        deep = deep_chain_plan(
            random.Random(4), "r", MAX_PIPELINE_DEPTH + 10
        )
        relations = {"r": CVSet({Tup((i, i)) for i in range(8)})}
        report = explain(deep, relations, mode="auto")
        assert report.decision is not None
        assert report.decision["mode"] != "compiled"
        assert "compiled" not in report.decision["scores"]


class TestCli:
    def test_explain_text_all_modes(self, capsys):
        assert main(["explain", "--size", "40"]) == 0
        out = capsys.readouterr().out
        for mode in MODES:
            assert f"EXPLAIN ANALYZE (mode={mode})" in out
        assert "├─" in out or "└─" in out
        assert "employees" in out and "students" in out

    def test_explain_json_single_mode(self, capsys):
        assert main([
            "explain", PLAN_TEXT, "--mode", "batch", "--json",
            "--size", "30",
        ]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert [r["mode"] for r in reports] == ["batch"]
        assert reports[0]["plan"]
        assert reports[0]["tree"]["op"]

    def test_explain_warm_run_shows_cache_hit(self, capsys):
        assert main([
            "explain", PLAN_TEXT, "--mode", "stream", "--warm", "1",
            "--size", "30",
        ]) == 0
        assert "cache=hit" in capsys.readouterr().out

    def test_explain_bad_plan_exits_2(self, capsys):
        assert main(["explain", "pi[1]((("]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_explain_schema_errors_exit_2(self, capsys):
        assert main(["explain", "pi[9](employees)", "--size", "10"]) == 2
        assert "out of range" in capsys.readouterr().err
        assert main(["explain", "pi[1](nosuchrel)", "--size", "10"]) == 2
        assert "unknown relation" in capsys.readouterr().err
