"""Tracing contract properties (see ``src/repro/obs/trace.py``).

Three pinned guarantees, each over randomized plans/databases:

* **work conservation** — for every traced execution, in all three
  executor modes, the span works sum *exactly* to the executor's
  ledger total (cache/CSE-served spans carry their subtree's as-if
  work, so the identity holds in every cache state);
* **observer effect zero** — a traced run returns identical values,
  work and ledgers as an untraced run, and leaves a cache in an
  identical state (same keys, same stats, same stored values);
* **cross-executor agreement** — cold streaming and batch runs of the
  same plan produce span trees with identical
  :meth:`~repro.obs.trace.Span.structure` (labels, rows, work, cache
  annotations, shape).

Randomness is derived per-case via ``derive_rng``, so every case is
reproducible in isolation.
"""

from __future__ import annotations

import pytest

from repro.engine.exec import PlanCache, execute_batch, execute_streaming
from repro.engine.workload import (
    deep_chain_plan,
    derive_rng,
    random_database,
    random_nested_database,
    random_plan,
)
from repro.obs import Span, Tracer
from repro.optimizer.plan import Join, Project, Scan, execute_reference

_NAMES = ("r", "s", "t")

#: 200 random plans, as the tracing contract demands; split across the
#: three executors by round-robin so the full set covers each.
N_PLANS = 200


def _case(i: int, scenario: str):
    """Deterministic (plan, db) for case ``i``."""
    rng = derive_rng(2024, i, scenario)
    make_db = random_nested_database if i % 5 == 0 else random_database
    db = make_db(rng, _NAMES)
    plan = random_plan(rng, _NAMES, depth=rng.randint(1, 4))
    return plan, db


class TestWorkConservation:
    """Span works sum exactly to the executor's ledger total."""

    @pytest.mark.parametrize("i", range(N_PLANS))
    def test_span_work_sums_to_ledger_total(self, i):
        plan, db = _case(i, "worksum")
        mode = ("reference", "stream", "batch")[i % 3]
        tracer = Tracer()
        if mode == "reference":
            result = execute_reference(plan, db, tracer=tracer)
        elif mode == "stream":
            result = execute_streaming(plan, db, tracer=tracer)
        else:
            result = execute_batch(plan, db, tracer=tracer)
        root = tracer.last
        assert root.total_work() == result.work
        assert root.rows == len(result.value)
        # Work must also be conserved under every subtree: each span's
        # subtree total is the sum of its own charge plus its children's
        # subtrees (walk() is preorder, so compute bottom-up on a copy).
        assert (
            sum(span.work for span in root.walk()) == result.work
        )

    @pytest.mark.parametrize("i", range(0, N_PLANS, 10))
    def test_span_work_sums_in_every_cache_state(self, i):
        """Warm runs splice as-if work into hit spans; totals still hold."""
        plan, db = _case(i, "worksum-cache")
        reference = execute_reference(plan, db)
        for executor in (execute_streaming, execute_batch):
            cache = PlanCache()
            for _ in range(3):  # cold, warm, warm
                tracer = Tracer()
                result = executor(plan, db, cache=cache, tracer=tracer)
                assert result.work == reference.work
                assert tracer.last.total_work() == reference.work
                assert tracer.last.rows == len(reference.value)


class TestObserverEffectZero:
    """Tracing never changes results, ledgers, or cache contents."""

    @pytest.mark.parametrize("i", range(0, N_PLANS, 4))
    def test_traced_and_untraced_runs_are_identical(self, i):
        plan, db = _case(i, "observer")
        for executor in (execute_streaming, execute_batch):
            traced_cache, plain_cache = PlanCache(), PlanCache()
            for _ in range(2):  # cold then warm
                traced = executor(
                    plan, db, cache=traced_cache, tracer=Tracer()
                )
                plain = executor(plan, db, cache=plain_cache)
                assert traced.value == plain.value
                assert traced.work == plain.work
                assert traced.per_node == plain.per_node
            # Identical cache state: same counters, same keys, same
            # stored answers.
            assert traced_cache.stats() == plain_cache.stats()
            assert set(traced_cache._entries) == set(plain_cache._entries)
            for key, entry in traced_cache._entries.items():
                other = plain_cache._entries[key]
                assert entry.value == other.value
                assert entry.work == other.work
                assert entry.entries == other.entries

    @pytest.mark.parametrize("i", range(0, N_PLANS, 20))
    def test_reference_traced_matches_untraced(self, i):
        plan, db = _case(i, "observer-ref")
        traced = execute_reference(plan, db, tracer=Tracer())
        plain = execute_reference(plan, db)
        assert traced.value == plain.value
        assert traced.work == plain.work
        assert traced.per_node == plain.per_node


class TestCrossExecutorAgreement:
    """Cold streaming and batch span trees agree node-for-node."""

    @pytest.mark.parametrize("i", range(0, N_PLANS, 2))
    def test_stream_and_batch_structures_match(self, i):
        plan, db = _case(i, "structure")
        ts, tb = Tracer(), Tracer()
        execute_streaming(plan, db, tracer=ts)
        execute_batch(plan, db, tracer=tb)
        assert ts.last.structure() == tb.last.structure()

    def test_reference_matches_streaming_without_cse(self):
        """On a plan with no repeated subtrees (no CSE splicing), all
        three executors produce the same structure."""
        plan, db = _case(3, "structure-ref")
        tr, ts, tb = Tracer(), Tracer(), Tracer()
        execute_reference(plan, db, tracer=tr)
        execute_streaming(plan, db, tracer=ts)
        execute_batch(plan, db, tracer=tb)
        if "cse" not in {s.cache for s in ts.last.walk()}:
            assert tr.last.structure() == ts.last.structure()
        assert ts.last.structure() == tb.last.structure()

    def test_deep_chain_structures_match_without_recursion(self):
        rng = derive_rng(2024, 0, "structure-deep")
        db = random_database(rng, _NAMES)
        plan = deep_chain_plan(rng, "r", 900)
        ts, tb = Tracer(), Tracer()
        rs = execute_streaming(plan, db, tracer=ts)
        rb = execute_batch(plan, db, tracer=tb)
        assert rs.value == rb.value
        assert ts.last.structure() == tb.last.structure()
        assert ts.last.span_count() == 901
        assert hash(ts.last.structure()) == hash(tb.last.structure())


class TestAnnotations:
    """Cache/CSE/source annotations mean what they say."""

    def test_cache_hit_span_is_childless_with_asif_work(self):
        plan, db = _case(1, "annotations")
        cache = PlanCache()
        cold = execute_streaming(plan, db, cache=cache)
        tracer = Tracer()
        warm = execute_streaming(plan, db, cache=cache, tracer=tracer)
        assert warm.value == cold.value
        root = tracer.last
        assert root.cache == "hit"
        assert root.children == []
        assert root.work == cold.work
        assert root.rows == len(cold.value)

    def test_index_served_join_is_annotated(self):
        from repro.engine.database import Database

        rng = derive_rng(2024, 7, "annotations-index")
        db = Database()
        for name in ("a", "b"):
            db.create(name, 2)
            db.insert(
                name,
                {
                    (rng.randrange(6), rng.randrange(6))
                    for _ in range(12)
                },
            )
        plan = Join(left=Scan("a"), right=Scan("b"), on=((0, 0),))
        reference = db.run_reference(plan)
        for mode in ("stream", "batch"):
            tracer = Tracer()
            result = db.run(plan, use_cache=False, mode=mode, tracer=tracer)
            assert result.value == reference.value
            root = tracer.last
            assert root.source == "index"
            # The never-re-read build side: logged, rows unknowable.
            right = root.children[1]
            assert right.label == "b"
            assert right.rows is None and right.work == 0

    def test_bulk_set_op_is_annotated(self):
        from repro.optimizer.plan import Union

        rng = derive_rng(2024, 9, "annotations-bulk")
        db = random_database(rng, _NAMES)
        plan = Union(Scan("r"), Scan("s"))
        tracer = Tracer()
        result = execute_streaming(plan, db, tracer=tracer)
        root = tracer.last
        assert root.source == "bulk"
        assert root.rows == len(result.value)
        assert [c.label for c in root.children] == ["r", "s"]
        assert root.children[0].rows == len(db["r"])

    def test_span_repr_and_tracer_bookkeeping(self):
        span = Span("scan")
        assert "scan" in repr(span)
        tracer = Tracer()
        assert tracer.last is None and len(tracer) == 0
        tracer.record(span)
        assert tracer.last is span and len(tracer) == 1
        tracer.clear()
        assert tracer.last is None
        assert "0" in repr(tracer)


class TestMetaMerge:
    """Root-span ``meta`` is shared by several layers (auto-mode
    decision, degradation record); ``merge_meta`` must preserve what an
    earlier layer attached."""

    def test_merge_into_empty_meta_copies(self):
        span = Span("root")
        updates = {"auto": {"mode": "batch"}}
        span.merge_meta(updates)
        assert span.meta == updates
        assert span.meta is not updates  # defensive copy

    def test_merge_preserves_existing_keys(self):
        span = Span("root")
        span.merge_meta({"auto": {"mode": "compiled"}})
        span.merge_meta({"degraded": [{"mode": "compiled", "to": "batch"}]})
        assert span.meta == {
            "auto": {"mode": "compiled"},
            "degraded": [{"mode": "compiled", "to": "batch"}],
        }

    def test_merge_overwrites_only_named_keys(self):
        span = Span("root")
        span.merge_meta({"a": 1, "b": 2})
        span.merge_meta({"b": 3})
        assert span.meta == {"a": 1, "b": 3}

    def test_run_auto_under_faults_keeps_decision_and_degradations(self):
        """End-to-end regression for the meta-clobber bug: an auto run
        that degrades must surface both records in ``to_dict``."""
        from repro.engine.database import Database
        from repro.robustness import FaultInjector, FaultPlan

        db = Database()
        db.create("r", 2)
        db.insert("r", [(i, i + 1) for i in range(120)])
        db.create("s", 2)
        db.insert("s", [(i, i * 10) for i in range(0, 240, 2)])
        plan = Project(
            columns=(0, 2),
            child=Join(left=Scan("r"), right=Scan("s"), on=((1, 0),)),
        )
        assert db.plan_mode(plan).mode != "reference"
        db.fault_injector = FaultInjector(
            FaultPlan(seed=13, operator_rate=1.0, compile_rate=1.0)
        )
        tracer = Tracer()
        db.run(plan, mode="auto", use_cache=False, tracer=tracer)
        meta = tracer.last.to_dict(wall=False)["meta"]
        assert set(meta) >= {"auto", "degraded"}
        assert meta["degraded"][-1]["to"] == "reference"
