"""Tests for the command-line interface."""


from repro.cli import OPERATION_CATALOG, build_parser, main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E-2.2" in out
        assert "E-OPT" in out


class TestRun:
    def test_runs_named_experiment(self, capsys):
        assert main(["run", "E-2.6"]) == 0
        out = capsys.readouterr().out
        assert "MATCHES PAPER" in out

    def test_unknown_id_errors(self, capsys):
        assert main(["run", "E-404"]) == 2

    def test_no_ids_errors(self, capsys):
        assert main(["run"]) == 2


class TestClassify:
    def test_classifies_catalog_operation(self, capsys):
        assert main(["classify", "projection", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "tightest rel class" in out

    def test_unknown_operation(self, capsys):
        assert main(["classify", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert "choose from" in err

    def test_catalog_entries_build(self):
        for factory in OPERATION_CATALOG.values():
            query = factory()
            assert query.name


class TestOptimize:
    def test_optimizes_plan_text(self, capsys):
        code = main(["optimize", "pi[1](employees - students)",
                     "--size", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rewritten" in out
        assert "chosen" in out

    def test_parse_error_reported(self, capsys):
        assert main(["optimize", "pi[0]("]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_show_rows(self, capsys):
        main(["optimize", "employees", "--size", "5", "--show-rows", "3"])
        out = capsys.readouterr().out
        assert "answer (" in out


class TestWriteup:
    def test_writeup_to_custom_path(self, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        assert main(["writeup", str(target)]) == 0
        text = target.read_text()
        assert "paper vs. measured" in text
        assert "E-2.2" in text


class TestParser:
    def test_build_parser_has_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"
