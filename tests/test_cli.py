"""Tests for the command-line interface."""


from repro.cli import OPERATION_CATALOG, build_parser, main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E-2.2" in out
        assert "E-OPT" in out


class TestRun:
    def test_runs_named_experiment(self, capsys):
        assert main(["run", "E-2.6"]) == 0
        out = capsys.readouterr().out
        assert "MATCHES PAPER" in out

    def test_unknown_id_errors(self, capsys):
        assert main(["run", "E-404"]) == 2

    def test_no_ids_errors(self, capsys):
        assert main(["run"]) == 2


class TestClassify:
    def test_classifies_catalog_operation(self, capsys):
        assert main(["classify", "projection", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "tightest rel class" in out

    def test_unknown_operation(self, capsys):
        assert main(["classify", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert "choose from" in err

    def test_catalog_entries_build(self):
        for factory in OPERATION_CATALOG.values():
            query = factory()
            assert query.name


class TestOptimize:
    def test_optimizes_plan_text(self, capsys):
        code = main(["optimize", "pi[1](employees - students)",
                     "--size", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rewritten" in out
        assert "chosen" in out

    def test_parse_error_reported(self, capsys):
        assert main(["optimize", "pi[0]("]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_show_rows(self, capsys):
        main(["optimize", "employees", "--size", "5", "--show-rows", "3"])
        out = capsys.readouterr().out
        assert "answer (" in out

    def test_schema_error_reported(self, capsys):
        # Parses fine, but the projection column exceeds the arity.
        assert main(["optimize", "pi[9](employees)"]) == 2
        assert "schema error" in capsys.readouterr().err


class TestRunDivergence:
    def test_diverging_experiment_sets_exit_code(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.report import ExperimentResult

        fake = ExperimentResult(
            exp_id="E-2.6", title="t", paper_claim="c",
            columns=("a",), rows=[(1,)], matches_paper=False,
        )
        monkeypatch.setattr(
            registry, "run_all", lambda ids, jobs=1: [fake]
        )
        assert main(["run", "E-2.6"]) == 1
        captured = capsys.readouterr()
        assert "MISMATCH" in captured.out
        assert "diverged from the paper" in captured.err


class TestClassifyParallel:
    def test_jobs_flag_renders_the_serial_text(self, capsys):
        assert main(["classify", "projection", "--trials", "3"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["classify", "projection", "--trials", "3", "--jobs", "2"])
            == 0
        )
        assert capsys.readouterr().out == serial


class TestChaos:
    def test_chaos_smoke_exits_clean(self, capsys):
        assert main(["chaos", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "divergences" in out


class TestBenchPlumbing:
    def test_bench_forwards_flags(self, monkeypatch):
        import repro.bench

        seen = {}
        monkeypatch.setattr(
            repro.bench, "main",
            lambda argv: seen.setdefault("argv", argv) and 0 or 0,
        )
        code = main([
            "bench", "--quick", "--skip-eperf", "--out", "X.json",
            "--jobs", "3",
        ])
        assert code == 0
        assert seen["argv"] == [
            "--out", "X.json", "--quick", "--skip-eperf", "--jobs", "3",
        ]


class TestWriteup:
    def test_writeup_to_custom_path(self, tmp_path, capsys):
        target = tmp_path / "EXP.md"
        assert main(["writeup", str(target)]) == 0
        text = target.read_text()
        assert "paper vs. measured" in text
        assert "E-2.2" in text


class TestParser:
    def test_build_parser_has_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"


class TestRecover:
    def _seed_state(self, tmp_path):
        from repro.durability import DurabilityManager
        from repro.engine.database import Database

        state = str(tmp_path / "state")
        db = Database()
        db.durability = DurabilityManager(state, fsync=False)
        db.create("employees", 3)
        db.insert("employees", [(1, "ada", "d0"), (2, "bob", "d1")])
        db.create("students", 3)
        db.insert("students", [(2, "bob", "d1")])
        db.durability.close()
        return state

    def test_recover_prints_report_and_spans(self, tmp_path, capsys):
        state = self._seed_state(tmp_path)
        assert main(["recover", state]) == 0
        out = capsys.readouterr().out
        assert "4 replayed" in out
        assert "recover" in out and "replay" in out  # span tree

    def test_recover_json_and_dump(self, tmp_path, capsys):
        import json

        from repro.engine.serialize import load_database
        from repro.types.values import cvset, tup

        state = self._seed_state(tmp_path)
        dump = str(tmp_path / "snapshot.json")
        assert main(["recover", state, "--json", "--dump", dump]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replayed"] == 4
        assert load_database(dump)["students"] == cvset(
            tup(2, "bob", "d1")
        )

    def test_recover_missing_checkpoint_dir_is_empty_db(
        self, tmp_path, capsys
    ):
        assert main(["recover", str(tmp_path / "nothing")]) == 0
        assert "checkpoint: none" in capsys.readouterr().out

    def test_explain_wal_runs_against_recovered_db(self, tmp_path, capsys):
        state = self._seed_state(tmp_path)
        code = main([
            "explain", "pi[1](employees - students)",
            "--mode", "stream", "--wal", state,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recover" in out  # recovery report leads
        assert "EXPLAIN ANALYZE" in out
        assert "rows=1" in out  # ada is the only non-student

    def test_explain_wal_json_carries_the_recovery(self, tmp_path, capsys):
        import json

        state = self._seed_state(tmp_path)
        code = main([
            "explain", "employees", "--mode", "stream",
            "--wal", state, "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recovery"]["replayed"] == 4
        assert payload["explains"][0]["mode"] == "stream"

    def test_optimize_wal(self, tmp_path, capsys):
        state = self._seed_state(tmp_path)
        code = main([
            "optimize", "pi[1](employees - students)", "--wal", state,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recover" in out
        assert "answer (1 rows" in out
