"""Property-based roundtrip tests for the concrete syntaxes.

Three parsers ship with the library (types, System F terms, plans);
each has a printer.  These hypothesis properties check
``parse(print(x)) == x`` over randomly generated ASTs.
"""

from hypothesis import given, settings, strategies as st

from repro.lambda2.parser import parse_term
from repro.lambda2.pretty import pretty
from repro.lambda2.syntax import App, Lam, Lit, MkTuple, Proj, TApp, TLam, Var
from repro.optimizer.parser import parse_plan
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Product as PlanProduct,
    Project,
    Scan,
    Select,
    Union,
)
from repro.types.ast import (
    BOOL,
    INT,
    STR,
    BagType,
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    TypeVar,
)
from repro.types.parser import parse_type

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

base_types = st.sampled_from([INT, BOOL, STR])
var_names = st.sampled_from(["X", "Y", "Z1"])
type_vars = st.builds(TypeVar, var_names, st.booleans())

types = st.recursive(
    st.one_of(base_types, type_vars),
    lambda children: st.one_of(
        st.builds(SetType, children),
        st.builds(BagType, children),
        st.builds(ListType, children),
        st.builds(FuncType, children, children),
        # Products of arity >= 2: unary/empty products have no distinct
        # concrete syntax.
        st.lists(children, min_size=2, max_size=3).map(
            lambda cs: Product(tuple(cs))
        ),
        st.builds(ForAll, var_names, children, st.booleans()),
    ),
    max_leaves=8,
)


class TestTypeRoundtrip:
    @given(types)
    @settings(max_examples=200)
    def test_parse_of_str(self, t):
        assert parse_type(str(t)) == t


# ---------------------------------------------------------------------------
# System F terms
# ---------------------------------------------------------------------------

term_var_names = st.sampled_from(["x", "y", "f", "acc"])
tvar_names = st.sampled_from(["X", "Y"])

terms = st.recursive(
    st.one_of(
        st.builds(Var, term_var_names),
        st.builds(Lit, st.integers(min_value=0, max_value=99), st.just(INT)),
        st.sampled_from([Lit(True, BOOL), Lit(False, BOOL)]),
    ),
    lambda children: st.one_of(
        st.builds(App, children, children),
        st.builds(TApp, children, types),
        st.builds(Lam, term_var_names, types, children),
        st.builds(TLam, tvar_names, children, st.booleans()),
        st.lists(children, min_size=2, max_size=3).map(
            lambda cs: MkTuple(tuple(cs))
        ),
        st.builds(Proj, children, st.integers(min_value=0, max_value=2)),
    ),
    max_leaves=8,
)


class TestTermRoundtrip:
    @given(terms)
    @settings(max_examples=200)
    def test_parse_of_pretty(self, term):
        assert parse_term(pretty(term)) == term


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

relation_names = st.sampled_from(["r", "s", "emp", "t2"])

# Every predicate shape the sigma grammar can print: a 1-based column
# against an int literal, a string literal, or another column, under
# each comparator.  ``Select`` equality compares the predicate *name*
# (the callable is ``field(compare=False)``), so ``parse(str(plan))``
# reconstructing a fresh lambda still compares equal.  Join and
# MapNode have no concrete syntax and are round-tripped through the
# serialization suite instead.
sigma_predicates = st.builds(
    lambda col, op, rhs: f"${col}{op}{rhs}",
    st.integers(min_value=1, max_value=3),
    st.sampled_from(["=", "<", ">"]),
    st.one_of(
        st.integers(min_value=0, max_value=9),
        st.sampled_from(["'a'", "'zz'", "$1", "$2"]),
    ),
)

plans = st.recursive(
    st.builds(Scan, relation_names),
    lambda children: st.one_of(
        st.builds(Union, children, children),
        st.builds(Difference, children, children),
        st.builds(Intersect, children, children),
        st.builds(PlanProduct, children, children),
        st.builds(
            Project,
            st.lists(
                st.integers(min_value=0, max_value=3), min_size=1, max_size=3
            ).map(tuple),
            children,
        ),
        st.builds(
            lambda name, child: Select(name, lambda t: True, child),
            sigma_predicates,
            children,
        ),
    ),
    max_leaves=6,
)


class TestPlanRoundtrip:
    @given(plans)
    @settings(max_examples=200)
    def test_parse_of_str(self, plan):
        assert parse_plan(str(plan)) == plan
