"""Shared fixtures and helpers for the test suite.

The executor suites all need the same scaffolding: a trio of small
relations to run plans over, seeded random plan/database pairs for the
property loops, the seeded HR workload for ``Database``-level tests,
and the parity assertion that defines the engine's contract.  Each
used to carry its own copy; they live here once.

* :data:`NAMES` — the canonical relation trio ``("r", "s", "t")``.
* :func:`assert_equivalent` — plain function (import it): each result
  byte-matches the reference interpreter on value, work, and ledger.
* ``small_db`` — a live three-relation :class:`Database` with fixed
  contents, for maintenance/degradation-style tests.
* ``random_db(seed, ...)`` — factory fixture for a seeded random
  relation mapping over :data:`NAMES`.
* ``plan_pair(seed, ...)`` — factory fixture for a seeded
  ``(plan, db)`` pair drawn from the same distribution the executor
  property suites always used.
* ``hr_db(seed, ...)`` — factory fixture for the seeded HR workload
  ``Database``.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.database import Database
from repro.engine.workload import hr_database, random_database, random_plan
from repro.optimizer.plan import execute_reference

NAMES = ("r", "s", "t")


def assert_equivalent(plan, db, *results):
    """Every ``result`` matches the reference interpreter exactly:
    same ``CVSet`` value, same total work, same per-node ledger."""
    reference = execute_reference(plan, getattr(db, "relations", db))
    for result in results:
        assert result.value == reference.value
        assert result.work == reference.work
        assert result.per_node == reference.per_node


@pytest.fixture
def small_db():
    """A small live ``Database`` over ``r``/``s``/``t`` with fixed
    contents — the shape the delta-maintenance tests pin behavior on."""
    db = Database()
    db.create("r", 2)
    db.create("s", 2)
    db.create("t", 2)
    db.insert("r", [(1, 2), (2, 3), (4, 5)])
    db.insert("s", [(2, 3), (6, 7)])
    db.insert("t", [(1, 1)])
    return db


@pytest.fixture
def random_db():
    """Factory: ``random_db(seed, names=NAMES, **kwargs)`` returns a
    seeded random relation mapping (defaults match the property
    suites: arity 2, domain 5, up to 12 rows)."""

    def make(seed, names=NAMES, **kwargs):
        kwargs.setdefault("arity", 2)
        kwargs.setdefault("domain_size", 5)
        kwargs.setdefault("max_rows", 12)
        return random_database(random.Random(seed), names, **kwargs)

    return make


@pytest.fixture
def plan_pair():
    """Factory: ``plan_pair(seed, names=NAMES, depth=None, **kwargs)``
    returns a seeded ``(plan, db)`` pair.  One seed, one rng: the
    database draw advances the same stream the plan is drawn from, so
    a seed reproduces the whole pair."""

    def make(seed, names=NAMES, depth=None, **kwargs):
        rng = random.Random(seed)
        kwargs.setdefault("arity", 2)
        kwargs.setdefault("domain_size", 5)
        kwargs.setdefault("max_rows", rng.randint(0, 12))
        db = random_database(rng, names, **kwargs)
        plan = random_plan(
            rng, names, depth=depth if depth is not None else rng.randint(1, 4)
        )
        return plan, db

    return make


@pytest.fixture
def hr_db():
    """Factory: ``hr_db(seed=11, employees=40, students=25,
    overlap=10)`` builds the seeded HR workload ``Database``."""

    def make(seed=11, employees=40, students=25, overlap=10, **kwargs):
        return hr_database(
            random.Random(seed), employees=employees, students=students,
            overlap=overlap, **kwargs,
        )

    return make
