"""Tests for base relational mappings (Section 2.2)."""

import pytest

from repro.types.ast import INT, STR
from repro.mappings.mapping import (
    ConstantGraphRel,
    Mapping,
    Unenumerable,
    identity_on,
    mapping_from_function,
    mapping_from_pairs,
)


def paper_k() -> Mapping:
    """The mapping K of Section 2.2 — functional in neither direction."""
    return Mapping(
        {("e", "a"), ("i", "a"), ("f", "b"), ("j", "b"), ("g", "c"), ("g", "d")},
        STR,
        STR,
    )


class TestBasics:
    def test_holds(self):
        k = paper_k()
        assert k.holds("e", "a")
        assert not k.holds("e", "b")

    def test_images_and_preimages(self):
        k = paper_k()
        assert set(k.images("g")) == {"c", "d"}
        assert set(k.preimages("a")) == {"e", "i"}
        assert set(k.images("zzz")) == set()

    def test_domain_codomain(self):
        k = paper_k()
        assert k.domain() == {"e", "i", "f", "j", "g"}
        assert k.codomain() == {"a", "b", "c", "d"}

    def test_len_eq_hash(self):
        k1, k2 = paper_k(), paper_k()
        assert len(k1) == 6
        assert k1 == k2
        assert hash(k1) == hash(k2)

    def test_pairs_enumeration(self):
        assert set(paper_k().pairs()) == {
            ("e", "a"), ("i", "a"), ("f", "b"), ("j", "b"), ("g", "c"), ("g", "d")
        }


class TestClassification:
    def test_paper_k_not_functional(self):
        k = paper_k()
        assert not k.is_functional()
        assert not k.is_injective()

    def test_functional_not_injective(self):
        h = Mapping({(1, 10), (2, 10)}, INT, INT)
        assert h.is_functional()
        assert not h.is_injective()

    def test_injective(self):
        h = Mapping({(1, 10), (2, 20)}, INT, INT)
        assert h.is_injective()

    def test_totality_needs_declared_domain(self):
        h = Mapping({(1, 10)}, INT, INT, source_domain=(1, 2))
        assert not h.is_total()
        h2 = Mapping({(1, 10), (2, 10)}, INT, INT, source_domain=(1, 2))
        assert h2.is_total()

    def test_surjectivity(self):
        h = Mapping({(1, 10)}, INT, INT, target_domain=(10, 20))
        assert not h.is_surjective()

    def test_bijective(self):
        h = Mapping(
            {(1, 10), (2, 20)},
            INT,
            INT,
            source_domain=(1, 2),
            target_domain=(10, 20),
        )
        assert h.is_bijective()


class TestAlgebra:
    def test_compose(self):
        h1 = Mapping({(1, 10), (2, 20)}, INT, INT)
        h2 = Mapping({(10, 100), (20, 200), (20, 201)}, INT, INT)
        h3 = h1.compose(h2)
        assert set(h3.pairs()) == {(1, 100), (2, 200), (2, 201)}

    def test_inverse_roundtrip(self):
        k = paper_k()
        assert set(k.inverse().pairs()) == {(y, x) for x, y in k.pairs()}
        assert k.inverse().inverse() == k

    def test_inverse_of_function_not_function(self):
        # The paper's point: inverses of (even strong) homomorphisms
        # need not be functions.
        h = Mapping({(1, 10), (2, 10)}, INT, INT)
        assert h.is_functional()
        assert not h.inverse().is_functional()

    def test_restrict(self):
        k = paper_k().restrict({"g"})
        assert set(k.pairs()) == {("g", "c"), ("g", "d")}

    def test_union(self):
        a = Mapping({(1, 10)}, INT, INT)
        b = Mapping({(2, 20)}, INT, INT)
        assert set(a.union(b).pairs()) == {(1, 10), (2, 20)}

    def test_apply_functional(self):
        h = Mapping({(1, 10)}, INT, INT)
        assert h.apply(1) == 10
        with pytest.raises(KeyError):
            h.apply(2)

    def test_apply_rejects_nonfunctional(self):
        k = paper_k()
        with pytest.raises(ValueError):
            k.apply("g")


class TestIdentityRel:
    def test_unbounded_identity(self):
        i = identity_on(INT)
        assert i.holds(3, 3)
        assert not i.holds(3, 4)
        assert list(i.images(3)) == [3]

    def test_carrier_restricts(self):
        i = identity_on(INT, carrier=(1, 2))
        assert i.holds(1, 1)
        assert not i.holds(3, 3)
        assert set(i.pairs()) == {(1, 1), (2, 2)}

    def test_unbounded_pairs_unenumerable(self):
        with pytest.raises(Unenumerable):
            list(identity_on(INT).pairs())

    def test_inverse_is_self(self):
        i = identity_on(INT)
        assert i.inverse() is i


class TestConstantGraphRel:
    def test_graph_semantics(self):
        g = ConstantGraphRel(lambda x: x + 1, INT, INT, carrier=(1, 2))
        assert g.holds(1, 2)
        assert not g.holds(1, 3)
        assert not g.holds(5, 6)  # outside carrier
        assert set(g.pairs()) == {(1, 2), (2, 3)}
        assert set(g.preimages(3)) == {2}


class TestHelpers:
    def test_mapping_from_function(self):
        h = mapping_from_function(lambda x: x * 2, (1, 2), INT, INT)
        assert set(h.pairs()) == {(1, 2), (2, 4)}
        assert h.is_total()

    def test_mapping_from_pairs(self):
        h = mapping_from_pairs([(1, 2)], INT, INT)
        assert h.holds(1, 2)
