"""Tests for bounded carrier enumeration."""

import pytest

from repro.mappings.carriers import DictFunction, carrier, enumerate_function_pairs
from repro.mappings.extensions import ListRel, ProductRel, SetRelExt
from repro.mappings.function_maps import FuncRel
from repro.mappings.mapping import Budget, IdentityRel, Mapping, Unenumerable
from repro.types.ast import BOOL, INT
from repro.types.values import CVList, CVSet, Tup


def h() -> Mapping:
    return Mapping(
        {(0, 10), (1, 11)},
        INT,
        INT,
        source_domain=(0, 1),
        target_domain=(10, 11),
    )


class TestDictFunction:
    def test_call_and_equality(self):
        f = DictFunction({1: True, 2: False})
        assert f(1) is True
        assert f == DictFunction({2: False, 1: True})
        assert hash(f) == hash(DictFunction({1: True, 2: False}))

    def test_graph_copy(self):
        f = DictFunction({1: 2})
        g = f.graph()
        g[1] = 99
        assert f(1) == 2


class TestCarrier:
    def test_mapping_sides(self):
        assert carrier(h(), "left") == [0, 1]
        assert carrier(h(), "right") == [10, 11]

    def test_identity_with_carrier(self):
        i = IdentityRel(BOOL, carrier=(True, False))
        assert set(carrier(i, "left")) == {True, False}

    def test_identity_without_carrier_unenumerable(self):
        with pytest.raises(Unenumerable):
            carrier(IdentityRel(INT), "left")

    def test_product_carrier(self):
        rel = ProductRel((h(), h()))
        values = carrier(rel, "left")
        assert Tup((0, 1)) in values
        assert len(values) == 4

    def test_list_carrier_bounded(self):
        rel = ListRel(h())
        values = carrier(rel, "left", Budget(max_list_len=2))
        assert CVList(()) in values
        assert CVList((0, 1)) in values
        assert all(len(v) <= 2 for v in values)

    def test_set_carrier_bounded(self):
        rel = SetRelExt(h())
        values = carrier(rel, "left", Budget(max_set_size=1))
        assert CVSet(()) in values
        assert all(len(v) <= 1 for v in values)

    def test_function_carrier(self):
        rel = FuncRel(h(), IdentityRel(BOOL, carrier=(True, False)))
        fns = carrier(rel, "left")
        # All predicates over a 2-element domain: 4 of them.
        assert len(fns) == 4

    def test_function_carrier_budget_guard(self):
        rel = FuncRel(
            ListRel(h()), IdentityRel(BOOL, carrier=(True, False))
        )
        with pytest.raises(Unenumerable):
            carrier(rel, "left", Budget(max_list_len=3, max_pairs=10))


class TestFunctionPairEnumeration:
    def test_pairs_are_related(self):
        rel = FuncRel(h(), IdentityRel(BOOL, carrier=(True, False)))
        pairs = list(enumerate_function_pairs(rel))
        assert pairs
        for f, g in pairs:
            assert rel.holds(f, g)

    def test_predicate_pairs_track_mapping(self):
        # For injective h, related predicates are exactly those agreeing
        # through h: 4 predicate pairs.
        rel = FuncRel(h(), IdentityRel(BOOL, carrier=(True, False)))
        pairs = list(enumerate_function_pairs(rel))
        assert len(pairs) == 4
