"""Tests for random mapping / value generators."""

import random

import pytest

from repro.mappings.generators import (
    MAPPING_CLASSES,
    all_mappings_between,
    random_bijective_mapping,
    random_domain,
    random_family,
    random_functional_mapping,
    random_injective_mapping,
    random_mapping,
    random_mapping_in_class,
    random_relation_value,
    random_total_surjective_mapping,
    random_value,
)
from repro.types.ast import BOOL, INT, STR, Product, TypeError_, bag_of, list_of, set_of
from repro.types.typecheck import check_value
from repro.types.values import Tup


class TestDomains:
    def test_int_domain(self):
        assert random_domain(random.Random(0), 3, INT) == [0, 1, 2]
        assert random_domain(random.Random(0), 3, INT, offset=10) == [10, 11, 12]

    def test_str_domain_distinct(self):
        d = random_domain(random.Random(0), 30, STR)
        assert len(set(d)) == 30

    def test_bool_domain(self):
        assert random_domain(random.Random(0), 2, BOOL) == [True, False]

    def test_abstract_domain(self):
        from repro.types.ast import BaseType

        d = random_domain(random.Random(0), 2, BaseType("dom"))
        assert d == ["dom_0", "dom_1"]


class TestMappingClasses:
    def test_every_class_generates_members(self):
        rng = random.Random(1)
        left = list(range(4))
        right = list(range(100, 104))
        for cls in MAPPING_CLASSES:
            h = random_mapping_in_class(rng, cls, left, right, INT)
            assert len(h) > 0

    def test_functional_class(self):
        rng = random.Random(2)
        for _ in range(20):
            h = random_functional_mapping(rng, range(5), range(100, 105), INT)
            assert h.is_functional()
            assert h.is_total()

    def test_injective_class(self):
        rng = random.Random(3)
        for _ in range(20):
            h = random_injective_mapping(rng, range(4), range(100, 106), INT)
            assert h.is_injective()

    def test_injective_needs_room(self):
        with pytest.raises(ValueError):
            random_injective_mapping(random.Random(0), range(5), range(2), INT)

    def test_bijective_class(self):
        rng = random.Random(4)
        for _ in range(20):
            h = random_bijective_mapping(rng, range(4), range(100, 104), INT)
            assert h.is_bijective()

    def test_bijective_needs_equal_sizes(self):
        with pytest.raises(ValueError):
            random_bijective_mapping(random.Random(0), range(3), range(4), INT)

    def test_total_surjective_class(self):
        rng = random.Random(5)
        for _ in range(20):
            h = random_total_surjective_mapping(
                rng, range(4), range(100, 104), INT
            )
            assert h.is_total()
            assert h.is_surjective()

    def test_surjective_functional_class(self):
        rng = random.Random(6)
        for _ in range(20):
            h = random_mapping_in_class(
                rng, "surjective_functional", range(5), range(100, 103), INT
            )
            assert h.is_functional()
            assert h.is_total()
            assert h.is_surjective()

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            random_mapping_in_class(random.Random(0), "nope", [1], [2], INT)

    def test_determinism(self):
        a = random_mapping(random.Random(7), range(4), range(4), INT)
        b = random_mapping(random.Random(7), range(4), range(4), INT)
        assert a == b


class TestFamilyGeneration:
    def test_family_covers_base_types(self):
        fam = random_family(random.Random(0), "injective", (INT, STR), 3)
        assert "int" in fam
        assert "str" in fam
        assert fam.is_injective()


class TestExhaustiveEnumeration:
    def test_counts_all_nonempty_mappings(self):
        ms = all_mappings_between([1, 2], [3, 4], INT)
        assert len(ms) == 2 ** 4 - 1

    def test_size_guard(self):
        with pytest.raises(ValueError):
            all_mappings_between(range(5), range(5), INT)


class TestRandomValues:
    def test_values_typecheck(self):
        rng = random.Random(0)
        domains = {"int": [0, 1, 2], "str": ["a", "b"]}
        for t in [
            set_of(INT),
            set_of(Product((INT, STR))),
            list_of(set_of(INT)),
            bag_of(INT),
            set_of(set_of(INT)),
        ]:
            for _ in range(10):
                v = random_value(rng, t, domains)
                assert check_value(v, t), (v, t)

    def test_bool_defaults(self):
        v = random_value(random.Random(0), BOOL, {})
        assert isinstance(v, bool)

    def test_missing_domain_rejected(self):
        with pytest.raises(TypeError_):
            random_value(random.Random(0), INT, {})

    def test_relation_value(self):
        r = random_relation_value(random.Random(0), 2, [0, 1, 2], 4)
        assert len(r) == 4
        assert all(isinstance(t, Tup) and len(t) == 2 for t in r)

    def test_relation_value_caps_at_universe(self):
        r = random_relation_value(random.Random(0), 1, [0, 1], 10)
        assert len(r) == 2
