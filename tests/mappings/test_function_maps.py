"""Tests for function-type and forall-type mapping constructors (Defs 4.2-4.3)."""


from repro.mappings.extensions import ListRel
from repro.mappings.function_maps import ForAllRel, FuncRel, PolyValue
from repro.mappings.mapping import Budget, IdentityRel, Mapping
from repro.types.ast import BOOL, INT, forall, func, list_of, tvar
from repro.types.values import cvlist


def h() -> Mapping:
    return Mapping(
        {(0, 10), (1, 11)},
        INT,
        INT,
        source_domain=(0, 1),
        target_domain=(10, 11),
    )


class TestFuncRel:
    def test_related_functions(self):
        # f adds 0 on the left, g adds 0 on the right: both identity-ish;
        # related because images track the mapping.
        rel = FuncRel(h(), h())
        assert rel.holds(lambda x: x, lambda y: y)

    def test_unrelated_functions(self):
        rel = FuncRel(h(), h())
        # g swaps the two targets: breaks relatedness at (0, 10).
        swap = {10: 11, 11: 10}
        assert not rel.holds(lambda x: x, lambda y: swap[y])

    def test_invariance_special_case(self):
        # K = K', f = g states f invariant under K (Def 2.9 bridge).
        identity_map = Mapping({(0, 0), (1, 1)}, INT, INT)
        rel = FuncRel(identity_map, identity_map)
        assert rel.holds(lambda x: x, lambda x: x)

    def test_exception_counts_as_unrelated(self):
        rel = FuncRel(h(), h())

        def bad(_x):
            raise RuntimeError("partial")

        assert not rel.holds(bad, bad)

    def test_witness_violation(self):
        rel = FuncRel(h(), h())
        swap = {10: 11, 11: 10}
        witness = rel.witness_violation(lambda x: x, lambda y: swap[y])
        assert witness is not None
        x, y = witness
        assert h().holds(x, y)

    def test_list_to_int_relation(self):
        # count-style: <H> -> Id(int).
        rel = FuncRel(ListRel(h()), IdentityRel(INT))
        assert rel.holds(lambda l: len(l), lambda l: len(l))
        assert not rel.holds(lambda l: len(l), lambda l: len(l) + 1)

    def test_higher_order_pairs_enumeration(self):
        # (H -> Id_bool) pairs: all related predicate pairs.
        rel = FuncRel(h(), IdentityRel(BOOL, carrier=(True, False)))
        pairs = list(rel.pairs(Budget()))
        assert pairs  # nonempty
        for f, g in pairs:
            assert rel.holds(f, g)


class TestPolyValue:
    def test_instantiation(self):
        pv = PolyValue(lambda t: t, forall("X", tvar("X")))
        assert pv[INT] == INT

    def test_repr(self):
        pv = PolyValue(lambda t: None, forall("X", tvar("X")))
        assert "PolyValue" in repr(pv)


class TestForAllRel:
    def _candidates(self):
        return [(INT, INT, h())]

    def test_parametric_identity(self):
        t = forall("X", func(tvar("X"), tvar("X")))
        rel = ForAllRel(
            t,
            self._candidates(),
            lambda m: FuncRel(m, m),
        )
        identity = PolyValue(lambda _t: (lambda x: x), t)
        assert rel.holds(identity, identity)

    def test_non_parametric_function_caught(self):
        t = forall("X", func(tvar("X"), tvar("X")))
        rel = ForAllRel(t, self._candidates(), lambda m: FuncRel(m, m))
        # "Increment if int" inspects the element: not uniform.
        poke = PolyValue(lambda _t: (lambda x: x + 1), t)
        violation = rel.witness_violation(poke, poke)
        assert violation is not None

    def test_raw_values_accepted(self):
        # Native constants are raw callables, not PolyValue.
        t = forall("X", func(tvar("X"), tvar("X")))
        rel = ForAllRel(t, self._candidates(), lambda m: FuncRel(m, m))
        assert rel.holds(lambda x: x, lambda x: x)

    def test_body_relation_without_functions(self):
        # forall X. <X>: nil must relate to itself.
        t = forall("X", list_of(tvar("X")))
        rel = ForAllRel(t, self._candidates(), lambda m: ListRel(m))
        nil = PolyValue(lambda _t: cvlist(), t)
        assert rel.holds(nil, nil)
