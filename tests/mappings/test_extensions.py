"""Tests for extension constructors (Definitions 2.3-2.5, Prop 2.8)."""

import pytest

from repro.mappings.extensions import (
    REL,
    STRONG,
    BagRelExt,
    BagStrongExt,
    ListRel,
    ProductRel,
    SetRelExt,
    SetStrongExt,
    extend_along,
    extend_family,
)
from repro.mappings.mapping import Mapping
from repro.types.ast import (
    BOOL,
    INT,
    STR,
    Product,
    TypeError_,
    list_of,
    set_of,
    tvar,
)
from repro.types.values import cvbag, cvlist, cvset, tup


def h_int() -> Mapping:
    """A many-to-many mapping on small int domains."""
    return Mapping({(1, 10), (1, 11), (2, 11), (3, 12)}, INT, INT)


class TestProductRel:
    def test_componentwise(self):
        rel = ProductRel((h_int(), h_int()))
        assert rel.holds(tup(1, 2), tup(10, 11))
        assert rel.holds(tup(1, 1), tup(10, 11))  # independent components
        assert not rel.holds(tup(1, 2), tup(12, 11))

    def test_arity_mismatch(self):
        rel = ProductRel((h_int(),))
        assert not rel.holds(tup(1, 2), tup(10, 11))
        assert not rel.holds(1, 10)

    def test_images(self):
        rel = ProductRel((h_int(), h_int()))
        images = set(rel.images(tup(1, 3)))
        assert images == {tup(10, 12), tup(11, 12)}

    def test_rel_extension_maps_tuple_fields_independently(self):
        # The Q4 discussion: [a, a] can map to [b, c] under rel.
        h = Mapping({("a", "b"), ("a", "c")}, STR, STR)
        rel = ProductRel((h, h))
        assert rel.holds(tup("a", "a"), tup("b", "c"))


class TestListRel:
    def test_equal_length_pointwise(self):
        rel = ListRel(h_int())
        assert rel.holds(cvlist(1, 2), cvlist(10, 11))
        assert rel.holds(cvlist(1, 2), cvlist(11, 11))
        assert not rel.holds(cvlist(1, 2), cvlist(10,))
        assert not rel.holds(cvlist(1), cvlist(12))

    def test_empty_lists_related(self):
        assert ListRel(h_int()).holds(cvlist(), cvlist())

    def test_order_preserved(self):
        h = Mapping({(1, 10), (2, 20)}, INT, INT)
        rel = ListRel(h)
        assert rel.holds(cvlist(1, 2), cvlist(10, 20))
        assert not rel.holds(cvlist(1, 2), cvlist(20, 10))

    def test_images(self):
        rel = ListRel(h_int())
        assert set(rel.images(cvlist(1))) == {cvlist(10), cvlist(11)}


class TestSetRelExt:
    def test_two_way_cover(self):
        rel = SetRelExt(h_int())
        assert rel.holds(cvset(1, 2), cvset(10, 11))
        # 12 has no preimage in {1, 2}.
        assert not rel.holds(cvset(1, 2), cvset(10, 12))
        # 3 has no image in {10, 11}.
        assert not rel.holds(cvset(1, 3), cvset(10, 11))

    def test_empty_sets(self):
        rel = SetRelExt(h_int())
        assert rel.holds(cvset(), cvset())
        assert not rel.holds(cvset(1), cvset())

    def test_non_injective_collapse(self):
        # A homomorphic image can be smaller.
        h = Mapping({(1, 10), (2, 10)}, INT, INT)
        assert SetRelExt(h).holds(cvset(1, 2), cvset(10))

    def test_images_enumeration(self):
        rel = SetRelExt(h_int())
        images = set(rel.images(cvset(1)))
        assert images == {cvset(10), cvset(11), cvset(10, 11)}

    def test_preimages_enumeration(self):
        rel = SetRelExt(h_int())
        pre = set(rel.preimages(cvset(12)))
        assert pre == {cvset(3)}


class TestSetStrongExt:
    def test_strong_requires_maximality(self):
        # h collapses {1,2} onto {10}; {1} -> {10} is rel but NOT strong
        # because 2 also maps to 10 (R1 not maximal).
        h = Mapping({(1, 10), (2, 10)}, INT, INT)
        strong = SetStrongExt(h)
        rel = SetRelExt(h)
        assert rel.holds(cvset(1), cvset(10))
        assert not strong.holds(cvset(1), cvset(10))
        assert strong.holds(cvset(1, 2), cvset(10))

    def test_strong_image_unique(self):
        strong = SetStrongExt(h_int())
        images = list(strong.images(cvset(3)))
        assert images == [cvset(12)]

    def test_strong_image_may_not_exist(self):
        strong = SetStrongExt(h_int())
        # maximal image of {1} is {10, 11}, whose maximal preimage is
        # {1, 2} != {1}: no strong image.
        assert list(strong.images(cvset(1))) == []

    def test_strong_implies_rel(self):
        strong = SetStrongExt(h_int())
        rel = SetRelExt(h_int())
        for left, right in strong.pairs():
            assert rel.holds(left, right)

    def test_chandra_equivalence_for_functions(self):
        # For functional h, strong == Chandra's strong homomorphism:
        # r1(x) <-> r2(h(x)).
        h = Mapping({(1, 10), (2, 10), (3, 12)}, INT, INT)
        strong = SetStrongExt(h)
        r2 = cvset(10)
        # preimage of {10} is {1, 2}.
        assert strong.holds(cvset(1, 2), r2)
        assert not strong.holds(cvset(1), r2)
        assert not strong.holds(cvset(1, 2, 3), r2)


class TestBagExtensions:
    def test_bag_rel_on_support(self):
        rel = BagRelExt(h_int())
        assert rel.holds(cvbag(1, 1, 2), cvbag(10, 11))
        assert not rel.holds(cvbag(3), cvbag(10))

    def test_bag_strong_needs_mass(self):
        h = Mapping({(1, 10), (2, 10)}, INT, INT)
        strong = BagStrongExt(h)
        assert strong.holds(cvbag(1, 2), cvbag(10, 10))
        assert not strong.holds(cvbag(1, 2), cvbag(10))

    def test_bag_type_mismatch(self):
        assert not BagRelExt(h_int()).holds(cvset(1), cvbag(10))


class TestExtendFamily:
    def test_nested_extension(self):
        fam = {"int": h_int()}
        rel = extend_family(set_of(set_of(INT)), fam, REL)
        assert rel.holds(cvset(cvset(1)), cvset(cvset(10)))

    def test_bool_forced_identity(self):
        bad = Mapping({(True, False)}, BOOL, BOOL)
        rel = extend_family(set_of(BOOL), {"bool": bad}, REL)
        # The bool mapping is ignored; identity is used.
        assert rel.holds(cvset(True), cvset(True))
        assert not rel.holds(cvset(True), cvset(False))

    def test_unmapped_base_type_identity(self):
        rel = extend_family(set_of(STR), {"int": h_int()}, REL)
        assert rel.holds(cvset("a"), cvset("a"))
        assert not rel.holds(cvset("a"), cvset("b"))

    def test_type_variable_rejected(self):
        with pytest.raises(TypeError_):
            extend_family(set_of(tvar("X")), {}, REL)

    def test_unknown_mode_rejected(self):
        with pytest.raises(TypeError_):
            extend_family(set_of(INT), {}, "weird")

    def test_mixed_types(self):
        t = set_of(Product((INT, list_of(INT))))
        rel = extend_family(t, {"int": h_int()}, REL)
        assert rel.holds(
            cvset(tup(1, cvlist(2, 3))), cvset(tup(10, cvlist(11, 12)))
        )


class TestExtendAlong:
    def test_variables_take_assigned_relations(self):
        t = set_of(tvar("X"))
        rel = extend_along(t, {"X": h_int()}, REL)
        assert rel.holds(cvset(1), cvset(10))

    def test_unassigned_variable_rejected(self):
        with pytest.raises(TypeError_):
            extend_along(set_of(tvar("X")), {}, REL)

    def test_independent_variables(self):
        # zip-style: same domain, different relations per variable.
        h1 = Mapping({(1, 10)}, INT, INT)
        h2 = Mapping({(1, 99)}, INT, INT)
        t = Product((tvar("X"), tvar("Y")))
        rel = extend_along(t, {"X": h1, "Y": h2}, REL)
        assert rel.holds(tup(1, 1), tup(10, 99))
        assert not rel.holds(tup(1, 1), tup(99, 10))

    def test_mixed_mode_labeling(self):
        h = Mapping({(1, 10), (2, 10)}, INT, INT)
        t = set_of(set_of(tvar("X")))
        # Outer set strong, inner rel (pre-order indices 0 and 1).
        rel = extend_along(
            t, {"X": h}, REL, node_modes={0: STRONG, 1: REL}
        )
        inner_rel_pair = (cvset(cvset(1)), cvset(cvset(10)))
        assert rel.holds(*inner_rel_pair) in (True, False)  # decidable

    def test_forall_rejected(self):
        from repro.types.ast import forall

        with pytest.raises(TypeError_):
            extend_along(forall("X", tvar("X")), {"X": h_int()}, REL)
