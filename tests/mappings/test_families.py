"""Tests for mapping families and preservation (Sections 2.4-2.5)."""

import pytest

from repro.mappings.families import (
    ConstantSpec,
    MappingFamily,
    preserves_constant,
    preserves_function,
    preserves_predicate,
    strictly_preserves_constant,
)
from repro.mappings.mapping import Mapping
from repro.types.ast import BOOL, INT
from repro.types.signatures import standard_signature
from repro.types.values import cvset


def mapping(pairs, **kw) -> Mapping:
    return Mapping(pairs, INT, INT, **kw)


class TestConstantPreservation:
    def test_regular_preservation(self):
        h = mapping({(7, 7), (7, 8), (1, 2)})
        assert preserves_constant(h, 7)
        assert not preserves_constant(h, 1)

    def test_strict_preservation(self):
        strict = mapping({(7, 7), (1, 2)})
        assert strictly_preserves_constant(strict, 7)
        # Associating 7 with another value breaks strictness both ways.
        assert not strictly_preserves_constant(mapping({(7, 7), (7, 8)}), 7)
        assert not strictly_preserves_constant(mapping({(7, 7), (1, 7)}), 7)

    def test_strict_requires_the_pair(self):
        assert not strictly_preserves_constant(mapping({(1, 2)}), 7)

    def test_strict_implies_regular(self):
        h = mapping({(7, 7), (1, 2)})
        assert strictly_preserves_constant(h, 7)
        assert preserves_constant(h, 7)

    def test_preservation_equals_singleton_extension(self):
        # H preserves c iff H^rel({c},{c}); strictly iff H^strong.
        from repro.mappings.extensions import SetRelExt, SetStrongExt

        h = mapping({(7, 7), (7, 8), (1, 2)})
        assert SetRelExt(h).holds(cvset(7), cvset(7)) == preserves_constant(h, 7)
        assert SetStrongExt(h).holds(
            cvset(7), cvset(7)
        ) == strictly_preserves_constant(h, 7)


class TestMappingFamily:
    def test_bool_mapping_rejected(self):
        bad = Mapping({(True, False)}, BOOL, BOOL)
        with pytest.raises(ValueError):
            MappingFamily({"bool": bad})

    def test_class_tests_delegate(self):
        h = mapping({(1, 10), (2, 20)}, source_domain=(1, 2), target_domain=(10, 20))
        fam = MappingFamily({"int": h})
        assert fam.is_functional()
        assert fam.is_injective()
        assert fam.is_total()
        assert fam.is_surjective()
        assert fam.is_bijective()

    def test_compose_and_inverse(self):
        h1 = mapping({(1, 10)})
        h2 = mapping({(10, 100)})
        fam = MappingFamily({"int": h1}).compose(MappingFamily({"int": h2}))
        assert fam["int"].holds(1, 100)
        inv = fam.inverse()
        assert inv["int"].holds(100, 1)

    def test_preserves_constant_spec(self):
        h = mapping({(7, 7), (1, 2)})
        fam = MappingFamily({"int": h})
        assert fam.preserves(ConstantSpec(7, INT, strict=True))
        assert not fam.preserves(ConstantSpec(1, INT))

    def test_unmapped_base_preserves_everything(self):
        fam = MappingFamily({})
        assert fam.preserves(ConstantSpec(7, INT))
        assert fam.preserves(ConstantSpec(7, INT, strict=True))


class TestFunctionPreservation:
    def test_neg_preserved_by_its_own_graph(self):
        sig = standard_signature()
        # h(x) = -x on a symmetric domain commutes with negation.
        h = mapping({(x, -x) for x in range(-2, 3)})
        fam = MappingFamily({"int": h})
        assert preserves_function(fam, sig["neg"])

    def test_succ_not_preserved_by_partial_shift(self):
        # A finite shift cannot preserve succ: the domain is not closed
        # under the function, so some related pair's successors fall
        # outside the mapping.
        sig = standard_signature()
        h = mapping({(x, x + 100) for x in range(4)})
        fam = MappingFamily({"int": h})
        assert not preserves_function(fam, sig["succ"])

    def test_succ_broken_by_reversal(self):
        sig = standard_signature()
        h = mapping({(0, 3), (1, 2), (2, 1), (3, 0)})
        fam = MappingFamily({"int": h})
        assert not preserves_function(fam, sig["succ"])


class TestPredicatePreservation:
    def test_even_preserved_by_parity_preserving_map(self):
        sig = standard_signature()
        h = mapping({(0, 2), (1, 3), (2, 4)})
        fam = MappingFamily({"int": h})
        assert preserves_predicate(fam, sig["even"])

    def test_even_broken_by_parity_flip(self):
        sig = standard_signature()
        h = mapping({(0, 1)})
        fam = MappingFamily({"int": h})
        assert not preserves_predicate(fam, sig["even"])

    def test_prop_2_13_negation_symmetry(self):
        # Preserving p iff preserving not-p (Prop 2.13).
        sig = standard_signature()
        odd = sig.add_symbol("odd", (INT,), BOOL, lambda x: x % 2 != 0)
        for pairs in [
            {(0, 2), (1, 3)},
            {(0, 1)},
            {(0, 0), (1, 0)},
        ]:
            fam = MappingFamily({"int": mapping(pairs)})
            assert preserves_predicate(fam, sig["even"]) == preserves_predicate(
                fam, odd
            )

    def test_binary_predicate(self):
        sig = standard_signature()
        # Order-preserving shift preserves lt.
        h = mapping({(x, x + 100) for x in range(4)})
        fam = MappingFamily({"int": h})
        assert preserves_predicate(fam, sig["lt"])
        # Order-reversing map does not.
        rev = mapping({(x, 10 - x) for x in range(4)})
        fam2 = MappingFamily({"int": rev})
        assert not preserves_predicate(fam2, sig["lt"])

    def test_non_predicate_rejected(self):
        sig = standard_signature()
        fam = MappingFamily({"int": mapping({(0, 0)})})
        with pytest.raises(ValueError):
            preserves_predicate(fam, sig["succ"])

    def test_equality_preserved_only_by_injective(self):
        # "only injective mappings preserve equality" (Section 2.5).
        sig = standard_signature()
        injective = MappingFamily({"int": mapping({(0, 10), (1, 11)})})
        collapsing = MappingFamily({"int": mapping({(0, 10), (1, 10)})})
        assert preserves_predicate(injective, sig["eq_int"])
        assert not preserves_predicate(collapsing, sig["eq_int"])
