"""Tests for schema constraints and injectivity reasoning."""


from repro.optimizer.constraints import (
    Catalog,
    RelationInfo,
    base_relations,
    check_key_on_instance,
    projection_injective_on,
)
from repro.optimizer.plan import Difference, Project, Scan, Select
from repro.types.values import cvset, tup


def hr_catalog() -> Catalog:
    shared = {(0,): "ssn"}
    return Catalog(
        [
            RelationInfo("employees", 3, keys=((0,),), shared_keys=shared),
            RelationInfo("students", 3, keys=((0,),), shared_keys=shared),
            RelationInfo("contractors", 3),
            RelationInfo("badges", 2, keys=((0,),),
                         shared_keys={(0,): "badge"}),
        ]
    )


class TestCatalog:
    def test_key_for(self):
        cat = hr_catalog()
        assert cat.key_for("employees", (0,))
        assert cat.key_for("employees", (0, 1))  # superset of a key
        assert not cat.key_for("employees", (1,))
        assert not cat.key_for("contractors", (0,))
        assert not cat.key_for("ghost", (0,))

    def test_shared_key_group(self):
        cat = hr_catalog()
        assert cat.shared_key_group("employees", (0,)) == "ssn"
        assert cat.shared_key_group("badges", (0,)) == "badge"
        assert cat.shared_key_group("contractors", (0,)) is None


class TestBaseRelations:
    def test_collects_scans(self):
        plan = Project((0,), Difference(Scan("employees"), Scan("students")))
        assert base_relations(plan) == {"employees", "students"}

    def test_single_scan(self):
        assert base_relations(Scan("x")) == {"x"}


class TestProjectionInjectivity:
    def test_same_group_accepted(self):
        cat = hr_catalog()
        assert projection_injective_on(
            cat, (Scan("employees"), Scan("students")), (0,)
        )

    def test_missing_key_rejected(self):
        cat = hr_catalog()
        assert not projection_injective_on(
            cat, (Scan("employees"), Scan("contractors")), (0,)
        )

    def test_different_groups_rejected(self):
        # Both relations have keys on column 1 but in *different*
        # groups: a ssn and a badge id may collide across relations.
        cat = hr_catalog()
        assert not projection_injective_on(
            cat, (Scan("employees"), Scan("badges")), (0,)
        )

    def test_selection_passes_columns_through(self):
        cat = hr_catalog()
        plan = Select("p", lambda t: True, Scan("employees"))
        assert projection_injective_on(cat, (plan, Scan("students")), (0,))

    def test_projection_blocks_column_tracking(self):
        cat = hr_catalog()
        shuffled = Project((1, 0), Scan("employees"))
        assert not projection_injective_on(
            cat, (shuffled, Scan("students")), (0,)
        )


class TestInstanceKeys:
    def test_key_holds(self):
        r = cvset(tup(1, "a"), tup(2, "a"))
        assert check_key_on_instance(r, (0,))

    def test_key_violated(self):
        r = cvset(tup(1, "a"), tup(1, "b"))
        assert not check_key_on_instance(r, (0,))

    def test_composite_key(self):
        r = cvset(tup(1, "a", "x"), tup(1, "b", "y"))
        assert check_key_on_instance(r, (0, 1))
