"""Tests for cardinality estimation and cost-based plan choice."""

import pytest

from repro.optimizer.cost import Stats, choose_plan, estimate
from repro.optimizer.parser import parse_plan
from repro.optimizer.plan import (
    Difference,
    Join,
    MapNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)


@pytest.fixture()
def db(hr_db):
    return hr_db(seed=0, employees=40, students=25, overlap=8)


@pytest.fixture()
def stats(db):
    return Stats.of_database(db.snapshot())


class TestStats:
    def test_of_database(self, stats):
        assert stats.rows["employees"] == 40
        assert stats.widths["employees"] == 3

    def test_missing_relation_defaults(self):
        s = Stats()
        e = estimate(Scan("ghost"), s)
        assert e.rows == 0


class TestEstimates:
    def test_scan(self, stats):
        e = estimate(Scan("employees"), stats)
        assert e.rows == 40
        assert e.width == 3
        assert e.work == 0

    def test_project_narrows(self, stats):
        e = estimate(Project((0,), Scan("employees")), stats)
        assert e.width == 1
        assert e.work == 40 * 3

    def test_union_adds(self, stats):
        e = estimate(Union(Scan("employees"), Scan("students")), stats)
        assert e.rows == 65

    def test_select_reduces_rows(self, stats):
        e = estimate(Select("p", lambda t: True, Scan("employees")), stats)
        assert e.rows < 40

    def test_product_multiplies(self, stats):
        e = estimate(Product(Scan("employees"), Scan("students")), stats)
        assert e.rows == 40 * 25
        assert e.width == 6

    def test_difference_and_intersect(self, stats):
        d = estimate(Difference(Scan("employees"), Scan("students")), stats)
        assert 0 < d.rows <= 40
        i = estimate(
            __import__("repro.optimizer.plan", fromlist=["Intersect"]).Intersect(
                Scan("employees"), Scan("students")
            ),
            stats,
        )
        assert i.rows <= 25

    def test_map_preserves_rows(self, stats):
        e = estimate(
            MapNode("f", lambda t: t, Scan("employees")), stats
        )
        assert e.rows == 40

    def test_join_estimate(self, stats):
        e = estimate(Join(((0, 0),), Scan("employees"), Scan("students")), stats)
        assert e.rows > 0
        assert e.width == 6


class TestChoosePlan:
    def test_keeps_cheaper_rewrite(self, db, stats):
        plan = parse_plan("pi[1](employees - students)")
        chosen, before, after = choose_plan(plan, db.catalog, stats)
        assert after.work <= before.work
        assert chosen != plan  # the rewrite is estimated cheaper here

    def test_estimated_matches_measured_direction(self, db, stats):
        # The estimate and the executor must agree on which plan wins.
        plan = parse_plan("pi[1](employees U students)")
        chosen, before, after = choose_plan(plan, db.catalog, stats)
        from repro.optimizer.rewriter import Rewriter

        rewritten = Rewriter(db.catalog).optimize(plan)
        measured_before = db.run(plan).work
        measured_after = db.run(rewritten).work
        estimated_says_rewrite = after.work <= before.work
        measured_says_rewrite = measured_after <= measured_before
        assert estimated_says_rewrite == measured_says_rewrite

    def test_no_rewrite_is_identity(self, db, stats):
        plan = Scan("employees")
        chosen, before, after = choose_plan(plan, db.catalog, stats)
        assert chosen == plan
        assert before.work == after.work
