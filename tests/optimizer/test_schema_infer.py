"""Tests for plan schema inference."""

import pytest

from repro.optimizer.constraints import Catalog, RelationInfo
from repro.optimizer.parser import parse_plan
from repro.optimizer.plan import (
    Difference,
    Join,
    MapNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.optimizer.schema_infer import (
    SchemaInferenceError,
    infer_arity,
    plan_type,
    validate_plan,
)
from repro.types.values import Tup


@pytest.fixture()
def catalog():
    return Catalog([
        RelationInfo("r", 2),
        RelationInfo("s", 2),
        RelationInfo("t", 3),
    ])


class TestInference:
    def test_scan(self, catalog):
        assert infer_arity(Scan("t"), catalog) == 3

    def test_unknown_relation(self, catalog):
        with pytest.raises(SchemaInferenceError):
            infer_arity(Scan("ghost"), catalog)

    def test_projection_narrows(self, catalog):
        assert infer_arity(Project((0,), Scan("t")), catalog) == 1
        assert infer_arity(Project((2, 0), Scan("t")), catalog) == 2

    def test_projection_out_of_range(self, catalog):
        with pytest.raises(SchemaInferenceError):
            infer_arity(Project((3,), Scan("t")), catalog)

    def test_nested_projection_mismatch_caught(self, catalog):
        # The plan the rewriter property test surfaced: outer projects a
        # column the inner projection removed.
        plan = Project((1,), Project((0,), Scan("r")))
        with pytest.raises(SchemaInferenceError):
            infer_arity(plan, catalog)

    def test_union_compatibility(self, catalog):
        assert infer_arity(Union(Scan("r"), Scan("s")), catalog) == 2
        with pytest.raises(SchemaInferenceError):
            infer_arity(Union(Scan("r"), Scan("t")), catalog)

    def test_difference_compatibility(self, catalog):
        with pytest.raises(SchemaInferenceError):
            infer_arity(Difference(Scan("t"), Scan("r")), catalog)

    def test_product_adds(self, catalog):
        assert infer_arity(Product(Scan("r"), Scan("t")), catalog) == 5

    def test_join_bounds(self, catalog):
        assert infer_arity(Join(((1, 0),), Scan("r"), Scan("t")), catalog) == 5
        with pytest.raises(SchemaInferenceError):
            infer_arity(Join(((2, 0),), Scan("r"), Scan("t")), catalog)

    def test_select_transparent(self, catalog):
        plan = Select("p", lambda t: True, Scan("t"))
        assert infer_arity(plan, catalog) == 3

    def test_map_passes_child_through(self, catalog):
        plan = MapNode("f", lambda t: Tup((t[0],)), Scan("t"))
        assert infer_arity(plan, catalog) == 3


class TestPlanType:
    def test_shape(self, catalog):
        t = plan_type(Project((0,), Scan("t")), catalog)
        assert str(t) == "{X}"
        t2 = plan_type(Scan("r"), catalog)
        assert str(t2) == "{X * X}"


class TestValidate:
    def test_good_plan(self, catalog):
        assert validate_plan(parse_plan("pi[1](r - s)"), catalog)

    def test_bad_plan(self, catalog):
        assert not validate_plan(parse_plan("pi[3](r)"), catalog)
        assert not validate_plan(parse_plan("r U t"), catalog)
