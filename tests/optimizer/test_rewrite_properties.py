"""Property-based tests for the rewriter.

Two global invariants over randomly generated plans:

* **semantic**: the optimized plan agrees with the original on random
  databases (the rewrites' soundness, beyond the hand-picked cases);
* **static-profile preservation**: rewriting only rearranges operators,
  so the closure-theorem genericity guarantee of the plan is unchanged
  — optimization never trades away a genericity property.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine.workload import hr_database
from repro.genericity.static_analysis import analyze_plan
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Project,
    Scan,
    Union,
    execute,
)
from repro.optimizer.rewriter import Rewriter

relation_names = st.sampled_from(["employees", "students", "contractors"])

plans = st.recursive(
    st.builds(Scan, relation_names),
    lambda children: st.one_of(
        st.builds(Union, children, children),
        st.builds(Difference, children, children),
        st.builds(Intersect, children, children),
        st.builds(
            Project,
            st.lists(
                st.integers(min_value=0, max_value=2),
                min_size=1,
                max_size=2,
                unique=True,
            ).map(tuple),
            children,
        ),
    ),
    max_leaves=5,
)


class TestRewriterProperties:
    @given(plans)
    @settings(max_examples=120, deadline=None)
    def test_rewrites_preserve_answers(self, plan):
        db = hr_database(random.Random(1), employees=8, students=5,
                         overlap=2)
        rewriter = Rewriter(db.catalog)
        optimized = rewriter.optimize(plan)
        for seed in range(3):
            snapshot = hr_database(
                random.Random(seed), employees=4 + seed, students=3,
                overlap=seed,
            ).snapshot()
            try:
                want = execute(plan, snapshot).value
            except (IndexError, TypeError):
                # Generated plans may project columns a previous
                # projection removed; whether that raises depends on
                # the snapshot's contents (an empty intermediate never
                # indexes), so the executability check must be made
                # per-snapshot — a one-time probe db misclassifies.
                continue
            assert want == execute(optimized, snapshot).value

    @given(plans)
    @settings(max_examples=120, deadline=None)
    def test_rewrites_preserve_static_profile(self, plan):
        db = hr_database(random.Random(2), employees=4, students=3)
        optimized = Rewriter(db.catalog).optimize(plan)
        assert analyze_plan(optimized) == analyze_plan(plan)

    @given(plans)
    @settings(max_examples=60, deadline=None)
    def test_optimize_is_idempotent(self, plan):
        db = hr_database(random.Random(3), employees=4, students=3)
        rewriter = Rewriter(db.catalog)
        once = rewriter.optimize(plan)
        twice = Rewriter(db.catalog).optimize(once)
        assert once == twice
