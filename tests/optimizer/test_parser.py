"""Tests for the plan parser."""

import pytest

from repro.optimizer.parser import PlanParseError, parse_plan
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Product,
    Project,
    Scan,
    Union,
    execute,
)
from repro.types.values import cvset, tup


DB = {
    "r": cvset(tup(1, 2), tup(2, 2), tup(3, 4)),
    "s": cvset(tup(1, 2)),
}


class TestStructure:
    def test_scan(self):
        assert parse_plan("employees") == Scan("employees")

    def test_projection_one_based(self):
        assert parse_plan("pi[1](r)") == Project((0,), Scan("r"))
        assert parse_plan("pi[2,1](r)") == Project((1, 0), Scan("r"))

    def test_binary_operators(self):
        assert parse_plan("r U s") == Union(Scan("r"), Scan("s"))
        assert parse_plan("r - s") == Difference(Scan("r"), Scan("s"))
        assert parse_plan("r & s") == Intersect(Scan("r"), Scan("s"))
        assert parse_plan("r x s") == Product(Scan("r"), Scan("s"))

    def test_left_associativity(self):
        plan = parse_plan("r - s - t")
        assert plan == Difference(Difference(Scan("r"), Scan("s")), Scan("t"))

    def test_parentheses(self):
        plan = parse_plan("r - (s - t)")
        assert plan == Difference(Scan("r"), Difference(Scan("s"), Scan("t")))

    def test_nested(self):
        plan = parse_plan("pi[1](pi[1,2](r U s))")
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Project)


class TestSelections:
    def test_column_vs_literal(self):
        plan = parse_plan("sigma[$1=2](r)")
        out = execute(plan, DB).value
        assert out == cvset(tup(2, 2))

    def test_column_vs_column(self):
        plan = parse_plan("sigma[$1=$2](r)")
        assert execute(plan, DB).value == cvset(tup(2, 2))

    def test_comparators(self):
        assert execute(parse_plan("sigma[$1>2](r)"), DB).value == cvset(tup(3, 4))
        assert execute(parse_plan("sigma[$1<2](r)"), DB).value == cvset(tup(1, 2))

    def test_string_literal(self):
        db = {"t": cvset(tup("a", 1), tup("b", 2))}
        assert execute(parse_plan("sigma[$1='a'](t)"), db).value == cvset(tup("a", 1))


class TestErrors:
    def test_zero_column_rejected(self):
        with pytest.raises(PlanParseError):
            parse_plan("pi[0](r)")
        with pytest.raises(PlanParseError):
            parse_plan("sigma[$0=1](r)")

    def test_trailing_garbage(self):
        with pytest.raises(PlanParseError):
            parse_plan("r s")

    def test_bad_character(self):
        with pytest.raises(PlanParseError):
            parse_plan("r ? s")

    def test_missing_paren(self):
        with pytest.raises(PlanParseError):
            parse_plan("pi[1](r")


class TestRoundtripWithRewriter:
    def test_parsed_plan_optimizes(self):
        import random

        from repro.engine.workload import hr_database
        from repro.optimizer.rewriter import Rewriter

        db = hr_database(random.Random(0), employees=10, students=6, overlap=2)
        plan = parse_plan("pi[1](employees - students)")
        optimized = Rewriter(db.catalog).optimize(plan)
        assert db.run(plan).value == db.run(optimized).value
