"""Tests for rules and the rewriter (Section 4.4)."""

import random

import pytest

from repro.optimizer.plan import (
    Difference,
    Intersect,
    MapNode,
    Project,
    Scan,
    Select,
    Union,
)
from repro.optimizer.rewriter import Rewriter, verify_equivalence
from repro.types.values import Tup


@pytest.fixture()
def db(hr_db):
    return hr_db(seed=0, employees=12, students=8, overlap=3)


def optimize(plan, catalog):
    rewriter = Rewriter(catalog)
    return rewriter.optimize(plan), rewriter


class TestRuleFiring:
    def test_map_through_union(self, db):
        plan = MapNode("f", lambda t: Tup((t[0],)),
                       Union(Scan("employees"), Scan("students")))
        optimized, rw = optimize(plan, db.catalog)
        assert isinstance(optimized, Union)
        assert isinstance(optimized.left, MapNode)
        assert any(t.rule.name == "push-map-through-union" for t in rw.trace)

    def test_project_through_union(self, db):
        plan = Project((0,), Union(Scan("employees"), Scan("students")))
        optimized, _rw = optimize(plan, db.catalog)
        assert isinstance(optimized, Union)

    def test_project_through_diff_with_key(self, db):
        plan = Project((0,), Difference(Scan("employees"), Scan("students")))
        optimized, rw = optimize(plan, db.catalog)
        assert isinstance(optimized, Difference)
        assert any(
            "difference" in t.rule.name for t in rw.trace
        )

    def test_project_through_diff_without_key_blocked(self, db):
        plan = Project((0,), Difference(Scan("employees"), Scan("contractors")))
        optimized, rw = optimize(plan, db.catalog)
        assert optimized == plan
        assert not rw.trace

    def test_project_through_intersect_with_key(self, db):
        plan = Project((0,), Intersect(Scan("employees"), Scan("students")))
        optimized, _rw = optimize(plan, db.catalog)
        assert isinstance(optimized, Intersect)

    def test_injective_map_through_difference(self, db):
        plan = MapNode(
            "tag", lambda t: Tup(("#", *t)),
            Difference(Scan("employees"), Scan("students")),
            injective=True,
        )
        optimized, _rw = optimize(plan, db.catalog)
        assert isinstance(optimized, Difference)

    def test_noninjective_map_through_difference_blocked(self, db):
        plan = MapNode(
            "collapse", lambda t: Tup((0,)),
            Difference(Scan("employees"), Scan("students")),
            injective=False,
        )
        optimized, _rw = optimize(plan, db.catalog)
        assert optimized == plan

    def test_select_through_union(self, db):
        plan = Select("p", lambda t: True,
                      Union(Scan("employees"), Scan("students")))
        optimized, _rw = optimize(plan, db.catalog)
        assert isinstance(optimized, Union)
        assert isinstance(optimized.left, Select)

    def test_fuse_projections(self, db):
        plan = Project((0,), Project((0, 1), Scan("employees")))
        optimized, _rw = optimize(plan, db.catalog)
        assert optimized == Project((0,), Scan("employees"))

    def test_nested_opportunities_found(self, db):
        # Projection above a union above another union: both pushed.
        plan = Project(
            (0,),
            Union(
                Union(Scan("employees"), Scan("students")),
                Scan("contractors"),
            ),
        )
        optimized, rw = optimize(plan, db.catalog)
        assert isinstance(optimized, Union)
        assert len(rw.trace) >= 2

    def test_explain_mentions_justifications(self, db):
        plan = Project((0,), Union(Scan("employees"), Scan("students")))
        _optimized, rw = optimize(plan, db.catalog)
        explanation = "\n".join(rw.explain())
        assert "parametricity" in explanation


class TestEquivalence:
    def test_all_fired_rewrites_preserve_answers(self, db, hr_db):
        keyed = [
            hr_db(seed=s, employees=6 + s, students=5,
                  overlap=2).snapshot()
            for s in range(8)
        ]
        plans = [
            Project((0,), Union(Scan("employees"), Scan("students"))),
            Project((0,), Difference(Scan("employees"), Scan("students"))),
            MapNode("w", lambda t: Tup((t[1],)),
                    Union(Scan("employees"), Scan("students"))),
            Select("p", lambda t: t[0] % 2 == 0,
                   Union(Scan("employees"), Scan("students"))),
        ]
        for plan in plans:
            optimized, _rw = optimize(plan, db.catalog)
            assert verify_equivalence(plan, optimized, keyed) is None

    def test_verify_equivalence_catches_difference(self, random_db):
        a = Scan("R")
        b = Project((0, 1), Difference(Scan("R"), Scan("S")))
        dbs = [random_db(seed, names=("R", "S")) for seed in range(20)]
        assert verify_equivalence(a, b, dbs) is not None

    def test_verify_equivalence_accepts_identical(self, random_db):
        dbs = [random_db(seed, names=("R",)) for seed in range(5)]
        assert verify_equivalence(Scan("R"), Scan("R"), dbs) is None


class TestTrace:
    def test_trace_records_before_after(self, db):
        plan = Project((0,), Union(Scan("employees"), Scan("students")))
        _optimized, rw = optimize(plan, db.catalog)
        assert rw.trace
        trace = rw.trace[0]
        assert "=>" in str(trace)
        assert trace.before != trace.after
