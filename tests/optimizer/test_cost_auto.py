"""Cost-driven adaptive mode choice (``Database.run(mode="auto")``).

Pins the PR-6 cost-model surface: live-catalog statistics
(``Stats.from_database`` with real cardinalities and per-column
distinct counts), selectivity clamping on degenerate catalogs,
``choose_mode`` scoring, the database-side decision memo and its
invalidation on mutation, and the EXPLAIN/tracing surfacing of the
decision.
"""

import random

from repro.engine.database import Database
from repro.engine.exec import MAX_PIPELINE_DEPTH
from repro.engine.workload import deep_chain_plan
from repro.obs import explain
from repro.obs.trace import Tracer
from repro.optimizer.cost import (
    MODE_COST,
    Stats,
    _clamp_selectivity,
    choose_mode,
    estimate,
)
from repro.optimizer.plan import (
    Difference,
    Join,
    Project,
    Scan,
    Union,
)
from repro.types.values import CVSet, Tup


import pytest


@pytest.fixture()
def hr(hr_db):
    """The file's HR workload shape, any size: seed 3, 2:1:0.25 ratio."""
    def make(size=40):
        return hr_db(seed=3, employees=size, students=size // 2,
                     overlap=size // 4)
    return make


HR_PLAN = Project((0,), Difference(Scan("employees"), Scan("students")))


class TestStatsFromDatabase:
    def test_real_cardinalities_and_widths(self):
        db = Database()
        db.create("r", 3)
        db.insert("r", [(i, i % 2, str(i)) for i in range(7)])
        stats = Stats.from_database(db)
        assert stats.rows["r"] == 7
        assert stats.widths["r"] == 3

    def test_per_column_distincts(self):
        db = Database()
        db.create("r", 2)
        db.insert("r", [(i, i % 3) for i in range(9)])
        stats = Stats.from_database(db)
        assert stats.distincts["r"] == {0: 9, 1: 3}

    def test_atom_rows_skipped_in_distincts(self):
        db = Database()
        db.create("r", 1)
        db["r"] = CVSet({Tup((1,)), Tup((2,)), "atom"})
        stats = Stats.from_database(db)
        assert stats.rows["r"] == 3
        assert stats.widths["r"] >= 1
        assert stats.distincts["r"].get(0, 0) <= 3

    def test_empty_relation_keeps_sane_floors(self):
        db = Database()
        db.create("empty", 2)
        stats = Stats.from_database(db)
        assert stats.rows["empty"] == 0
        assert stats.widths["empty"] >= 1
        est = estimate(Scan("empty"), stats)
        assert est.rows == 0 and est.width >= 1

    def test_distincts_feed_join_estimates(self):
        """With measured distinct counts the equi-join estimate uses
        1/max(d_l, d_r) instead of the one-match-per-row guess."""
        db = Database()
        db.create("l", 2)
        db.insert("l", [(i % 4, i) for i in range(16)])
        db.create("r", 2)
        db.insert("r", [(i % 4, i) for i in range(8)])
        stats = Stats.from_database(db)
        with_d = estimate(Join(((0, 0),), Scan("l"), Scan("r")), stats)
        without = estimate(
            Join(((0, 0),), Scan("l"), Scan("r")),
            Stats(dict(stats.rows), dict(stats.widths)),
        )
        # 16*8/4 = 32 matching pairs vs the heuristic's 16.
        assert with_d.rows > without.rows


class TestSelectivityClamp:
    def test_clamps_zero_negative_and_nan(self):
        assert _clamp_selectivity(0.0) == 1e-6
        assert _clamp_selectivity(-3.0) == 1e-6
        assert _clamp_selectivity(float("nan")) == 1e-6

    def test_clamps_above_one(self):
        assert _clamp_selectivity(7.5) == 1.0

    def test_passes_normal_values(self):
        assert _clamp_selectivity(0.33) == 0.33

    def test_degenerate_catalog_never_negative(self):
        """All-empty stats still estimate finite non-negative work."""
        stats = Stats({"r": 0, "s": 0}, {"r": 1, "s": 1})
        plan = Difference(Union(Scan("r"), Scan("s")), Scan("r"))
        est = estimate(plan, stats)
        assert est.rows >= 0 and est.work >= 0


class TestChooseMode:
    def test_tiny_plans_stay_on_the_reference_interpreter(self):
        """Zero-work plans cannot amortize any fixed overhead."""
        stats = Stats({"r": 1}, {"r": 1})
        decision = choose_mode(Scan("r"), stats)
        assert decision.mode == "reference"

    def test_large_plans_choose_compiled(self):
        stats = Stats({"r": 100_000, "s": 50_000}, {"r": 2, "s": 2})
        plan = Project((0,), Difference(Scan("r"), Scan("s")))
        decision = choose_mode(plan, stats)
        assert decision.mode == "compiled"

    def test_scores_cover_every_candidate(self):
        stats = Stats({"r": 100}, {"r": 2})
        decision = choose_mode(Project((0,), Scan("r")), stats)
        # "sharded" is costed but not a default candidate: the caller
        # (``Database.plan_mode``) must gate it on partitionability
        # before offering it.
        assert set(decision.scores) == set(MODE_COST) - {"sharded"}
        assert decision.scores[decision.mode] == min(
            decision.scores.values()
        )

    def test_candidate_restriction_is_honored(self):
        stats = Stats({"r": 100_000}, {"r": 2})
        plan = Project((0,), Scan("r"))
        decision = choose_mode(
            plan, stats, candidates=("reference", "stream", "batch")
        )
        assert decision.mode != "compiled"
        assert "compiled" not in decision.scores

    def test_empty_candidates_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="candidate"):
            choose_mode(Scan("r"), Stats(), candidates=())

    def test_to_dict_round_trips_the_decision(self):
        stats = Stats({"r": 100}, {"r": 2})
        decision = choose_mode(Project((0,), Scan("r")), stats)
        d = decision.to_dict()
        assert d["mode"] == decision.mode
        assert set(d["scores"]) == set(decision.scores)


class TestDatabaseAuto:
    def test_auto_matches_reference_results(self, hr):
        db = hr()
        auto = db.run(HR_PLAN, use_cache=False, mode="auto")
        reference = db.run_reference(HR_PLAN)
        assert auto.value == reference.value
        assert auto.work == reference.work
        assert auto.per_node == reference.per_node

    def test_deep_plans_never_choose_compiled(self):
        db = Database()
        db.create("r", 2)
        db.insert("r", [(i, i) for i in range(500)])
        plan = deep_chain_plan(random.Random(5), "r", 1000)
        decision = db.plan_mode(plan)
        assert decision.mode != "compiled"
        assert "compiled" not in decision.scores
        result = db.run(plan, use_cache=False, mode="auto")
        reference = db.run_reference(plan)
        assert result.value == reference.value

    def test_shallow_plan_keeps_compiled_candidate(self, hr):
        db = hr()
        assert "compiled" in db.plan_mode(HR_PLAN).scores
        assert (
            deep_chain_plan(random.Random(5), "employees", 1000).children
        )  # sanity: the deep plan above really was the deep case
        assert MAX_PIPELINE_DEPTH < 1000

    def test_decision_memoized_per_generation(self, hr):
        db = hr()
        first = db.plan_mode(HR_PLAN)
        assert db.plan_mode(HR_PLAN) is first  # memo hit
        db.insert("employees", [(999_001, "zz", 9)])
        second = db.plan_mode(HR_PLAN)
        assert second is not first  # mutation invalidated the memo

    def test_current_stats_memoized_per_generation(self, hr):
        db = hr()
        first = db.current_stats()
        assert db.current_stats() is first
        db.insert("employees", [(999_002, "zz", 9)])
        second = db.current_stats()
        assert second is not first
        assert (
            second.rows["employees"] == first.rows["employees"] + 1
        )

    def test_tracer_surfaces_the_decision(self, hr):
        db = hr()
        tracer = Tracer()
        db.run(HR_PLAN, use_cache=False, mode="auto", tracer=tracer)
        meta = tracer.last.meta
        assert meta is not None and "auto" in meta
        assert meta["auto"]["mode"] in MODE_COST
        assert set(meta["auto"]["scores"]) <= set(MODE_COST)


class TestExplainAutoAndCompiled:
    def test_explain_compiled_mode(self, hr):
        db = hr()
        report = explain(HR_PLAN, db, mode="compiled", use_cache=False)
        reference = db.run_reference(HR_PLAN)
        assert report.rows == len(reference.value)
        assert report.work == reference.work
        assert report.decision is None

    def test_explain_auto_carries_decision(self, hr):
        db = hr()
        report = explain(HR_PLAN, db, mode="auto", use_cache=False)
        assert report.mode == "auto"
        assert report.decision is not None
        assert report.decision["mode"] in MODE_COST
        rendered = report.render()
        assert "auto: chose" in rendered
        assert report.to_dict()["decision"] == report.decision

    def test_explain_auto_on_plain_mapping(self, hr):
        """No Database attached: the decision is derived from a
        snapshot ``Stats`` instead of ``plan_mode``."""
        db = hr()
        report = explain(HR_PLAN, db.relations, mode="auto")
        assert report.decision is not None
        reference = db.run_reference(HR_PLAN)
        assert report.work == reference.work
