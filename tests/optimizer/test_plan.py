"""Tests for the plan IR and its work-counting interpreter."""

import pytest

from repro.optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
    execute,
)
from repro.types.values import CVSet, Tup, cvset, tup


DB = {
    "R": cvset(tup(1, "a"), tup(2, "b"), tup(3, "a")),
    "S": cvset(tup(1, "a"), tup(4, "c")),
    "T": cvset(tup("a", 10), tup("b", 20)),
}


class TestEvaluation:
    def test_scan(self):
        assert execute(Scan("R"), DB).value == DB["R"]

    def test_scan_missing_relation_empty(self):
        assert execute(Scan("missing"), DB).value == CVSet()

    def test_project(self):
        out = execute(Project((1,), Scan("R")), DB).value
        assert out == cvset(tup("a"), tup("b"))

    def test_select(self):
        plan = Select("first>1", lambda t: t[0] > 1, Scan("R"))
        assert execute(plan, DB).value == cvset(tup(2, "b"), tup(3, "a"))

    def test_union(self):
        out = execute(Union(Scan("R"), Scan("S")), DB).value
        assert len(out) == 4

    def test_difference(self):
        out = execute(Difference(Scan("R"), Scan("S")), DB).value
        assert out == cvset(tup(2, "b"), tup(3, "a"))

    def test_intersect(self):
        out = execute(Intersect(Scan("R"), Scan("S")), DB).value
        assert out == cvset(tup(1, "a"))

    def test_product_concatenates(self):
        out = execute(Product(Scan("S"), Scan("S")), DB).value
        assert tup(1, "a", 4, "c") in out
        assert len(out) == 4

    def test_join(self):
        plan = Join(((1, 0),), Scan("R"), Scan("T"))
        out = execute(plan, DB).value
        assert tup(1, "a", "a", 10) in out
        assert tup(2, "b", "b", 20) in out
        assert len(out) == 3

    def test_join_no_columns_is_product(self):
        plan = Join((), Scan("S"), Scan("S"))
        assert len(execute(plan, DB).value) == 4

    def test_map(self):
        plan = MapNode("swap", lambda t: Tup((t[1], t[0])), Scan("S"))
        assert execute(plan, DB).value == cvset(tup("a", 1), tup("c", 4))

    def test_unknown_node_rejected(self):
        class Rogue(Plan):
            pass

        with pytest.raises(TypeError):
            execute(Rogue(), DB)


class TestWorkAccounting:
    def test_scan_free(self):
        assert execute(Scan("R"), DB).work == 0

    def test_project_pays_input_width(self):
        result = execute(Project((0,), Scan("R")), DB)
        assert result.work == 6  # 3 tuples x width 2

    def test_narrower_inputs_cheaper_downstream(self):
        wide = execute(Union(Scan("R"), Scan("S")), DB).work
        narrow = execute(
            Union(Project((0,), Scan("R")), Project((0,), Scan("S"))), DB
        ).work
        # Union over width-1 inputs costs less than over width-2 even
        # after paying for the projections' input scans... verify the
        # union component specifically.
        result = execute(
            Union(Project((0,), Scan("R")), Project((0,), Scan("S"))), DB
        )
        union_work = dict(result.per_node)["union"]
        assert union_work < wide

    def test_per_node_log(self):
        result = execute(Project((0,), Union(Scan("R"), Scan("S"))), DB)
        names = [name for name, _ in result.per_node]
        assert "union" in names
        assert any(name.startswith("pi") for name in names)


class TestStructure:
    def test_with_children_rebuilds(self):
        plan = Union(Scan("R"), Scan("S"))
        rebuilt = plan.with_children((Scan("S"), Scan("R")))
        assert rebuilt == Union(Scan("S"), Scan("R"))

    def test_scan_refuses_children(self):
        with pytest.raises(ValueError):
            Scan("R").with_children((Scan("S"),))

    def test_str_rendering(self):
        plan = Project((0,), Difference(Scan("R"), Scan("S")))
        assert str(plan) == "pi[1]((R - S))"
