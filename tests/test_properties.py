"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's algebraic laws as universally quantified
properties over randomly generated mappings, values and plans.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.algebra.fixpoint import transitive_closure
from repro.algebra.operators import projection
from repro.listset.analogy import deep_fromset, deep_toset
from repro.listset.transfer import lemma_4_6_part1, lemma_4_6_part2
from repro.mappings.extensions import ListRel, SetRelExt, SetStrongExt
from repro.mappings.mapping import Mapping
from repro.types.ast import INT, list_of
from repro.types.values import CVList, CVSet, Tup, map_atoms

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

atoms = st.integers(min_value=0, max_value=3)
right_atoms = st.integers(min_value=10, max_value=13)

pairs = st.frozensets(st.tuples(atoms, right_atoms), min_size=1, max_size=8)


@st.composite
def mappings(draw):
    return Mapping(draw(pairs), INT, INT)


@st.composite
def second_stage_mappings(draw):
    pair_set = draw(
        st.frozensets(
            st.tuples(right_atoms, st.integers(min_value=20, max_value=23)),
            min_size=1,
            max_size=8,
        )
    )
    return Mapping(pair_set, INT, INT)


small_sets = st.frozensets(atoms, max_size=4).map(CVSet)
right_sets = st.frozensets(right_atoms, max_size=4).map(CVSet)
small_lists = st.lists(atoms, max_size=4).map(CVList)

nested_values = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.frozensets(children, max_size=3).map(CVSet),
        st.lists(children, max_size=3).map(CVList),
        st.tuples(children, children).map(Tup),
    ),
    max_leaves=6,
)


# ---------------------------------------------------------------------------
# Proposition 2.8 and friends
# ---------------------------------------------------------------------------

class TestExtensionLaws:
    @given(mappings(), small_sets, right_sets)
    @settings(max_examples=80)
    def test_inverse_law(self, h, s1, s2):
        # Prop 2.8(iv): {H^-1}^x = ({H}^x)^-1 for both modes.
        for ext in (SetRelExt, SetStrongExt):
            forward = ext(h)
            backward = ext(h.inverse())
            assert forward.holds(s1, s2) == backward.holds(s2, s1)

    @given(mappings(), small_sets, right_sets)
    @settings(max_examples=80)
    def test_strong_implies_rel(self, h, s1, s2):
        if SetStrongExt(h).holds(s1, s2):
            assert SetRelExt(h).holds(s1, s2)

    @given(mappings(), second_stage_mappings(), small_sets)
    @settings(max_examples=60)
    def test_composition_soundness(self, h1, h2, s1):
        # One direction of Prop 2.8(iii): going through a middle set
        # under the member extensions lands in the composed extension.
        composed = SetRelExt(h1.compose(h2))
        rel1, rel2 = SetRelExt(h1), SetRelExt(h2)
        mid_candidates = [CVSet(c) for c in _subsets(h1.codomain())]
        for mid in mid_candidates:
            for s3 in (CVSet(c) for c in _subsets(h2.codomain())):
                if rel1.holds(s1, mid) and rel2.holds(mid, s3):
                    assert composed.holds(s1, s3)

    @given(mappings(), small_sets)
    @settings(max_examples=80)
    def test_strong_image_unique_and_valid(self, h, s1):
        # Prop 2.8(ii): at most one strong image, and it validates.
        strong = SetStrongExt(h)
        images = list(strong.images(s1))
        assert len(images) <= 1
        for image in images:
            assert strong.holds(s1, image)

    @given(mappings(), small_lists)
    @settings(max_examples=80)
    def test_functional_images_give_related_lists(self, h, l1):
        rng = random.Random(0)
        from repro.genericity.invariance import sample_image

        rel = ListRel(h)
        image = sample_image(rel, l1, rng)
        if image is not None:
            assert rel.holds(l1, image)


def _subsets(universe):
    import itertools

    items = sorted(universe, key=repr)
    for size in range(min(len(items), 3) + 1):
        yield from itertools.combinations(items, size)


# ---------------------------------------------------------------------------
# Lemma 4.6 as properties
# ---------------------------------------------------------------------------

class TestListSetTransferLaws:
    @given(mappings(), st.data())
    @settings(max_examples=80)
    def test_lemma_4_6_part1_holds(self, h, data):
        chosen = data.draw(
            st.lists(st.sampled_from(sorted(h.pairs())), max_size=4)
        )
        l1 = CVList(x for x, _ in chosen)
        l2 = CVList(y for _, y in chosen)
        assert lemma_4_6_part1(h, l1, l2)

    @given(mappings(), st.data())
    @settings(max_examples=80)
    def test_lemma_4_6_part2_holds(self, h, data):
        chosen = data.draw(
            st.lists(st.sampled_from(sorted(h.pairs())), max_size=4)
        )
        s1 = CVSet(x for x, _ in chosen)
        s2 = CVSet(y for _, y in chosen)
        if SetRelExt(h).holds(s1, s2):
            assert lemma_4_6_part2(h, s1, s2)

    @given(st.frozensets(st.frozensets(atoms, max_size=3).map(CVSet), max_size=3).map(CVSet))
    @settings(max_examples=60)
    def test_fromset_is_section_of_toset(self, s):
        t = list_of(list_of(INT))
        l = deep_fromset(s, t)
        assert deep_toset(l, t) == s


# ---------------------------------------------------------------------------
# Value-level laws
# ---------------------------------------------------------------------------

class TestValueLaws:
    @given(nested_values)
    @settings(max_examples=100)
    def test_map_atoms_identity(self, v):
        assert map_atoms(v, lambda x: x) == v

    @given(nested_values)
    @settings(max_examples=100)
    def test_map_atoms_composition(self, v):
        f = lambda x: x + 1
        g = lambda x: x * 2
        assert map_atoms(map_atoms(v, f), g) == map_atoms(v, lambda x: g(f(x)))

    @given(st.frozensets(st.tuples(atoms, atoms).map(Tup), max_size=6).map(CVSet))
    @settings(max_examples=60)
    def test_transitive_closure_idempotent(self, r):
        tc = transitive_closure()
        once = tc.fn(r)
        assert tc.fn(once) == once
        assert r.issubset(once)

    @given(st.frozensets(st.tuples(atoms, atoms).map(Tup), max_size=6).map(CVSet))
    @settings(max_examples=60)
    def test_projection_commutes_with_functional_maps(self, r):
        # The map(f) commutation of Section 4.4, as a property: for any
        # f, pi_1(map(fxf)(R)) == map(f)(pi_1(R)).
        f = lambda x: x % 2
        pi = projection((0,), 2)
        mapped = CVSet(Tup((f(t[0]), f(t[1]))) for t in r)
        lhs = pi.fn(mapped)
        rhs = CVSet(Tup((f(t[0]),)) for t in pi.fn(r))
        assert lhs == rhs
