"""Plan-compiler parity and artifact-lifecycle tests.

``execute_compiled`` carries the exact contract of every other
executor — identical ``CVSet`` answer, identical total work, identical
per-node ledger as the reference interpreter — while lowering the plan
to one generated function.  On top of parity, these tests pin the
artifact lifecycle: memoization under semantic keys, per-relation
invalidation on mutation, the deep-plan fallback, and interop of the
result-cache entries it writes with the streaming engine.
"""

import random

from repro.engine.database import Database
from repro.engine.exec import (
    MAX_PIPELINE_DEPTH,
    PlanCache,
    compile_plan,
    execute_compiled,
    execute_streaming,
    plan_depth,
)
from repro.engine.workload import (
    deep_chain_plan,
    random_atom_database,
    random_nested_database,
    random_plan,
)
from repro.obs.trace import Tracer
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.types.values import CVSet, Tup
from tests.conftest import NAMES, assert_equivalent


class TestCompiledEquivalence:
    def test_random_plans_match_reference(self, plan_pair):
        """200 random plan/db pairs: compiled cold, artifact-warm and
        result-warm all agree with the reference, work and ledger
        included."""
        for seed in range(200):
            plan, db = plan_pair(20260808 + seed)
            store = PlanCache()
            assert_equivalent(
                plan, db,
                execute_compiled(plan, db),
                execute_compiled(plan, db, compile_store=store),
                execute_compiled(plan, db, compile_store=store),  # memo
                execute_compiled(plan, db, cache=store),  # result-warm
            )

    def test_nested_value_databases(self):
        rng = random.Random(71)
        for _ in range(25):
            db = random_nested_database(rng, NAMES)
            plan = random_plan(rng, NAMES, depth=rng.randint(1, 3))
            assert_equivalent(plan, db, execute_compiled(plan, db))

    def test_atom_relations(self):
        """Bare atoms: weight 1 per element, unknown widths — the
        hoisted weight expressions must fall back correctly."""
        rng = random.Random(72)
        for _ in range(15):
            db = random_atom_database(rng, NAMES)
            op = rng.choice((Union, Difference, Intersect))
            plan = op(Scan(rng.choice(NAMES)), Scan(rng.choice(NAMES)))
            assert_equivalent(plan, db, execute_compiled(plan, db))

    def test_join_shapes(self):
        """Empty-``on``, single-pair and multi-pair joins plus the
        cartesian Product all ledger-match the reference."""
        db = {
            "a": CVSet(Tup((i, i % 3)) for i in range(8)),
            "b": CVSet(Tup((i % 3, i)) for i in range(6)),
        }
        for on in ((), ((0, 0),), ((0, 0), (1, 1))):
            plan = Join(on, Scan("a"), Scan("b"))
            assert_equivalent(plan, db, execute_compiled(plan, db))
        plan = Product(Scan("a"), Scan("b"))
        assert_equivalent(plan, db, execute_compiled(plan, db))

    def test_join_with_non_scan_right_child(self):
        """The pre-built index shortcut only fires for a Scan right
        child; a computed right side takes the runtime-build path."""
        db = {
            "a": CVSet(Tup((i, i % 3)) for i in range(8)),
            "b": CVSet(Tup((i % 3, i)) for i in range(6)),
        }
        plan = Join(((0, 0),), Scan("a"),
                    Union(Scan("b"), Scan("b")))
        assert_equivalent(plan, db, execute_compiled(plan, db))

    def test_scan_root_and_empty_projection(self):
        db = {"r": CVSet({Tup((1, 2)), Tup((3, 4))})}
        assert_equivalent(Scan("r"), db, execute_compiled(Scan("r"), db))
        plan = Project((), Scan("r"))
        assert_equivalent(plan, db, execute_compiled(plan, db))

    def test_cse_shared_subtree_ledger_splice(self):
        """A repeated subtree runs once; its ledger segment is spliced
        at every further occurrence, exactly as the reference logs."""
        db = {
            "r": CVSet(Tup((i, i)) for i in range(6)),
            "s": CVSet(Tup((i, 0)) for i in range(3)),
        }
        shared = Union(Scan("r"), Scan("s"))
        plan = Difference(
            MapNode("id", lambda t: t, shared, injective=True), shared
        )
        assert_equivalent(plan, db, execute_compiled(plan, db))

    def test_missing_relation_reads_as_empty_like_reference(self):
        db = {"r": CVSet({Tup((1,))})}
        plan = Union(Scan("r"), Scan("absent"))
        assert_equivalent(plan, db, execute_compiled(plan, db))


class TestDeepPlanFallback:
    def test_deep_chain_falls_back_to_streaming(self):
        rng = random.Random(73)
        plan = deep_chain_plan(rng, "r", 5000)
        assert plan_depth(plan) > MAX_PIPELINE_DEPTH
        db = {"r": CVSet({Tup((1, 2)), Tup((3, 4))})}
        store = PlanCache()
        result = execute_compiled(plan, db, compile_store=store)
        assert_equivalent(plan, db, result)
        # The fallback must not have compiled anything.
        assert store.compiled_stats()["puts"] == 0

    def test_boundary_depth_still_compiles(self):
        plan = Scan("r")
        for _ in range(MAX_PIPELINE_DEPTH - 1):
            plan = Select("true", lambda t: True, plan)
        assert plan_depth(plan) == MAX_PIPELINE_DEPTH
        db = {"r": CVSet({Tup((1,)), Tup((2,))})}
        store = PlanCache()
        assert_equivalent(
            plan, db, execute_compiled(plan, db, compile_store=store)
        )
        assert store.compiled_stats()["puts"] == 1


class TestArtifactLifecycle:
    def test_artifact_memoized_under_semantic_key(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(5))}
        plan = Project((0,), Scan("r"))
        store = PlanCache()
        execute_compiled(plan, db, compile_store=store)
        stats = store.compiled_stats()
        assert (stats["misses"], stats["puts"], stats["hits"]) == (1, 1, 0)
        execute_compiled(plan, db, compile_store=store)
        stats = store.compiled_stats()
        assert (stats["misses"], stats["puts"], stats["hits"]) == (1, 1, 1)

    def test_structurally_equal_plans_share_one_artifact(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(5))}
        store = PlanCache()
        execute_compiled(Project((0,), Scan("r")), db, compile_store=store)
        execute_compiled(Project((0,), Scan("r")), db, compile_store=store)
        assert store.compiled_stats()["puts"] == 1
        assert store.compiled_stats()["hits"] == 1

    def test_zero_capacity_store_never_memoizes(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(5))}
        plan = Project((0,), Scan("r"))
        store = PlanCache(0)
        for _ in range(3):
            assert_equivalent(
                plan, db, execute_compiled(plan, db, compile_store=store)
            )
        stats = store.compiled_stats()
        assert stats["puts"] == 0 and stats["hits"] == 0
        assert stats["entries"] == 0

    def test_invalidate_drops_only_artifacts_reading_the_relation(self):
        db = {
            "r": CVSet({Tup((1, 2))}),
            "s": CVSet({Tup((3, 4))}),
        }
        store = PlanCache()
        execute_compiled(Project((0,), Scan("r")), db, compile_store=store)
        execute_compiled(Project((0,), Scan("s")), db, compile_store=store)
        assert store.compiled_stats()["entries"] == 2
        store.invalidate("r")
        assert store.compiled_stats()["entries"] == 1
        execute_compiled(Project((0,), Scan("s")), db, compile_store=store)
        assert store.compiled_stats()["hits"] == 1

    def test_database_insert_invalidates_artifact(self):
        """A stale artifact would replay the old scan binding; the
        mutation path must drop it so results track the live data."""
        db = Database()
        db.create("r", 2)
        db.insert("r", [(i, i) for i in range(4)])
        plan = Project((0,), Scan("r"))
        first = db.run(plan, use_cache=False, mode="compiled")
        assert_equivalent(plan, db.relations, first)
        db.insert("r", [(9, 9), (10, 10)])
        second = db.run(plan, use_cache=False, mode="compiled")
        assert_equivalent(plan, db.relations, second)
        assert second.value != first.value

    def test_compile_plan_is_specialized_to_current_contents(self):
        """A raw artifact replays the data it was compiled against —
        the documented reason artifacts live under semantic keys."""
        db = {"r": CVSet({Tup((1, 2))})}
        compiled = compile_plan(Project((0,), Scan("r")), db)
        db["r"] = CVSet({Tup((7, 8))})
        values, _, _ = compiled.run()
        assert CVSet(values) == CVSet({Tup((1,))})


class TestCacheInterop:
    def test_compiled_writes_streaming_hits(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(5))}
        plan = Project((0,), Scan("r"))
        cache = PlanCache()
        execute_compiled(plan, db, cache=cache)
        cache.reset_stats()
        result = execute_streaming(plan, db, cache=cache)
        assert cache.hits >= 1
        assert_equivalent(plan, db, result)

    def test_streaming_writes_compiled_hits(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(5))}
        plan = Project((0,), Scan("r"))
        cache = PlanCache()
        execute_streaming(plan, db, cache=cache)
        cache.reset_stats()
        result = execute_compiled(plan, db, cache=cache)
        assert cache.hits >= 1
        assert_equivalent(plan, db, result)

    def test_predicate_aliasing_keeps_keys_distinct(self):
        """Two same-named predicates with different behavior must not
        collide in either the result cache or the artifact store."""
        db = {"r": CVSet(Tup((i,)) for i in range(6))}
        low = Select("cut", lambda t: t.items[0] < 2, Scan("r"))
        high = Select("cut", lambda t: t.items[0] >= 2, Scan("r"))
        cache = PlanCache()
        a = execute_compiled(low, db, cache=cache)
        b = execute_compiled(high, db, cache=cache)
        assert_equivalent(low, db, a)
        assert_equivalent(high, db, b)
        assert a.value != b.value


class TestDatabaseCompiledRun:
    def test_run_mode_compiled_with_prebuilt_join_index(self):
        db = Database()
        db.create("e", 3)
        db.insert("e", [(i, i % 5, i * 2) for i in range(40)])
        db.create("k", 2)
        db.insert("k", [(i % 5, str(i)) for i in range(10)])
        plan = Join(((1, 0),), Scan("e"), Scan("k"))
        result = db.run(plan, use_cache=False, mode="compiled")
        assert_equivalent(plan, db.relations, result)

    def test_hr_workload_matches_reference(self, hr_db):
        db = hr_db()
        plan = Project((0,), Difference(Scan("employees"),
                                        Scan("students")))
        result = db.run(plan, use_cache=False, mode="compiled")
        assert_equivalent(plan, db.relations, result)

    def test_use_cache_false_still_memoizes_the_program(self):
        """``use_cache=False`` disables the *result* cache only; the
        artifact memo is a program cache and stays warm."""
        db = Database()
        db.create("r", 2)
        db.insert("r", [(i, i) for i in range(4)])
        plan = Project((0,), Scan("r"))
        db.run(plan, use_cache=False, mode="compiled")
        db.run(plan, use_cache=False, mode="compiled")
        stats = db.plan_cache.compiled_stats()
        assert stats["puts"] == 1 and stats["hits"] == 1
        assert db.plan_cache.stats()["puts"] == 0


class TestCompiledTracing:
    def test_span_tree_work_matches_result(self, hr_db):
        db = hr_db(seed=12, employees=30, students=20, overlap=8)
        plan = Project((0,), Difference(Scan("employees"),
                                        Scan("students")))
        tracer = Tracer()
        result = execute_compiled(plan, db.relations, tracer=tracer)
        assert tracer.last is not None
        assert tracer.last.total_work() == result.work
        assert tracer.last.rows == len(result.value)

    def test_cse_span_tree_work_matches_result(self):
        db = {
            "r": CVSet(Tup((i, i)) for i in range(6)),
            "s": CVSet(Tup((i, 0)) for i in range(3)),
        }
        shared = Union(Scan("r"), Scan("s"))
        plan = Difference(
            MapNode("id", lambda t: t, shared, injective=True), shared
        )
        tracer = Tracer()
        result = execute_compiled(plan, db, tracer=tracer)
        assert tracer.last.total_work() == result.work

    def test_result_cache_hit_is_a_single_span(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(5))}
        plan = Project((0,), Scan("r"))
        cache = PlanCache()
        execute_compiled(plan, db, cache=cache)
        tracer = Tracer()
        result = execute_compiled(plan, db, cache=cache, tracer=tracer)
        assert_equivalent(plan, db, result)
        assert tracer.last.cache == "hit"
        assert tracer.last.children == []
