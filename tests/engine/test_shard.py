"""Sharded partition-parallel execution (``engine/exec/shard.py``).

The contract under test is byte-identity: the merged value, total
work, and per-node ledger of ``execute_sharded`` equal the serial
streaming run's for every plan, every shard count, every fallback
path.  The partition analysis, the ``NODE_PARTITIONABILITY`` source
of truth, the single-shard fallbacks, caching, tracing, the fault
site, and the ``Database.run`` surface are each pinned separately.
"""

import pytest

from tests.conftest import assert_equivalent

from repro.engine.database import SHARDED_CHAIN
from repro.engine.exec import MAX_PIPELINE_DEPTH, execute_streaming
from repro.engine.exec.cache import PlanCache
from repro.engine.exec.shard import (
    DEFAULT_SHARDS,
    NotPartitionable,
    execute_sharded,
    plan_partitioning,
)
from repro.obs.trace import Tracer
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.optimizer.rules import (
    HASH_PARTITIONABLE,
    NODE_PARTITIONABILITY,
    NON_PARTITIONABLE,
)
from repro.robustness.faults import FaultInjector, FaultPlan, InjectedFault
from repro.types.values import CVSet, Tup


def _swap(t):
    return Tup((t[1], t[0]))


class TestByteIdentityProperty:
    def test_random_plans_identical_across_shard_counts(self, plan_pair):
        """The acceptance property: >= 300 (plan, shard-count) checks,
        each byte-identical to serial streaming on value, work, and
        ledger.  Partitionable plans shard for real; the rest take the
        single-shard fallback — identity must hold either way."""
        for seed in range(110):
            plan, db = plan_pair(20260809 + seed)
            want = execute_streaming(plan, db)
            for shards in (1, 2, 4):
                got = execute_sharded(plan, db, shards=shards)
                assert got.value == want.value
                assert got.work == want.work
                assert got.per_node == want.per_node

    def test_partitioned_join_matches_reference(self, random_db):
        db = random_db(7, arity=3, domain_size=4, max_rows=30)
        plan = Join(((0, 0), (2, 1)), Scan("r"), Scan("s"))
        assert plan_partitioning(plan)  # really takes the sharded path
        assert_equivalent(
            plan, db,
            execute_sharded(plan, db, shards=2),
            execute_sharded(plan, db, shards=4),
        )

    def test_default_shard_count(self, random_db):
        db = random_db(8)
        plan = Difference(Scan("r"), Scan("s"))
        got = execute_sharded(plan, db)
        assert_equivalent(plan, db, got)
        assert DEFAULT_SHARDS >= 2


class TestPlanPartitioning:
    def test_equi_join_demands_join_columns(self):
        plan = Join(((0, 1),), Scan("r"), Scan("s"))
        assert plan_partitioning(plan) == {
            "r": ("col", 0),
            "s": ("col", 1),
        }

    def test_set_operations_demand_whole_tuple(self):
        for node in (Difference, Intersect):
            plan = node(Scan("r"), Scan("s"))
            assert plan_partitioning(plan) == {
                "r": ("tuple",),
                "s": ("tuple",),
            }

    def test_root_union_and_select_fall_back_to_round_robin(self):
        plan = Union(Scan("r"), Select("$1>0", lambda t: t[0] > 0, Scan("s")))
        assert plan_partitioning(plan) == {"r": ("rr",), "s": ("rr",)}

    def test_key_preserving_projection_translates_the_demand(self):
        # The join demands col 0 of its left input; the projection
        # swapped columns, so the base relation is partitioned on its
        # column 1.
        plan = Join(((0, 0),), Project((1, 0), Scan("r")), Scan("s"))
        assert plan_partitioning(plan) == {
            "r": ("col", 1),
            "s": ("col", 0),
        }

    def test_disjoint_projection_picks_a_surviving_column(self):
        # A root union demands disjoint outputs of the projection;
        # partitioning on a surviving column keeps all preimages of a
        # projected tuple in one shard (the first surviving column
        # that resolves wins).
        plan = Union(Project((1, 0), Scan("r")), Scan("s"))
        assert plan_partitioning(plan) == {"r": ("col", 1), "s": ("rr",)}

    def test_projection_under_set_operation_cannot_align(self):
        # Difference needs whole-tuple co-partition of both sides, and
        # no base scheme expresses a partition on the projected image.
        plan = Difference(Project((0,), Scan("r")), Project((0,), Scan("s")))
        with pytest.raises(NotPartitionable):
            plan_partitioning(plan)

    def test_product_is_non_partitionable(self):
        with pytest.raises(NotPartitionable):
            plan_partitioning(Product(Scan("r"), Scan("s")))

    def test_key_free_join_is_non_partitionable(self):
        with pytest.raises(NotPartitionable):
            plan_partitioning(Join((), Scan("r"), Scan("s")))

    def test_conflicting_keyed_demands_on_one_relation(self):
        # Self-join on different columns would need "r" stored two ways.
        with pytest.raises(NotPartitionable):
            plan_partitioning(Join(((0, 1),), Scan("r"), Scan("r")))

    def test_round_robin_yields_to_keyed_demand(self):
        # "r" appears under a round-robin demand and a keyed one; the
        # keyed demand wins for the shared base relation.
        plan = Union(Scan("r"), Join(((0, 0),), Scan("r"), Scan("s")))
        assert plan_partitioning(plan)["r"] == ("col", 0)

    def test_non_injective_interior_map_is_non_partitionable(self):
        plan = Difference(
            MapNode("const", lambda t: Tup((0, 0)), Scan("r")), Scan("s")
        )
        with pytest.raises(NotPartitionable):
            plan_partitioning(plan)

    def test_injective_map_is_round_robin_safe_at_the_root(self):
        plan = MapNode("swap", _swap, Scan("r"), injective=True)
        assert plan_partitioning(plan) == {"r": ("rr",)}

    def test_no_key_survives_an_opaque_function(self):
        plan = Join(
            ((0, 0),),
            MapNode("swap", _swap, Scan("r"), injective=True),
            Scan("s"),
        )
        with pytest.raises(NotPartitionable):
            plan_partitioning(plan)

    def test_too_deep_plans_are_rejected(self):
        plan: Plan = Scan("r")
        for _ in range(MAX_PIPELINE_DEPTH + 1):
            plan = Select("$1>0", lambda t: t[0] > 0, plan)
        with pytest.raises(NotPartitionable):
            plan_partitioning(plan)


class TestPartitionabilityTable:
    def test_every_plan_node_type_is_classified(self):
        assert set(NODE_PARTITIONABILITY) == set(Plan.__subclasses__())

    def test_every_entry_carries_a_justification(self):
        for cls, (kind, justification) in NODE_PARTITIONABILITY.items():
            assert kind, cls
            assert justification.strip(), cls

    def test_table_drives_the_analysis(self):
        assert NODE_PARTITIONABILITY[Product][0] == NON_PARTITIONABLE
        assert NODE_PARTITIONABILITY[Join][0] == HASH_PARTITIONABLE


class TestFallbacksAndMerge:
    def test_shards_one_is_serial_streaming(self, random_db):
        db = random_db(9)
        plan = Difference(Scan("r"), Scan("s"))
        assert_equivalent(plan, db, execute_sharded(plan, db, shards=1))

    def test_invalid_shard_count_rejected(self, random_db):
        with pytest.raises(ValueError, match="shards"):
            execute_sharded(Scan("r"), random_db(0), shards=0)

    def test_non_partitionable_plan_runs_single_shard(self, random_db):
        db = random_db(10)
        plan = Product(Scan("r"), Scan("s"))
        tracer = Tracer()
        got = execute_sharded(plan, db, shards=4, tracer=tracer)
        assert_equivalent(plan, db, got)
        meta = tracer.last.meta["sharded"]
        assert meta["partition"] == "single"
        assert meta["requested"] == 4
        assert "non-partitionable" in meta["reason"]

    def test_atom_rows_defeat_column_partitioning(self):
        # An unsubscriptable atom row admits no column key, so the run
        # falls back to single-shard serial streaming — which on this
        # database raises exactly what serial raises (joins cannot
        # probe atoms).  Identity extends to the error.
        db = {
            "r": CVSet({Tup((1, 2)), 7}),
            "s": CVSet({Tup((1, 3))}),
        }
        plan = Join(((0, 0),), Scan("r"), Scan("s"))
        with pytest.raises(TypeError):
            execute_streaming(plan, db)
        with pytest.raises(TypeError):
            execute_sharded(plan, db, shards=2, jobs=1)

    def test_atom_rows_shard_fine_under_whole_tuple_hashing(self):
        # Whole-tuple hashing needs no columns: atoms partition like
        # any other member.
        db = {
            "r": CVSet({Tup((1, 2)), 7}),
            "s": CVSet({Tup((1, 3)), 7}),
        }
        plan = Difference(Scan("r"), Scan("s"))
        got = execute_sharded(plan, db, shards=2, jobs=1)
        assert_equivalent(plan, db, got)

    def test_in_process_when_plan_cannot_pickle(self, random_db):
        # The lambda predicate cannot cross the process boundary; the
        # shards run in-process through the same merge path.
        db = random_db(11)
        plan = Difference(
            Select("$1>1", lambda t: t[0] > 1, Scan("r")), Scan("s")
        )
        tracer = Tracer()
        got = execute_sharded(plan, db, shards=2, tracer=tracer)
        assert_equivalent(plan, db, got)
        meta = tracer.last.meta["sharded"]
        assert meta["parallel"] is False
        assert meta["shards"] == 2

    def test_jobs_one_stays_in_process(self, random_db):
        db = random_db(12)
        plan = Difference(Scan("r"), Scan("s"))
        tracer = Tracer()
        got = execute_sharded(plan, db, shards=4, jobs=1, tracer=tracer)
        assert_equivalent(plan, db, got)
        assert tracer.last.meta["sharded"]["parallel"] is False

    def test_process_pool_path_byte_identical(self, random_db):
        # Picklable plan, two worker processes: the real pool path.
        db = random_db(13, arity=2, domain_size=4, max_rows=25)
        plan = Join(((0, 0),), Scan("r"), Scan("s"))
        tracer = Tracer()
        got = execute_sharded(plan, db, shards=2, tracer=tracer)
        assert_equivalent(plan, db, got)
        meta = tracer.last.meta["sharded"]
        assert meta["parallel"] is True
        assert len(meta["per_shard"]) == 2


class TestTracingAndCache:
    def test_trace_meta_names_partition_schemes(self, random_db):
        db = random_db(14)
        plan = Difference(Scan("r"), Scan("s"))
        tracer = Tracer()
        execute_sharded(plan, db, shards=2, jobs=1, tracer=tracer)
        meta = tracer.last.meta["sharded"]
        assert meta["partition"] == {
            "r": "hash(tuple)", "s": "hash(tuple)"
        }
        assert [s["shard"] for s in meta["per_shard"]] == [0, 1]

    def test_merged_result_cached_under_the_streaming_key(self, random_db):
        db = random_db(15)
        plan = Difference(Scan("r"), Scan("s"))
        cache = PlanCache()
        cold = execute_sharded(plan, db, shards=2, jobs=1, cache=cache)
        # Streaming finds the sharded run's entry: same semantic key.
        tracer = Tracer()
        warm = execute_streaming(plan, db, cache=cache, tracer=tracer)
        assert tracer.last.cache == "hit"
        assert warm.value == cold.value
        assert warm.work == cold.work
        assert warm.per_node == cold.per_node

    def test_warm_hit_skips_partitioning(self, random_db):
        db = random_db(16)
        plan = Difference(Scan("r"), Scan("s"))
        cache = PlanCache()
        execute_streaming(plan, db, cache=cache)
        tracer = Tracer()
        warm = execute_sharded(plan, db, shards=4, cache=cache,
                               tracer=tracer)
        assert tracer.last.cache == "hit"
        assert tracer.last.meta["sharded"]["partition"] == "cache-hit"
        assert_equivalent(plan, db, warm)


class TestFaultsAndDegradation:
    def test_shard_fault_raises_before_dispatch(self, random_db):
        db = random_db(17)
        plan = Difference(Scan("r"), Scan("s"))
        injector = FaultInjector(FaultPlan(seed=1, shard_rate=1.0))
        with pytest.raises(InjectedFault):
            execute_sharded(
                plan, db, shards=2, jobs=1, fault_injector=injector
            )

    def test_database_degrades_down_the_sharded_chain(self, small_db):
        plan = Difference(Scan("r"), Scan("s"))
        want = small_db.run_reference(plan)
        small_db.fault_injector = FaultInjector(
            FaultPlan(seed=2, shard_rate=1.0)
        )
        tracer = Tracer()
        got = small_db.run(
            plan, mode="sharded", shards=2, use_cache=False, tracer=tracer
        )
        small_db.fault_injector = None
        assert got.value == want.value
        assert got.work == want.work
        degraded = tracer.last.meta["degraded"]
        assert degraded[0]["mode"] == "sharded"
        assert degraded[0]["to"] == SHARDED_CHAIN[1]

    def test_chain_order_is_pinned(self):
        assert SHARDED_CHAIN == ("sharded", "batch", "stream", "reference")


class TestDatabaseSurface:
    def test_run_mode_sharded_matches_reference(self, small_db):
        plan = Union(Scan("r"), Intersect(Scan("s"), Scan("t")))
        got = small_db.run(plan, mode="sharded", shards=2, use_cache=False)
        want = small_db.run_reference(plan)
        assert got.value == want.value
        assert got.work == want.work
        assert got.per_node == want.per_node

    def test_auto_offers_sharded_only_when_partitionable(self, small_db):
        partitionable = Difference(Scan("r"), Scan("s"))
        assert "sharded" in small_db.plan_mode(partitionable).scores
        product = Product(Scan("r"), Scan("s"))
        assert "sharded" not in small_db.plan_mode(product).scores

    def test_missing_relation_behaves_like_serial(self):
        # Serial streaming scans a missing relation as empty; a shard
        # database leaves it missing so every shard sees exactly that.
        db = {"r": CVSet({Tup((1, 2)), Tup((3, 4))})}
        plan = Difference(Scan("r"), Scan("missing"))
        got = execute_sharded(plan, db, shards=2, jobs=1)
        want = execute_streaming(plan, db)
        assert got.value == want.value
        assert got.work == want.work
        assert got.per_node == want.per_node
