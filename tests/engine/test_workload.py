"""Tests for the synthetic workload generators."""

import random


from repro.engine.workload import (
    hr_database,
    layered_graph,
    paper_h_pairs,
    paper_r1,
    paper_r2,
    paper_r3,
    random_database,
    random_graph,
)
from repro.mappings.extensions import REL, STRONG
from repro.mappings.families import MappingFamily
from repro.mappings.mapping import Mapping
from repro.optimizer.constraints import check_key_on_instance
from repro.types.ast import STR, set_of
from repro.types.values import Tup, cvset, tup


class TestPaperInstances:
    def test_r1_contents(self):
        assert len(paper_r1()) == 6
        assert tup("e", "f") in paper_r1()

    def test_r3_is_r1_minus_three(self):
        removed = cvset(tup("e", "f"), tup("i", "f"), tup("j", "g"))
        assert paper_r3() == paper_r1().difference(removed)

    def test_h_is_strong_hom_r1_r2_only(self):
        fam = MappingFamily({"str": Mapping(paper_h_pairs(), STR, STR)})
        t = set_of(STR * STR)
        assert fam.extend(t, STRONG).holds(paper_r1(), paper_r2())
        assert fam.extend(t, REL).holds(paper_r3(), paper_r2())
        assert not fam.extend(t, STRONG).holds(paper_r3(), paper_r2())


class TestGraphs:
    def test_random_graph_size(self):
        g = random_graph(random.Random(0), nodes=6, edges=8)
        assert 0 < len(g) <= 8
        assert all(isinstance(t, Tup) and len(t) == 2 for t in g)

    def test_layered_graph_edges_cross_layers(self):
        g = layered_graph(random.Random(0), layers=3, width=2)
        for a, b in g:
            layer_a = int(a.split("_")[0][1:])
            layer_b = int(b.split("_")[0][1:])
            assert layer_b == layer_a + 1


class TestHRDatabase:
    def test_shared_key_holds_on_union(self):
        db = hr_database(random.Random(0), employees=20, students=15,
                         overlap=7)
        union = db["employees"].union(db["students"])
        assert check_key_on_instance(union, (0,))

    def test_overlap_produces_shared_tuples(self):
        db = hr_database(random.Random(0), employees=10, students=10,
                         overlap=5)
        shared = db["employees"].intersection(db["students"])
        assert len(shared) == 5

    def test_schema_declared(self):
        db = hr_database(random.Random(0), employees=5, students=5)
        assert db.catalog.key_for("employees", (0,))
        assert db.catalog.shared_key_group("students", (0,)) == "ssn"
        assert db.catalog.shared_key_group("contractors", (0,)) is None


class TestRandomDatabase:
    def test_shape(self):
        dbs = random_database(random.Random(0), ("R", "S"), arity=3)
        assert set(dbs) == {"R", "S"}
        for rel in dbs.values():
            assert all(len(t) == 3 for t in rel)

    def test_deterministic_under_seed(self):
        a = random_database(random.Random(5), ("R",))
        b = random_database(random.Random(5), ("R",))
        assert a == b
