"""Executor equivalence and caching tests.

The streaming executor's contract: for every plan over every database,
identical ``CVSet`` answer, identical total work, and identical
per-node ledger as the reference interpreter — cold, with a cold cache,
and with a warm cache.
"""

import random

import pytest

from repro.engine.database import Database
from repro.engine.exec import (
    PlanCache,
    execute_streaming,
    relation_fingerprint,
    result_cache_key,
)
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Join,
    Project,
    Scan,
    Select,
    Union,
    execute_reference,
)
from repro.types.values import CVSet, Tup, cvset, tup
from tests.conftest import assert_equivalent


class TestEquivalenceProperty:
    def test_random_plans_match_reference(self, plan_pair):
        """≥200 random plan/database pairs: streaming, cached-cold and
        cached-warm all agree with the reference, including work."""
        pairs_checked = 0
        nodes_seen = set()
        for seed in range(220):
            plan, db = plan_pair(20260806 + seed)
            stack = [plan]
            while stack:
                node = stack.pop()
                nodes_seen.add(type(node).__name__)
                stack.extend(node.children())
            cache = PlanCache()
            streaming = execute_streaming(plan, db)
            cached_cold = execute_streaming(plan, db, cache=cache)
            cached_warm = execute_streaming(plan, db, cache=cache)
            assert_equivalent(
                plan, db, streaming, cached_cold, cached_warm
            )
            pairs_checked += 1
        assert pairs_checked >= 200
        # The generator must actually exercise the whole operator set.
        assert nodes_seen >= {
            "Scan", "Project", "Select", "MapNode", "Union",
            "Difference", "Intersect", "Product", "Join",
        }

    def test_multi_pair_and_empty_join(self, random_db):
        db = random_db(3, arity=2, domain_size=4, max_rows=10)
        multi = Join(((0, 0), (1, 1)), Scan("r"), Scan("s"))
        empty = Join((), Scan("r"), Scan("s"))
        dup_pairs = Join(((0, 0), (0, 0)), Scan("r"), Scan("s"))
        for plan in (multi, empty, dup_pairs):
            assert_equivalent(plan, db, execute_streaming(plan, db))

    def test_missing_relation_reads_empty(self):
        plan = Union(Scan("ghost"), Scan("r"))
        db = {"r": cvset(tup(1, 2))}
        assert_equivalent(plan, db, execute_streaming(plan, db))


class TestCSE:
    def test_shared_subtree_executes_once(self):
        calls = 0

        def counting(t):
            nonlocal calls
            calls += 1
            return True

        db = {"r": CVSet(Tup((i, i + 1)) for i in range(10))}
        shared = Select("counting", counting, Scan("r"))
        plan = Intersect(
            Project((0,), shared), Project((0, 1), shared)
        )
        reference = execute_reference(plan, db)
        reference_calls, calls = calls, 0
        streaming = execute_streaming(plan, db)
        assert calls == 10
        assert reference_calls == 20
        assert streaming.value == reference.value
        assert streaming.work == reference.work
        assert streaming.per_node == reference.per_node


class TestPlanCache:
    def test_warm_hit_skips_execution(self):
        calls = 0

        def counting(t):
            nonlocal calls
            calls += 1
            return True

        db = {"r": CVSet(Tup((i,)) for i in range(5))}
        plan = Select("counting", counting, Scan("r"))
        cache = PlanCache()
        first = execute_streaming(plan, db, cache=cache)
        assert calls == 5
        second = execute_streaming(plan, db, cache=cache)
        assert calls == 5  # served from cache
        assert second.value == first.value
        assert second.work == first.work  # as-if-executed work
        assert cache.hits >= 1

    def test_fingerprint_mismatch_prevents_stale_hit(self):
        plan = Project((0,), Scan("r"))
        db1 = {"r": cvset(tup(1, 2))}
        db2 = {"r": cvset(tup(3, 4))}
        cache = PlanCache()
        first = execute_streaming(plan, db1, cache=cache)
        second = execute_streaming(plan, db2, cache=cache)
        assert first.value != second.value
        assert second.value == execute_reference(plan, db2).value

    def test_subplan_hit_across_different_roots(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(6)),
              "s": CVSet(Tup((i, 0)) for i in range(3))}
        shared = Union(Scan("r"), Scan("s"))
        cache = PlanCache()
        execute_streaming(Difference(Scan("r"), shared), db, cache=cache)
        cache.reset_stats()
        result = execute_streaming(
            Intersect(Scan("r"), shared), db, cache=cache
        )
        # `shared` was materialized as a build side in the first query
        # and is served from cache in the second.
        assert cache.hits >= 1
        assert_equivalent(
            Intersect(Scan("r"), shared), db, result
        )

    def test_lru_eviction_bounds_entries(self):
        cache = PlanCache(capacity=4)
        db = {"r": CVSet(Tup((i,)) for i in range(4))}
        for c in range(10):
            execute_streaming(Project((0,) * (c + 1), Scan("r")), db,
                              cache=cache)
        assert len(cache) <= 4

    def test_invalidate_by_relation(self):
        db = {"r": cvset(tup(1, 2)), "s": cvset(tup(3, 4))}
        cache = PlanCache()
        execute_streaming(Project((0,), Scan("r")), db, cache=cache)
        execute_streaming(Project((0,), Scan("s")), db, cache=cache)
        assert len(cache) == 2
        cache.invalidate("r")
        assert len(cache) == 1

    def test_key_includes_fingerprints(self):
        plan = Project((0,), Scan("r"))
        db = {"r": cvset(tup(1, 2))}
        key = result_cache_key(plan, db)
        assert key[0] == plan
        assert key[1] == (("r", relation_fingerprint(db["r"])),)


class TestDatabaseExecution:
    def test_run_matches_reference_and_uses_cache(self, hr_db):
        db = hr_db()
        plan = Project((0,), Difference(Scan("employees"),
                                        Scan("students")))
        first = db.run(plan)
        reference = db.run_reference(plan)
        assert first.value == reference.value
        assert first.work == reference.work
        db.plan_cache.reset_stats()
        second = db.run(plan)
        assert db.plan_cache.hits == 1 and db.plan_cache.misses == 0
        assert second.value == first.value

    def test_insert_invalidates_cache(self):
        db = Database()
        db.create("log", 2)
        db.insert("log", [(1, "a")])
        plan = Project((0,), Scan("log"))
        assert db.run(plan).value == cvset(tup(1))
        db.insert("log", [(2, "b")])
        assert db.run(plan).value == cvset(tup(1), tup(2))

    def test_setitem_invalidates_cache(self):
        db = Database()
        db.create("log", 2)
        db.insert("log", [(1, "a")])
        plan = Project((0,), Scan("log"))
        db.run(plan)
        db["log"] = cvset(tup(9, "z"))
        assert db.run(plan).value == cvset(tup(9))

    def test_single_pair_join_borrows_database_index(self, hr_db):
        db = hr_db(seed=5, employees=30, students=20, overlap=5)
        plan = Join(((0, 0),), Scan("employees"), Scan("students"))
        result = db.run(plan)
        assert (0,) in db._eq_indexes.get("students", {})
        reference = db.run_reference(plan)
        assert result.value == reference.value
        assert result.work == reference.work
        assert result.per_node == reference.per_node

    def test_use_cache_false_bypasses_cache(self):
        db = Database()
        db.create("log", 1)
        db.insert("log", [(1,), (2,)])
        plan = Project((0,), Scan("log"))
        db.run(plan, use_cache=False)
        assert len(db.plan_cache) == 0


class TestSemanticCacheKeys:
    """A predicate/function name rebound to a different callable must
    never replay the old callable's answer (PR 2 regression)."""

    def test_aliased_predicate_shared_cache_both_correct(self):
        # The original poisoning repro: same name, two predicates, one
        # shared cache.  A structurally-keyed cache returned the first
        # answer for both.
        db = {"p": CVSet(Tup((i,)) for i in range(5))}
        cache = PlanCache()
        plan1 = Select("p", lambda t: t[0] == 1, Scan("p"))
        plan2 = Select("p", lambda t: t[0] == 2, Scan("p"))
        first = execute_streaming(plan1, db, cache=cache)
        second = execute_streaming(plan2, db, cache=cache)
        assert first.value == execute_reference(plan1, db).value
        assert second.value == execute_reference(plan2, db).value
        assert first.value != second.value

    def test_aliased_predicates_within_one_plan(self):
        # The CSE memo has the same exposure: two same-named selections
        # inside ONE plan are structurally equal but semantically
        # different, and must both execute.
        db = {"p": CVSet(Tup((i,)) for i in range(6))}
        plan = Union(
            Select("thresh", lambda t: t[0] < 2, Scan("p")),
            Select("thresh", lambda t: t[0] >= 4, Scan("p")),
        )
        assert_equivalent(
            plan, db,
            execute_streaming(plan, db),
            execute_streaming(plan, db, cache=PlanCache()),
        )

    def test_on_alias_error_raises(self):
        from repro.engine.exec import CacheInvariantError

        db = {"p": CVSet(Tup((i,)) for i in range(3))}
        cache = PlanCache(on_alias="error")
        execute_streaming(
            Select("p", lambda t: t[0] == 1, Scan("p")), db, cache=cache
        )
        with pytest.raises(CacheInvariantError):
            execute_streaming(
                Select("p", lambda t: t[0] == 2, Scan("p")), db,
                cache=cache,
            )

    def test_recreated_closure_still_hits(self):
        # The parser builds its comparison lambdas afresh per parse; a
        # re-created closure with equal captures must keep the cache
        # warm, not key apart.
        def make(k):
            return lambda t: t[0] == k

        db = {"p": CVSet(Tup((i,)) for i in range(5))}
        cache = PlanCache()
        first = execute_streaming(
            Select("eq", make(2), Scan("p")), db, cache=cache
        )
        cache.reset_stats()
        second = execute_streaming(
            Select("eq", make(2), Scan("p")), db, cache=cache
        )
        assert cache.hits >= 1
        assert second.value == first.value
        # ...while a *different* capture keys apart.
        third = execute_streaming(
            Select("eq", make(3), Scan("p")), db, cache=cache
        )
        assert third.value == cvset(tup(3))

    def test_put_refreshes_existing_entry(self):
        from repro.engine.exec import CacheEntry

        cache = PlanCache(capacity=2)
        entries = {
            name: CacheEntry(cvset(tup(i)), i, ((name, i),), frozenset({name}))
            for i, name in enumerate(("k1", "k2", "k3"))
        }
        cache.put("k1", entries["k1"])
        cache.put("k2", entries["k2"])
        replacement = CacheEntry(cvset(tup(9)), 9, (("k1", 9),),
                                 frozenset({"k1"}))
        cache.put("k1", replacement)  # refresh: newest value, MRU position

        def is_refreshed(stored):
            # ``put`` stamps a content seal, so the stored entry is a
            # sealed copy of the replacement, not the same object.
            return stored is not None and (
                stored.value, stored.work, stored.entries
            ) == (replacement.value, replacement.work, replacement.entries)

        assert len(cache) == 2
        assert is_refreshed(cache.get("k1"))
        cache.put("k3", entries["k3"])  # evicts k2, not the refreshed k1
        assert is_refreshed(cache.get("k1"))
        assert cache.get("k2") is None

    def test_zero_capacity_disables_caching_without_churn(self):
        db = {"p": CVSet(Tup((i,)) for i in range(4))}
        plan = Select("small", lambda t: t[0] < 2, Scan("p"))
        for capacity in (0, -1):
            cache = PlanCache(capacity)
            result = execute_streaming(plan, db, cache=cache)
            execute_streaming(plan, db, cache=cache)
            assert result.value == execute_reference(plan, db).value
            assert len(cache) == 0  # put is a no-op: no entry churn
            assert cache.hits == 0


class TestAtomRelations:
    """Relations of bare atoms flow through every operator, including
    the bulk scan-scan fast path (PR 2 regression: the bulk path
    charged ``len(t)`` inline and raised ``TypeError`` on atoms)."""

    def test_bulk_set_ops_over_atom_relations(self):
        db = {"a": CVSet([1, 2, "x", "y"]), "b": CVSet([2, "y", 5])}
        for op in (Union, Difference, Intersect):
            plan = op(Scan("a"), Scan("b"))
            assert_equivalent(
                plan, db,
                execute_streaming(plan, db),
                execute_streaming(plan, db, cache=PlanCache()),
            )

    def test_nested_set_ops_over_atom_relations(self):
        db = {"a": CVSet([1, 2, 3]), "b": CVSet([2, 3, 4]),
              "c": CVSet([3, "z"])}
        plan = Difference(Union(Scan("a"), Scan("b")),
                          Intersect(Scan("b"), Scan("c")))
        assert_equivalent(plan, db, execute_streaming(plan, db))


class TestDeepPlans:
    """Plans thousands of operators deep execute, optimize and account
    without ``RecursionError`` (PR 2 regression)."""

    DEPTH = 5000

    def _chain(self):
        from repro.engine.workload import deep_chain_plan

        return deep_chain_plan(random.Random(7), "r", self.DEPTH)

    def test_deep_chain_executes_with_parity(self):
        db = {"r": CVSet(Tup((i, i + 1)) for i in range(6))}
        plan = self._chain()
        cache = PlanCache()
        assert_equivalent(
            plan, db,
            execute_streaming(plan, db),
            execute_streaming(plan, db, cache=cache),
            execute_streaming(plan, db, cache=cache),  # warm
        )

    def test_deep_chain_optimizes(self):
        from repro.optimizer.constraints import Catalog
        from repro.optimizer.rewriter import Rewriter

        plan = self._chain()
        optimized = Rewriter(Catalog()).optimize(plan)
        db = {"r": CVSet(Tup((i, i + 1)) for i in range(4))}
        assert (execute_streaming(optimized, db).value
                == execute_reference(plan, db).value)

    def test_deep_plan_hash_and_eq_are_iterative(self):
        plan = self._chain()
        other = self._chain()  # same seed: structurally identical
        assert hash(plan) == hash(other)
        assert plan == other
