"""Executor equivalence and caching tests.

The streaming executor's contract: for every plan over every database,
identical ``CVSet`` answer, identical total work, and identical
per-node ledger as the reference interpreter — cold, with a cold cache,
and with a warm cache.
"""

import random

import pytest

from repro.engine.database import Database
from repro.engine.exec import (
    PlanCache,
    execute_streaming,
    relation_fingerprint,
    result_cache_key,
)
from repro.engine.workload import hr_database, random_database, random_plan
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
    execute_reference,
)
from repro.types.values import CVSet, Tup, cvset, tup

NAMES = ("r", "s", "t")


def _assert_equivalent(plan, db, *results):
    reference = execute_reference(plan, db)
    for result in results:
        assert result.value == reference.value
        assert result.work == reference.work
        assert result.per_node == reference.per_node


class TestEquivalenceProperty:
    def test_random_plans_match_reference(self):
        """≥200 random plan/database pairs: streaming, cached-cold and
        cached-warm all agree with the reference, including work."""
        rng = random.Random(20260806)
        pairs_checked = 0
        nodes_seen = set()
        for _ in range(220):
            db = random_database(
                rng, NAMES, arity=2, domain_size=5,
                max_rows=rng.randint(0, 12),
            )
            plan = random_plan(rng, NAMES, depth=rng.randint(1, 4))
            stack = [plan]
            while stack:
                node = stack.pop()
                nodes_seen.add(type(node).__name__)
                stack.extend(node.children())
            cache = PlanCache()
            streaming = execute_streaming(plan, db)
            cached_cold = execute_streaming(plan, db, cache=cache)
            cached_warm = execute_streaming(plan, db, cache=cache)
            _assert_equivalent(
                plan, db, streaming, cached_cold, cached_warm
            )
            pairs_checked += 1
        assert pairs_checked >= 200
        # The generator must actually exercise the whole operator set.
        assert nodes_seen >= {
            "Scan", "Project", "Select", "MapNode", "Union",
            "Difference", "Intersect", "Product", "Join",
        }

    def test_multi_pair_and_empty_join(self):
        rng = random.Random(3)
        db = random_database(rng, NAMES, arity=2, domain_size=4, max_rows=10)
        multi = Join(((0, 0), (1, 1)), Scan("r"), Scan("s"))
        empty = Join((), Scan("r"), Scan("s"))
        dup_pairs = Join(((0, 0), (0, 0)), Scan("r"), Scan("s"))
        for plan in (multi, empty, dup_pairs):
            _assert_equivalent(plan, db, execute_streaming(plan, db))

    def test_missing_relation_reads_empty(self):
        plan = Union(Scan("ghost"), Scan("r"))
        db = {"r": cvset(tup(1, 2))}
        _assert_equivalent(plan, db, execute_streaming(plan, db))


class TestCSE:
    def test_shared_subtree_executes_once(self):
        calls = 0

        def counting(t):
            nonlocal calls
            calls += 1
            return True

        db = {"r": CVSet(Tup((i, i + 1)) for i in range(10))}
        shared = Select("counting", counting, Scan("r"))
        plan = Intersect(
            Project((0,), shared), Project((0, 1), shared)
        )
        reference = execute_reference(plan, db)
        reference_calls, calls = calls, 0
        streaming = execute_streaming(plan, db)
        assert calls == 10
        assert reference_calls == 20
        assert streaming.value == reference.value
        assert streaming.work == reference.work
        assert streaming.per_node == reference.per_node


class TestPlanCache:
    def test_warm_hit_skips_execution(self):
        calls = 0

        def counting(t):
            nonlocal calls
            calls += 1
            return True

        db = {"r": CVSet(Tup((i,)) for i in range(5))}
        plan = Select("counting", counting, Scan("r"))
        cache = PlanCache()
        first = execute_streaming(plan, db, cache=cache)
        assert calls == 5
        second = execute_streaming(plan, db, cache=cache)
        assert calls == 5  # served from cache
        assert second.value == first.value
        assert second.work == first.work  # as-if-executed work
        assert cache.hits >= 1

    def test_fingerprint_mismatch_prevents_stale_hit(self):
        plan = Project((0,), Scan("r"))
        db1 = {"r": cvset(tup(1, 2))}
        db2 = {"r": cvset(tup(3, 4))}
        cache = PlanCache()
        first = execute_streaming(plan, db1, cache=cache)
        second = execute_streaming(plan, db2, cache=cache)
        assert first.value != second.value
        assert second.value == execute_reference(plan, db2).value

    def test_subplan_hit_across_different_roots(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(6)),
              "s": CVSet(Tup((i, 0)) for i in range(3))}
        shared = Union(Scan("r"), Scan("s"))
        cache = PlanCache()
        execute_streaming(Difference(Scan("r"), shared), db, cache=cache)
        cache.reset_stats()
        result = execute_streaming(
            Intersect(Scan("r"), shared), db, cache=cache
        )
        # `shared` was materialized as a build side in the first query
        # and is served from cache in the second.
        assert cache.hits >= 1
        _assert_equivalent(
            Intersect(Scan("r"), shared), db, result
        )

    def test_lru_eviction_bounds_entries(self):
        cache = PlanCache(capacity=4)
        db = {"r": CVSet(Tup((i,)) for i in range(4))}
        for c in range(10):
            execute_streaming(Project((0,) * (c + 1), Scan("r")), db,
                              cache=cache)
        assert len(cache) <= 4

    def test_invalidate_by_relation(self):
        db = {"r": cvset(tup(1, 2)), "s": cvset(tup(3, 4))}
        cache = PlanCache()
        execute_streaming(Project((0,), Scan("r")), db, cache=cache)
        execute_streaming(Project((0,), Scan("s")), db, cache=cache)
        assert len(cache) == 2
        cache.invalidate("r")
        assert len(cache) == 1

    def test_key_includes_fingerprints(self):
        plan = Project((0,), Scan("r"))
        db = {"r": cvset(tup(1, 2))}
        key = result_cache_key(plan, db)
        assert key[0] == plan
        assert key[1] == (("r", relation_fingerprint(db["r"])),)


class TestDatabaseExecution:
    def test_run_matches_reference_and_uses_cache(self):
        db = hr_database(random.Random(11), employees=40, students=25,
                         overlap=10)
        plan = Project((0,), Difference(Scan("employees"),
                                        Scan("students")))
        first = db.run(plan)
        reference = db.run_reference(plan)
        assert first.value == reference.value
        assert first.work == reference.work
        db.plan_cache.reset_stats()
        second = db.run(plan)
        assert db.plan_cache.hits == 1 and db.plan_cache.misses == 0
        assert second.value == first.value

    def test_insert_invalidates_cache(self):
        db = Database()
        db.create("log", 2)
        db.insert("log", [(1, "a")])
        plan = Project((0,), Scan("log"))
        assert db.run(plan).value == cvset(tup(1))
        db.insert("log", [(2, "b")])
        assert db.run(plan).value == cvset(tup(1), tup(2))

    def test_setitem_invalidates_cache(self):
        db = Database()
        db.create("log", 2)
        db.insert("log", [(1, "a")])
        plan = Project((0,), Scan("log"))
        db.run(plan)
        db["log"] = cvset(tup(9, "z"))
        assert db.run(plan).value == cvset(tup(9))

    def test_single_pair_join_borrows_database_index(self):
        db = hr_database(random.Random(5), employees=30, students=20,
                         overlap=5)
        plan = Join(((0, 0),), Scan("employees"), Scan("students"))
        result = db.run(plan)
        assert ("students", (0,)) in db._eq_indexes
        reference = db.run_reference(plan)
        assert result.value == reference.value
        assert result.work == reference.work
        assert result.per_node == reference.per_node

    def test_use_cache_false_bypasses_cache(self):
        db = Database()
        db.create("log", 1)
        db.insert("log", [(1,), (2,)])
        plan = Project((0,), Scan("log"))
        db.run(plan, use_cache=False)
        assert len(db.plan_cache) == 0
