"""Tests for value/database JSON serialization."""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.engine.serialize import (
    SerializeError,
    database_from_json,
    database_to_json,
    load_database,
    save_database,
    value_from_json,
    value_to_json,
)
from repro.engine.workload import hr_database
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
    execute_reference,
)
from repro.types.values import CVBag, CVList, CVSet, Tup, cvbag, cvlist, cvset, tup


class TestValueRoundtrip:
    def test_atoms(self):
        for atom in (5, -2, 1.5, "x", True, False):
            assert value_from_json(value_to_json(atom)) == atom

    def test_bool_survives_int_confusion(self):
        # JSON has no bool-vs-int problem, but Python's bool subclasses
        # int; the tag keeps them apart.
        decoded = value_from_json(value_to_json(True))
        assert decoded is True
        decoded_int = value_from_json(value_to_json(1))
        assert decoded_int == 1 and not isinstance(decoded_int, bool)

    def test_collections(self):
        for value in (
            tup(1, "a"),
            cvset(1, 2),
            cvlist(1, 1, 2),
            cvbag(1, 1, 2),
            cvset(tup(1, cvlist("a")), tup(2, cvlist())),
            cvset(cvset(1), cvset()),
        ):
            assert value_from_json(value_to_json(value)) == value

    def test_bag_multiplicities(self):
        b = cvbag(1, 1, 1, 2)
        decoded = value_from_json(value_to_json(b))
        assert decoded.count(1) == 3

    def test_malformed_rejected(self):
        with pytest.raises(SerializeError):
            value_from_json({"weird": []})
        with pytest.raises(SerializeError):
            value_from_json(None)

    def test_unserializable_rejected(self):
        with pytest.raises(SerializeError):
            value_to_json(object())


nested_values = st.recursive(
    st.one_of(
        st.integers(min_value=-5, max_value=5),
        st.floats(allow_nan=False, allow_infinity=False),
        st.sampled_from(["a", "b"]),
        st.booleans(),
    ),
    lambda children: st.one_of(
        st.frozensets(children, max_size=3).map(CVSet),
        st.lists(children, max_size=3).map(CVList),
        st.lists(children, max_size=3).map(CVBag),
        st.tuples(children, children).map(Tup),
    ),
    max_leaves=8,
)


class TestValueRoundtripProperty:
    @given(nested_values)
    @settings(max_examples=150)
    def test_roundtrip(self, value):
        assert value_from_json(value_to_json(value)) == value

    @given(nested_values)
    @settings(max_examples=200)
    def test_roundtrip_through_json_text(self, value):
        """The payload survives an actual ``json.dumps``/``loads``
        trip, not just the in-memory encoding — this is what the file
        format really exercises (bool-vs-int tags, set ordering,
        bag multiplicity pairs, arbitrary nesting)."""
        text = json.dumps(value_to_json(value))
        assert value_from_json(json.loads(text)) == value


class TestDatabaseRoundtrip:
    def test_hr_database(self, tmp_path):
        db = hr_database(random.Random(0), employees=10, students=6, overlap=2)
        path = tmp_path / "db.json"
        save_database(db, str(path))
        loaded = load_database(str(path))
        assert loaded.relations == db.relations
        assert loaded.catalog["employees"].keys == db.catalog["employees"].keys
        assert (
            loaded.catalog.shared_key_group("students", (0,))
            == db.catalog.shared_key_group("students", (0,))
        )

    def test_plans_agree_after_reload(self, tmp_path):

        db = hr_database(random.Random(1), employees=8, students=5, overlap=1)
        path = tmp_path / "db.json"
        save_database(db, str(path))
        loaded = load_database(str(path))
        text = "pi[1](employees - students)"
        assert db.query(text).value == loaded.query(text).value

    def test_schemaless_relation_roundtrips(self):
        db = Database()
        db["free"] = cvset(tup(1, 2))
        rebuilt = database_from_json(database_to_json(db))
        assert rebuilt["free"] == cvset(tup(1, 2))

    def test_key_violation_detected_on_load(self):
        # Tampered payload violating a declared key is rejected — as a
        # SerializeError: the bytes disagree with their own schema, so
        # callers catch one exception type for "not a database".
        db = Database()
        db.create("k", 2, keys=[(0,)])
        db.insert("k", [(1, "a")])
        payload = database_to_json(db)
        payload["relations"]["k"].append(value_to_json(tup(1, "b")))
        with pytest.raises(SerializeError):
            database_from_json(payload)


# One plan per concrete node type, all over the binary-arity trio a
# reloaded database must answer identically.  Join and MapNode have no
# concrete plan syntax, so this (not the parser round-trip suite) is
# where their serialization coverage lives.
NODE_TYPE_PLANS = (
    Scan("r"),
    Project((1, 0), Scan("r")),
    Select("$1>1", lambda t: t[0] > 1, Scan("r")),
    MapNode("swap", lambda t: Tup((t[1], t[0])), Scan("r"), injective=True),
    Union(Scan("r"), Scan("s")),
    Difference(Scan("r"), Scan("s")),
    Intersect(Scan("r"), Scan("s")),
    Product(Scan("r"), Scan("s")),
    Join(((0, 0), (1, 1)), Scan("r"), Scan("s")),
)


class TestDatabaseRoundtripProperty:
    def test_plan_list_covers_every_node_type(self):
        """Completeness guard: a new ``Plan`` subclass must be added
        to ``NODE_TYPE_PLANS`` (or this fails and says so)."""
        covered = set()
        stack = list(NODE_TYPE_PLANS)
        while stack:
            node = stack.pop()
            covered.add(type(node).__name__)
            stack.extend(node.children())
        missing = {c.__name__ for c in Plan.__subclasses__()} - covered
        assert not missing, f"NODE_TYPE_PLANS misses plan node types: {missing}"

    @pytest.mark.parametrize("seed", range(25))
    def test_random_database_execution_agrees_after_reload(self, seed, tmp_path):
        """Save/load preserves not just the relation values but the
        whole execution surface: every plan node type produces the
        same value, work, and per-node ledger on the reloaded copy."""
        rng = random.Random(4200 + seed)
        db = Database()
        for name in ("r", "s"):
            db.create(name, 2)
            rows = {
                (rng.randrange(5), rng.randrange(5))
                for _ in range(rng.randint(0, 12))
            }
            db.insert(name, sorted(rows))
        path = tmp_path / "db.json"
        save_database(db, str(path))
        loaded = load_database(str(path))
        assert loaded.relations == db.relations
        for plan in NODE_TYPE_PLANS:
            want = execute_reference(plan, db.relations)
            got = execute_reference(plan, loaded.relations)
            assert got.value == want.value
            assert got.work == want.work
            assert got.per_node == want.per_node


# Malformed payloads that must raise SerializeError — never a bare
# KeyError/TypeError/ValueError.  One entry per distinct failure shape.
MALFORMED_VALUE_PAYLOADS = (
    {"x": 1},                        # unknown tag
    {"t": 1, "s": 2},                # multiple tags
    {"t": 5},                        # tuple items not a list
    {"s": "abc"},                    # set items not a list
    {"l": {"a": 1}},                 # list items not a list
    {"m": 5},                        # bag entries not a list
    {"m": [[1]]},                    # bag entry not a pair
    {"m": [[1, 2, 3]]},              # bag entry too long
    {"m": [[1, "two"]]},             # non-int multiplicity
    {"m": [[1, 1.5]]},               # float multiplicity
    {"m": [[1, -1]]},                # negative multiplicity
    {"m": [[1, True]]},              # bool multiplicity
    None,                            # not a value at all
    [1, 2],                          # bare list is not an encoding
)

MALFORMED_DATABASE_PAYLOADS = (
    ["not", "a", "dict"],                                  # not an object
    {"schema": ["r"]},                                     # schema not a dict
    {"schema": {"r": "two"}},                              # info not a dict
    {"schema": {"r": {}}},                                 # arity missing
    {"schema": {"r": {"arity": "2"}}},                     # arity not an int
    {"schema": {"r": {"arity": True}}},                    # bool arity
    {"schema": {"r": {"arity": -1}}},                      # negative arity
    {"schema": {"r": {"arity": 2, "keys": 5}}},            # keys not a list
    {"schema": {"r": {"arity": 2,
                      "shared_keys": [{"columns": [0]}]}}},  # group missing
    {"relations": "r"},                                    # relations not a dict
    {"relations": {"r": {"t": [1]}}},                      # rows not a list
    {"schema": {"r": {"arity": 2}},
     "relations": {"r": [{"t": [1]}]}},                    # arity mismatch
    {"schema": {"r": {"arity": 2}},
     "relations": {"r": [5]}},                             # atom row in schema'd relation
    {"relations": {"r": [{"q": []}]}},                     # unknown value kind
)


class TestMalformedInputs:
    """Satellite: every malformed input raises SerializeError."""

    @pytest.mark.parametrize("payload", MALFORMED_VALUE_PAYLOADS,
                             ids=[repr(p) for p in MALFORMED_VALUE_PAYLOADS])
    def test_malformed_value_payloads(self, payload):
        with pytest.raises(SerializeError):
            value_from_json(payload)

    @pytest.mark.parametrize(
        "payload", MALFORMED_DATABASE_PAYLOADS,
        ids=[json.dumps(p, sort_keys=True)[:60]
             for p in MALFORMED_DATABASE_PAYLOADS])
    def test_malformed_database_payloads(self, payload):
        with pytest.raises(SerializeError):
            database_from_json(payload)

    def test_invalid_json_file_raises_serialize_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"relations": {"r": [')
        with pytest.raises(SerializeError):
            load_database(str(path))

    def test_truncated_valid_json_raises_serialize_error(self, tmp_path):
        # Valid JSON that is not a database payload (the shape a
        # pre-atomic-save crash could have left behind).
        path = tmp_path / "half.json"
        path.write_text("[1, 2]")
        with pytest.raises(SerializeError):
            load_database(str(path))

    def test_missing_file_stays_oserror(self, tmp_path):
        # Environmental problems are not format problems.
        with pytest.raises(OSError):
            load_database(str(tmp_path / "absent.json"))


class TestAtomicSave:
    """Satellite: save_database publishes atomically."""

    def test_failure_between_write_and_replace_preserves_old(
        self, tmp_path, monkeypatch
    ):
        import os as os_module

        db = Database()
        db.create("r", 2)
        db.insert("r", [(1, 2)])
        path = tmp_path / "db.json"
        save_database(db, str(path))
        before = path.read_text()

        db.insert("r", [(3, 4)])

        def exploding_replace(src, dst):
            raise OSError("injected crash between write and replace")

        monkeypatch.setattr(os_module, "os_replace_never", None,
                            raising=False)
        monkeypatch.setattr("os.replace", exploding_replace)
        with pytest.raises(OSError, match="injected crash"):
            save_database(db, str(path))
        monkeypatch.undo()

        # The published snapshot is byte-for-byte the old one, and the
        # failed attempt's temp file was cleaned up.
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["db.json"]
        assert load_database(str(path)).relations == {
            "r": CVSet([Tup((1, 2))])
        }

    def test_save_fsyncs_before_replace(self, tmp_path, monkeypatch):
        import os as os_module

        order = []
        real_fsync = os_module.fsync
        real_replace = os_module.replace
        monkeypatch.setattr(
            "os.fsync", lambda fd: (order.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            "os.replace",
            lambda s, d: (order.append("replace"), real_replace(s, d))[1],
        )
        db = Database()
        db.create("r", 1)
        save_database(db, str(tmp_path / "db.json"))
        assert "fsync" in order and "replace" in order
        assert order.index("fsync") < order.index("replace")

    def test_temp_file_written_to_same_directory(self, tmp_path, monkeypatch):
        # os.replace is only atomic within one filesystem; the temp
        # file must be a sibling of the target.
        import os as os_module

        seen = {}
        real_replace = os_module.replace

        def spying_replace(src, dst):
            seen["src_dir"] = os_module.path.dirname(src)
            seen["dst_dir"] = os_module.path.dirname(dst)
            return real_replace(src, dst)

        monkeypatch.setattr("os.replace", spying_replace)
        db = Database()
        db.create("r", 1)
        save_database(db, str(tmp_path / "db.json"))
        assert seen["src_dir"] == seen["dst_dir"]
