"""The differential fuzz harness itself stays green and wired up."""

from repro.cli import main
from repro.engine.fuzz import SCENARIOS, run_fuzz


class TestRunFuzz:
    def test_small_run_has_zero_divergences(self):
        report = run_fuzz(12, deep_every=12)
        assert report.ok, report.summary()
        assert report.seeds == 12
        assert report.checks > 0
        # Every scenario family gets exercised across the cycle.
        assert set(report.per_scenario) == set(SCENARIOS)

    def test_deterministic_across_runs(self):
        a = run_fuzz(6, deep_every=0)
        b = run_fuzz(6, deep_every=0)
        assert a.checks == b.checks
        assert a.per_scenario == b.per_scenario

    def test_scenario_filter_and_validation(self):
        report = run_fuzz(4, scenarios=("alias", "atoms"))
        assert set(report.per_scenario) <= {"alias", "atoms"}
        try:
            run_fuzz(1, scenarios=("nope",))
        except ValueError as error:
            assert "nope" in str(error)
        else:
            raise AssertionError("unknown scenario accepted")


class TestCli:
    def test_fuzz_subcommand_smoke(self, capsys):
        assert main(["fuzz", "--seeds", "5", "--deep-every", "5"]) == 0
        out = capsys.readouterr().out
        assert "zero divergences" in out
