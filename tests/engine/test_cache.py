"""PlanCache edge cases: LRU order, invalidation scope, zero capacity,
stats accounting.

These poke the cache's storage layer directly (arbitrary hashable keys
+ hand-built :class:`CacheEntry` values), independent of the executors
— the executor-facing behaviour is covered in ``test_exec.py`` and
``test_batch.py``.
"""

from __future__ import annotations

import pytest

from repro.engine.exec import CacheEntry, PlanCache
from repro.types.values import CVSet, Tup


def entry(*relations: str, rows: int = 1) -> CacheEntry:
    return CacheEntry(
        CVSet(Tup((i,)) for i in range(rows)),
        rows,
        (("scan", 0),),
        frozenset(relations),
    )


class TestLRUOrder:
    def test_eviction_is_least_recently_used(self):
        cache = PlanCache(capacity=3)
        for key in ("a", "b", "c"):
            cache.put(key, entry("r"))
        # Touch "a": it becomes most-recent; "b" is now the LRU entry.
        assert cache.get("a") is not None
        cache.put("d", entry("r"))
        assert cache.get("b") is None
        for key in ("a", "c", "d"):
            assert cache.get(key) is not None, key

    def test_interleaved_get_put_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("a", entry("r"))
        cache.put("b", entry("r"))
        assert cache.get("a") is not None  # a most-recent
        cache.put("c", entry("r"))  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        cache.put("d", entry("r"))  # evicts c (a was just touched)
        assert cache.get("c") is None
        assert cache.get("a") is not None

    def test_re_put_refreshes_position_and_value(self):
        cache = PlanCache(capacity=2)
        cache.put("a", entry("r", rows=1))
        cache.put("b", entry("r"))
        cache.put("a", entry("s", rows=3))  # refresh: new entry, new LRU slot
        cache.put("c", entry("r"))  # evicts b, not the refreshed a
        assert cache.get("b") is None
        got = cache.get("a")
        assert got is not None and len(got.value) == 3
        # The old entry's relation back-pointer must not linger: "a" now
        # reads only "s", so invalidating "r" must keep it.
        cache.invalidate("r")
        assert cache.get("a") is not None
        cache.invalidate("s")
        assert cache.get("a") is None


class TestInvalidationScope:
    def test_invalidate_leaves_unrelated_entries(self):
        cache = PlanCache()
        cache.put("on_r", entry("r"))
        cache.put("on_s", entry("s"))
        cache.put("on_rs", entry("r", "s"))
        cache.invalidate("r")
        assert cache.get("on_r") is None
        assert cache.get("on_rs") is None  # reads r too
        assert cache.get("on_s") is not None
        assert len(cache) == 1

    def test_invalidate_unknown_relation_is_noop(self):
        cache = PlanCache()
        cache.put("k", entry("r"))
        cache.invalidate("nope")
        assert cache.get("k") is not None

    def test_invalidate_all_clears_everything(self):
        cache = PlanCache()
        cache.put("k1", entry("r"))
        cache.put("k2", entry("s"))
        cache.invalidate()
        assert len(cache) == 0
        assert cache.get("k1") is None and cache.get("k2") is None


class TestZeroCapacity:
    @pytest.mark.parametrize("capacity", [0, -1, -256])
    def test_put_is_noop_and_get_always_misses(self, capacity):
        cache = PlanCache(capacity=capacity)
        cache.put("k", entry("r"))
        assert len(cache) == 0
        assert cache.get("k") is None
        assert cache.misses == 1 and cache.hits == 0
        assert cache.stats()["entries"] == 0


class TestStats:
    def test_stats_and_hit_rate_after_reset(self):
        cache = PlanCache()
        cache.put("k", entry("r"))
        assert cache.get("k") is not None
        assert cache.get("missing") is None
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
            "puts": 1,
            "evictions": 0,
            "invalidations": 0,
            "corruptions": 0,
            "maintained": 0,
            "maintain_fallback": 0,
            "entries": 1,
            "views": 0,
            "capacity": 256,
        }
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.puts == 0 and cache.evictions == 0
        assert cache.invalidations == 0
        assert cache.hit_rate == 0.0  # no division-by-zero on empty stats
        assert cache.stats()["hit_rate"] == 0.0
        assert cache.stats()["entries"] == 1  # reset touches stats only
        assert cache.get("k") is not None
        assert cache.stats()["hits"] == 1 and cache.stats()["hit_rate"] == 1.0

    def test_put_evict_invalidate_counters(self):
        cache = PlanCache(capacity=2)
        cache.put("a", entry("r"))
        cache.put("b", entry("r"))
        cache.put("c", entry("r"))  # evicts "a" (LRU)
        assert cache.puts == 3 and cache.evictions == 1
        cache.invalidate("r")  # drops "b" and "c"
        assert cache.invalidations == 2
        cache.invalidate("r")  # nothing left to drop: counts nothing
        assert cache.invalidations == 2
        cache.put("d", entry("s"))
        cache.clear()  # full clear counts each dropped entry
        assert cache.invalidations == 3
        # Zero-capacity caches never store, so never put/evict.
        disabled = PlanCache(capacity=0)
        disabled.put("k", entry("r"))
        assert disabled.puts == 0 and disabled.evictions == 0
