"""Batch-mode executor parity tests.

``execute_batch`` (reached via ``execute_streaming(mode="batch")`` and
``Database.run(mode="batch")``) carries the same contract as the
streaming engine: identical ``CVSet`` answer, identical total work,
identical per-node ledger as the reference interpreter — for every
plan, every database shape, every cache state — while sharing the
streaming engine's semantic cache keys, so entries written by either
executor are hits for the other.
"""

import random

import pytest

from repro.engine.database import Database
from repro.engine.exec import PlanCache, execute_batch, execute_streaming
from repro.engine.workload import (
    deep_chain_plan,
    random_atom_database,
    random_nested_database,
    random_plan,
)
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Project,
    Scan,
    Select,
    Union,
)
from repro.types.values import CVSet, Tup
from tests.conftest import NAMES, assert_equivalent


class TestBatchEquivalence:
    def test_random_plans_match_reference(self, plan_pair):
        """Random plan/db pairs: batch cold, fresh-cache cold and warm
        all agree with the reference, including work and ledger."""
        for seed in range(80):
            plan, db = plan_pair(20260807 + seed)
            cache = PlanCache()
            assert_equivalent(
                plan, db,
                execute_batch(plan, db),
                execute_batch(plan, db, cache=cache),
                execute_batch(plan, db, cache=cache),  # warm
            )

    def test_nested_value_databases(self):
        rng = random.Random(7)
        for _ in range(25):
            db = random_nested_database(rng, NAMES)
            plan = random_plan(rng, NAMES, depth=rng.randint(1, 3))
            assert_equivalent(plan, db, execute_batch(plan, db))

    def test_atom_relations(self):
        """Bare-atom elements: weight falls back to 1 per element and
        widths stay unknown; set ops must still match exactly."""
        rng = random.Random(8)
        for _ in range(15):
            db = random_atom_database(rng, NAMES)
            op = rng.choice((Union, Difference, Intersect))
            plan = op(Scan(rng.choice(NAMES)), Scan(rng.choice(NAMES)))
            assert_equivalent(plan, db, execute_batch(plan, db))

    def test_empty_projection_width_zero(self):
        """``pi[]`` makes zero-length tuples whose weight is 1, not 0."""
        db = {"r": CVSet({Tup((1, 2)), Tup((3, 4))})}
        plan = Project((), Scan("r"))
        assert_equivalent(plan, db, execute_batch(plan, db))

    def test_deep_chain_is_stack_safe(self):
        rng = random.Random(9)
        plan = deep_chain_plan(rng, "r", 2000)
        db = {"r": CVSet({Tup((1, 2)), Tup((3, 4))})}
        assert_equivalent(plan, db, execute_batch(plan, db))

    def test_join_shapes(self):
        """Empty-``on`` (all pairs), single-pair, and multi-pair joins."""
        db = {
            "a": CVSet(Tup((i, i % 3)) for i in range(8)),
            "b": CVSet(Tup((i % 3, i)) for i in range(6)),
        }
        for on in ((), ((0, 0),), ((0, 0), (1, 1))):
            plan = Join(on, Scan("a"), Scan("b"))
            assert_equivalent(plan, db, execute_batch(plan, db))

    def test_cse_shared_subtree(self):
        """A repeated subtree is computed once and its ledger spliced."""
        db = {
            "r": CVSet(Tup((i, i)) for i in range(6)),
            "s": CVSet(Tup((i, 0)) for i in range(3)),
        }
        shared = Union(Scan("r"), Scan("s"))
        plan = Difference(
            MapNode("id", lambda t: t, shared, injective=True), shared
        )
        assert_equivalent(plan, db, execute_batch(plan, db))


class TestModeDispatch:
    def test_streaming_entrypoint_routes_batch(self):
        db = {"r": CVSet({Tup((1, 2))})}
        plan = Project((0,), Scan("r"))
        assert_equivalent(
            plan, db, execute_streaming(plan, db, mode="batch")
        )

    def test_unknown_mode_rejected(self):
        db = {"r": CVSet({Tup((1, 2))})}
        with pytest.raises(ValueError, match="mode"):
            execute_streaming(Scan("r"), db, mode="vectorized")


class TestCacheInterop:
    def test_batch_writes_streaming_hits(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(5))}
        plan = Project((0,), Scan("r"))
        cache = PlanCache()
        execute_batch(plan, db, cache=cache)
        cache.reset_stats()
        result = execute_streaming(plan, db, cache=cache)
        assert cache.hits >= 1
        assert_equivalent(plan, db, result)

    def test_streaming_writes_batch_hits(self):
        db = {"r": CVSet(Tup((i, i)) for i in range(5))}
        plan = Project((0,), Scan("r"))
        cache = PlanCache()
        execute_streaming(plan, db, cache=cache)
        cache.reset_stats()
        result = execute_batch(plan, db, cache=cache)
        assert cache.hits >= 1
        assert_equivalent(plan, db, result)

    def test_predicate_work_skipped_on_warm_run(self):
        calls = 0

        def counting(t):
            nonlocal calls
            calls += 1
            return True

        db = {"r": CVSet(Tup((i,)) for i in range(5))}
        plan = Select("counting", counting, Scan("r"))
        cache = PlanCache()
        execute_batch(plan, db, cache=cache)
        assert calls == 5
        second = execute_batch(plan, db, cache=cache)
        assert calls == 5  # served from cache
        assert_equivalent(plan, db, second)


class TestDatabaseBatchRun:
    def test_run_mode_batch_with_maintained_stats(self, hr_db):
        db = hr_db()
        plan = Project((0,), Difference(Scan("employees"),
                                        Scan("students")))
        result = db.run(plan, use_cache=False, mode="batch")
        assert_equivalent(plan, db.relations, result)

    def test_prebuilt_join_index_path(self):
        db = Database()
        db.create("e", 3)
        db.insert("e", [(i, i % 5, i * 2) for i in range(40)])
        db.create("k", 2)
        db.insert("k", [(i % 5, str(i)) for i in range(10)])
        plan = Join(((1, 0),), Scan("e"), Scan("k"))
        result = db.run(plan, use_cache=False, mode="batch")
        assert_equivalent(plan, db.relations, result)

    def test_stats_survive_mutation(self):
        """Insert + wholesale replacement keep weights/widths honest."""
        db = Database()
        db.create("r", 2)
        db.insert("r", [(i, i) for i in range(6)])
        plan = Union(Scan("r"), Scan("r"))
        assert_equivalent(
            plan, db.relations, db.run(plan, use_cache=False, mode="batch")
        )
        db.insert("r", [(9, 9), (10, 10)])
        assert_equivalent(
            plan, db.relations, db.run(plan, use_cache=False, mode="batch")
        )
        db["r"] = CVSet({Tup((1,)), Tup((1, 2, 3)), "atom"})
        assert db.relation_width("r") is None
        assert_equivalent(
            plan, db.relations, db.run(plan, use_cache=False, mode="batch")
        )
