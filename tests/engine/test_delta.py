"""Semi-naive delta maintenance of cached plan results.

Covers the maintainability analyzer (genericity classes), in-place
patching of ``PlanCache`` entries on insert (re-keying, fresh seals,
counters), the Difference right-delta forced invalidation, the
maintenance fault site's degradation contract, the byte-identity
property over random insert sequences, and the incremental stats-memo
satellite (``mode="auto"`` no longer recomputes full stats per write).
"""

import random

import pytest

from repro.engine.database import Database
from repro.engine.exec import PlanCache, entry_seal
from repro.engine.exec.delta import (
    DELTA_MONOTONE,
    OPAQUE,
    SEMI_MAINTAINABLE,
    DeltaError,
    MaintainedView,
    analyze_plan,
    classify,
)
from repro.engine.workload import random_plan
from repro.optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.robustness import FaultInjector, FaultPlan
from repro.types.values import cvset, tup
from tests.conftest import NAMES as _NAMES


def _even(t):
    return t[0] % 2 == 0


def _swap(t):
    return tup(t[1], t[0])


def _assert_parity(db, plan, mode="stream"):
    got = db.run(plan, mode=mode)
    want = db.run_reference(plan)
    assert got.value == want.value
    assert got.work == want.work
    assert got.per_node == want.per_node


class TestAnalyzer:
    def test_monotone_operators_classified(self):
        scan = Scan("r")
        for node in (
            scan,
            Project((0,), scan),
            Select("even", _even, scan),
            MapNode("swap", _swap, scan),
            Union(scan, Scan("s")),
            Intersect(scan, Scan("s")),
            Product(scan, Scan("s")),
            Join(((0, 0),), scan, Scan("s")),
        ):
            assert classify(node) == DELTA_MONOTONE

    def test_difference_is_semi_maintainable(self):
        assert classify(Difference(Scan("r"), Scan("s"))) == (
            SEMI_MAINTAINABLE
        )

    def test_unknown_node_is_opaque(self):
        class Mystery(Plan):
            pass

        assert classify(Mystery()) == OPAQUE
        report = analyze_plan(Mystery())
        assert not report.maintainable
        assert not report.maintainable_for("r")

    def test_right_of_difference_forces_recompute(self):
        plan = Difference(Scan("r"), Project((0,), Scan("s")))
        report = analyze_plan(plan)
        assert report.maintainable
        assert report.recompute_relations == frozenset({"s"})
        assert report.maintainable_for("r")
        assert not report.maintainable_for("s")

    def test_relation_on_both_sides_not_maintainable(self):
        plan = Difference(Scan("r"), Scan("r"))
        assert not analyze_plan(plan).maintainable_for("r")

    def test_class_counts_surfaced(self):
        plan = Difference(Union(Scan("r"), Scan("s")), Scan("t"))
        report = analyze_plan(plan)
        assert report.classes[SEMI_MAINTAINABLE] == 1
        assert report.classes[DELTA_MONOTONE] == 4  # union + 3 scans


class TestMaintainedEntries:
    def test_insert_patches_entry_instead_of_invalidating(self, small_db):
        db = small_db
        plan = Project((0,), Scan("r"))
        db.run(plan)  # populate
        puts_before = db.plan_cache.puts
        db.insert("r", [(8, 9)])
        assert db.plan_cache.maintained >= 1
        assert db.plan_cache.maintain_fallback == 0
        # The warm re-run is served from the patched entry: a hit, no
        # new put, and byte-identical to cold recomputation.
        hits_before = db.plan_cache.hits
        _assert_parity(db, plan)
        assert db.plan_cache.hits == hits_before + 1
        assert db.plan_cache.puts == puts_before

    def test_counters_in_stats(self, small_db):
        db = small_db
        plan = Union(Scan("r"), Scan("s"))
        db.run(plan)
        db.insert("r", [(9, 9)])
        stats = db.plan_cache.stats()
        assert stats["maintained"] >= 1
        assert stats["maintain_fallback"] == 0
        db.plan_cache.reset_stats()
        stats = db.plan_cache.stats()
        assert stats["maintained"] == 0
        assert stats["maintain_fallback"] == 0

    def test_patched_entry_reseals(self, small_db):
        """In-place patching must stamp a fresh, valid seal: the warm
        hit revalidates it, so a stale seal would surface as a
        corruption + miss."""
        db = small_db
        plan = Select("even", _even, Scan("r"))
        db.run(plan)
        db.insert("r", [(8, 1)])
        assert db.plan_cache.maintained == 1
        cache = db.plan_cache
        ((key, entry),) = list(cache._entries.items())
        assert entry.seal == entry_seal(
            entry.value, entry.work, entry.entries
        )
        assert cache.corruptions == 0
        _assert_parity(db, plan)
        assert cache.corruptions == 0  # revalidation passed

    def test_patched_entry_rekeyed_under_new_fingerprint(self, small_db):
        db = small_db
        plan = Project((1,), Scan("r"))
        db.run(plan)
        (old_key,) = list(db.plan_cache._entries)
        db.insert("r", [(7, 7)])
        (new_key,) = list(db.plan_cache._entries)
        assert new_key != old_key
        assert new_key[0] == old_key[0]  # same semantic token
        assert new_key == db.plan_cache.key_for(plan, db.relations)

    def test_difference_right_delta_invalidates(self, small_db):
        db = small_db
        plan = Difference(Scan("r"), Scan("s"))
        db.run(plan)
        assert len(db.plan_cache) == 1
        db.insert("s", [(1, 2)])  # right-side delta: must invalidate
        assert len(db.plan_cache) == 0
        assert db.plan_cache.maintained == 0
        assert db.plan_cache.invalidations == 1
        # Plain invalidation is *expected* behaviour, not a fallback.
        assert db.plan_cache.maintain_fallback == 0
        _assert_parity(db, plan)

    def test_difference_left_delta_maintains(self, small_db):
        db = small_db
        plan = Difference(Scan("r"), Scan("s"))
        db.run(plan)
        db.insert("r", [(6, 7), (9, 9)])  # (6,7) is subtracted away
        assert db.plan_cache.maintained == 1
        _assert_parity(db, plan)

    def test_join_delta_both_sides(self, small_db):
        db = small_db
        plan = Join(((1, 0),), Scan("r"), Scan("s"))
        db.run(plan)
        db.insert("r", [(0, 2), (0, 6)])
        db.insert("s", [(3, 0), (5, 5)])
        assert db.plan_cache.maintained == 2
        _assert_parity(db, plan)

    def test_maintenance_disabled_restores_invalidation(self, small_db):
        db = small_db
        db.plan_cache.maintenance_enabled = False
        plan = Project((0,), Scan("r"))
        db.run(plan)
        db.insert("r", [(8, 9)])
        assert db.plan_cache.maintained == 0
        assert len(db.plan_cache) == 0
        assert db.plan_cache.invalidations == 1
        _assert_parity(db, plan)

    def test_eviction_drops_view_state(self):
        cache = PlanCache(capacity=1)
        db = Database(cache_capacity=1)
        db.create("r", 2)
        db.insert("r", [(1, 2)])
        p1 = Project((0,), Scan("r"))
        p2 = Project((1,), Scan("r"))
        db.run(p1)
        db.run(p2)  # evicts p1's entry
        assert len(db.plan_cache) == 1
        assert len(db.plan_cache._views) == 1
        db.plan_cache.invalidate(None)
        assert not db.plan_cache._views
        assert cache is not db.plan_cache  # sanity

    def test_entry_without_plan_invalidates(self, small_db):
        """Entries put without a plan (no view registered) fall back to
        plain invalidation on insert."""
        db = small_db
        plan = Project((0,), Scan("r"))
        key = db.plan_cache.key_for(plan, db.relations)
        result = db.run_reference(plan)
        from repro.engine.exec.cache import CacheEntry

        db.plan_cache.put(
            key,
            CacheEntry(
                result.value,
                result.work,
                tuple(result.per_node),
                frozenset({"r"}),
            ),
        )
        db.insert("r", [(8, 9)])
        assert len(db.plan_cache) == 0
        assert db.plan_cache.maintained == 0
        assert db.plan_cache.maintain_fallback == 0


class TestMaintenanceFaults:
    def test_injected_fault_degrades_to_invalidation(self, small_db):
        db = small_db
        plan = Project((0,), Scan("r"))
        db.run(plan)
        db.fault_injector = FaultInjector(
            FaultPlan(seed=1, maintenance_rate=1.0)
        )
        db.insert("r", [(8, 9)])  # fault fires inside maintain()
        assert db.plan_cache.maintain_fallback == 1
        assert db.plan_cache.maintained == 0
        assert len(db.plan_cache) == 0
        db.fault_injector = None
        _assert_parity(db, plan)  # recomputes cold, identical answer

    def test_fallback_counter_in_metrics(self, small_db):
        from repro.obs.metrics import REGISTRY

        before = REGISTRY.snapshot().get("counters", {}).get(
            "robustness.maintenance.fallback", 0
        )
        db = small_db
        plan = Union(Scan("r"), Scan("s"))
        db.run(plan)
        db.fault_injector = FaultInjector(
            FaultPlan(seed=2, maintenance_rate=1.0)
        )
        db.insert("r", [(8, 9)])
        after = REGISTRY.snapshot().get("counters", {}).get(
            "robustness.maintenance.fallback", 0
        )
        assert after == before + 1


class TestMaintainedView:
    def test_apply_refuses_unmaintainable_relation(self):
        view = MaintainedView(Difference(Scan("r"), Scan("s")))
        with pytest.raises(DeltaError):
            view.apply("s", [tup(1, 2)], {})

    def test_result_requires_bootstrap(self):
        view = MaintainedView(Scan("r"))
        with pytest.raises(DeltaError):
            view.result()

    def test_incremental_matches_reference_per_step(self, small_db):
        db = small_db
        plan = Union(
            Join(((0, 0),), Scan("r"), Scan("s")),
            Product(Project((0,), Scan("r")), Scan("t")),
        )
        view = MaintainedView(plan)
        view.apply("r", [], db.relations)  # bootstrap
        rng = random.Random(11)
        for _ in range(5):
            name = rng.choice(_NAMES)
            rows = [
                (rng.randrange(7), rng.randrange(7))
                for _ in range(rng.randint(1, 3))
            ]
            db.plan_cache.maintenance_enabled = False  # isolate the view
            db.insert(name, rows)
            view.apply(name, [tup(*row) for row in rows], db.relations)
            want = db.run_reference(plan)
            value, work, entries = view.result()
            assert value == want.value
            assert work == want.work
            assert list(entries) == want.per_node


class TestByteIdentityProperty:
    """After any insert sequence, a maintained cached value is
    byte-identical to cold recomputation, in every executor mode."""

    @pytest.mark.parametrize("mode", ["stream", "batch", "compiled", "auto"])
    def test_random_insert_sequences(self, mode):
        rng = random.Random(hash(mode) % 10_000)
        for trial in range(5):
            db = Database()
            for name in _NAMES:
                db.create(name, 2)
                db.insert(
                    name,
                    {
                        (rng.randrange(5), rng.randrange(5))
                        for _ in range(rng.randint(2, 8))
                    },
                )
            plans = [
                random_plan(rng, _NAMES, depth=rng.randint(1, 4))
                for _ in range(4)
            ]
            for plan in plans:
                db.run(plan, mode=mode)
            for _ in range(4):
                victim = rng.choice(_NAMES)
                db.insert(
                    victim,
                    [
                        (rng.randrange(6), rng.randrange(6))
                        for _ in range(rng.randint(1, 3))
                    ],
                )
                for plan in plans:
                    _assert_parity(db, plan, mode=mode)
            assert db.plan_cache.maintain_fallback == 0


class TestIncrementalStats:
    def test_stats_not_recomputed_per_insert(self, small_db, monkeypatch):
        """``mode="auto"`` must not pay a full ``Stats.from_database``
        pass after every write: the stats memo is refreshed in place."""
        from repro.optimizer import cost

        db = small_db
        calls = {"n": 0}
        original = cost.Stats.from_database.__func__

        def counting(cls, database):
            calls["n"] += 1
            return original(cls, database)

        monkeypatch.setattr(
            cost.Stats, "from_database", classmethod(counting)
        )
        plan = Join(((0, 0),), Scan("r"), Scan("s"))
        db.run(plan, mode="auto")
        assert calls["n"] == 1
        for i in range(5):
            db.insert("r", [(20 + i, i)])
            db.run(plan, mode="auto")
        assert calls["n"] == 1  # never recomputed wholesale

    def test_incremental_stats_match_cold_stats(self, small_db):
        from repro.optimizer.cost import Stats

        db = small_db
        db.run(Scan("r"), mode="auto")  # warm the memo
        db.insert("r", [(11, 12), (11, 13)])
        db.insert("s", [(0, 0)])
        incremental = db.current_stats()
        cold = Stats.from_database(db)
        assert incremental.rows == cold.rows
        assert incremental.widths == cold.widths
        assert incremental.distincts == cold.distincts

    def test_wholesale_replacement_still_recomputes(self, small_db):
        db = small_db
        first = db.current_stats()
        db["r"] = cvset(tup(1, 1))
        second = db.current_stats()
        assert second is not first
        assert second.rows["r"] == 1

    def test_distincts_maintained_incrementally(self, small_db):
        db = small_db
        assert db.column_distincts("r") == {0: 3, 1: 3}
        db.insert("r", [(9, 2)])  # new col-0 value, old col-1 value
        assert db.column_distincts("r") == {0: 4, 1: 3}
        assert db._distincts["r"] == {0: 4, 1: 3}  # refreshed, not dropped
