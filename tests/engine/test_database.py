"""Tests for the in-memory database engine."""

import pytest

from repro.engine.database import Database, SchemaError
from repro.optimizer.plan import Project, Scan
from repro.types.values import CVSet, cvset, tup


@pytest.fixture()
def db():
    d = Database()
    d.create("people", 2, keys=[(0,)])
    d.insert("people", [(1, "ada"), (2, "bob")])
    return d


class TestSchema:
    def test_create_and_insert(self, db):
        assert len(db["people"]) == 2
        assert tup(1, "ada") in db["people"]

    def test_unknown_relation_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("ghost", [(1, "x")])

    def test_arity_enforced(self, db):
        with pytest.raises(SchemaError):
            db.insert("people", [(1,)])

    def test_key_enforced(self, db):
        with pytest.raises(SchemaError):
            db.insert("people", [(1, "eve")])  # duplicate key, new tuple

    def test_idempotent_reinsert_ok(self, db):
        db.insert("people", [(1, "ada")])  # same tuple: no violation
        assert len(db["people"]) == 2

    def test_keyless_relation_allows_duplicates(self):
        d = Database()
        d.create("log", 2)
        d.insert("log", [(1, "a"), (1, "b")])
        assert len(d["log"]) == 2


class TestOperations:
    def test_active_domain(self, db):
        assert db.active_domain() == frozenset({1, 2, "ada", "bob"})

    def test_run_plan(self, db):
        result = db.run(Project((1,), Scan("people")))
        assert result.value == cvset(tup("ada"), tup("bob"))

    def test_contains_and_setitem(self, db):
        assert "people" in db
        db["extra"] = cvset(tup(9, "x"))
        assert "extra" in db

    def test_snapshot_is_shallow_copy(self, db):
        snap = db.snapshot()
        db["people"] = CVSet()
        assert len(snap["people"]) == 2

    def test_repr(self, db):
        assert "people[2]" in repr(db)

    def test_signature_defaults_to_standard(self, db):
        assert "even" in db.signature

    def test_query_text(self, db):
        result = db.query("pi[2](people)")
        assert result.value == cvset(tup("ada"), tup("bob"))

    def test_query_text_optimized(self, db):
        plain = db.query("pi[1](people U people)")
        optimized = db.query("pi[1](people U people)", optimize=True)
        assert plain.value == optimized.value


class TestIncrementalMaintenance:
    """Physical state maintained incrementally on insert (PR 1)."""

    def test_key_validated_incrementally_against_index(self, db):
        # Index exists after the first validated insert...
        db.insert("people", [(3, "cyd")])
        assert (0,) in db._eq_indexes.get("people", {})
        # ...and a conflicting batch is rejected without mutating.
        with pytest.raises(SchemaError):
            db.insert("people", [(4, "dan"), (3, "not-cyd")])
        assert len(db["people"]) == 3

    def test_batch_internal_key_conflict_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("people", [(7, "x"), (7, "y")])
        assert len(db["people"]) == 2

    def test_setitem_violation_caught_on_next_insert(self, db):
        from repro.types.values import CVSet
        from repro.types.values import tup as t
        db["people"] = CVSet([t(1, "ada"), t(1, "imposter")])
        with pytest.raises(SchemaError):
            db.insert("people", [(5, "eve")])

    def test_active_domain_incremental(self, db):
        assert db.active_domain() == frozenset({1, 2, "ada", "bob"})
        db.insert("people", [(3, "cyd")])
        assert db.active_domain() == frozenset({1, 2, 3, "ada", "bob", "cyd"})
        db["people"] = cvset(tup(9, "zoe"))
        assert db.active_domain() == frozenset({9, "zoe"})

    def test_equality_index_maintained_on_insert(self, db):
        index = db.equality_index("people", (0,))
        assert set(index) == {(1,), (2,)}
        db.insert("people", [(3, "cyd")])
        assert set(db.equality_index("people", (0,))) == {(1,), (2,), (3,)}

    def test_fingerprint_changes_with_content(self, db):
        before = db.fingerprint("people")
        db.insert("people", [(3, "cyd")])
        assert db.fingerprint("people") != before

    def test_relation_weight_incremental(self, db):
        assert db.relation_weight("people") == 4
        db.insert("people", [(3, "cyd")])
        assert db.relation_weight("people") == 6


class TestIndexScoping:
    """Insert-time index maintenance touches only the inserted
    relation's indexes (PR 2)."""

    def test_insert_updates_only_target_relation_index(self, db):
        db.create("log", 2)
        db.insert("log", [(1, "a")])
        db.equality_index("log", (0,))
        log_index_before = {
            k: list(v) for k, v in db.equality_index("log", (0,)).items()
        }
        db.insert("people", [(3, "cyd")])
        assert {
            k: list(v) for k, v in db.equality_index("log", (0,)).items()
        } == log_index_before
        assert (3,) in db.equality_index("people", (0,))

    def test_insert_never_reads_other_relations_indexes(self, db):
        db.create("log", 2)

        class Poison(dict):
            def items(self):
                raise AssertionError(
                    "insert iterated another relation's indexes"
                )

        db._eq_indexes["log"] = Poison()
        db.insert("people", [(4, "dan")])  # must not touch log's indexes
        assert tup(4, "dan") in db["people"]


class TestWidthSeeding:
    """Width caching must survive the empty-relation window (the
    ``_widths[name] = None`` poisoning regression)."""

    def test_create_seeds_width_with_declared_arity(self):
        d = Database()
        d.create("r", 3)
        assert d.relation_width("r") == 3

    def test_width_queried_while_empty_not_poisoned_by_insert(self):
        d = Database()
        d.create("r", 2)
        # Query the width during the empty window; then populate.
        assert d.relation_width("r") == 2
        d.insert("r", [(1, 2), (3, 4)])
        assert d.relation_width("r") == 2  # regression: was None forever

    def test_width_after_empty_wholesale_replacement(self):
        d = Database()
        d.create("r", 2)
        d["r"] = CVSet()  # drops the seeded width
        assert d.relation_width("r") is None  # measured while empty
        d.insert("r", [(5, 6)])
        assert d.relation_width("r") == 2  # un-poisoned by the insert

    def test_genuinely_mixed_width_still_none(self):
        d = Database()
        d.create("r", 2)
        d["r"] = cvset(tup(1, 2, 3))  # arity-3 rows smuggled in
        assert d.relation_width("r") == 3
        d.insert("r", [(7, 8)])  # arity-2 per the declared schema
        assert d.relation_width("r") is None  # now truly mixed

    def test_batch_weight_accounting_uses_seeded_width(self):
        d = Database()
        d.create("r", 2)
        assert d.relation_width("r") == 2
        d.insert("r", [(1, 2), (2, 3)])
        assert d.relation_stats("r") == (4, 2)


class TestUnknownRelationIndexProbe:
    """``equality_index`` on an unknown name must not cache a
    stale-empty index (the create-after-probe regression)."""

    def test_probe_before_create_returns_empty_uncached(self):
        d = Database()
        index = d.equality_index("ghost", (0,))
        assert index == {}
        assert "ghost" not in d._eq_indexes

    def test_create_after_probe_sees_fresh_rows(self):
        d = Database()
        d.equality_index("late", (0,))  # probe while unknown
        d.create("late", 2)
        d.insert("late", [(1, "a"), (2, "b")])
        assert set(d.equality_index("late", (0,))) == {(1,), (2,)}

    def test_stale_empty_index_no_longer_possible_via_direct_assignment(self):
        d = Database()
        d.equality_index("late", (0,))
        # Even a raw relations-dict write (bypassing __setitem__'s
        # invalidation) can't be shadowed by a pre-create cached index.
        d.relations["late"] = cvset(tup(1, "a"))
        assert set(d.equality_index("late", (0,))) == {(1,)}

    def test_probe_does_not_grow_index_table(self):
        d = Database()
        for i in range(50):
            d.equality_index(f"ghost{i}", (0,))
        assert d._eq_indexes == {}


class TestWholesaleReplacement:
    """``db[name] = ...`` must drop every memo keyed on the relation:
    stats, mode decisions, widths, distincts, compiled artifacts."""

    def _plan(self):
        return Project((0,), Scan("people"))

    def test_stats_memo_invalidated(self, db):
        first = db.current_stats()
        assert db.current_stats() is first  # memoized within generation
        db["people"] = cvset(tup(9, "zoe"))
        second = db.current_stats()
        assert second is not first
        assert second.rows["people"] == 1

    def test_mode_memo_invalidated(self, db):
        plan = self._plan()
        decision = db.plan_mode(plan)
        assert db.plan_mode(plan) is decision  # memoized within generation
        db["people"] = cvset(tup(9, "zoe"))
        assert db.plan_mode(plan) is not decision

    def test_widths_recomputed_from_new_contents(self, db):
        assert db.relation_width("people") == 2
        db["people"] = cvset(tup(1, 2, 3))
        assert db.relation_width("people") == 3

    def test_distincts_recomputed(self, db):
        assert db.column_distincts("people") == {0: 2, 1: 2}
        db["people"] = cvset(tup(1, "x"), tup(1, "y"))
        assert db.column_distincts("people") == {0: 1, 1: 2}

    def test_result_cache_invalidated_across_generations(self, db):
        plan = self._plan()
        first = db.run(plan)
        db["people"] = cvset(tup(9, "zoe"))
        second = db.run(plan)
        assert second.value == cvset(tup(9))
        assert second.value != first.value

    def test_compiled_artifact_invalidated(self, db):
        plan = self._plan()
        db.run(plan, mode="compiled", use_cache=False)
        puts_before = db.plan_cache.compiled_puts
        assert puts_before >= 1
        db.run(plan, mode="compiled", use_cache=False)
        assert db.plan_cache.compiled_puts == puts_before  # artifact hit
        db["people"] = cvset(tup(9, "zoe"))
        result = db.run(plan, mode="compiled", use_cache=False)
        # Replacement dropped the artifact: a fresh compile happened,
        # and the recompiled program reads the new contents.
        assert db.plan_cache.compiled_puts == puts_before + 1
        assert result.value == cvset(tup(9))

    def test_generation_bumped_per_replacement(self, db):
        generation = db._generation
        db["people"] = cvset(tup(9, "zoe"))
        db["people"] = cvset(tup(8, "amy"))
        assert db._generation == generation + 2


class TestPlanModeMemo:
    """The per-(plan identity, generation) executor-choice memo is
    keyed by ``id(plan)`` — safe only because each entry pins the plan
    object it was computed for.  These pin the two halves of that
    guard against regression."""

    def _plan(self):
        return Project((0,), Scan("people"))

    def test_id_reuse_cannot_serve_a_stale_decision(self, db):
        # Simulate CPython reusing a freed plan's id for a new plan:
        # the memo slot holds a *different* object than the probe.
        plan = self._plan()
        other = self._plan()
        sentinel = object()
        db._mode_memo[id(plan)] = (db._generation, other, sentinel)
        decision = db.plan_mode(plan)
        assert decision is not sentinel
        # The recomputation also fixed the slot to pin the right plan.
        assert db._mode_memo[id(plan)][1] is plan

    def test_memo_entry_keeps_the_plan_alive(self, db):
        # The identity guard only works if a memoized plan cannot be
        # garbage-collected (freeing its id for reuse) while its entry
        # is live: the entry must hold a strong reference.
        plan = self._plan()
        db.plan_mode(plan)
        entry = db._mode_memo[id(plan)]
        assert entry[1] is plan

    def test_generation_bump_invalidates(self, db):
        plan = self._plan()
        first = db.plan_mode(plan)
        assert db.plan_mode(plan) is first  # memo hit
        db.insert("people", [(7, "gus")])
        db.plan_mode(plan)  # recomputed, not served stale
        assert db._mode_memo[id(plan)][0] == db._generation
