"""Tests for the in-memory database engine."""

import pytest

from repro.engine.database import Database, SchemaError
from repro.optimizer.plan import Project, Scan
from repro.types.values import CVSet, cvset, tup


@pytest.fixture()
def db():
    d = Database()
    d.create("people", 2, keys=[(0,)])
    d.insert("people", [(1, "ada"), (2, "bob")])
    return d


class TestSchema:
    def test_create_and_insert(self, db):
        assert len(db["people"]) == 2
        assert tup(1, "ada") in db["people"]

    def test_unknown_relation_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("ghost", [(1, "x")])

    def test_arity_enforced(self, db):
        with pytest.raises(SchemaError):
            db.insert("people", [(1,)])

    def test_key_enforced(self, db):
        with pytest.raises(SchemaError):
            db.insert("people", [(1, "eve")])  # duplicate key, new tuple

    def test_idempotent_reinsert_ok(self, db):
        db.insert("people", [(1, "ada")])  # same tuple: no violation
        assert len(db["people"]) == 2

    def test_keyless_relation_allows_duplicates(self):
        d = Database()
        d.create("log", 2)
        d.insert("log", [(1, "a"), (1, "b")])
        assert len(d["log"]) == 2


class TestOperations:
    def test_active_domain(self, db):
        assert db.active_domain() == frozenset({1, 2, "ada", "bob"})

    def test_run_plan(self, db):
        result = db.run(Project((1,), Scan("people")))
        assert result.value == cvset(tup("ada"), tup("bob"))

    def test_contains_and_setitem(self, db):
        assert "people" in db
        db["extra"] = cvset(tup(9, "x"))
        assert "extra" in db

    def test_snapshot_is_shallow_copy(self, db):
        snap = db.snapshot()
        db["people"] = CVSet()
        assert len(snap["people"]) == 2

    def test_repr(self, db):
        assert "people[2]" in repr(db)

    def test_signature_defaults_to_standard(self, db):
        assert "even" in db.signature

    def test_query_text(self, db):
        result = db.query("pi[2](people)")
        assert result.value == cvset(tup("ada"), tup("bob"))

    def test_query_text_optimized(self, db):
        plain = db.query("pi[1](people U people)")
        optimized = db.query("pi[1](people U people)", optimize=True)
        assert plain.value == optimized.value


class TestIncrementalMaintenance:
    """Physical state maintained incrementally on insert (PR 1)."""

    def test_key_validated_incrementally_against_index(self, db):
        # Index exists after the first validated insert...
        db.insert("people", [(3, "cyd")])
        assert (0,) in db._eq_indexes.get("people", {})
        # ...and a conflicting batch is rejected without mutating.
        with pytest.raises(SchemaError):
            db.insert("people", [(4, "dan"), (3, "not-cyd")])
        assert len(db["people"]) == 3

    def test_batch_internal_key_conflict_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("people", [(7, "x"), (7, "y")])
        assert len(db["people"]) == 2

    def test_setitem_violation_caught_on_next_insert(self, db):
        from repro.types.values import CVSet
        from repro.types.values import tup as t
        db["people"] = CVSet([t(1, "ada"), t(1, "imposter")])
        with pytest.raises(SchemaError):
            db.insert("people", [(5, "eve")])

    def test_active_domain_incremental(self, db):
        assert db.active_domain() == frozenset({1, 2, "ada", "bob"})
        db.insert("people", [(3, "cyd")])
        assert db.active_domain() == frozenset({1, 2, 3, "ada", "bob", "cyd"})
        db["people"] = cvset(tup(9, "zoe"))
        assert db.active_domain() == frozenset({9, "zoe"})

    def test_equality_index_maintained_on_insert(self, db):
        index = db.equality_index("people", (0,))
        assert set(index) == {(1,), (2,)}
        db.insert("people", [(3, "cyd")])
        assert set(db.equality_index("people", (0,))) == {(1,), (2,), (3,)}

    def test_fingerprint_changes_with_content(self, db):
        before = db.fingerprint("people")
        db.insert("people", [(3, "cyd")])
        assert db.fingerprint("people") != before

    def test_relation_weight_incremental(self, db):
        assert db.relation_weight("people") == 4
        db.insert("people", [(3, "cyd")])
        assert db.relation_weight("people") == 6


class TestIndexScoping:
    """Insert-time index maintenance touches only the inserted
    relation's indexes (PR 2)."""

    def test_insert_updates_only_target_relation_index(self, db):
        db.create("log", 2)
        db.insert("log", [(1, "a")])
        db.equality_index("log", (0,))
        log_index_before = {
            k: list(v) for k, v in db.equality_index("log", (0,)).items()
        }
        db.insert("people", [(3, "cyd")])
        assert {
            k: list(v) for k, v in db.equality_index("log", (0,)).items()
        } == log_index_before
        assert (3,) in db.equality_index("people", (0,))

    def test_insert_never_reads_other_relations_indexes(self, db):
        db.create("log", 2)

        class Poison(dict):
            def items(self):
                raise AssertionError(
                    "insert iterated another relation's indexes"
                )

        db._eq_indexes["log"] = Poison()
        db.insert("people", [(4, "dan")])  # must not touch log's indexes
        assert tup(4, "dan") in db["people"]
