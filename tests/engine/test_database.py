"""Tests for the in-memory database engine."""

import pytest

from repro.engine.database import Database, SchemaError
from repro.optimizer.plan import Project, Scan, Union
from repro.types.values import CVSet, cvset, tup


@pytest.fixture()
def db():
    d = Database()
    d.create("people", 2, keys=[(0,)])
    d.insert("people", [(1, "ada"), (2, "bob")])
    return d


class TestSchema:
    def test_create_and_insert(self, db):
        assert len(db["people"]) == 2
        assert tup(1, "ada") in db["people"]

    def test_unknown_relation_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("ghost", [(1, "x")])

    def test_arity_enforced(self, db):
        with pytest.raises(SchemaError):
            db.insert("people", [(1,)])

    def test_key_enforced(self, db):
        with pytest.raises(SchemaError):
            db.insert("people", [(1, "eve")])  # duplicate key, new tuple

    def test_idempotent_reinsert_ok(self, db):
        db.insert("people", [(1, "ada")])  # same tuple: no violation
        assert len(db["people"]) == 2

    def test_keyless_relation_allows_duplicates(self):
        d = Database()
        d.create("log", 2)
        d.insert("log", [(1, "a"), (1, "b")])
        assert len(d["log"]) == 2


class TestOperations:
    def test_active_domain(self, db):
        assert db.active_domain() == frozenset({1, 2, "ada", "bob"})

    def test_run_plan(self, db):
        result = db.run(Project((1,), Scan("people")))
        assert result.value == cvset(tup("ada"), tup("bob"))

    def test_contains_and_setitem(self, db):
        assert "people" in db
        db["extra"] = cvset(tup(9, "x"))
        assert "extra" in db

    def test_snapshot_is_shallow_copy(self, db):
        snap = db.snapshot()
        db["people"] = CVSet()
        assert len(snap["people"]) == 2

    def test_repr(self, db):
        assert "people[2]" in repr(db)

    def test_signature_defaults_to_standard(self, db):
        assert "even" in db.signature

    def test_query_text(self, db):
        result = db.query("pi[2](people)")
        assert result.value == cvset(tup("ada"), tup("bob"))

    def test_query_text_optimized(self, db):
        plain = db.query("pi[1](people U people)")
        optimized = db.query("pi[1](people U people)", optimize=True)
        assert plain.value == optimized.value
