"""Tests for the exhaustive (exact) verification tier."""


from repro.algebra.operators import (
    eq_adom,
    hat_select_eq,
    projection,
    select_eq,
    self_cross,
    union_op,
)
from repro.genericity.exhaustive import all_values_of, exhaustive_check
from repro.mappings.extensions import REL, STRONG
from repro.types.ast import BOOL, INT, bag_of, list_of, set_of


class TestValueEnumeration:
    def test_base(self):
        assert list(all_values_of(INT, {"int": [1, 2]})) == [1, 2]

    def test_bool_defaults(self):
        assert set(all_values_of(BOOL, {})) == {True, False}

    def test_product_counts(self):
        values = list(all_values_of(INT * INT, {"int": [0, 1]}))
        assert len(values) == 4

    def test_set_counts(self):
        values = list(all_values_of(set_of(INT), {"int": [0, 1]}, 2))
        # {} {0} {1} {0,1}
        assert len(values) == 4

    def test_list_counts(self):
        values = list(all_values_of(list_of(INT), {"int": [0, 1]}, 2))
        # lengths 0,1,2: 1 + 2 + 4
        assert len(values) == 7

    def test_bag_counts(self):
        values = list(all_values_of(bag_of(INT), {"int": [0, 1]}, 2))
        # sizes 0,1,2 with repetition: 1 + 2 + 3
        assert len(values) == 6

    def test_nested(self):
        values = list(
            all_values_of(set_of(set_of(INT)), {"int": [0]}, 2)
        )
        # inner: {}, {0}; outer subsets of those up to size 2: 4
        assert len(values) == 4


class TestExactVerdicts:
    """Complete case analyses — finite proofs at domain size 2."""

    def test_projection_generic_everywhere_exactly(self):
        # Strong mode relates far fewer pairs (maximality), so only a
        # lower coverage bar applies there.
        for mode, min_pairs in ((REL, 100), (STRONG, 20)):
            report = exhaustive_check(projection((0,), 2), mode, 2, 2)
            assert report.generic, report
            assert report.pairs_checked > min_pairs

    def test_cross_generic_exactly(self):
        report = exhaustive_check(self_cross(), REL, 2, 2)
        assert report.generic

    def test_selection_violations_exactly_non_injective(self):
        # Every violating mapping must be non-injective; injective
        # mappings admit none.
        report = exhaustive_check(
            select_eq(0, 1, 2), REL, 2, 2, max_violations=100
        )
        assert not report.generic
        assert all(not m.is_functional() or not m.is_injective()
                   for m, _v, _p in report.violations)
        clean = exhaustive_check(
            select_eq(0, 1, 2), REL, 2, 2,
            mapping_filter=lambda m: m.is_injective(),
        )
        assert clean.generic

    def test_hat_selection_strong_generic_exactly(self):
        report = exhaustive_check(hat_select_eq(0, 1, 2), STRONG, 2, 2)
        assert report.generic

    def test_hat_selection_rel_not_generic(self):
        report = exhaustive_check(hat_select_eq(0, 1, 2), REL, 2, 2)
        assert not report.generic

    def test_eq_adom_split_exactly(self):
        rel_report = exhaustive_check(eq_adom(), REL, 2, 2)
        assert rel_report.generic
        strong_report = exhaustive_check(eq_adom(), STRONG, 2, 2)
        assert not strong_report.generic

    def test_union_generic_exactly(self):
        report = exhaustive_check(union_op(), REL, 2, 2, max_collection=1)
        assert report.generic

    def test_report_repr(self):
        report = exhaustive_check(projection((0,), 2), REL, 2, 2)
        assert "generic" in repr(report)
        assert "mappings" in repr(report)
