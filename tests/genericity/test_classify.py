"""Tests for the classification machinery (the Section 3 table)."""

import pytest

from repro.algebra.operators import (
    eq_adom,
    hat_select_eq,
    projection,
    select_eq,
    self_cross,
)
from repro.genericity.classify import classification_table, classify
from repro.mappings.extensions import REL, STRONG


class TestClassify:
    def test_projection_generic_everywhere(self):
        row = classify(projection((0,), 2), trials=10)
        assert all(v.generic for v in row.verdicts)

    def test_selection_profile(self):
        row = classify(select_eq(0, 1, 2), trials=40)
        assert not row.cell("all", REL).generic
        assert not row.cell("functional", REL).generic
        assert row.cell("injective", REL).generic
        assert row.cell("bijective", STRONG).generic

    def test_negative_verdicts_carry_verified_witnesses(self):
        row = classify(select_eq(0, 1, 2), trials=40)
        for verdict in row.verdicts:
            if not verdict.generic:
                assert verdict.witness_verified

    def test_tightest_class(self):
        row = classify(select_eq(0, 1, 2), trials=40)
        tightest = row.tightest(REL)
        assert tightest is not None
        assert tightest.name == "injective"
        row2 = classify(projection((0,), 2), trials=10)
        assert row2.tightest(REL).name == "all"

    def test_eq_adom_mode_split(self):
        row = classify(eq_adom(), trials=60)
        assert row.cell("all", REL).generic
        assert not row.cell("all", STRONG).generic

    def test_hat_select_strong_generic(self):
        row = classify(hat_select_eq(0, 1, 2), trials=40)
        assert row.cell("all", STRONG).generic
        assert not row.cell("all", REL).generic

    def test_unknown_cell_raises(self):
        row = classify(projection((0,), 2), trials=5)
        with pytest.raises(KeyError):
            row.cell("nope", REL)

    def test_verdict_labels(self):
        row = classify(select_eq(0, 1, 2), trials=40)
        labels = {v.label() for v in row.verdicts}
        assert any("NOT generic" in label for label in labels)
        assert any(label.startswith("generic") for label in labels)


class TestTable:
    def test_table_over_catalog(self):
        rows = classification_table(
            [projection((0,), 2), self_cross()], trials=8
        )
        assert len(rows) == 2
        assert {r.query_name for r in rows} == {"pi[1]", "RxR"}
