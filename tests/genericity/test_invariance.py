"""Tests for invariance checking (Definition 2.9)."""

import random


from repro.algebra.operators import projection, select_eq, self_compose
from repro.genericity.invariance import (
    check_invariance,
    instantiate_at,
    related_pair,
    sample_image,
    strong_repair,
)
from repro.mappings.extensions import (
    REL,
    STRONG,
    ListRel,
    ProductRel,
    SetRelExt,
    SetStrongExt,
)
from repro.mappings.families import MappingFamily
from repro.mappings.mapping import Mapping
from repro.types.ast import INT, STR, Product, set_of, tvar
from repro.types.values import cvlist, cvset, tup


def h() -> Mapping:
    return Mapping({(1, 10), (1, 11), (2, 11), (3, 12)}, INT, INT)


class TestSampleImage:
    def test_base_level(self):
        rng = random.Random(0)
        y = sample_image(h(), 1, rng)
        assert y in (10, 11)

    def test_no_image_returns_none(self):
        assert sample_image(h(), 99, random.Random(0)) is None

    def test_product(self):
        rel = ProductRel((h(), h()))
        out = sample_image(rel, tup(1, 3), random.Random(0))
        assert out is not None
        assert rel.holds(tup(1, 3), out)

    def test_list(self):
        rel = ListRel(h())
        out = sample_image(rel, cvlist(1, 2, 3), random.Random(0))
        assert rel.holds(cvlist(1, 2, 3), out)

    def test_set_rel_always_valid(self):
        rel = SetRelExt(h())
        rng = random.Random(0)
        for _ in range(50):
            out = sample_image(rel, cvset(1, 2, 3), rng)
            assert out is not None
            assert rel.holds(cvset(1, 2, 3), out)

    def test_set_with_unmappable_element(self):
        rel = SetRelExt(h())
        assert sample_image(rel, cvset(1, 99), random.Random(0)) is None

    def test_strong_unique(self):
        rel = SetStrongExt(h())
        out = sample_image(rel, cvset(3), random.Random(0))
        assert out == cvset(12)


class TestStrongRepair:
    def test_drops_unmappable(self):
        rel = SetStrongExt(h())
        repaired = strong_repair(rel, cvset(3, 99))
        assert repaired == cvset(3)

    def test_saturates_to_closure(self):
        # {1} is not closed (2 shares image 11); repair saturates.
        rel = SetStrongExt(h())
        repaired = strong_repair(rel, cvset(1))
        assert repaired is not None
        assert next(rel.images(repaired), None) is not None

    def test_nested_sets(self):
        rel = SetStrongExt(SetStrongExt(h()))
        repaired = strong_repair(rel, cvset(cvset(3)))
        assert repaired is not None
        image = next(rel.images(repaired), None)
        assert image is not None
        assert rel.holds(repaired, image)


class TestRelatedPair:
    def test_rel_pairs_validate(self):
        fam = MappingFamily({"int": h()})
        rel = fam.extend(set_of(INT * INT), REL)
        rng = random.Random(0)
        pair = related_pair(rel, cvset(tup(1, 2)), REL, rng)
        assert pair is not None
        assert rel.holds(*pair)

    def test_strong_pairs_validate(self):
        fam = MappingFamily({"int": h()})
        rel = fam.extend(set_of(INT * INT), STRONG)
        rng = random.Random(0)
        pair = related_pair(rel, cvset(tup(3, 3)), STRONG, rng)
        assert pair is not None
        assert rel.holds(*pair)

    def test_unmappable_input_skipped(self):
        fam = MappingFamily({"int": Mapping(set(), INT, INT)})
        rel = fam.extend(set_of(INT), REL)
        assert related_pair(rel, cvset(5), REL, random.Random(0)) is None


class TestInstantiateAt:
    def test_replaces_all_variables(self):
        t = set_of(Product((tvar("X1"), tvar("X2"))))
        assert instantiate_at(t, INT) == set_of(INT * INT)

    def test_closed_type_unchanged(self):
        assert instantiate_at(set_of(STR), INT) == set_of(STR)


class TestCheckInvariance:
    def test_projection_invariant(self):
        fam = MappingFamily({"int": h()})
        inputs = [cvset(tup(1, 2), tup(2, 3)), cvset(tup(3, 3))]
        for mode in (REL, STRONG):
            report = check_invariance(projection((0,), 2), fam, mode, inputs)
            assert report.invariant, report
            assert report.pairs_checked > 0

    def test_selection_violated_under_splitting(self):
        # Non-injective h' that splits equal values breaks sigma $1=$2.
        split = Mapping({(0, 1), (0, 2)}, INT, INT)
        fam = MappingFamily({"int": split})
        report = check_invariance(
            select_eq(0, 1, 2),
            fam,
            REL,
            [cvset(tup(0, 0))],
            rng=random.Random(3),
        )
        # Not every sampled partner splits; try several seeds.
        found = not report.invariant
        for seed in range(10):
            if found:
                break
            report = check_invariance(
                select_eq(0, 1, 2), fam, REL, [cvset(tup(0, 0))],
                rng=random.Random(seed),
            )
            found = not report.invariant
        assert found

    def test_witness_shape(self):
        split = Mapping({(0, 1), (0, 2)}, INT, INT)
        fam = MappingFamily({"int": split})
        witness = None
        for seed in range(20):
            report = check_invariance(
                select_eq(0, 1, 2), fam, REL, [cvset(tup(0, 0))],
                rng=random.Random(seed),
            )
            if report.witness:
                witness = report.witness
                break
        assert witness is not None
        r1, r2 = witness.input_pair
        in_rel = fam.extend(instantiate_at(select_eq(0, 1, 2).input_type, INT), REL)
        assert in_rel.holds(r1, r2)

    def test_unmappable_inputs_count_skipped(self):
        fam = MappingFamily({"int": Mapping(set(), INT, INT)})
        report = check_invariance(
            projection((0,), 2), fam, REL, [cvset(tup(5, 5))]
        )
        assert report.pairs_skipped == 1
        assert report.pairs_checked == 0
        assert report.invariant  # vacuously

    def test_example_2_2_end_to_end(self):
        # The paper's own instance through the generic machinery.
        from repro.engine.workload import paper_h_pairs, paper_r1

        fam = MappingFamily({"str": Mapping(paper_h_pairs(), STR, STR)})
        report = check_invariance(
            self_compose(), fam, STRONG, [paper_r1()],
            base=STR,
        )
        assert report.invariant
