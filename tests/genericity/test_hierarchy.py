"""Tests for the genericity-class lattice (Sections 2.3-2.5)."""

import random

import pytest

from repro.genericity.hierarchy import (
    STANDARD_LATTICE,
    GenericitySpec,
    constrain_to_unary_predicate,
    force_preserve_constant,
    spec_leq,
)
from repro.mappings.families import (
    ConstantSpec,
    preserves_constant,
    strictly_preserves_constant,
)
from repro.mappings.mapping import Mapping
from repro.types.ast import BOOL, INT
from repro.types.signatures import standard_signature


class TestForcePreserveConstant:
    def test_regular_adds_pair(self):
        h = Mapping({(1, 2)}, INT, INT)
        out = force_preserve_constant(h, ConstantSpec(7, INT))
        assert preserves_constant(out, 7)
        assert out.holds(1, 2)

    def test_strict_removes_associations(self):
        h = Mapping({(7, 8), (3, 7), (1, 2)}, INT, INT)
        out = force_preserve_constant(h, ConstantSpec(7, INT, strict=True))
        assert strictly_preserves_constant(out, 7)
        assert not out.holds(7, 8)
        assert not out.holds(3, 7)
        assert out.holds(1, 2)


class TestConstrainToPredicate:
    def test_filters_disagreeing_pairs(self):
        sig = standard_signature()
        h = Mapping({(0, 2), (0, 3), (1, 3)}, INT, INT)
        out = constrain_to_unary_predicate(h, sig["even"])
        assert out.holds(0, 2)
        assert not out.holds(0, 3)
        assert out.holds(1, 3)

    def test_binary_rejected(self):
        sig = standard_signature()
        h = Mapping({(0, 2)}, INT, INT)
        with pytest.raises(ValueError):
            constrain_to_unary_predicate(h, sig["lt"])


class TestGenerateFamily:
    def test_class_membership(self):
        rng = random.Random(0)
        for spec in STANDARD_LATTICE:
            fam = spec.generate_family(rng)
            if spec.mapping_class == "functional":
                assert fam.is_functional()
            if spec.mapping_class == "injective":
                assert fam.is_injective()
            if spec.mapping_class == "bijective":
                assert fam.is_bijective()
            if spec.mapping_class == "total_surjective":
                assert fam.is_total() and fam.is_surjective()

    def test_constants_preserved(self):
        rng = random.Random(0)
        spec = GenericitySpec(
            "c", "functional",
            constants=(ConstantSpec(7, INT, strict=True),),
        )
        for _ in range(20):
            fam = spec.generate_family(rng)
            assert strictly_preserves_constant(fam["int"], 7)

    def test_constant_in_both_domains(self):
        rng = random.Random(1)
        spec = GenericitySpec(
            "c", "functional", constants=(ConstantSpec(7, INT),)
        )
        fam = spec.generate_family(rng)
        assert 7 in fam["int"].source_domain
        assert 7 in fam["int"].target_domain

    def test_unary_predicate_constraint(self):
        sig = standard_signature()
        sig.add_symbol("eq7", (INT,), BOOL, lambda x: x == 7)
        rng = random.Random(0)
        spec = GenericitySpec("p", "all", predicates=("eq7",))
        for _ in range(10):
            fam = spec.generate_family(rng, signature=sig)
            for x, y in fam["int"].pairs():
                assert (x == 7) == (y == 7)

    def test_predicate_needs_signature(self):
        spec = GenericitySpec("p", "all", predicates=("even",))
        with pytest.raises(ValueError):
            spec.generate_family(random.Random(0))

    def test_same_domain(self):
        rng = random.Random(0)
        spec = GenericitySpec("s", "functional", same_domain=True)
        fam = spec.generate_family(rng)
        assert fam["int"].source_domain == fam["int"].target_domain

    def test_str_representation(self):
        spec = GenericitySpec(
            "x", "injective",
            constants=(ConstantSpec(7, INT, strict=True),),
            predicates=("even",),
        )
        text = str(spec)
        assert "injective" in text
        assert "strict preserve 7" in text
        assert "preserve even" in text


class TestLatticeOrder:
    def test_bijective_below_everything(self):
        bijective = STANDARD_LATTICE[-1]
        for spec in STANDARD_LATTICE:
            assert spec_leq(bijective, spec)

    def test_all_above_everything(self):
        top = STANDARD_LATTICE[0]
        for spec in STANDARD_LATTICE:
            assert spec_leq(spec, top)

    def test_incomparable_classes(self):
        ts = GenericitySpec("t", "total_surjective")
        inj = GenericitySpec("i", "injective")
        assert not spec_leq(ts, inj)
        assert not spec_leq(inj, ts)

    def test_lattice_order_matches_paper_path(self):
        # "from all mappings, to functional mappings, then to one-to-one"
        all_ = GenericitySpec("a", "all")
        fun = GenericitySpec("f", "functional")
        inj = GenericitySpec("i", "injective")
        assert spec_leq(fun, all_)
        assert spec_leq(inj, fun)
        assert spec_leq(inj, all_)
