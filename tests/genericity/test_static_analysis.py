"""Tests for the static genericity analyzer."""

import pytest

from repro.genericity.static_analysis import (
    ClassBound,
    Profile,
    analyze_plan,
)
from repro.optimizer.plan import (
    Difference,
    Join,
    MapNode,
    Plan,
    Project,
    Scan,
    Select,
    Union,
)
from repro.types.values import Tup


class TestLattice:
    def test_meet_takes_minimum(self):
        assert ClassBound.ALL.meet(ClassBound.INJECTIVE) is ClassBound.INJECTIVE
        assert ClassBound.INJECTIVE.meet(ClassBound.NONE) is ClassBound.NONE
        assert ClassBound.ALL.meet(ClassBound.ALL) is ClassBound.ALL

    def test_profile_meet_componentwise(self):
        a = Profile(ClassBound.ALL, ClassBound.INJECTIVE)
        b = Profile(ClassBound.INJECTIVE, ClassBound.ALL)
        met = a.meet(b)
        assert met.rel is ClassBound.INJECTIVE
        assert met.strong is ClassBound.INJECTIVE

    def test_labels(self):
        assert ClassBound.ALL.label() == "all"
        assert ClassBound.NONE.label() == "none"


class TestAnalyzePlan:
    def test_fully_generic_composition(self):
        plan = Project((0,), Union(Scan("r"), Scan("s")))
        profile = analyze_plan(plan)
        assert profile.rel is ClassBound.ALL
        assert profile.strong is ClassBound.ALL

    def test_difference_caps_rel_side(self):
        plan = Project((0,), Difference(Scan("r"), Scan("s")))
        profile = analyze_plan(plan)
        assert profile.rel is ClassBound.INJECTIVE
        assert profile.strong is ClassBound.ALL

    def test_join_caps_both_sides(self):
        plan = Join(((0, 0),), Scan("r"), Scan("s"))
        profile = analyze_plan(plan)
        assert profile.rel is ClassBound.INJECTIVE
        assert profile.strong is ClassBound.INJECTIVE

    def test_opaque_select_drops_to_none(self):
        plan = Select("p", lambda t: True, Union(Scan("r"), Scan("s")))
        profile = analyze_plan(plan)
        assert profile.rel is ClassBound.NONE

    def test_map_drops_to_none(self):
        plan = MapNode("f", lambda t: Tup((t[0],)), Scan("r"))
        assert analyze_plan(plan).strong is ClassBound.NONE

    def test_caps_propagate_upward(self):
        # A difference buried deep still caps the whole plan's rel side.
        plan = Union(
            Project((0,), Scan("r")),
            Project((0,), Difference(Scan("r"), Scan("s"))),
        )
        assert analyze_plan(plan).rel is ClassBound.INJECTIVE

    def test_unknown_node_rejected(self):
        class Rogue(Plan):
            pass

        with pytest.raises(TypeError):
            analyze_plan(Rogue())


class TestSoundnessSpotCheck:
    """E-STATIC runs the full sweep; one cell here as a unit test."""

    def test_promised_cell_holds_dynamically(self):
        from repro.experiments.static_check import plan_as_query
        from repro.genericity.hierarchy import GenericitySpec
        from repro.genericity.witnesses import find_counterexample
        from repro.mappings.extensions import STRONG

        plan = Difference(Scan("R"), Scan("S"))
        assert analyze_plan(plan).strong is ClassBound.ALL
        query = plan_as_query(plan, ("R", "S"))
        search = find_counterexample(
            query, GenericitySpec("all", "all"), STRONG, trials=30
        )
        assert not search.found
