"""Tests for counterexample search."""


from repro.algebra.operators import projection, select_eq
from repro.genericity.hierarchy import GenericitySpec
from repro.genericity.invariance import instantiate_at
from repro.genericity.witnesses import find_counterexample, verify_witness
from repro.mappings.extensions import REL, STRONG
from repro.types.ast import INT


ALL = GenericitySpec("all", "all")
INJECTIVE = GenericitySpec("injective", "injective")


class TestSearch:
    def test_finds_violation_for_selection(self):
        result = find_counterexample(select_eq(0, 1, 2), ALL, REL, trials=100)
        assert result.found
        assert result.trials <= 100

    def test_no_violation_for_projection(self):
        result = find_counterexample(projection((0,), 2), ALL, REL, trials=40)
        assert not result.found
        assert result.pairs_checked > 0

    def test_injective_class_protects_selection(self):
        result = find_counterexample(
            select_eq(0, 1, 2), INJECTIVE, REL, trials=60
        )
        assert not result.found

    def test_strong_mode_search(self):
        result = find_counterexample(select_eq(0, 1, 2), ALL, STRONG, trials=150)
        assert result.found

    def test_fixed_inputs_used(self):
        from repro.types.values import cvset, tup

        result = find_counterexample(
            select_eq(0, 1, 2), ALL, REL, trials=100,
            fixed_inputs=[cvset(tup(0, 0))],
        )
        assert result.found

    def test_repr(self):
        result = find_counterexample(projection((0,), 2), ALL, REL, trials=5)
        assert "pi[1]" in repr(result)


class TestVerifyWitness:
    def test_found_witnesses_verify(self):
        q = select_eq(0, 1, 2)
        result = find_counterexample(q, ALL, REL, trials=100)
        assert result.found
        in_type = instantiate_at(q.input_type, INT)
        out_type = instantiate_at(q.output_type, INT)
        assert verify_witness(q, result.witness, in_type, out_type)

    def test_bogus_witness_rejected(self):
        # A witness claiming a violation for an invariant query on
        # unrelated inputs must fail verification.
        q = projection((0,), 2)
        real = find_counterexample(select_eq(0, 1, 2), ALL, REL, trials=100)
        in_type = instantiate_at(q.input_type, INT)
        out_type = instantiate_at(q.output_type, INT)
        assert not verify_witness(q, real.witness, in_type, out_type)
