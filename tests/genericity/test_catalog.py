"""Tests for the curated classification catalog ("Table 1")."""

import pytest

from repro.genericity.catalog import PAPER_TABLE, CatalogEntry, expected_cell
from repro.mappings.extensions import REL, STRONG


class TestTableShape:
    def test_all_sections_covered(self):
        names = {entry.name for entry in PAPER_TABLE}
        for expected in ("projection", "union", "sigma-eq", "sigma-hat",
                         "difference", "eq_adom", "even", "powerset"):
            assert expected in names

    def test_factories_build_queries(self):
        for entry in PAPER_TABLE:
            query = entry.factory()
            assert query.name
            assert query.input_type is not None

    def test_every_entry_cites_a_source(self):
        for entry in PAPER_TABLE:
            assert entry.paper_source


class TestExpectations:
    def _entry(self, name: str) -> CatalogEntry:
        return next(e for e in PAPER_TABLE if e.name == name)

    def test_fully_generic_rows(self):
        for name in ("projection", "union", "cross", "flatten", "unnest"):
            entry = self._entry(name)
            assert expected_cell(entry, "all", REL) is True
            assert expected_cell(entry, "all", STRONG) is True

    def test_sigma_eq_profile(self):
        entry = self._entry("sigma-eq")
        assert expected_cell(entry, "all", REL) is False
        assert expected_cell(entry, "all", STRONG) is False
        assert expected_cell(entry, "injective", REL) is True

    def test_mode_separating_rows(self):
        # sigma-hat and eq_adom separate the hierarchies in opposite
        # directions — the paper's incomparability result.
        hat = self._entry("sigma-hat")
        eq = self._entry("eq_adom")
        assert expected_cell(hat, "all", STRONG) is True
        assert expected_cell(hat, "all", REL) is False
        assert expected_cell(eq, "all", REL) is True
        assert expected_cell(eq, "all", STRONG) is False

    def test_derived_nested_profiles(self):
        powerset = self._entry("powerset")
        singleton = self._entry("singleton")
        for entry in (powerset, singleton):
            assert expected_cell(entry, "all", REL) is True
            assert expected_cell(entry, "all", STRONG) is False
            assert expected_cell(entry, "injective", STRONG) is True

    def test_monotone_in_the_lattice(self):
        # Expectations must respect Prop 2.10: if generic for a larger
        # class, generic for every contained class.
        from repro.genericity.hierarchy import _CONTAINS

        for entry in PAPER_TABLE:
            for (cls, mode), generic in entry.expectation.items():
                if not generic:
                    continue
                for smaller in _CONTAINS[cls]:
                    value = entry.expectation.get((smaller, mode))
                    if value is not None:
                        assert value, (entry.name, cls, smaller, mode)


class TestMeasuredSpotChecks:
    """Light-weight spot checks; the full sweep is experiment E-TABLE1."""

    @pytest.mark.parametrize("name", ["projection", "sigma-eq"])
    def test_cells_match_measurement(self, name):
        from repro.genericity.classify import classify

        entry = next(e for e in PAPER_TABLE if e.name == name)
        row = classify(entry.factory(), trials=25)
        for verdict in row.verdicts:
            expected = expected_cell(entry, verdict.spec.name, verdict.mode)
            if expected is not None:
                assert verdict.generic == expected, (
                    name, verdict.spec.name, verdict.mode
                )
