"""Tests for the Church (Boehm-Berarducci) list encodings."""


from repro.lambda2.church import (
    church_foldr_use,
    church_list_type,
    church_nil,
    church_prelude_terms,
    decode_list,
    encode_list,
)
from repro.lambda2.eval import evaluate
from repro.lambda2.typecheck import synthesize
from repro.types.ast import INT, ForAll
from repro.types.values import CVList, cvlist


class TestTypes:
    def test_church_list_type_shape(self):
        t = church_list_type(INT)
        assert str(t) == "forall R. (int -> R -> R) -> R -> R"

    def test_terms_typecheck_at_declared_types(self):
        entries = church_prelude_terms()
        assert set(entries) == {"c_nil", "c_cons", "c_append"}

    def test_nil_synthesizes(self):
        t = synthesize(church_nil())
        assert isinstance(t, ForAll)

    def test_foldr_use_typechecks(self):
        term = church_foldr_use(INT)
        synthesize(term)


class TestSemantics:
    def test_roundtrip(self):
        for items in ([], [1], [1, 2, 3], [2, 2, 2]):
            l = CVList(items)
            assert decode_list(encode_list(l, INT), INT) == l

    def test_nil_decodes_empty(self):
        nil_value = evaluate(church_nil())[INT]
        assert decode_list(nil_value, INT) == cvlist()

    def test_cons_prepends(self):
        entries = church_prelude_terms()
        cons = evaluate(entries["c_cons"][0])[INT]
        tail = encode_list(cvlist(2, 3), INT)
        assert decode_list(cons(1)(tail), INT) == cvlist(1, 2, 3)

    def test_append_agrees_with_native(self):
        from repro.lambda2.prelude import build_prelude
        from repro.types.values import Tup

        entries = church_prelude_terms()
        church = evaluate(entries["c_append"][0])[INT]
        native = build_prelude().value("append")[INT]
        for xs, ys in [
            (cvlist(), cvlist()),
            (cvlist(1), cvlist(2, 3)),
            (cvlist(0, 0), cvlist(0)),
        ]:
            church_out = decode_list(
                church(encode_list(xs, INT))(encode_list(ys, INT)), INT
            )
            assert church_out == native(Tup((xs, ys)))

    def test_fold_is_type_application(self):
        # The encoding IS its own eliminator: instantiating at int and
        # supplying plus/0 computes the sum.
        enc = encode_list(cvlist(1, 2, 3), INT)
        component = enc.instantiate(INT)
        total = component(lambda h: lambda acc: h + acc)(0)
        assert total == 6
