"""Tests for the System F pretty printer."""

from repro.lambda2.parser import parse_term
from repro.lambda2.pretty import pretty
from repro.lambda2.prelude import build_prelude
from repro.lambda2.syntax import App, Lam, Lit, MkTuple, Proj, TLam, Var
from repro.types.ast import BOOL, INT, forall, func, tvar


class TestRendering:
    def test_literals(self):
        assert pretty(Lit(True, BOOL)) == "true"
        assert pretty(Lit(False, BOOL)) == "false"
        assert pretty(Lit(3, INT)) == "3"

    def test_application_spacing(self):
        assert pretty(App(Var("f"), Var("x"))) == "f x"

    def test_nested_application_parens(self):
        term = App(Var("f"), App(Var("g"), Var("x")))
        assert pretty(term) == "f (g x)"

    def test_lambda(self):
        assert pretty(Lam("x", INT, Var("x"))) == r"\x:int. x"

    def test_type_abstraction_with_eq(self):
        term = TLam("X", Var("x"), requires_eq=True)
        assert pretty(term) == r"/\X=. x"

    def test_binder_type_with_forall_parenthesized(self):
        t = forall("R", func(tvar("R"), tvar("R")))
        term = Lam("l", t, Var("l"))
        assert pretty(term) == r"\l:(forall R. R -> R). l"

    def test_tuple_and_projection(self):
        term = Proj(MkTuple((Var("a"), Var("b"))), 1)
        assert pretty(term) == "(a, b)#1"

    def test_lambda_in_argument_position_parenthesized(self):
        term = App(Var("f"), Lam("x", INT, Var("x")))
        assert pretty(term) == r"f (\x:int. x)"


class TestRoundtripOnPrelude:
    def test_all_derived_terms_roundtrip(self):
        prelude = build_prelude()
        for name, entry in prelude.entries.items():
            if entry.term is None:
                continue
            text = pretty(entry.term)
            reparsed = parse_term(text, set(prelude.entries) - {name})
            assert reparsed == entry.term, name
