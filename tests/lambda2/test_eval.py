"""Tests for the System F evaluator."""

import pytest

from repro.lambda2.eval import EvalError, evaluate
from repro.lambda2.syntax import (
    App,
    Const,
    Lit,
    MkTuple,
    Proj,
    Var,
    app,
    lam,
    tapp,
    tlam,
)
from repro.mappings.function_maps import PolyValue
from repro.types.ast import INT, tvar
from repro.types.values import Tup


X = tvar("X")


class TestCore:
    def test_literal(self):
        assert evaluate(Lit(3, INT)) == 3

    def test_identity_application(self):
        term = App(lam("x", INT, Var("x")), Lit(42, INT))
        assert evaluate(term) == 42

    def test_closure_captures(self):
        # (\x. \y. x) 1 2 == 1
        term = app(lam("x", INT, lam("y", INT, Var("x"))),
                   Lit(1, INT), Lit(2, INT))
        assert evaluate(term) == 1

    def test_unbound_variable(self):
        with pytest.raises(EvalError):
            evaluate(Var("ghost"))

    def test_environment_binding(self):
        assert evaluate(Var("x"), env={"x": 9}) == 9

    def test_applying_non_function(self):
        with pytest.raises(EvalError):
            evaluate(App(Lit(1, INT), Lit(2, INT)))


class TestPolymorphism:
    def test_tlam_yields_polyvalue(self):
        identity = tlam("X", lam("x", X, Var("x")))
        value = evaluate(identity)
        assert isinstance(value, PolyValue)
        assert value[INT](7) == 7

    def test_tapp_instantiates(self):
        identity = tlam("X", lam("x", X, Var("x")))
        component = evaluate(tapp(identity, INT))
        assert component("a") == "a"

    def test_erased_constant_passes_through_tapp(self):
        term = tapp(Const("k"), INT)
        assert evaluate(term, constants={"k": 5}) == 5

    def test_applying_polyvalue_directly_rejected(self):
        identity = tlam("X", lam("x", X, Var("x")))
        with pytest.raises(EvalError):
            evaluate(App(identity, Lit(1, INT)))


class TestTuples:
    def test_mk_and_project(self):
        pair = MkTuple((Lit(1, INT), Lit(2, INT)))
        assert evaluate(pair) == Tup((1, 2))
        assert evaluate(Proj(pair, 1)) == 2

    def test_projecting_non_tuple(self):
        with pytest.raises(EvalError):
            evaluate(Proj(Lit(1, INT), 0))


class TestConstants:
    def test_native_callable(self):
        term = App(Const("succ"), Lit(3, INT))
        assert evaluate(term, constants={"succ": lambda n: n + 1}) == 4

    def test_unknown_constant(self):
        with pytest.raises(EvalError):
            evaluate(Const("mystery"))
