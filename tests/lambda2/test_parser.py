"""Tests for the System F term parser."""

import pytest

from repro.lambda2.eval import evaluate
from repro.lambda2.parser import TermParseError, parse_term
from repro.lambda2.prelude import build_prelude
from repro.lambda2.syntax import App, Const, Lam, Lit, MkTuple, Proj, TApp, TLam, Var
from repro.lambda2.typecheck import check_term, synthesize
from repro.types.ast import BOOL, INT, func, tvar
from repro.types.parser import parse_type
from repro.types.values import Tup, cvlist


@pytest.fixture(scope="module")
def prelude():
    return build_prelude()


class TestBasicForms:
    def test_variable(self):
        assert parse_term("x") == Var("x")

    def test_literals(self):
        assert parse_term("42") == Lit(42, INT)
        assert parse_term("true") == Lit(True, BOOL)
        assert parse_term("false") == Lit(False, BOOL)

    def test_lambda(self):
        term = parse_term(r"\x:int. x")
        assert term == Lam("x", INT, Var("x"))

    def test_type_abstraction(self):
        term = parse_term(r"/\X. \x:X. x")
        assert term == TLam("X", Lam("x", tvar("X"), Var("x")))

    def test_eq_type_abstraction(self):
        term = parse_term(r"/\X=. \x:X=. x")
        assert isinstance(term, TLam)
        assert term.requires_eq

    def test_application_left_assoc(self):
        term = parse_term("f a b")
        assert term == App(App(Var("f"), Var("a")), Var("b"))

    def test_type_application(self):
        term = parse_term("f[int]")
        assert term == TApp(Var("f"), INT)

    def test_type_application_binds_tighter_than_application(self):
        # Standard System F precedence: `f nil[X]` is `f (nil[X])`.
        term = parse_term("f x[bool]")
        assert term == App(Var("f"), TApp(Var("x"), BOOL))

    def test_mixed_applications(self):
        term = parse_term("(f[int] x)[bool]")
        assert term == TApp(App(TApp(Var("f"), INT), Var("x")), BOOL)

    def test_tuples_and_projection(self):
        term = parse_term("(1, 2)#0")
        assert term == Proj(MkTuple((Lit(1, INT), Lit(2, INT))), 0)

    def test_grouping(self):
        term = parse_term(r"(\x:int. x) 3")
        assert evaluate(term) == 3


class TestBinderTypes:
    def test_complex_unparenthesized_type(self):
        term = parse_term(r"\p:<int> * <int>. p#0")
        assert synthesize(term) == func(
            parse_type("<int> * <int>"), parse_type("<int>")
        )

    def test_parenthesized_forall_type(self):
        term = parse_term(
            r"\l:(forall R. (int -> R -> R) -> R -> R). l"
        )
        t = synthesize(term)
        assert "forall R" in str(t)

    def test_missing_dot_rejected(self):
        with pytest.raises(TermParseError):
            parse_term(r"\x:int x")

    def test_empty_type_rejected(self):
        with pytest.raises(TermParseError):
            parse_term(r"\x:. x")


class TestConstantResolution:
    def test_free_names_become_constants(self, prelude):
        term = parse_term("succ 1", set(prelude.entries))
        assert term == App(Const("succ"), Lit(1, INT))

    def test_bound_names_stay_variables(self, prelude):
        term = parse_term(r"\succ:int. succ", set(prelude.entries))
        assert term == Lam("succ", INT, Var("succ"))

    def test_without_table_everything_is_var(self):
        assert parse_term("succ") == Var("succ")


class TestEndToEnd:
    def test_parsed_append_matches_prelude(self, prelude):
        text = (
            r"/\X. \p:<X> * <X>. "
            r"foldr[X][<X>] (\h:X. \t:<X>. cons[X] h t) (p#1) (p#0)"
        )
        term = parse_term(text, set(prelude.entries))
        check_term(term, parse_type("forall X. <X> * <X> -> <X>"),
                   prelude.context())
        value = evaluate(term, constants=prelude.constant_values())
        native = prelude.value("append")[INT]
        pair = Tup((cvlist(1, 2), cvlist(3)))
        assert value[INT](pair) == native(pair)

    def test_parsed_term_parametric(self, prelude):
        from repro.lambda2.parametricity import check_parametricity

        term = parse_term(r"/\X. \x:X. x")
        value = evaluate(term)
        report = check_parametricity(
            value, parse_type("forall X. X -> X"), "parsed-id"
        )
        assert report.parametric


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(TermParseError):
            parse_term("x @ y")

    def test_unterminated_type_application(self):
        with pytest.raises(TermParseError):
            parse_term("f[int")

    def test_trailing_garbage(self):
        with pytest.raises(TermParseError):
            parse_term("x )")
