"""Tests for syntactic normalization."""

import pytest

from repro.lambda2.normalize import (
    NormalizationError,
    free_vars,
    normalize,
    substitute,
)
from repro.lambda2.parser import parse_term
from repro.lambda2.syntax import App, Lam, Lit, Var, lam, tapp, tlam
from repro.types.ast import INT, tvar


class TestFreeVars:
    def test_var_free(self):
        assert free_vars(Var("x")) == {"x"}

    def test_lambda_binds(self):
        term = parse_term(r"\x:int. x y")
        assert free_vars(term) == {"y"}

    def test_literals_closed(self):
        assert free_vars(Lit(3, INT)) == frozenset()

    def test_through_tuples_and_projections(self):
        term = parse_term("(x, y)#0")
        assert free_vars(term) == {"x", "y"}


class TestSubstitution:
    def test_simple(self):
        assert substitute(Var("x"), "x", Lit(1, INT)) == Lit(1, INT)
        assert substitute(Var("y"), "x", Lit(1, INT)) == Var("y")

    def test_shadowing(self):
        term = parse_term(r"\x:int. x")
        assert substitute(term, "x", Lit(1, INT)) == term

    def test_capture_avoided(self):
        # (\y:int. x)[y / x] must NOT capture: the binder is renamed.
        term = parse_term(r"\y:int. x")
        out = substitute(term, "x", Var("y"))
        assert isinstance(out, Lam)
        assert out.var != "y"
        assert out.body == Var("y")


class TestNormalization:
    def test_beta(self):
        term = parse_term(r"(\x:int. x) 5")
        assert normalize(term) == Lit(5, INT)

    def test_type_beta(self):
        term = tapp(tlam("X", lam("x", tvar("X"), Var("x"))), INT)
        assert normalize(term) == lam("x", INT, Var("x"))

    def test_projection_redex(self):
        term = parse_term("(1, 2)#1")
        assert normalize(term) == Lit(2, INT)

    def test_normal_order_discards_unused_argument(self):
        # K combinator applied to a diverging-looking argument — normal
        # order never evaluates it.
        k = parse_term(r"(\x:int. \y:int. x) 1")
        out = normalize(App(k, Var("whatever")))
        assert out == Lit(1, INT)

    def test_reduction_under_binders(self):
        term = parse_term(r"\z:int. (\x:int. x) z")
        assert normalize(term) == parse_term(r"\z:int. z")

    def test_nested_redexes(self):
        term = parse_term(r"((\f:int -> int. f) (\x:int. x)) 9")
        assert normalize(term) == Lit(9, INT)

    def test_church_append_normalizes_to_fold_shape(self):
        # c_append l1 l2 unfolds so that l1's eliminator is at the head.
        from repro.lambda2.church import church_append

        term = tapp(church_append(), INT)
        out = normalize(term)
        # Normal form is a lambda awaiting the two lists.
        assert isinstance(out, Lam)

    def test_fuel_guard(self):
        # Untyped self-application loops; the fuel bound catches it.
        omega_half = Lam("x", INT, App(Var("x"), Var("x")))
        omega = App(omega_half, omega_half)
        with pytest.raises(NormalizationError):
            normalize(omega, fuel=50)

    def test_agrees_with_evaluator_on_closed_terms(self):
        from repro.lambda2.eval import evaluate

        for text in [
            r"(\x:int. x) 3",
            r"(1, (\x:int. x) 2)#1",
            r"(\p:int * int. p#0) (7, 8)",
        ]:
            term = parse_term(text)
            assert normalize(term) == Lit(evaluate(term), INT)
