"""Tests for the free-theorem generator."""

import pytest

from repro.lambda2.free_theorems import check_functional_instance, derive
from repro.lambda2.prelude import build_prelude
from repro.types.ast import INT
from repro.types.parser import parse_type
from repro.types.values import Tup, cvlist, cvset


@pytest.fixture(scope="module")
def prelude():
    return build_prelude()


class TestStatements:
    def test_append_statement_mentions_list_relation(self, prelude):
        theorem = derive("append", prelude.type_of("append"))
        assert "<X>" in theorem.statement
        assert "for all mappings X" in theorem.statement

    def test_eq_quantifier_noted(self, prelude):
        theorem = derive("difference", prelude.type_of("difference"))
        assert "injective mappings" in theorem.statement

    def test_count_law_uses_identity_output(self, prelude):
        theorem = derive("count", prelude.type_of("count"))
        assert "Id_int" in theorem.statement
        assert "id(count(x))" in theorem.functional_law.replace(" ", "") or \
            "id" in theorem.functional_law

    def test_set_types_render_rel_extension(self):
        theorem = derive("union", parse_type("forall X. {X} * {X} -> {X}"))
        assert "{X}^rel" in theorem.statement

    def test_str_roundtrip(self, prelude):
        theorem = derive("append", prelude.type_of("append"))
        text = str(theorem)
        assert "Free theorem for append" in text
        assert "Functional specialization" in text


class TestFunctionalInstances:
    def test_append_law_holds(self, prelude):
        theorem = derive("append", prelude.type_of("append"))
        violation = check_functional_instance(
            theorem,
            prelude.value("append")[INT],
            {"X": lambda v: v + 7},
            [Tup((cvlist(1, 2), cvlist(3))), Tup((cvlist(), cvlist()))],
        )
        assert violation is None

    def test_count_law_holds(self, prelude):
        theorem = derive("count", prelude.type_of("count"))
        violation = check_functional_instance(
            theorem,
            prelude.value("count")[INT],
            {"X": lambda v: v * 2},
            [cvlist(1, 2, 3), cvlist()],
        )
        assert violation is None

    def test_broken_function_caught(self, prelude):
        theorem = derive("count", prelude.type_of("count"))
        # A fake "count" that inspects elements breaks the law.
        fake = lambda l: sum(l)
        violation = check_functional_instance(
            theorem, fake, {"X": lambda v: v + 1}, [cvlist(1, 2)]
        )
        assert violation is not None
        x, lhs, rhs = violation
        assert lhs != rhs

    def test_union_law_through_sets(self):
        theorem = derive("union", parse_type("forall X. {X} * {X} -> {X}"))
        from repro.listset.setfuncs import set_union

        violation = check_functional_instance(
            theorem,
            set_union,
            {"X": lambda v: v % 2},
            [Tup((cvset(1, 2), cvset(3)))],
        )
        assert violation is None
