"""Tests for the System F type checker."""

import pytest

from repro.lambda2.syntax import (
    App,
    Const,
    Lit,
    MkTuple,
    Proj,
    Var,
    lam,
    tapp,
    tlam,
)
from repro.lambda2.typecheck import Context, TypeCheckError, check_term, synthesize
from repro.types.ast import (
    BOOL,
    INT,
    FuncType,
    Product,
    forall,
    func,
    list_of,
    tvar,
)
from repro.types.parser import parse_type


X = tvar("X")


class TestCore:
    def test_literal(self):
        assert synthesize(Lit(3, INT)) == INT

    def test_unbound_variable(self):
        with pytest.raises(TypeCheckError):
            synthesize(Var("x"))

    def test_lambda(self):
        t = synthesize(lam("x", INT, Var("x")))
        assert t == FuncType(INT, INT)

    def test_application(self):
        t = synthesize(App(lam("x", INT, Var("x")), Lit(3, INT)))
        assert t == INT

    def test_application_type_mismatch(self):
        with pytest.raises(TypeCheckError):
            synthesize(App(lam("x", INT, Var("x")), Lit(True, BOOL)))

    def test_applying_non_function(self):
        with pytest.raises(TypeCheckError):
            synthesize(App(Lit(3, INT), Lit(4, INT)))


class TestPolymorphism:
    def test_identity_type(self):
        identity = tlam("X", lam("x", X, Var("x")))
        assert synthesize(identity) == forall("X", func(X, X))

    def test_type_application(self):
        identity = tlam("X", lam("x", X, Var("x")))
        assert synthesize(tapp(identity, INT)) == func(INT, INT)

    def test_type_application_of_monotype_rejected(self):
        with pytest.raises(TypeCheckError):
            synthesize(tapp(Lit(3, INT), INT))

    def test_unbound_type_variable_rejected(self):
        with pytest.raises(TypeCheckError):
            synthesize(lam("x", tvar("Y"), Var("x")))

    def test_eq_quantifier_accepts_eq_types(self):
        ctx = Context(constants={"eq": parse_type("forall X=. X= -> X= -> bool")})
        term = tapp(Const("eq"), INT)
        assert synthesize(term, ctx) == func(INT, INT, BOOL)

    def test_eq_quantifier_rejects_function_types(self):
        ctx = Context(constants={"eq": parse_type("forall X=. X= -> X= -> bool")})
        term = tapp(Const("eq"), func(INT, INT))
        with pytest.raises(TypeCheckError):
            synthesize(term, ctx)

    def test_eq_quantifier_accepts_lists_of_eq_types(self):
        ctx = Context(constants={"eq": parse_type("forall X=. X= -> X= -> bool")})
        term = tapp(Const("eq"), list_of(INT))
        synthesize(term, ctx)  # should not raise


class TestTuples:
    def test_mk_tuple(self):
        t = synthesize(MkTuple((Lit(1, INT), Lit(True, BOOL))))
        assert t == Product((INT, BOOL))

    def test_projection(self):
        pair = MkTuple((Lit(1, INT), Lit(True, BOOL)))
        assert synthesize(Proj(pair, 0)) == INT
        assert synthesize(Proj(pair, 1)) == BOOL

    def test_projection_bounds(self):
        pair = MkTuple((Lit(1, INT),))
        with pytest.raises(TypeCheckError):
            synthesize(Proj(pair, 3))

    def test_projection_of_non_product(self):
        with pytest.raises(TypeCheckError):
            synthesize(Proj(Lit(1, INT), 0))


class TestConstants:
    def test_known_constant(self):
        ctx = Context(constants={"succ": func(INT, INT)})
        assert synthesize(Const("succ"), ctx) == func(INT, INT)

    def test_unknown_constant(self):
        with pytest.raises(TypeCheckError):
            synthesize(Const("nope"))


class TestCheckTerm:
    def test_alpha_equivalence_accepted(self):
        identity = tlam("Z", lam("x", tvar("Z"), Var("x")))
        check_term(identity, parse_type("forall X. X -> X"))

    def test_wrong_type_rejected(self):
        identity = tlam("X", lam("x", X, Var("x")))
        with pytest.raises(TypeCheckError):
            check_term(identity, parse_type("forall X. X -> int"))
