"""Tests for the checked polymorphic prelude."""

import pytest

from repro.lambda2.prelude import build_prelude
from repro.types.ast import INT, STR
from repro.types.parser import parse_type
from repro.types.values import Tup, cvlist


@pytest.fixture(scope="module")
def prelude():
    return build_prelude()


class TestBuild:
    def test_expected_entries(self, prelude):
        for name in (
            "nil", "cons", "foldr", "if", "succ", "plus", "eq", "zip",
            "head", "difference", "id", "append", "map", "count",
            "reverse", "filter", "ins", "ext",
        ):
            assert name in prelude.entries, name

    def test_derived_entries_carry_terms(self, prelude):
        assert not prelude["append"].native
        assert prelude["nil"].native

    def test_declared_types_parse_back(self, prelude):
        assert prelude.type_of("append") == parse_type(
            "forall X. <X> * <X> -> <X>"
        )
        assert prelude.type_of("count") == parse_type("forall X. <X> -> int")


class TestSemantics:
    def test_id(self, prelude):
        assert prelude.value("id")[INT](5) == 5

    def test_append(self, prelude):
        f = prelude.value("append")[INT]
        assert f(Tup((cvlist(1, 2), cvlist(3)))) == cvlist(1, 2, 3)
        assert f(Tup((cvlist(), cvlist()))) == cvlist()

    def test_append_preserves_duplicates_and_order(self, prelude):
        f = prelude.value("append")[STR]
        assert f(Tup((cvlist("b", "a"), cvlist("a")))) == cvlist("b", "a", "a")

    def test_map(self, prelude):
        f = prelude.value("map")[INT][INT]
        assert f(lambda x: x * 2)(cvlist(1, 2)) == cvlist(2, 4)

    def test_count(self, prelude):
        f = prelude.value("count")[INT]
        assert f(cvlist()) == 0
        assert f(cvlist(9, 9, 9)) == 3

    def test_reverse(self, prelude):
        f = prelude.value("reverse")[INT]
        assert f(cvlist(1, 2, 3)) == cvlist(3, 2, 1)
        assert f(cvlist()) == cvlist()

    def test_filter(self, prelude):
        f = prelude.value("filter")[INT]
        assert f(lambda x: x % 2 == 0)(cvlist(1, 2, 3, 4)) == cvlist(2, 4)

    def test_zip(self, prelude):
        f = prelude.value("zip")
        out = f(Tup((cvlist(1, 2), cvlist("a", "b"))))
        assert out == cvlist(Tup((1, "a")), Tup((2, "b")))

    def test_head(self, prelude):
        assert prelude.value("head")(cvlist(7, 8)) == 7
        with pytest.raises(Exception):
            prelude.value("head")(cvlist())

    def test_difference(self, prelude):
        f = prelude.value("difference")
        assert f(Tup((cvlist(1, 2, 1, 3), cvlist(1)))) == cvlist(2, 3)

    def test_ins(self, prelude):
        f = prelude.value("ins")[INT]
        assert f(0)(cvlist(1, 2)) == cvlist(0, 1, 2)

    def test_foldr_right_fold(self, prelude):
        foldr = prelude.value("foldr")
        # foldr cons nil == id; foldr (-) 0 [1,2,3] = 1-(2-(3-0)) = 2
        sub = lambda x: lambda acc: x - acc
        assert foldr(sub)(0)(cvlist(1, 2, 3)) == 2

    def test_if(self, prelude):
        f = prelude.value("if")
        assert f(True)(1)(2) == 1
        assert f(False)(1)(2) == 2

    def test_ext_concatmap(self, prelude):
        f = prelude.value("ext")[INT][INT]
        assert f(lambda x: cvlist(x, x + 10))(cvlist(1, 2)) == cvlist(
            1, 11, 2, 12
        )
        assert f(lambda x: cvlist())(cvlist(1, 2)) == cvlist()

    def test_ext_type_is_not_ltos(self, prelude):
        from repro.listset.typeclasses import is_ltos

        # Example 4.14: ext's type is outside the transferable class.
        assert not is_ltos(prelude.type_of("ext"))


class TestTypeSafety:
    def test_derived_terms_typecheck_on_build(self):
        # build_prelude would raise if any derived term failed its
        # declared type; building twice exercises determinism.
        a = build_prelude()
        b = build_prelude()
        assert a.names() == b.names()

    def test_context_exposes_types(self, prelude):
        ctx = prelude.context()
        assert "append" in ctx.constants
