"""Tests for the parametricity machinery (Theorem 4.4)."""

import pytest

from repro.lambda2.parametricity import (
    check_parametricity,
    default_candidates,
    eq_candidates,
    logical_relation,
)
from repro.lambda2.prelude import build_prelude
from repro.listset.setfuncs import cardinality, poly, set_union
from repro.mappings.extensions import ListRel, SetRelExt
from repro.mappings.function_maps import ForAllRel, FuncRel
from repro.mappings.mapping import IdentityRel, Mapping
from repro.types.ast import INT, TypeError_, func, list_of, set_of, tvar
from repro.types.parser import parse_type
from repro.types.values import cvlist


@pytest.fixture(scope="module")
def prelude():
    return build_prelude()


class TestCandidates:
    def test_default_mix(self):
        cands = default_candidates()
        assert len(cands) >= 4
        # Contains a non-functional mapping.
        assert any(not h.is_functional() for _a, _b, h in cands
                   if isinstance(h, Mapping))
        # Contains the cross-structure mapping str x <int>.
        assert any(a == tvar("X").__class__ or str(b).startswith("<")
                   for a, b, _h in cands) or any(
            str(b) == "<int>" for _a, b, _h in cands
        )

    def test_eq_candidates_injective(self):
        for _a, _b, h in eq_candidates():
            assert h.is_injective()


class TestLogicalRelation:
    def test_base_type_identity(self):
        # Base types get identity relations with the default carrier
        # {0, 1, 2} (values outside are not in the relation).
        rel = logical_relation(INT)
        assert isinstance(rel, IdentityRel)
        assert rel.holds(2, 2)
        assert not rel.holds(2, 1)
        assert not rel.holds(3, 3)

    def test_free_variable_needs_assignment(self):
        with pytest.raises(TypeError_):
            logical_relation(tvar("X"))
        h = Mapping({(0, 1)}, INT, INT)
        rel = logical_relation(tvar("X"), var_rels={"X": h})
        assert rel.holds(0, 1)

    def test_list_type_builds_list_rel(self):
        h = Mapping({(0, 1)}, INT, INT)
        rel = logical_relation(list_of(tvar("X")), var_rels={"X": h})
        assert isinstance(rel, ListRel)
        assert rel.holds(cvlist(0, 0), cvlist(1, 1))

    def test_set_type_uses_rel_mode(self):
        h = Mapping({(0, 5), (1, 5)}, INT, INT)
        rel = logical_relation(set_of(tvar("X")), var_rels={"X": h})
        assert isinstance(rel, SetRelExt)
        from repro.types.values import cvset

        assert rel.holds(cvset(0, 1), cvset(5))

    def test_function_type(self):
        rel = logical_relation(func(tvar("X"), tvar("X")),
                               var_rels={"X": Mapping({(0, 1)}, INT, INT)})
        assert isinstance(rel, FuncRel)

    def test_forall_builds_forall_rel(self):
        rel = logical_relation(parse_type("forall X. X -> X"))
        assert isinstance(rel, ForAllRel)


class TestTheorem44:
    def test_prelude_is_parametric(self, prelude):
        for name in ("id", "append", "map", "count", "reverse", "filter",
                     "zip", "nil", "cons", "ins"):
            report = check_parametricity(
                prelude.value(name), prelude.type_of(name), name
            )
            assert report.parametric, (name, report.violation)

    def test_difference_parametric_at_eq_type(self, prelude):
        report = check_parametricity(
            prelude.value("difference"), prelude.type_of("difference"),
            "difference",
        )
        assert report.parametric

    def test_difference_fails_without_eq(self, prelude):
        report = check_parametricity(
            prelude.value("difference"),
            parse_type("forall X. <X> * <X> -> <X>"),
            "difference",
        )
        assert not report.parametric
        assert report.violation is not None

    def test_element_inspecting_function_fails(self):
        # "Sum" at forall X. <X> -> int inspects elements.
        sneaky = poly(lambda l: sum(l))
        report = check_parametricity(
            sneaky, parse_type("forall X. <X> -> int"), "sum"
        )
        assert not report.parametric

    def test_count_invariant_under_cross_structure_mapping(self, prelude):
        # The paper's point (Section 4.3 item 2): parametricity gives
        # invariance even under mappings between types of different
        # structure, which genericity cannot express.
        report = check_parametricity(
            prelude.value("count"), prelude.type_of("count"), "count",
            candidates=default_candidates(include_cross_structure=True),
        )
        assert report.parametric

    def test_set_union_parametric(self):
        report = check_parametricity(
            poly(set_union), parse_type("forall X. {X} * {X} -> {X}"),
            "union",
        )
        assert report.parametric

    def test_cardinality_not_rel_parametric(self):
        report = check_parametricity(
            poly(cardinality), parse_type("forall X. {X} -> int"), "card"
        )
        assert not report.parametric

    def test_report_repr(self, prelude):
        report = check_parametricity(
            prelude.value("id"), prelude.type_of("id"), "id"
        )
        assert "parametric" in repr(report)
