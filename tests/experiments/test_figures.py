"""Tests for the ASCII figure rendering."""

from repro.experiments.figures import bar_chart, figure_opt_cost, figure_search_effort
from repro.experiments.report import ExperimentResult


class TestBarChart:
    def test_scales_to_peak(self):
        chart = bar_chart(["a", "b"], [1, 10], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 1
        assert lines[1].count("#") == 10

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"

    def test_zero_values_render_minimum_bar(self):
        chart = bar_chart(["a"], [0])
        assert "#" in chart

    def test_unit_suffix(self):
        assert "5 ms" in bar_chart(["x"], [5], unit=" ms")


class TestFigures:
    def test_opt_cost_figure(self):
        result = ExperimentResult(
            "E-OPT-COST", "t", "c",
            ("size", "plan", "before", "after", "speedup"),
        )
        result.add(50, "pi(R U S)", 300, 200, "1.50x")
        figure = figure_opt_cost(result)
        assert "Figure 1" in figure
        assert "original" in figure and "optimized" in figure

    def test_search_effort_figure(self):
        result = ExperimentResult(
            "E-ABLATION-SEARCH", "t", "c",
            ("query", "size", "mode", "trials", "pairs"),
        )
        result.add("sigma", 4, "rel", 3, 12)
        figure = figure_search_effort(result)
        assert "Figure 2" in figure
        assert "|D|=4" in figure
