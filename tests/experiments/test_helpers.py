"""Unit tests for experiment helper functions."""

import random


from repro.experiments.orders import monotone_family, select_less_than
from repro.experiments.static_check import plan_as_query
from repro.mappings.extensions import REL
from repro.optimizer.plan import Difference, Project, Scan, Union
from repro.types.values import Tup, cvset, tup


class TestOrderHelpers:
    def test_monotone_family_is_monotone_injection(self):
        rng = random.Random(0)
        for _ in range(20):
            family = monotone_family(rng)
            mapping = family["int"]
            assert mapping.is_injective()
            pairs = sorted(mapping.pairs())
            targets = [y for _x, y in pairs]
            assert targets == sorted(targets)

    def test_select_less_than_semantics(self):
        q = select_less_than()
        r = cvset(tup(1, 2), tup(2, 1), tup(3, 3))
        assert q.fn(r) == cvset(tup(1, 2))


class TestPlanAsQuery:
    def test_executes_plan_on_tuple_of_relations(self):
        plan = Project((0,), Union(Scan("R"), Scan("S")))
        query = plan_as_query(plan, ("R", "S"))
        r = cvset(tup(1, 2))
        s = cvset(tup(3, 4))
        assert query.fn(Tup((r, s))) == cvset(tup(1), tup(3))

    def test_single_relation_input(self):
        plan = Project((1,), Scan("R"))
        query = plan_as_query(plan, ("R",))
        assert query.fn(cvset(tup(1, 2))) == cvset(tup(2))

    def test_output_arity_tracking(self):
        from repro.types.ast import SetType

        plan = Project((0,), Difference(Scan("R"), Scan("S")))
        query = plan_as_query(plan, ("R", "S"))
        assert isinstance(query.output_type, SetType)
        assert len(query.output_type.element.components) == 1

    def test_plan_query_classifiable(self):
        from repro.genericity.classify import classify

        plan = Project((0,), Union(Scan("R"), Scan("S")))
        query = plan_as_query(plan, ("R", "S"))
        row = classify(query, trials=8)
        assert row.cell("all", REL).generic


class TestInexpressibilityGenerators:
    def test_random_positive_terms_are_queries(self):
        from repro.experiments.inexpressibility import _random_positive_term

        rng = random.Random(0)
        for _ in range(20):
            term = _random_positive_term(rng)
            assert term.input_type is not None
            # Run it on something to make sure it is executable.
            term.fn(cvset(tup(1, 2), tup(3, 4)))

    def test_random_hat_terms_are_queries(self):
        from repro.experiments.inexpressibility import _random_hat_term

        rng = random.Random(0)
        for _ in range(20):
            term = _random_hat_term(rng)
            term.fn(cvset(tup(1, 1), tup(1, 2)))
