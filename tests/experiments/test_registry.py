"""Tests for the experiment registry and reporting.

The heavyweight reproduction checks live in the benchmark harness; here
we verify the registry plumbing and run the fast experiments end to end
(each must report ``matches_paper``).
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, run, run_all
from repro.experiments.report import ExperimentResult, format_table, render


FAST_EXPERIMENTS = [
    "E-2.2",
    "E-2.6",
    "E-2.8",
    "E-2.9",
    "E-2.13",
    "E-3.4",
    "E-3.5",
    "E-3.9",
    "E-4.4",
    "E-4.6",
    "E-4.14",
    "E-4.13",
    "E-4.15",
    "E-OPT",
    "E-OPT-COST",
    "E-BAGS",
    "E-CHURCH",
    "E-ABLATION-SEARCH",
    "E-INEXPR",
    "E-STATIC",
    "E-ORDER",
]


class TestRegistry:
    def test_expected_ids_present(self):
        for exp_id in FAST_EXPERIMENTS:
            assert exp_id in EXPERIMENTS

    def test_registry_covers_design_index(self):
        # One experiment per numbered claim listed in DESIGN.md.
        assert len(EXPERIMENTS) >= 32

    @pytest.mark.parametrize("exp_id", FAST_EXPERIMENTS)
    def test_fast_experiments_match_paper(self, exp_id):
        result = run(exp_id)
        assert result.matches_paper, (exp_id, result.notes)
        assert result.rows

    def test_run_all_selected(self):
        results = run_all(["E-2.6", "E-4.14"])
        assert [r.exp_id for r in results] == ["E-2.6", "E-4.14"]


class TestReporting:
    def test_add_checks_arity(self):
        result = ExperimentResult("X", "t", "c", ("a", "b"))
        with pytest.raises(ValueError):
            result.add(1)

    def test_require_flips_flag(self):
        result = ExperimentResult("X", "t", "c", ("a",))
        assert result.matches_paper
        result.require(False, "boom")
        assert not result.matches_paper
        assert "boom" in result.notes

    def test_format_table_aligns(self):
        text = format_table(("col", "x"), [("a", 1), ("bbbb", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_includes_status(self):
        result = ExperimentResult("X", "title", "claim", ("a",))
        result.add("v")
        assert "MATCHES PAPER" in render(result)
        result.require(False)
        assert "MISMATCH" in render(result)
