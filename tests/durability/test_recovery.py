"""Recovery end-to-end: checkpoint + committed replay rebuilds the
exact database — relations, catalog, generation, fingerprints — and
the report/span/counter surfaces say what happened.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.durability import (
    WAL_NAME,
    DurabilityManager,
    WalError,
    WalRecord,
    apply_record,
    load_checkpoint,
    recover,
    replay_records,
    write_checkpoint,
)
from repro.engine.database import Database
from repro.engine.serialize import SerializeError, database_to_json
from repro.obs.metrics import REGISTRY, snapshot_delta
from repro.obs.trace import Tracer
from repro.optimizer.plan import Project, Scan
from repro.types.values import cvset, tup


def digest(db: Database) -> tuple:
    return (
        json.dumps(database_to_json(db), sort_keys=True),
        db._generation,
        tuple(sorted((n, db.fingerprint(n)) for n in db.relations)),
    )


@pytest.fixture()
def state(tmp_path):
    return str(tmp_path / "state")


def durable_db(state, **kwargs) -> Database:
    db = Database()
    db.durability = DurabilityManager(state, fsync=False, **kwargs)
    return db


class TestRecoverEndToEnd:
    def test_empty_directory_recovers_empty_database(self, state):
        db, report = recover(state)
        assert db.relations == {}
        assert not report.checkpoint_loaded
        assert report.records_scanned == report.replayed == 0
        assert report.generation == 0

    def test_full_mutation_surface_replayed(self, state):
        live = durable_db(state)
        live.create("people", 2, keys=[(0,)],
                    shared_keys={(0,): "person-ids"})
        live.insert("people", [(1, "ada"), (2, "bob")])
        live.create("log", 2)
        live.insert("log", [(1, "a"), (1, "a")])  # keyless duplicates
        live["free"] = cvset(tup(7, 8))
        live.insert("people", [(3, "eve")])

        recovered, report = recover(state)
        assert digest(recovered) == digest(live)
        assert tuple(recovered.catalog["people"].keys) == ((0,),)
        assert (
            recovered.catalog.shared_key_group("people", (0,))
            == "person-ids"
        )
        assert report.replayed == 6
        assert report.dropped_uncommitted == 0
        assert not report.torn_tail and not report.corrupt

    def test_checkpoint_bounds_replay(self, state):
        live = durable_db(state)
        live.create("r", 1)
        live.insert("r", [(1,)])
        live.durability.checkpoint(live)
        live.insert("r", [(2,)])

        recovered, report = recover(state)
        assert digest(recovered) == digest(live)
        assert report.checkpoint_loaded
        assert report.checkpoint_lsn > 0
        assert report.replayed == 1  # only the post-checkpoint insert

    def test_attach_to_populated_database_checkpoints_first(self, state):
        # Pre-attach state exists only in memory; without the
        # attach-time checkpoint, replay would hit an insert into a
        # relation the empty base never created.
        live = Database()
        live.create("r", 1)
        live.insert("r", [(1,)])
        live.durability = DurabilityManager(state, fsync=False)
        live.insert("r", [(2,)])

        recovered, report = recover(state)
        assert digest(recovered) == digest(live)
        assert report.checkpoint_loaded
        assert report.replayed == 1  # only the post-attach insert

    def test_attach_to_empty_database_writes_no_checkpoint(self, state):
        db = durable_db(state)
        assert not os.path.exists(os.path.join(state, "checkpoint.json"))
        db.create("r", 1)

    def test_checkpoint_every_policy(self, state):
        live = durable_db(state, checkpoint_every=2)
        live.create("r", 1)
        live.insert("r", [(1,)])  # second mutation: checkpoint fires
        live.insert("r", [(2,)])
        assert os.path.exists(os.path.join(state, "checkpoint.json"))
        recovered, report = recover(state)
        assert digest(recovered) == digest(live)
        assert report.checkpoint_loaded

    def test_uncommitted_record_dropped(self, state):
        live = durable_db(state)
        live.create("r", 1)
        live.insert("r", [(1,)])
        before = digest(live)
        # A data record whose commit marker never made it: the model
        # of a crash between the two appends.
        live.durability.wal.append(
            "insert", {"name": "r", "rows": [{"t": [2]}]},
            live._generation + 1,
        )
        live.durability.wal.sync()
        live.durability.close()

        recovered, report = recover(state)
        assert digest(recovered) == before
        assert report.dropped_uncommitted == 1

    def test_stale_wal_after_checkpoint_race_is_filtered(self, state):
        # Crash between checkpoint publication and WAL reset: every
        # WAL record is already inside the snapshot, so replay must
        # skip them all (by LSN), not double-apply.
        live = durable_db(state)
        live.create("r", 1)
        live.insert("r", [(1,)])
        write_checkpoint(state, live, lsn=live.durability.wal.last_lsn)
        # ... and the process dies before wal.reset().

        recovered, report = recover(state)
        assert digest(recovered) == digest(live)
        assert report.checkpoint_loaded
        assert report.replayed == 0
        assert report.skipped_stale == 2  # create + insert, both stale

    def test_generation_and_memo_keys_survive(self, state):
        live = durable_db(state)
        live.create("r", 2)
        live.insert("r", [(1, 2)])
        live["r"] = cvset(tup(3, 4))
        recovered, _ = recover(state)
        assert recovered._generation == live._generation
        assert recovered.fingerprint("r") == live.fingerprint("r")
        # Generation-derived memos start clean, not poisoned.
        assert recovered._stats_memo is None
        assert recovered._mode_memo == {}

    def test_warm_plans_ride_delta_maintenance(self, state):
        live = durable_db(state)
        live.create("r", 2)
        live.insert("r", [(1, 2), (3, 4)])
        live.durability.checkpoint(live)
        live.insert("r", [(5, 6)])

        plan = Project((0,), Scan("r"))
        recovered, report = recover(state, warm_plans=[plan])
        # The warmed entry was patched forward through the replayed
        # insert, not recomputed: the maintain counter moved.
        assert report.rewarmed >= 1
        assert recovered.plan_cache.maintained >= 1
        got = recovered.run(plan)
        assert got.value == live.run(plan).value
        assert recovered.plan_cache.hits >= 1  # served warm

    def test_counters_and_tracer(self, state):
        live = durable_db(state)
        live.create("r", 1)
        live.insert("r", [(1,)])
        tracer = Tracer()
        before = REGISTRY.snapshot()
        recover(state, tracer=tracer)
        delta = snapshot_delta(REGISTRY.snapshot(), before)["counters"]
        assert delta["robustness.wal.recoveries"] == 1
        assert delta["robustness.wal.records_replayed"] == 2
        root = tracer.last
        assert root.label == "recover"
        assert [c.label for c in root.children] == [
            "checkpoint", "scan", "replay",
        ]

    def test_report_render_and_to_dict(self, state):
        live = durable_db(state)
        live.create("r", 1)
        live.insert("r", [(1,)])
        _, report = recover(state)
        text = report.render()
        for needle in ("recover", "checkpoint", "scan", "replay",
                       "record(s) scanned"):
            assert needle in text
        payload = report.to_dict()
        assert payload["replayed"] == 2
        assert payload["directory"] == state
        json.dumps(payload)  # JSON-safe for --json CLI output


class TestReplayErrors:
    def test_unknown_kind_is_a_logging_bug(self):
        db = Database()
        rec = WalRecord(1, "commit", 0, {"of": 1, "name": "x"})
        with pytest.raises(WalError, match="cannot replay record kind"):
            apply_record(db, rec)

    def test_unreplayable_payload_wrapped(self):
        db = Database()
        rec = WalRecord(1, "insert", 1, {"name": "ghost", "rows": []})
        with pytest.raises(WalError, match="unreplayable insert"):
            apply_record(db, rec)

    def test_generation_mismatch_detected(self):
        db = Database()
        db.create("r", 1)
        rec = WalRecord(2, "insert", 99, {"name": "r", "rows": [{"t": [1]}]})
        with pytest.raises(WalError, match="generation mismatch"):
            apply_record(db, rec)

    def test_replay_records_lsn_filter(self):
        db = Database()
        recs = [
            WalRecord(1, "create",
                      0, {"name": "r", "arity": 1, "keys": [],
                          "shared_keys": []}),
            WalRecord(3, "insert", 1, {"name": "r", "rows": [{"t": [1]}]}),
        ]
        db.create("r", 1)  # lsn 1 already inside the "snapshot"
        replayed, skipped = replay_records(db, recs, after_lsn=1)
        assert (replayed, skipped) == (1, 1)
        assert db["r"] == cvset(tup(1))


class TestCheckpointFile:
    def test_missing_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path) is None

    @pytest.mark.parametrize(
        "text",
        [
            "{not json",
            "[1, 2]",
            '{"format": 99, "lsn": 0, "generation": 0, "database": {}}',
            '{"format": 1, "lsn": "0", "generation": 0, "database": {}}',
            '{"format": 1, "lsn": 0, "generation": true, "database": {}}',
            '{"format": 1, "lsn": 0, "generation": 0}',
        ],
    )
    def test_malformed_checkpoint_raises_serialize_error(
        self, tmp_path, text
    ):
        (tmp_path / "checkpoint.json").write_text(text)
        with pytest.raises(SerializeError):
            load_checkpoint(tmp_path)

    def test_write_is_atomic_against_replace_failure(
        self, tmp_path, monkeypatch
    ):
        db = Database()
        db.create("r", 1)
        db.insert("r", [(1,)])
        write_checkpoint(tmp_path, db, lsn=2)
        before = (tmp_path / "checkpoint.json").read_text()
        db.insert("r", [(2,)])
        monkeypatch.setattr(
            "os.replace",
            lambda s, d: (_ for _ in ()).throw(OSError("injected")),
        )
        with pytest.raises(OSError, match="injected"):
            write_checkpoint(tmp_path, db, lsn=4)
        monkeypatch.undo()
        assert (tmp_path / "checkpoint.json").read_text() == before
        loaded, lsn = load_checkpoint(tmp_path)
        assert lsn == 2 and loaded["r"] == cvset(tup(1))

    def test_wal_name_constant_matches_manager_layout(self, tmp_path):
        db = Database()
        db.durability = DurabilityManager(tmp_path / "s", fsync=False)
        db.create("r", 1)
        assert os.path.exists(tmp_path / "s" / WAL_NAME)
