"""The ``durability`` fault site: torn appends, bit flips, failed
fsyncs, and the crash window between commit and apply.

Each test pins one direction of the atomicity contract:

* a fault *before* the commit marker → the mutation never happened
  (caller saw an exception, recovery sees an uncommitted record);
* a fault *after* the commit marker → the mutation durably happened
  (recovery replays what the in-memory process never finished).
"""

from __future__ import annotations

import json

import pytest

from repro.durability import (
    DurabilityManager,
    WriteAheadLog,
    encode_record,
    recover,
    scan_wal,
    WalRecord,
)
from repro.engine.database import Database
from repro.engine.serialize import database_to_json
from repro.robustness.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    InjectedFault,
)
from repro.types.values import cvset, tup


def digest(db: Database) -> tuple:
    return (
        json.dumps(database_to_json(db), sort_keys=True),
        db._generation,
        tuple(sorted((n, db.fingerprint(n)) for n in db.relations)),
    )


SAMPLE_LINE = encode_record(
    WalRecord(3, "insert", 2, {"name": "r", "rows": [{"t": [1, 2]}]})
)


class TestSite:
    def test_registered(self):
        assert "durability" in FAULT_SITES
        assert FaultPlan(durability_rate=0.7).rate_for("durability") == 0.7

    def test_rate_zero_never_tampers(self):
        injector = FaultInjector(FaultPlan(seed=1))
        for _ in range(50):
            assert injector.tamper_wal_line(SAMPLE_LINE) == (
                SAMPLE_LINE, None,
            )
        assert injector.injected == {}

    def test_deterministic_per_seed(self):
        plan = FaultPlan(seed=42, durability_rate=0.5)
        one, two = FaultInjector(plan), FaultInjector(plan)
        first = [one.tamper_wal_line(SAMPLE_LINE) for _ in range(30)]
        second = [two.tamper_wal_line(SAMPLE_LINE) for _ in range(30)]
        assert first == second
        assert one.injected == two.injected
        assert any(out != SAMPLE_LINE for out, _ in first)  # some fired

    def test_tamper_shapes(self):
        injector = FaultInjector(FaultPlan(seed=7, durability_rate=1.0))
        shapes = {"torn-write": 0, "torn-record": 0, "bit-flip": 0}
        for _ in range(200):
            out, label = injector.tamper_wal_line(SAMPLE_LINE)
            if label == "torn-write":
                assert out == SAMPLE_LINE[: len(out)]
                assert len(out) < len(SAMPLE_LINE)
            elif label == "torn-record":
                assert out.endswith(b"\x00\xffgarbage")
                assert not out.endswith(b"\n")
            else:
                assert label is None
                assert len(out) == len(SAMPLE_LINE)
                diffs = [
                    i for i, (x, y) in enumerate(zip(out, SAMPLE_LINE))
                    if x != y
                ]
                assert len(diffs) == 1
                assert out.endswith(b"\n")  # framing byte never flipped
                label = "bit-flip"
            shapes[label] += 1
        assert all(count > 0 for count in shapes.values())
        assert injector.injected["durability"] == 200

    def test_every_tampered_shape_ends_the_readable_prefix(self):
        injector = FaultInjector(FaultPlan(seed=11, durability_rate=1.0))
        for _ in range(100):
            out, _label = injector.tamper_wal_line(SAMPLE_LINE)
            if out == SAMPLE_LINE:
                continue  # zero-length flip collisions cannot happen; safety
            scan = scan_wal(out)
            assert scan.records == ()  # nothing tampered is ever trusted


class _LabelFault:
    """Minimal injector firing only at one ``maybe_raise`` label —
    unit-test precision the seeded injector trades away."""

    def __init__(self, label_prefix: str) -> None:
        self.label_prefix = label_prefix
        self.fired = 0

    def tamper_wal_line(self, line):
        return line, None

    def maybe_raise(self, site: str, label: str = "") -> None:
        if label.startswith(self.label_prefix):
            self.fired += 1
            raise InjectedFault(site, label)


class TestCrashWindows:
    def test_failed_fsync_aborts_before_apply(self, tmp_path):
        state = tmp_path / "state"
        db = Database()
        db.durability = DurabilityManager(state, fsync=False)
        db.create("r", 1)
        db.insert("r", [(1,)])
        before = digest(db)

        db.durability.fault_injector = _LabelFault("fsync")
        with pytest.raises(InjectedFault, match="fsync"):
            db.insert("r", [(2,)])
        # Atomically never happened: no in-memory change...
        assert digest(db) == before
        assert db["r"] == cvset(tup(1))
        # ... and recovery agrees (the half-logged record is dropped).
        # Close first: the failed sync left the record in the stdio
        # buffer, and a real crash could land it on disk anyway.
        db.durability.close()
        recovered, report = recover(state)
        assert digest(recovered) == before
        assert report.dropped_uncommitted == 1

    def test_crash_between_commit_and_apply_replays(self, tmp_path):
        state = tmp_path / "state"
        db = Database()
        db.durability = DurabilityManager(state, fsync=False)
        db.create("r", 1)
        db.insert("r", [(1,)])

        db.durability.fault_injector = _LabelFault("apply:")
        with pytest.raises(InjectedFault, match="apply:insert"):
            db.insert("r", [(2,)])
        # The in-memory process never applied it...
        assert db["r"] == cvset(tup(1))
        # ... but the log committed first, so recovery must finish the
        # mutation the crash interrupted.
        recovered, report = recover(state)
        assert recovered["r"] == cvset(tup(1), tup(2))
        assert report.replayed == 3  # create + both inserts

    def test_torn_append_crashes_writer_and_recovery_drops_it(
        self, tmp_path
    ):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, fsync=False)
        lsn = wal.append("insert", {"name": "r", "rows": []}, 1)
        wal.commit(lsn, 1)

        class _TearNext:
            def tamper_wal_line(self, line):
                return line[: len(line) // 2], "torn-write"

            def maybe_raise(self, site, label=""):
                pass

        wal.fault_injector = _TearNext()
        with pytest.raises(InjectedFault, match="torn-write"):
            wal.append("insert", {"name": "r", "rows": [{"t": [9]}]}, 2)
        wal.close()

        data = path.read_bytes()
        scan = scan_wal(data)
        assert scan.torn_tail
        assert [r.lsn for r in scan.records] == [1, 2]
        # Reopening (the restart after the crash) truncates the tear.
        reopened = WriteAheadLog(path, fsync=False)
        reopened.close()
        assert scan_wal(path.read_bytes()).torn_tail is False

    def test_injected_counts_surface_in_injector(self, tmp_path):
        injector = FaultInjector(FaultPlan(seed=3, durability_rate=1.0))
        db = Database()
        db.durability = DurabilityManager(
            tmp_path / "state", fsync=False, fault_injector=injector
        )
        with pytest.raises(InjectedFault):
            db.create("r", 1)
        assert injector.injected.get("durability", 0) >= 1
        assert injector.total_injected() == sum(injector.injected.values())
