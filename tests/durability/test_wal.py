"""WAL unit tests: record format, scan prefix rule, commit markers,
append-side LSN discipline.

The crash-shaped end-to-end properties (every byte prefix, injected
faults) live in ``test_property.py`` and ``test_faults.py``; this file
pins the building blocks those properties are made of.
"""

from __future__ import annotations

import json

import pytest

from repro.durability import (
    RECORD_KINDS,
    WalError,
    WalRecord,
    WalScan,
    WriteAheadLog,
    committed_records,
    decode_line,
    encode_record,
    scan_wal,
)


def record(lsn=1, kind="insert", generation=1, payload=None) -> WalRecord:
    return WalRecord(lsn, kind, generation, payload or {"name": "r"})


class TestRecordFormat:
    def test_roundtrip(self):
        for kind in RECORD_KINDS:
            rec = record(lsn=7, kind=kind, generation=3,
                         payload={"name": "r", "rows": [{"t": [1, 2]}]})
            line = encode_record(rec)
            assert line.endswith(b"\n")
            assert decode_line(line[:-1]) == rec

    def test_line_is_canonical_json(self):
        line = encode_record(record())
        data = json.loads(line)
        assert list(data) == sorted(data)  # sorted keys
        assert b" " not in line  # compact separators

    def test_crc_covers_every_field(self):
        base = record(lsn=5, kind="insert", generation=2,
                      payload={"name": "r", "rows": []})
        good = json.loads(encode_record(base))
        for field_name, tampered in (
            ("lsn", 6),
            ("kind", "replace"),
            ("gen", 3),
            ("payload", {"name": "s", "rows": []}),
        ):
            bad = dict(good)
            bad[field_name] = tampered
            line = json.dumps(bad, sort_keys=True).encode()
            with pytest.raises(WalError, match="crc mismatch"):
                decode_line(line)

    @pytest.mark.parametrize(
        "line, match",
        [
            (b"not json", "undecodable"),
            (b"\xff\xfe", "undecodable"),
            (b"[1,2]", "not an object"),
            (b"{}", "missing field"),
            (b'{"crc":0,"gen":1,"kind":"insert","lsn":1}', "missing field"),
            (
                b'{"crc":0,"gen":1,"kind":"vacuum","lsn":1,"payload":{}}',
                "unknown record kind",
            ),
            (
                b'{"crc":0,"gen":1,"kind":"insert","lsn":true,"payload":{}}',
                "lsn must be an int",
            ),
            (
                b'{"crc":0,"gen":"1","kind":"insert","lsn":1,"payload":{}}',
                "gen must be an int",
            ),
            (
                b'{"crc":0,"gen":1,"kind":"insert","lsn":1,"payload":[]}',
                "payload must be an object",
            ),
        ],
    )
    def test_untrustworthy_lines_rejected(self, line, match):
        with pytest.raises(WalError, match=match):
            decode_line(line)


class TestScan:
    def _lines(self, *records):
        return b"".join(encode_record(r) for r in records)

    def test_clean_log(self):
        recs = (record(lsn=1), record(lsn=2, kind="commit",
                                      payload={"of": 1}))
        scan = scan_wal(self._lines(*recs))
        assert scan.records == recs
        assert scan.clean_length == len(self._lines(*recs))
        assert not scan.torn_tail and not scan.corrupt
        assert scan.error is None

    def test_empty(self):
        assert scan_wal(b"") == WalScan((), 0)

    def test_torn_tail_dropped(self):
        head = encode_record(record(lsn=1))
        tail = encode_record(record(lsn=2))[:-10]  # unterminated
        scan = scan_wal(head + tail)
        assert [r.lsn for r in scan.records] == [1]
        assert scan.clean_length == len(head)
        assert scan.torn_tail and not scan.corrupt
        assert "torn tail" in scan.error

    def test_corrupt_line_ends_the_prefix(self):
        # A decodable record *after* the corruption must not be
        # trusted: skipping a mutation mid-sequence would break the
        # prefix guarantee even though the later bytes look fine.
        head = encode_record(record(lsn=1))
        bad = b'{"broken": true}\n'
        after = encode_record(record(lsn=3))
        scan = scan_wal(head + bad + after)
        assert [r.lsn for r in scan.records] == [1]
        assert scan.clean_length == len(head)
        assert scan.corrupt and not scan.torn_tail

    def test_bit_flip_caught_by_crc(self):
        line = encode_record(record(lsn=1))
        # Flip a payload byte, keep the framing intact.
        i = line.index(b'"name"')
        flipped = line[:i] + b'"nAme"' + line[i + 6 :]
        scan = scan_wal(flipped)
        assert scan.records == ()
        assert scan.corrupt

    def test_scan_at_every_boundary_is_a_record_prefix(self):
        recs = tuple(record(lsn=i) for i in range(1, 5))
        data = self._lines(*recs)
        boundaries = [0] + [
            i + 1 for i, b in enumerate(data) if b == 0x0A
        ]
        for n in boundaries:
            scan = scan_wal(data[:n])
            assert scan.records == recs[: len(scan.records)]
            assert not scan.torn_tail and not scan.corrupt


class TestCommittedRecords:
    def test_uncommitted_dropped(self):
        recs = (
            record(lsn=1),
            record(lsn=2, kind="commit", payload={"of": 1}),
            record(lsn=3),  # logged, never committed
        )
        committed, uncommitted = committed_records(recs)
        assert [r.lsn for r in committed] == [1]
        assert uncommitted == 1

    def test_commit_order_is_data_order(self):
        recs = (
            record(lsn=1),
            record(lsn=2, kind="commit", payload={"of": 1}),
            record(lsn=3),
            record(lsn=4, kind="commit", payload={"of": 3}),
        )
        committed, uncommitted = committed_records(recs)
        assert [r.lsn for r in committed] == [1, 3]
        assert uncommitted == 0

    def test_dangling_commit_marker_ignored(self):
        # A commit whose data record fell off the readable prefix
        # (stale WAL, checkpoint reset race) commits nothing.
        recs = (record(lsn=9, kind="commit", payload={"of": 7}),)
        committed, uncommitted = committed_records(recs)
        assert committed == [] and uncommitted == 0


class TestWriteAheadLog:
    def test_lsns_monotonic_and_commit_payload(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=False)
        assert wal.last_lsn == 0
        lsn = wal.append("insert", {"name": "r", "rows": []}, 1)
        commit_lsn = wal.commit(lsn, 1)
        assert (lsn, commit_lsn) == (1, 2)
        assert wal.last_lsn == 2
        wal.sync()
        wal.close()
        scan = scan_wal((tmp_path / "wal.jsonl").read_bytes())
        assert [r.lsn for r in scan.records] == [1, 2]
        assert scan.records[1].payload == {"of": 1}

    def test_reopen_resumes_lsn(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, fsync=False)
        wal.append("create", {"name": "r"}, 0)
        wal.close()
        again = WriteAheadLog(path, fsync=False)
        assert again.append("insert", {"name": "r", "rows": []}, 1) == 2
        again.close()

    def test_reopen_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, fsync=False)
        lsn = wal.append("insert", {"name": "r", "rows": []}, 1)
        wal.commit(lsn, 1)
        wal.close()
        clean = path.read_bytes()
        with open(path, "ab") as handle:
            handle.write(b'{"half a rec')  # crash artifact
        again = WriteAheadLog(path, fsync=False)
        # The torn bytes are gone *before* the next append, so the new
        # record is readable instead of being glued onto garbage.
        next_lsn = again.append("insert", {"name": "r", "rows": []}, 2)
        assert next_lsn == 3
        again.sync()
        again.close()
        data = path.read_bytes()
        assert data.startswith(clean)
        scan = scan_wal(data)
        assert [r.lsn for r in scan.records] == [1, 2, 3]
        assert not scan.torn_tail and not scan.corrupt

    def test_reset_empties_file_but_keeps_lsn_monotonic(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, fsync=False)
        wal.append("insert", {"name": "r", "rows": []}, 1)
        wal.reset()
        assert path.read_bytes() == b""
        assert wal.append("insert", {"name": "r", "rows": []}, 2) == 2
        wal.close()

    def test_fsync_enabled_by_default(self, tmp_path, monkeypatch):
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "os.fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append("create", {"name": "r"}, 0)
        wal.sync()
        assert synced
        wal.close()

    def test_fsync_disabled_skips_os_fsync(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "os.fsync",
            lambda fd: (_ for _ in ()).throw(AssertionError("fsynced")),
        )
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=False)
        wal.append("create", {"name": "r"}, 0)
        wal.sync()
        wal.close()
