"""The durability property, exercised literally: truncating the WAL at
**every byte offset** recovers a database equal to applying some prefix
of the committed mutation sequence — atomicity (never half a mutation)
plus durability (never a reordering, never a skip), across 100 seeded
random mutation scripts.

Cost control: the recovered state depends only on *which committed
records survive the truncation*, so the sweep scans every byte prefix
(that part is the point — the scanner must be trustworthy at arbitrary
cut points) but rebuilds a database only once per distinct committed
count.  A sampled subset of offsets additionally goes through the real
on-disk :func:`repro.durability.recover` path, checkpoint file and all,
to tie the in-memory sweep to the production entry point.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.durability import (
    WAL_NAME,
    DurabilityManager,
    committed_records,
    recover,
    replay_records,
    scan_wal,
)
from repro.engine.database import Database
from repro.engine.serialize import database_to_json
from repro.types.values import CVSet, Tup

SEEDS = 100
_NAMES = ("r", "s")


def digest(db: Database) -> tuple:
    """Everything recovery must reproduce exactly: contents + schema
    (canonical JSON), the generation, and every fingerprint."""
    return (
        json.dumps(database_to_json(db), sort_keys=True),
        db._generation,
        tuple(sorted((n, db.fingerprint(n)) for n in db.relations)),
    )


def random_ops(rng: random.Random) -> list:
    """A short mutation script over the whole logged surface."""
    ops = [("create", name, 2) for name in _NAMES]
    ops += [
        (
            "insert",
            name,
            sorted({
                (rng.randrange(4), rng.randrange(4))
                for _ in range(rng.randint(1, 3))
            }),
        )
        for name in _NAMES
    ]
    for i in range(rng.randint(2, 4)):
        kind = rng.choice(("insert", "insert", "replace", "create"))
        if kind == "create":
            ops.append(("create", f"u{i}", 1))
        elif kind == "replace":
            ops.append((
                "replace",
                rng.choice(_NAMES),
                CVSet(
                    Tup((rng.randrange(4), rng.randrange(4)))
                    for _ in range(rng.randint(0, 3))
                ),
            ))
        else:
            ops.append((
                "insert",
                rng.choice(_NAMES),
                sorted({
                    (rng.randrange(6), rng.randrange(6))
                    for _ in range(rng.randint(1, 3))
                }),
            ))
    return ops


def apply_op(db: Database, op) -> None:
    kind, name, arg = op
    if kind == "create":
        db.create(name, arg)
    elif kind == "insert":
        db.insert(name, arg)
    else:
        db[name] = arg


def run_script(seed: int, directory: str) -> tuple[set, bytes]:
    """Run one script through a WAL-attached database.

    Returns ``(golden digests, wal bytes)`` — the digests after every
    op prefix (including the empty one), which is exactly the set of
    states any truncated recovery is allowed to land on.
    """
    rng = random.Random(31000 + seed)
    ops = random_ops(rng)

    shadow = Database()
    golden = {digest(shadow)}
    for op in ops:
        apply_op(shadow, op)
        golden.add(digest(shadow))

    live = Database()
    live.durability = DurabilityManager(directory, fsync=False)
    for op in ops:
        apply_op(live, op)
    assert digest(live) in golden  # sanity: shadow and live agree
    live.durability.close()

    with open(os.path.join(directory, WAL_NAME), "rb") as handle:
        return golden, handle.read()


def recovered_digest_cache():
    """Digest of the recovery of a readable prefix, memoized by the
    committed records themselves (the only thing the digest depends
    on — every byte offset between two commit markers recovers the
    same state, so the sweep rebuilds each distinct state once)."""
    cache: dict[int, tuple] = {}

    def for_prefix(prefix: bytes) -> tuple[tuple, int]:
        scan = scan_wal(prefix)
        committed, _ = committed_records(scan.records)
        count = len(committed)
        if count not in cache:
            db = Database()
            replay_records(db, committed)
            cache[count] = digest(db)
        return cache[count], count

    return for_prefix


@pytest.mark.parametrize("seed", range(SEEDS))
def test_every_byte_prefix_is_a_committed_prefix(seed, tmp_path):
    golden, data = run_script(seed, str(tmp_path / "state"))
    assert data  # the script logged something

    for_prefix = recovered_digest_cache()
    last_count = -1
    counts_seen = set()
    for cut in range(len(data) + 1):
        got, count = for_prefix(data[:cut])
        # Atomicity + durability, the whole property:
        assert got in golden, (
            f"seed {seed}: truncation at byte {cut} recovered a state "
            f"outside the committed-prefix set"
        )
        # A longer physical prefix never loses committed mutations.
        assert count >= last_count, (
            f"seed {seed}: committed count regressed at byte {cut}"
        )
        last_count = count
        counts_seen.add(count)
    # The sweep was not vacuous (intermediate states were hit), and the
    # untruncated log recovers a state in the golden set too (checked
    # above) — specifically the deepest one it reached.
    assert len(counts_seen) >= 2
    assert 0 in counts_seen


@pytest.mark.parametrize("seed", range(0, SEEDS, 10))
def test_sampled_prefixes_through_disk_recover(seed, tmp_path):
    """Tie the in-memory sweep to the production ``recover()`` path:
    for sampled cut points, write the truncated bytes to a real
    durability directory and recover from disk."""
    state = str(tmp_path / "state")
    golden, data = run_script(seed, state)
    for_prefix = recovered_digest_cache()

    rng = random.Random(77000 + seed)
    cuts = sorted({0, len(data), *rng.sample(range(len(data)), 6)})
    scratch = str(tmp_path / "scratch")
    os.makedirs(scratch)
    for cut in cuts:
        with open(os.path.join(scratch, WAL_NAME), "wb") as handle:
            handle.write(data[:cut])
        recovered, report = recover(scratch)
        assert digest(recovered) == for_prefix(data[:cut])[0], (
            f"seed {seed}: disk recover at byte {cut} disagrees with "
            f"the in-memory replay"
        )
        assert digest(recovered) in golden
        assert report.replayed + report.dropped_uncommitted <= (
            report.records_scanned
        )


@pytest.mark.parametrize("seed", range(0, SEEDS, 5))
def test_bit_flips_never_corrupt_recovery(seed, tmp_path):
    """Silent single-byte corruption anywhere in the log: the CRC ends
    the readable prefix there, so recovery still lands inside the
    committed-prefix set — never on a mangled state."""
    golden, data = run_script(seed, str(tmp_path / "state"))
    rng = random.Random(88000 + seed)
    positions = rng.sample(range(len(data)), min(24, len(data)))
    for pos in positions:
        if data[pos] == 0x0A:
            continue  # framing bytes only split lines; content is the target
        flipped = data[:pos] + bytes([data[pos] ^ 0x20]) + data[pos + 1 :]
        scan = scan_wal(flipped)
        committed, _ = committed_records(scan.records)
        db = Database()
        replay_records(db, committed)
        assert digest(db) in golden, (
            f"seed {seed}: bit flip at byte {pos} escaped the CRC"
        )


def test_checkpointed_script_recovers_at_every_cut(tmp_path):
    """One deeper scenario: a checkpoint mid-script, then the sweep
    over the *post-checkpoint* WAL bytes with the snapshot in place —
    every cut lands on a committed prefix at-or-after the snapshot."""
    state = str(tmp_path / "state")
    rng = random.Random(4242)
    ops = random_ops(rng)
    half = len(ops) // 2

    shadow = Database()
    golden = {digest(shadow)}
    for op in ops:
        apply_op(shadow, op)
        golden.add(digest(shadow))

    live = Database()
    live.durability = DurabilityManager(state, fsync=False)
    for op in ops[:half]:
        apply_op(live, op)
    live.durability.checkpoint(live)
    snapshot_digest = digest(live)
    for op in ops[half:]:
        apply_op(live, op)
    live.durability.close()

    with open(os.path.join(state, WAL_NAME), "rb") as handle:
        data = handle.read()
    seen = set()
    for cut in range(len(data) + 1):
        with open(os.path.join(state, WAL_NAME), "wb") as handle:
            handle.write(data[:cut])
        recovered, _report = recover(state)
        got = digest(recovered)
        assert got in golden
        seen.add(got)
    assert snapshot_digest in seen  # cut at 0 = the snapshot itself
    assert digest(live) in seen  # the full log = the final state
