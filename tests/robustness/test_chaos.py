"""Chaos harness: reproducibility and the zero-divergence contract."""

from repro.robustness import run_chaos
from repro.robustness.chaos import ChaosFailure


class TestRunChaos:
    def test_small_run_is_clean(self):
        report = run_chaos(6, crash_every=0)
        assert report.ok
        assert report.seeds == 6
        assert report.checks > 0
        assert not report.divergences and not report.escapes

    def test_faults_actually_fire_and_degrade(self):
        report = run_chaos(10, crash_every=0)
        assert sum(report.injected.values()) > 0
        assert report.degradations > 0

    def test_deterministic_across_runs(self):
        first = run_chaos(5, base_seed=3, crash_every=0)
        second = run_chaos(5, base_seed=3, crash_every=0)
        assert first.checks == second.checks
        assert first.injected == second.injected
        assert first.corruptions_caught == second.corruptions_caught

    def test_base_seed_changes_the_matrix(self):
        a = run_chaos(5, base_seed=0, crash_every=0)
        b = run_chaos(5, base_seed=99, crash_every=0)
        assert (a.checks, a.injected) != (b.checks, b.injected)

    def test_crash_scenario_runs_when_scheduled(self):
        report = run_chaos(2, crash_every=2)
        assert report.crash_scenarios == 1
        assert report.ok

    def test_summary_mentions_outcome(self):
        clean = run_chaos(3, crash_every=0)
        assert "zero semantic divergences" in clean.summary()
        clean.divergences.append(
            ChaosFailure(0, "divergence", "batch", "value mismatch")
        )
        assert not clean.ok
        assert "DIVERGENCE" in clean.summary()

    def test_recovery_scenario_runs_every_seed(self):
        report = run_chaos(4, crash_every=0)
        assert report.recovery_scenarios == 4
        assert report.recovery_points > 0
        assert "recovery:" in report.summary()
