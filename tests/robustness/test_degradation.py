"""Graceful degradation in ``Database.run``: the fallback chain, its
observability (metrics + span meta + EXPLAIN), and seal revalidation
under live cache corruption."""

import pytest

from repro.engine.database import MODE_CHAIN, Database
from repro.obs import explain
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer
from repro.optimizer.plan import Join, Project, Scan
from repro.robustness import FaultInjector, FaultPlan, InjectedFault


def _db():
    db = Database()
    db.create("r", 2)
    db.insert("r", [(1, 2), (2, 3), (3, 4)])
    db.create("s", 2)
    db.insert("s", [(2, 10), (4, 20)])
    return db


def _plan():
    return Project((0, 2), Join(((1, 0),), Scan("r"), Scan("s")))


def _counters():
    return dict(REGISTRY.snapshot().get("counters", {}))


def _delta(after, before, key):
    return after.get(key, 0) - before.get(key, 0)


class TestDegradationChain:
    @pytest.mark.parametrize("mode", ["compiled", "batch", "stream"])
    def test_operator_fault_degrades_with_identical_result(self, mode):
        db = _db()
        plan = _plan()
        want = db.run_reference(plan)
        db.fault_injector = FaultInjector(
            FaultPlan(seed=1, operator_rate=1.0, compile_rate=1.0)
        )
        before = _counters()
        got = db.run(plan, mode=mode, use_cache=False)
        after = _counters()
        assert got.value == want.value
        assert got.work == want.work
        assert got.per_node == want.per_node
        # Every mode from the requested one down to batch/stream fails
        # (rate 1.0), so the full remaining chain is walked.
        expected_steps = len(MODE_CHAIN) - 1 - MODE_CHAIN.index(mode)
        assert _delta(after, before, "robustness.degraded") == expected_steps
        assert _delta(after, before, f"robustness.degraded.{mode}") == 1

    def test_reference_mode_never_degrades(self):
        db = _db()
        db.fault_injector = FaultInjector(
            FaultPlan(seed=1, operator_rate=1.0)
        )
        want = db.run_reference(_plan())
        got = db.run(_plan(), mode="reference")
        assert got.value == want.value

    def test_real_error_at_end_of_chain_propagates(self):
        db = _db()
        bad = Project((9,), Scan("r"))  # out-of-range column everywhere
        with pytest.raises(IndexError):
            db.run(bad, mode="stream", use_cache=False)

    def test_invalid_mode_still_value_error(self):
        with pytest.raises(ValueError, match="mode must be"):
            _db().run(_plan(), mode="bogus")

    def test_injector_detaches_from_cache_too(self):
        db = _db()
        injector = FaultInjector(FaultPlan(seed=2, cache_rate=1.0))
        db.fault_injector = injector
        assert db.plan_cache.fault_injector is injector
        db.fault_injector = None
        assert db.plan_cache.fault_injector is None


class TestDegradationObservability:
    def test_span_meta_records_every_fallback(self):
        db = _db()
        db.fault_injector = FaultInjector(
            FaultPlan(seed=3, operator_rate=1.0, compile_rate=1.0)
        )
        tracer = Tracer()
        db.run(_plan(), mode="compiled", use_cache=False, tracer=tracer)
        events = tracer.last.meta["degraded"]
        assert [e["mode"] for e in events] == ["compiled", "batch", "stream"]
        assert [e["to"] for e in events] == ["batch", "stream", "reference"]
        assert all("InjectedFault" in e["error"] for e in events)

    def test_auto_and_degraded_meta_coexist(self):
        """The regression for the meta-clobber bug: the auto decision
        must not erase (or be erased by) the degradation record."""
        # Large enough that the auto decision picks an injectable mode
        # (the tiny fixture would choose reference, which never fails).
        db = Database()
        db.create("r", 2)
        db.insert("r", [(i, i + 1) for i in range(120)])
        db.create("s", 2)
        db.insert("s", [(i, i * 10) for i in range(0, 240, 2)])
        assert db.plan_mode(_plan()).mode != "reference"
        db.fault_injector = FaultInjector(
            FaultPlan(seed=4, operator_rate=1.0, compile_rate=1.0)
        )
        tracer = Tracer()
        db.run(_plan(), mode="auto", use_cache=False, tracer=tracer)
        meta = tracer.last.meta
        assert "auto" in meta and "degraded" in meta
        assert meta["auto"]["mode"] in MODE_CHAIN
        assert meta["degraded"][-1]["to"] == "reference"

    def test_explain_surfaces_degradation(self):
        db = _db()
        db.fault_injector = FaultInjector(
            FaultPlan(seed=5, operator_rate=1.0)
        )
        report = explain(_plan(), db, mode="stream", use_cache=False)
        assert report.degraded is not None
        assert report.degraded[0]["mode"] == "stream"
        assert "degraded: stream -> reference" in report.render()
        assert "degraded" in report.to_dict(wall=False)

    def test_explain_clean_run_has_no_degraded_block(self):
        report = explain(_plan(), _db(), mode="stream")
        assert report.degraded is None
        assert "degraded:" not in report.render()


class TestCacheCorruptionLive:
    def test_tampered_warm_entry_recomputed_not_served(self):
        db = _db()
        plan = _plan()
        want = db.run_reference(plan)
        warm = db.run(plan)  # populate
        assert warm.value == want.value
        db.fault_injector = FaultInjector(FaultPlan(seed=6, cache_rate=1.0))
        before = _counters()
        got = db.run(plan)  # tampered hit -> revalidation -> recompute
        after = _counters()
        assert got.value == want.value
        assert got.work == want.work
        assert db.plan_cache.corruptions >= 1
        assert (
            _delta(after, before, "robustness.cache.corruption_detected")
            >= 1
        )

    def test_compile_fault_falls_back_but_memoized_artifact_skips_it(self):
        db = _db()
        plan = _plan()
        want = db.run_reference(plan)
        # First: compile fails, chain degrades, answer still right.
        db.fault_injector = FaultInjector(
            FaultPlan(seed=7, compile_rate=1.0)
        )
        got = db.run(plan, mode="compiled", use_cache=False)
        assert got.value == want.value

    def test_injected_fault_type(self):
        injector = FaultInjector(FaultPlan(seed=8, operator_rate=1.0))
        with pytest.raises(InjectedFault):
            injector.maybe_raise("operator")
