"""Fault-injection primitives: determinism, sites, tampering, seals."""

import pytest

from repro.engine.exec import PlanCache, entry_seal
from repro.engine.exec.cache import CacheEntry
from repro.robustness import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    WorkerCrash,
)
from repro.types.values import cvset, tup


def _entry(seal=True):
    value = cvset(tup(1, 2), tup(3, 4))
    work = 7
    entries = (("scan(r)", 0), ("pi(0)", 7))
    return CacheEntry(
        value,
        work,
        entries,
        frozenset({"r"}),
        entry_seal(value, work, entries) if seal else None,
    )


class TestFaultPlan:
    def test_rates_default_to_zero(self):
        plan = FaultPlan(seed=3)
        for site in FAULT_SITES:
            assert plan.rate_for(site) == 0.0

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().rate_for("disk")

    def test_injector_never_fires_at_zero_rate(self):
        injector = FaultInjector(FaultPlan(seed=1))
        for _ in range(100):
            injector.maybe_raise("operator")
        assert injector.total_injected() == 0

    def test_injector_always_fires_at_rate_one(self):
        injector = FaultInjector(FaultPlan(seed=1, operator_rate=1.0))
        with pytest.raises(InjectedFault) as info:
            injector.maybe_raise("operator", "join")
        assert info.value.site == "operator"
        assert info.value.label == "join"
        assert injector.injected == {"operator": 1}


class TestDeterminism:
    def test_same_seed_same_draw_sequence(self):
        plan = FaultPlan(seed=42, operator_rate=0.3)

        def fire_pattern():
            injector = FaultInjector(plan)
            pattern = []
            for _ in range(50):
                try:
                    injector.maybe_raise("operator")
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        assert fire_pattern() == fire_pattern()
        assert any(fire_pattern())  # 0.3 over 50 draws fires somewhere

    def test_different_seeds_differ(self):
        def pattern(seed):
            injector = FaultInjector(FaultPlan(seed=seed, cache_rate=0.5))
            return [
                injector.tamper_entry(_entry()) is not None
                and injector.injected.get("cache", 0)
                for _ in range(20)
            ]

        assert pattern(1) != pattern(2)


class TestTampering:
    def test_tampered_entry_fails_its_seal(self):
        injector = FaultInjector(FaultPlan(seed=5, cache_rate=1.0))
        for _ in range(10):  # all three corruption shapes eventually
            original = _entry()
            tampered = injector.tamper_entry(original)
            assert tampered is not original
            assert tampered.seal == original.seal  # stale on purpose
            assert tampered.seal != entry_seal(
                tampered.value, tampered.work, tampered.entries
            )

    def test_no_tamper_below_rate(self):
        injector = FaultInjector(FaultPlan(seed=5, cache_rate=0.0))
        original = _entry()
        assert injector.tamper_entry(original) is original


class TestCacheSealRevalidation:
    def test_corrupted_entry_served_as_miss_and_dropped(self):
        cache = PlanCache()
        cache.put("k", _entry(seal=False))  # put stamps the seal
        cache.fault_injector = FaultInjector(FaultPlan(seed=9, cache_rate=1.0))
        assert cache.get("k") is None
        assert cache.corruptions == 1
        assert cache.misses == 1 and cache.hits == 0
        assert len(cache) == 0  # dropped, not just hidden
        # A clean re-put serves again once injection is off.
        cache.fault_injector = None
        cache.put("k", _entry(seal=False))
        assert cache.get("k") is not None

    def test_put_seals_unsealed_entries(self):
        cache = PlanCache()
        cache.put("k", _entry(seal=False))
        stored = cache.get("k")
        assert stored.seal == entry_seal(
            stored.value, stored.work, stored.entries
        )


class TestWorkerCrash:
    def test_crash_decision_depends_only_on_seed_and_chunk(self):
        crash = WorkerCrash(seed=11, rate=0.5)
        first = [crash.crashes(i) for i in range(30)]
        second = [crash.crashes(i) for i in range(30)]
        assert first == second
        assert any(first) and not all(first)

    def test_rate_extremes(self):
        assert not any(
            WorkerCrash(seed=1, rate=0.0).crashes(i) for i in range(20)
        )
        assert all(
            WorkerCrash(seed=1, rate=1.0).crashes(i) for i in range(20)
        )
