"""Tests for the deterministic multiprocess sweep harness."""
