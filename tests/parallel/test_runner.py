"""Parallel harness: determinism, ordering, and byte-identity with the
serial reference paths.

Worker counts stay at 2 and workloads tiny — these are correctness
tests (same bytes out, any core count), not throughput tests.
"""

import pytest

from repro.engine.fuzz import run_fuzz
from repro.experiments.registry import run_all
from repro.experiments.report import render_many
from repro.parallel import (
    chunked,
    parallel_map,
    render_verdicts,
    run_invariance_cell,
    run_mode_agreement_cell,
    sweep_invariance,
    sweep_mode_agreement,
    tightest,
)


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_path_matches_comprehension(self):
        items = list(range(17))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]

    def test_parallel_preserves_input_order(self):
        items = list(range(23))
        got = parallel_map(_square, items, jobs=2, chunk_size=4)
        assert got == [x * x for x in items]

    def test_chunk_size_one(self):
        items = [3, 1, 4, 1, 5]
        got = parallel_map(_square, items, jobs=2, chunk_size=1)
        assert got == [9, 1, 16, 1, 25]

    def test_empty_and_singleton_inputs(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [7], jobs=4) == [49]

    def test_chunked_is_contiguous_and_complete(self):
        items = list(range(10))
        chunks = list(chunked(items, 3))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
        with pytest.raises(ValueError):
            list(chunked(items, 0))


class TestCrashRecovery:
    def test_retry_recovers_first_attempt_crashes(self):
        from repro.robustness import WorkerCrash

        items = list(range(20))
        got = parallel_map(
            _square,
            items,
            jobs=2,
            chunk_size=3,
            chunk_fault=WorkerCrash(seed=7, rate=0.5, crash_attempts=1),
        )
        assert got == [x * x for x in items]

    def test_exhausted_retries_fall_back_to_parent_serial(self):
        from repro.robustness import WorkerCrash

        items = list(range(20))
        got = parallel_map(
            _square,
            items,
            jobs=2,
            chunk_size=3,
            max_chunk_retries=1,
            chunk_fault=WorkerCrash(seed=7, rate=0.6, crash_attempts=99),
        )
        assert got == [x * x for x in items]

    def test_crash_recovery_bumps_metrics(self):
        from repro.obs.metrics import REGISTRY
        from repro.robustness import WorkerCrash

        before = dict(REGISTRY.snapshot().get("counters", {}))
        parallel_map(
            _square,
            list(range(16)),
            jobs=2,
            chunk_size=2,
            chunk_fault=WorkerCrash(seed=5, rate=1.0, crash_attempts=1),
        )
        after = dict(REGISTRY.snapshot().get("counters", {}))
        key = "robustness.parallel.chunk_retries"
        assert after.get(key, 0) > before.get(key, 0)

    def test_exhausted_retries_bump_fallback_counter_per_chunk(self):
        """rate=1.0 crashes every chunk on every attempt: each of the
        four chunks burns its one retry, then runs serially in the
        parent — one ``serial_fallbacks`` bump per chunk, and at least
        one retry per chunk before that."""
        from repro.obs.metrics import REGISTRY
        from repro.robustness import WorkerCrash

        counters = REGISTRY.snapshot()["counters"]
        fallbacks = counters.get("robustness.parallel.serial_fallbacks", 0)
        retries = counters.get("robustness.parallel.chunk_retries", 0)
        items = list(range(12))
        got = parallel_map(
            _square,
            items,
            jobs=2,
            chunk_size=3,
            max_chunk_retries=1,
            chunk_fault=WorkerCrash(seed=7, rate=1.0, crash_attempts=99),
        )
        counters = REGISTRY.snapshot()["counters"]
        assert got == [x * x for x in items]
        assert counters["robustness.parallel.serial_fallbacks"] - fallbacks == 4
        assert counters["robustness.parallel.chunk_retries"] - retries == 4

    def test_partial_crash_retries_bounded_and_output_ordered(self):
        """A genuinely partial crash round: every seeded-to-crash chunk
        is retried (a broken pool may take innocent in-flight chunks
        with it, so the count can exceed that, but never the chunk
        count), nothing falls back to the parent — ``crash_attempts=1``
        means every retry succeeds — and the merged output is still
        exactly the input-order comprehension."""
        from repro.obs.metrics import REGISTRY
        from repro.robustness import WorkerCrash

        fault = WorkerCrash(seed=11, rate=0.4, crash_attempts=1)
        n_chunks = -(-24 // 4)
        crashing = [i for i in range(n_chunks) if fault.crashes(i)]
        assert crashing and len(crashing) < n_chunks  # genuinely partial
        counters = REGISTRY.snapshot()["counters"]
        retries = counters.get("robustness.parallel.chunk_retries", 0)
        fallbacks = counters.get("robustness.parallel.serial_fallbacks", 0)
        got = parallel_map(
            _square, list(range(24)), jobs=2, chunk_size=4, chunk_fault=fault
        )
        counters = REGISTRY.snapshot()["counters"]
        assert got == [x * x for x in range(24)]
        retried = counters["robustness.parallel.chunk_retries"] - retries
        assert len(crashing) <= retried <= n_chunks
        assert (
            counters.get("robustness.parallel.serial_fallbacks", 0)
            == fallbacks
        )

    def test_real_worker_exception_still_propagates(self):
        # Exceptions are serial semantics, not crashes: no retry.
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [2, 1, 0, 4], jobs=2, chunk_size=1)

    def test_serial_path_ignores_chunk_fault(self):
        from repro.robustness import WorkerCrash

        items = list(range(6))
        got = parallel_map(
            _square,
            items,
            jobs=1,
            chunk_fault=WorkerCrash(seed=1, rate=1.0, crash_attempts=99),
        )
        assert got == [x * x for x in items]


def _reciprocal(x):
    return 1 / x


def _instrumented_square(x):
    from repro.obs.metrics import counter, gauge, observe

    counter("test.parallel.items")
    gauge("test.parallel.largest", float(x))
    observe("test.parallel.value", float(x))
    return x * x


class TestMergeMetrics:
    def test_parallel_totals_identical_to_serial(self):
        """Counter/histogram totals (and the max-merged gauge) come
        out the same whether the worker ran in-process or its deltas
        were shipped back and merged in chunk order."""
        from repro.obs.metrics import REGISTRY, snapshot_delta

        items = list(range(12))
        before = REGISTRY.snapshot()
        serial = parallel_map(_instrumented_square, items, jobs=1,
                              merge_metrics=True)
        mid = REGISTRY.snapshot()
        sharded = parallel_map(_instrumented_square, items, jobs=2,
                               chunk_size=3, merge_metrics=True)
        after = REGISTRY.snapshot()
        assert serial == sharded == [x * x for x in items]
        serial_delta = snapshot_delta(mid, before)
        parallel_delta = snapshot_delta(after, mid)
        assert (
            parallel_delta["counters"]["test.parallel.items"]
            == serial_delta["counters"]["test.parallel.items"]
            == len(items)
        )
        assert (
            parallel_delta["histograms"]["test.parallel.value"]
            == serial_delta["histograms"]["test.parallel.value"]
        )
        assert (
            parallel_delta["gauges"]["test.parallel.largest"]
            == serial_delta["gauges"]["test.parallel.largest"]
            == float(max(items))
        )

    def test_shipped_deltas_ignore_inherited_parent_state(self):
        """Workers fork with the parent's registry contents and pool
        processes are reused across chunks; only the *delta* ships, so
        neither inherited state nor chunk reuse double-counts."""
        from repro.obs.metrics import REGISTRY, counter

        counter("test.parallel.items", 1000)  # forked into every worker
        before = REGISTRY.snapshot()["counters"]["test.parallel.items"]
        # chunk_size=1 over 8 items on 2 workers: processes are reused
        # for several chunks each.
        parallel_map(_instrumented_square, list(range(8)), jobs=2,
                     chunk_size=1, merge_metrics=True)
        after = REGISTRY.snapshot()["counters"]["test.parallel.items"]
        assert after - before == 8

    def test_crash_fallback_totals_still_exact(self):
        """Mixed outcome run: some chunks ship deltas from workers,
        crashed chunks fall back to the parent (writing the live
        registry directly, no delta).  Totals still come out exact —
        the fault hook fires *before* the chunk body, so a crashed
        attempt never half-reports."""
        from repro.obs.metrics import REGISTRY
        from repro.robustness import WorkerCrash

        items = list(range(20))
        before = REGISTRY.snapshot()["counters"].get("test.parallel.items", 0)
        got = parallel_map(
            _instrumented_square,
            items,
            jobs=2,
            chunk_size=3,
            max_chunk_retries=1,
            merge_metrics=True,
            chunk_fault=WorkerCrash(seed=7, rate=0.6, crash_attempts=99),
        )
        after = REGISTRY.snapshot()["counters"]["test.parallel.items"]
        assert got == [x * x for x in items]
        assert after - before == len(items)
    def test_jobs_report_identical_to_serial(self):
        serial = run_fuzz(8, base_seed=5)
        sharded = run_fuzz(8, base_seed=5, jobs=2)
        assert serial.summary() == sharded.summary()
        assert serial.seeds == sharded.seeds
        assert serial.checks == sharded.checks
        assert [str(d) for d in serial.divergences] == [
            str(d) for d in sharded.divergences
        ]

    def test_seed_results_independent_of_total(self):
        """Seed i plays the same scenarios whether 4 or 8 seeds run —
        the property that makes sharding sound."""
        small = run_fuzz(4, base_seed=5)
        large = run_fuzz(8, base_seed=5)
        assert small.checks <= large.checks
        assert small.ok and large.ok


class TestInvarianceSweep:
    def test_parallel_sweep_byte_identical(self):
        operations = ["projection", "eq_adom"]
        serial = sweep_invariance(operations, trials=4, seed=2, jobs=1)
        sharded = sweep_invariance(operations, trials=4, seed=2, jobs=2)
        assert render_verdicts(serial) == render_verdicts(sharded)
        assert serial == sharded

    def test_matches_serial_classify(self):
        """Cell verdicts agree with the in-process classify() sweep."""
        from repro.cli import OPERATION_CATALOG
        from repro.genericity.classify import classify

        verdicts = sweep_invariance(["even"], trials=5, seed=3, jobs=1)
        row = classify(OPERATION_CATALOG["even"](), trials=5, seed=3)
        assert len(verdicts) == len(row.verdicts)
        for cell, verdict in zip(verdicts, row.verdicts):
            assert cell.spec_name == verdict.spec.name
            assert cell.mode == verdict.mode
            assert cell.label() == verdict.label()

    def test_tightest_follows_lattice_order(self):
        verdicts = sweep_invariance(["eq_adom"], trials=5, seed=0, jobs=1)
        assert tightest(verdicts, "eq_adom", "rel") == "all"
        assert tightest(verdicts, "missing-op", "rel") is None

    def test_single_cell_reproducible(self):
        task = ("even", "bijective", "strong", 4, 1)
        assert run_invariance_cell(task) == run_invariance_cell(task)


class TestModeAgreementSweep:
    def test_every_mode_agrees_with_reference(self):
        verdicts = sweep_mode_agreement(12, jobs=1)
        assert len(verdicts) == 36  # 12 seeds x 3 modes
        assert all(v.agree for v in verdicts)
        assert {v.mode for v in verdicts} == {"stream", "batch", "compiled"}

    def test_parallel_identical_to_serial(self):
        serial = sweep_mode_agreement(8, base_seed=4, jobs=1)
        sharded = sweep_mode_agreement(8, base_seed=4, jobs=2)
        assert serial == sharded

    def test_single_cell_reproducible(self):
        task = (0, 3, "compiled")
        assert run_mode_agreement_cell(task) == run_mode_agreement_cell(task)


class TestRegistrySharding:
    def test_run_all_jobs_identical_reports(self):
        ids = ["E-2.2", "E-2.8"]
        serial = run_all(ids, jobs=1)
        sharded = run_all(ids, jobs=2)
        assert render_many(serial) == render_many(sharded)
        assert [r.exp_id for r in sharded] == ids
