"""Cross-module integration tests: the paper's storylines end to end."""

import random


from repro.algebra.operators import (
    difference_op,
    projection,
    select_eq,
    self_compose,
    union_op,
)
from repro.engine.database import Database
from repro.engine.workload import hr_database, paper_h_pairs, paper_r1, paper_r2
from repro.genericity.classify import classify
from repro.genericity.hierarchy import GenericitySpec
from repro.genericity.invariance import check_invariance
from repro.genericity.witnesses import find_counterexample
from repro.lambda2.parametricity import check_parametricity
from repro.lambda2.prelude import build_prelude
from repro.listset.setfuncs import poly, set_union
from repro.listset.transfer import transfer_parametricity
from repro.mappings.extensions import REL, STRONG
from repro.mappings.families import MappingFamily
from repro.mappings.mapping import Mapping
from repro.optimizer.plan import Difference, Project, Scan
from repro.optimizer.rewriter import Rewriter
from repro.types.ast import STR
from repro.types.parser import parse_type
from repro.types.values import Tup, cvlist


class TestGenericityStoryline:
    """Section 2-3: from the motivating example to classification."""

    def test_example_2_2_through_generic_machinery(self):
        fam = MappingFamily({"str": Mapping(paper_h_pairs(), STR, STR)})
        report = check_invariance(
            self_compose(), fam, STRONG, [paper_r1()], base=STR
        )
        assert report.invariant

    def test_classification_recovers_section_3(self):
        # The classification table reproduces the paper's placement of
        # the core operations.
        pi_row = classify(projection((0,), 2), trials=15)
        assert pi_row.tightest(REL).name == "all"
        sigma_row = classify(select_eq(0, 1, 2), trials=40)
        assert sigma_row.tightest(REL).name == "injective"

    def test_binary_ops_break_rel_mode_but_not_injective(self):
        for op in (difference_op(),):
            all_spec = GenericitySpec("all", "all")
            inj_spec = GenericitySpec("injective", "injective")
            assert find_counterexample(op, all_spec, REL, trials=200).found
            assert not find_counterexample(op, inj_spec, REL, trials=40).found


class TestParametricityStoryline:
    """Section 4: typecheck -> evaluate -> parametricity -> transfer."""

    def test_full_pipeline_for_union(self):
        prelude = build_prelude()
        # 1. append is parametric at its checked type (Thm 4.4).
        report = check_parametricity(
            prelude.value("append"), prelude.type_of("append"), "append"
        )
        assert report.parametric
        # 2. its type is LtoS and union is analogous (Cor 4.15).
        samples = [Tup((cvlist(0, 1), cvlist(1, 2))), Tup((cvlist(), cvlist()))]
        transfer = transfer_parametricity(
            "append", prelude.value("append"), poly(set_union),
            prelude.type_of("append"), samples,
        )
        assert transfer.transferred
        # 3. hence union is parametric at the set type.
        set_report = check_parametricity(
            poly(set_union), parse_type("forall X. {X} * {X} -> {X}"), "union"
        )
        assert set_report.parametric

    def test_parametricity_refines_genericity_for_union(self):
        # Genericity of the algebra's union (Section 3) and the
        # parametricity route (Section 4) agree.
        spec = GenericitySpec("all", "all")
        search = find_counterexample(union_op(), spec, REL, trials=60)
        assert not search.found


class TestOptimizerStoryline:
    """Section 4.4: constraints license rewrites, verified end to end."""

    def test_hr_scenario(self):
        db = hr_database(random.Random(0), employees=25, students=18,
                         overlap=6)
        plan = Project((0,), Difference(Scan("employees"), Scan("students")))
        rewriter = Rewriter(db.catalog)
        optimized = rewriter.optimize(plan)
        assert optimized != plan
        before, after = db.run(plan), db.run(optimized)
        assert before.value == after.value
        assert after.work <= before.work
        assert any("injective" in line for line in rewriter.explain())

    def test_engine_schema_feeds_catalog(self):
        db = Database()
        shared = {(0,): "pk"}
        db.create("a", 2, keys=[(0,)], shared_keys=shared)
        db.create("b", 2, keys=[(0,)], shared_keys=shared)
        db.insert("a", [(1, "x"), (2, "y")])
        db.insert("b", [(1, "x")])
        plan = Project((0,), Difference(Scan("a"), Scan("b")))
        optimized = Rewriter(db.catalog).optimize(plan)
        assert isinstance(optimized, Difference)
        assert db.run(plan).value == db.run(optimized).value


class TestExperimentsAgreeWithDirectChecks:
    def test_registry_result_consistent_with_manual_run(self):
        from repro.experiments import run

        result = run("E-2.6")
        assert result.matches_paper
        fam = MappingFamily({"str": Mapping(paper_h_pairs(), STR, STR)})
        t = parse_type("{str * str}")
        assert fam.extend(t, REL).holds(paper_r1(), paper_r2())
