"""Tests for fixpoint and while operations."""


from repro.algebra.fixpoint import (
    inflationary_fixpoint,
    transitive_closure,
    while_query,
)
from repro.algebra.operators import self_compose
from repro.algebra.query import Query
from repro.types.ast import INT, set_of
from repro.types.values import CVSet, cvset, tup


class TestTransitiveClosure:
    def test_chain(self):
        r = cvset(tup(1, 2), tup(2, 3), tup(3, 4))
        out = transitive_closure().fn(r)
        assert tup(1, 4) in out
        assert tup(1, 3) in out
        assert r.issubset(out)
        assert len(out) == 6

    def test_cycle(self):
        r = cvset(tup(1, 2), tup(2, 1))
        out = transitive_closure().fn(r)
        assert tup(1, 1) in out
        assert tup(2, 2) in out

    def test_empty(self):
        assert transitive_closure().fn(CVSet()) == CVSet()

    def test_already_closed_is_fixpoint(self):
        r = cvset(tup(1, 2), tup(2, 3), tup(1, 3))
        out = transitive_closure().fn(r)
        assert out == r


class TestInflationaryFixpoint:
    def test_monotone_growth_stops(self):
        # Body adds successors of existing atoms up to a ceiling.
        def grow(s):
            return CVSet(x + 1 for x in s if x < 5)

        body = Query("grow", grow, set_of(INT), set_of(INT))
        q = inflationary_fixpoint(body)
        assert q.fn(cvset(1)) == cvset(1, 2, 3, 4, 5)

    def test_name_and_metadata(self):
        q = inflationary_fixpoint(self_compose())
        assert q.name.startswith("fix(")
        assert q.uses_equality


class TestWhile:
    def test_countdown(self):
        def shrink(s):
            return CVSet(x for x in s if x != max(s))

        body = Query("shrink", shrink, set_of(INT), set_of(INT))
        q = while_query(lambda s: len(s) > 2, body)
        out = q.fn(cvset(1, 2, 3, 4, 5))
        assert out == cvset(1, 2)

    def test_false_condition_is_identity(self):
        body = Query("never", lambda s: CVSet(), set_of(INT), set_of(INT))
        q = while_query(lambda _s: False, body)
        assert q.fn(cvset(1)) == cvset(1)

    def test_stabilizing_body_terminates(self):
        body = Query("same", lambda s: s, set_of(INT), set_of(INT))
        q = while_query(lambda _s: True, body)
        assert q.fn(cvset(1)) == cvset(1)
