"""Tests for nested-relational operations."""

from repro.algebra.nested import (
    deep_flatten,
    flatten,
    nest,
    nest_parity,
    powerset,
    set_map,
    singleton,
    unnest,
)
from repro.types.ast import INT
from repro.types.values import CVSet, cvset, tup


class TestPowerset:
    def test_counts(self):
        out = powerset().fn(cvset(1, 2))
        assert len(out) == 4
        assert cvset() in out
        assert cvset(1, 2) in out

    def test_empty(self):
        assert powerset().fn(cvset()) == cvset(cvset())


class TestNestUnnest:
    def test_nest_groups(self):
        r = cvset(tup("a", 1), tup("a", 2), tup("b", 3))
        out = nest((0,), (1,), 2).fn(r)
        assert tup("a", cvset(tup(1), tup(2))) in out
        assert tup("b", cvset(tup(3))) in out

    def test_unnest_inverts_nest(self):
        r = cvset(tup("a", 1), tup("a", 2), tup("b", 3))
        nested = nest((0,), (1,), 2).fn(r)
        flat = unnest(1, 2).fn(nested)
        assert flat == r

    def test_unnest_atom_elements(self):
        r = cvset(tup("a", cvset(1, 2)))
        out = unnest(1, 2).fn(r)
        assert out == cvset(tup("a", 1), tup("a", 2))

    def test_nest_uses_equality(self):
        assert nest((0,), (1,), 2).uses_equality


class TestMonadStructure:
    def test_singleton(self):
        assert singleton().fn(5) == cvset(5)

    def test_flatten(self):
        assert flatten().fn(cvset(cvset(1), cvset(2, 3))) == cvset(1, 2, 3)

    def test_monad_laws_on_samples(self):
        eta, mu = singleton(), flatten()
        s = cvset(1, 2)
        # mu . eta = id on sets
        assert mu.fn(eta.fn(s)) == s
        # mu . map(eta) = id
        mapped = CVSet(eta.fn(x) for x in s)
        assert mu.fn(mapped) == s

    def test_set_map(self):
        q = set_map(lambda x: x * 2, "dbl", INT, INT)
        assert q.fn(cvset(1, 2)) == cvset(2, 4)


class TestNestParity:
    def test_depth_parity(self):
        np = nest_parity()
        assert np.fn(cvset(1)) is False        # depth 1
        assert np.fn(cvset(cvset(1))) is True  # depth 2
        assert np.fn(cvset(cvset(cvset(1)))) is False

    def test_empty_set_has_depth_one(self):
        assert nest_parity().fn(cvset()) is False

    def test_structural_only(self):
        # Same structure, different atoms: same answer.
        np = nest_parity()
        assert np.fn(cvset(cvset("a"))) == np.fn(cvset(cvset(99)))


class TestDeepFlatten:
    def test_flattens_all_levels(self):
        v = cvset(cvset(1, cvset(2)), cvset(3))
        assert deep_flatten().fn(v) == cvset(1, 2, 3)

    def test_atoms_pass_through_tuples(self):
        v = cvset(tup(1, cvset(2)))
        assert deep_flatten().fn(v) == cvset(1, 2)
