"""Tests for the bag algebra."""

from repro.algebra.bags import (
    bag_map,
    bag_min_intersection,
    bag_monus,
    bag_of_set,
    bag_projection,
    bag_select_eq,
    bag_union,
    duplicate_elim,
)
from repro.types.ast import INT
from repro.types.values import CVBag, Tup, cvbag, cvset, tup


class TestBagUnion:
    def test_multiplicities_add(self):
        out = bag_union().fn(Tup((cvbag(1, 1), cvbag(1, 2))))
        assert out.count(1) == 3
        assert out.count(2) == 1

    def test_empty_identity(self):
        b = cvbag(1, 2)
        assert bag_union().fn(Tup((b, cvbag()))) == b


class TestBagMonus:
    def test_subtracts_with_floor(self):
        out = bag_monus().fn(Tup((cvbag(1, 1, 2), cvbag(1, 2, 2))))
        assert out == cvbag(1)

    def test_disjoint_untouched(self):
        assert bag_monus().fn(Tup((cvbag(1), cvbag(2)))) == cvbag(1)

    def test_uses_equality(self):
        assert bag_monus().uses_equality


class TestBagMinIntersection:
    def test_minimum_multiplicity(self):
        out = bag_min_intersection().fn(
            Tup((cvbag(1, 1, 1, 2), cvbag(1, 1, 3)))
        )
        assert out == cvbag(1, 1)

    def test_disjoint_empty(self):
        assert bag_min_intersection().fn(Tup((cvbag(1), cvbag(2)))) == cvbag()


class TestDuplicateElim:
    def test_collapses_to_support(self):
        assert duplicate_elim().fn(cvbag(1, 1, 2)) == cvset(1, 2)

    def test_empty(self):
        assert duplicate_elim().fn(cvbag()) == cvset()


class TestBagStructuralOps:
    def test_projection_preserves_multiplicity(self):
        b = cvbag(tup(1, "a"), tup(1, "b"))
        out = bag_projection((0,), 2).fn(b)
        assert out.count(tup(1)) == 2

    def test_select_eq(self):
        b = cvbag(tup(1, 1), tup(1, 1), tup(1, 2))
        out = bag_select_eq(0, 1, 2).fn(b)
        assert out.count(tup(1, 1)) == 2
        assert tup(1, 2) not in out

    def test_bag_map_merges_multiplicities(self):
        q = bag_map(lambda x: x % 2, "mod2", INT, INT)
        out = q.fn(cvbag(1, 3, 2))
        assert out.count(1) == 2
        assert out.count(0) == 1

    def test_bag_of_set(self):
        out = bag_of_set().fn(cvset(1, 2))
        assert isinstance(out, CVBag)
        assert out.count(1) == 1
