"""Tests for the relational operator catalog (Section 3)."""


from repro.algebra.operators import (
    active_domain,
    adom_complement,
    cross_op,
    difference_op,
    eq_adom,
    empty_query,
    even_query,
    full_complement,
    hat_select_eq,
    identity_query,
    ins_const,
    intersection_op,
    map_query,
    natural_join,
    projection,
    projection_out,
    rename_query,
    select_const,
    select_eq,
    select_pred,
    self_compose,
    self_cross,
    union_op,
)
from repro.types.ast import INT
from repro.types.values import CVSet, Tup, cvset, tup


R = cvset(tup(1, 2), tup(2, 3), tup(1, 3))
S = cvset(tup(1, 2), tup(3, 4))


class TestProjection:
    def test_projects_columns(self):
        assert projection((0,), 2).fn(R) == cvset(tup(1), tup(2))

    def test_reorders(self):
        assert projection((1, 0), 2).fn(S) == cvset(tup(2, 1), tup(4, 3))

    def test_projection_out(self):
        q = projection_out(1, 3)
        assert q.fn(cvset(tup(1, 2, 3))) == cvset(tup(1, 3))

    def test_duplicates_collapse(self):
        r = cvset(tup(1, 2), tup(1, 3))
        assert projection((0,), 2).fn(r) == cvset(tup(1))

    def test_type_is_polymorphic(self):
        q = projection((0,), 2)
        assert q.defined_at_all_types()
        assert not q.uses_equality


class TestSelection:
    def test_select_eq(self):
        r = cvset(tup(1, 1), tup(1, 2))
        assert select_eq(0, 1, 2).fn(r) == cvset(tup(1, 1))

    def test_select_eq_marks_equality(self):
        assert select_eq(0, 1, 2).uses_equality

    def test_hat_select_drops_duplicate_column(self):
        r = cvset(tup(1, 1), tup(1, 2))
        assert hat_select_eq(0, 1, 2).fn(r) == cvset(tup(1))

    def test_hat_select_three_columns(self):
        r = cvset(tup(1, 1, "x"), tup(1, 2, "y"))
        assert hat_select_eq(0, 1, 3).fn(r) == cvset(tup(1, "x"))

    def test_select_const(self):
        r = cvset(tup(7, 1), tup(8, 2))
        assert select_const(0, 7, 2, INT).fn(r) == cvset(tup(7, 1))

    def test_select_pred(self):
        q = select_pred(lambda x: x > 1, "gt1", INT)
        assert q.fn(cvset(0, 1, 2, 3)) == cvset(2, 3)


class TestBinaryOperators:
    def test_union(self):
        assert union_op().fn(Tup((R, S))) == R.union(S)

    def test_intersection(self):
        assert intersection_op().fn(Tup((R, S))) == cvset(tup(1, 2))

    def test_difference(self):
        assert difference_op().fn(Tup((R, S))) == cvset(tup(2, 3), tup(1, 3))

    def test_cross(self):
        out = cross_op().fn(Tup((cvset(1), cvset("a", "b"))))
        assert out == cvset(tup(1, "a"), tup(1, "b"))

    def test_join(self):
        q = natural_join(2, 2, on=[(1, 0)])
        out = q.fn(Tup((R, S)))
        assert tup(1, 3, 3, 4) in out
        assert tup(2, 3, 3, 4) in out
        assert tup(1, 2, 1, 2) not in out  # 2 != 1


class TestSelfOperators:
    def test_self_cross(self):
        r = cvset("a", "b")
        out = self_cross().fn(r)
        assert len(out) == 4
        assert tup("a", "b") in out

    def test_self_compose_is_paper_q1(self):
        # Example 2.2's computation.
        from repro.engine.workload import paper_r1

        assert self_compose().fn(paper_r1()) == cvset(tup("e", "g"), tup("i", "g"))

    def test_self_compose_empty_on_broken_chain(self):
        from repro.engine.workload import paper_r3

        assert self_compose().fn(paper_r3()) == CVSet()


class TestDomainOperators:
    def test_active_domain(self):
        assert active_domain(2).fn(R) == cvset(1, 2, 3)

    def test_eq_adom(self):
        out = eq_adom().fn(cvset(1, 2))
        assert out == cvset(tup(1, 1), tup(2, 2))

    def test_adom_complement(self):
        r = cvset(tup(1, 2))
        out = adom_complement(2).fn(r)
        assert out == cvset(tup(1, 1), tup(2, 1), tup(2, 2))

    def test_full_complement(self):
        q = full_complement([0, 1], 1)
        assert q.fn(cvset(tup(0))) == cvset(tup(1))

    def test_even(self):
        assert even_query().fn(cvset()) is True
        assert even_query().fn(cvset(1)) is False
        assert even_query().fn(cvset(1, 2)) is True


class TestOtherOperators:
    def test_identity(self):
        assert identity_query().fn(R) == R

    def test_empty(self):
        assert empty_query().fn(R) == CVSet()

    def test_ins_const(self):
        assert ins_const(7, INT).fn(cvset(1)) == cvset(1, 7)
        assert ins_const(7, INT).fn(cvset(7)) == cvset(7)

    def test_map_query(self):
        q = map_query(lambda x: x + 1, "inc", INT, INT)
        assert q.fn(cvset(1, 2)) == cvset(2, 3)

    def test_rename(self):
        assert rename_query((1, 0), 2).fn(S) == cvset(tup(2, 1), tup(4, 3))
