"""Tests for the Query abstraction and its combinators."""

from repro.algebra.operators import projection, select_eq, self_cross, union_op
from repro.algebra.query import Query, compose, constant_query, pair_query
from repro.types.ast import INT, Product, SetType, set_of, tvar
from repro.types.values import CVSet, Tup, cvset, tup


class TestQueryBasics:
    def test_call(self):
        q = Query("inc-all", lambda s: CVSet(x + 1 for x in s),
                  set_of(INT), set_of(INT))
        assert q(cvset(1, 2)) == cvset(2, 3)

    def test_defined_at_all_types(self):
        assert projection((0,), 2).defined_at_all_types()
        poly = Query("id", lambda v: v, tvar("X"), tvar("X"))
        assert poly.defined_at_all_types()
        mono = Query("c", lambda v: v, set_of(INT), set_of(INT))
        assert not mono.defined_at_all_types()

    def test_instantiate(self):
        q = projection((0,), 2).instantiate({"X1": INT, "X2": INT})
        assert q.input_type == set_of(INT * INT)

    def test_repr_mentions_types(self):
        assert "{X1 * X2}" in repr(projection((0,), 2))


class TestComposition:
    def test_function_composition(self):
        q = compose(projection((0,), 2), select_eq(0, 1, 2))
        r = cvset(tup(1, 1), tup(1, 2))
        assert q.fn(r) == cvset(tup(1))

    def test_equality_flag_propagates(self):
        q = compose(projection((0,), 2), select_eq(0, 1, 2))
        assert q.uses_equality

    def test_output_type_tracks_inner_shape(self):
        # RxR after pi_1 produces pairs of 1-tuples; the composed type
        # must say so (regression for the unification fix).
        q = compose(self_cross(), projection((0,), 2))
        expected_element = Product(
            (Product((tvar("X1"),)), Product((tvar("X1"),)))
        )
        assert q.output_type == SetType(expected_element)

    def test_then_is_flipped_compose(self):
        a = projection((0,), 2)
        b = self_cross()
        assert a.then(b).name == compose(b, a).name


class TestPairQuery:
    def test_runs_both(self):
        q = pair_query(projection((0,), 2), projection((1,), 2))
        out = q.fn(cvset(tup(1, 2)))
        assert out == Tup((cvset(tup(1)), cvset(tup(2))))

    def test_composes_with_binary_operator(self):
        q = compose(union_op(), pair_query(projection((0,), 2),
                                           projection((1,), 2)))
        out = q.fn(cvset(tup(1, 2), tup(3, 4)))
        assert out == cvset(tup(1), tup(3), tup(2), tup(4))


class TestConstantQuery:
    def test_always_returns_value(self):
        q = constant_query("k", cvset(9), set_of(INT), set_of(INT))
        assert q.fn(cvset(1)) == cvset(9)
        assert q.fn(cvset()) == cvset(9)
