"""Tests for the restricted relational calculus (Prop 3.3)."""

import pytest

from repro.algebra.calculus import (
    And,
    Atom,
    CalculusError,
    CalculusQuery,
    EqAtom,
    Exists,
    Or,
    restricted_fragment_ok,
)
from repro.types.values import CVSet, Tup, cvset, tup


DB = {
    "R": cvset(tup(1, 2), tup(2, 3)),
    "S": cvset(tup(2,), tup(9,)),
}


class TestFragmentMembership:
    def test_plain_atom_ok(self):
        assert restricted_fragment_ok(Atom("R", ("x", "y")))

    def test_repeated_variable_atom_rejected(self):
        assert not restricted_fragment_ok(Atom("R", ("x", "x")))

    def test_eq_atom_rejected(self):
        assert not restricted_fragment_ok(EqAtom("x", "y"))

    def test_or_needs_same_free_vars(self):
        good = Or(Atom("R", ("x", "y")), Atom("R", ("y", "x")))
        assert restricted_fragment_ok(good)
        bad = Or(Atom("R", ("x", "y")), Atom("S", ("x",)))
        assert not restricted_fragment_ok(bad)

    def test_and_needs_disjoint_vars(self):
        good = And(Atom("R", ("x", "y")), Atom("S", ("z",)))
        assert restricted_fragment_ok(good)
        bad = And(Atom("R", ("x", "y")), Atom("S", ("x",)))
        assert not restricted_fragment_ok(bad)

    def test_exists_transparent(self):
        assert restricted_fragment_ok(Exists("y", Atom("R", ("x", "y"))))


class TestConstruction:
    def test_strict_rejects_illegal(self):
        with pytest.raises(CalculusError):
            CalculusQuery(("x",), Atom("R", ("x", "x")))

    def test_non_strict_allows_illegal(self):
        q = CalculusQuery(("x",), Atom("R", ("x", "x")), strict=False)
        assert q.evaluate({"R": cvset(tup(1, 1), tup(1, 2))}) == cvset(tup(1))

    def test_head_must_match_free_vars(self):
        with pytest.raises(CalculusError):
            CalculusQuery(("x", "z"), Atom("R", ("x", "y")))


class TestEvaluation:
    def test_atom(self):
        q = CalculusQuery(("x", "y"), Atom("R", ("x", "y")))
        assert q.evaluate(DB) == DB["R"]

    def test_head_reorders(self):
        q = CalculusQuery(("y", "x"), Atom("R", ("x", "y")))
        assert q.evaluate(DB) == cvset(tup(2, 1), tup(3, 2))

    def test_exists_projects(self):
        q = CalculusQuery(("x",), Exists("y", Atom("R", ("x", "y"))))
        assert q.evaluate(DB) == cvset(tup(1), tup(2))

    def test_or_unions(self):
        q = CalculusQuery(
            ("x", "y"), Or(Atom("R", ("x", "y")), Atom("R", ("y", "x")))
        )
        assert q.evaluate(DB) == cvset(
            tup(1, 2), tup(2, 3), tup(2, 1), tup(3, 2)
        )

    def test_and_cross_product(self):
        q = CalculusQuery(
            ("x", "y", "z"),
            And(Atom("R", ("x", "y")), Atom("S", ("z",))),
        )
        out = q.evaluate(DB)
        assert len(out) == 4
        assert tup(1, 2, 9) in out

    def test_missing_relation_is_empty(self):
        q = CalculusQuery(("x", "y"), Atom("T", ("x", "y")))
        assert q.evaluate(DB) == CVSet()

    def test_arity_mismatch_rejected(self):
        q = CalculusQuery(("x",), Atom("S", ("x",)))
        with pytest.raises(CalculusError):
            q.evaluate({"S": cvset(tup(1, 2))})

    def test_eq_atom_uses_active_domain(self):
        q = CalculusQuery(
            ("x", "y"),
            EqAtom("x", "y"),
            strict=False,
        )
        out = q.evaluate({"S": cvset(tup(5,), tup(6,))})
        assert out == cvset(tup(5, 5), tup(6, 6))


class TestAsQuery:
    def test_single_relation(self):
        q = CalculusQuery(("x",), Exists("y", Atom("R", ("x", "y"))))
        wrapped = q.as_query(("R",))
        assert wrapped.fn(DB["R"]) == cvset(tup(1), tup(2))

    def test_multiple_relations(self):
        q = CalculusQuery(
            ("x", "z"),
            And(Exists("y", Atom("R", ("x", "y"))), Atom("S", ("z",))),
        )
        wrapped = q.as_query(("R", "S"))
        out = wrapped.fn(Tup((DB["R"], DB["S"])))
        assert tup(1, 2) in out
        assert tup(2, 9) in out
