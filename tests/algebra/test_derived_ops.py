"""Tests for division, semijoin, antijoin."""

from repro.algebra.derived_ops import antijoin, division, semijoin
from repro.types.values import CVSet, Tup, cvset, tup


R = cvset(tup(1, "a"), tup(1, "b"), tup(2, "a"), tup(3, "c"))
S_KEYS = cvset(tup(1), tup(3))


class TestSemijoin:
    def test_keeps_matching_r_tuples(self):
        out = semijoin().fn(Tup((R, S_KEYS)))
        assert out == cvset(tup(1, "a"), tup(1, "b"), tup(3, "c"))

    def test_empty_s_gives_empty(self):
        assert semijoin().fn(Tup((R, CVSet()))) == CVSet()

    def test_output_columns_are_rs(self):
        out = semijoin().fn(Tup((R, S_KEYS)))
        assert all(len(t) == 2 for t in out)

    def test_uses_equality_flag(self):
        assert semijoin().uses_equality


class TestAntijoin:
    def test_complement_of_semijoin_within_r(self):
        semi = semijoin().fn(Tup((R, S_KEYS)))
        anti = antijoin().fn(Tup((R, S_KEYS)))
        assert semi.union(anti) == R
        assert semi.intersection(anti) == CVSet()

    def test_empty_s_keeps_all(self):
        assert antijoin().fn(Tup((R, CVSet()))) == R


class TestDivision:
    def test_basic(self):
        r = cvset(tup("x", 1), tup("x", 2), tup("y", 1))
        s = cvset(tup(1), tup(2))
        assert division().fn(Tup((r, s))) == cvset(tup("x"))

    def test_empty_divisor_returns_all_firsts(self):
        r = cvset(tup("x", 1), tup("y", 2))
        assert division().fn(Tup((r, CVSet()))) == cvset(tup("x"), tup("y"))

    def test_no_tuple_qualifies(self):
        r = cvset(tup("x", 1))
        s = cvset(tup(1), tup(2))
        assert division().fn(Tup((r, s))) == CVSet()

    def test_matches_algebraic_definition(self):
        # R / S == pi1(R) - pi1((pi1(R) x S) - R)

        r = cvset(tup("x", 1), tup("x", 2), tup("y", 2), tup("z", 1))
        s = cvset(tup(1), tup(2))
        firsts = {t[0] for t in r}
        crossed = {Tup((a, b[0])) for a in firsts for b in s}
        missing = crossed - set(r)
        expected = CVSet(
            Tup((a,)) for a in firsts if a not in {t[0] for t in missing}
        )
        assert division().fn(Tup((r, s))) == expected
