"""The perf-regression gate (``benchmarks/compare_bench.py``).

Pins the gate's core guarantee — **every** regressed measurement in
**every** suite is reported before it exits 1, never just the first
offender — plus row matching (size keys, duplicate sizes, positional
fallback), the noise floor, and the CLI exit codes.

``benchmarks/`` is intentionally not a package (the gate must run with
no repo setup), so the module is loaded straight from its file path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_GATE = Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _GATE)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def doc(*benchmarks: dict) -> dict:
    return {"benchmarks": list(benchmarks)}


def suite(name: str, rows: list[dict]) -> dict:
    return {"name": name, "rows": rows}


class TestCompare:
    def test_within_threshold_is_clean(self):
        old = doc(suite("a", [{"size": 10, "run_s": 0.100}]))
        new = doc(suite("a", [{"size": 10, "run_s": 0.115}]))
        regressions, notes = compare_bench.compare(old, new, 0.20, 1e-4)
        assert regressions == [] and notes == []

    def test_all_suites_reported_not_just_the_first(self):
        """Three regressed suites -> three reported regressions."""
        old = doc(
            suite("a", [{"size": 1, "run_s": 0.1}]),
            suite("b", [{"size": 1, "run_s": 0.1}]),
            suite("c", [{"size": 1, "run_s": 0.1}]),
        )
        new = doc(
            suite("a", [{"size": 1, "run_s": 0.2}]),
            suite("b", [{"size": 1, "run_s": 0.2}]),
            suite("c", [{"size": 1, "run_s": 0.2}]),
        )
        regressions, _ = compare_bench.compare(old, new, 0.20, 1e-4)
        assert [name for name, _ in regressions] == ["a", "b", "c"]

    def test_all_fields_within_a_row_reported(self):
        old = doc(suite("a", [{"size": 1, "cold_s": 0.1, "warm_s": 0.1}]))
        new = doc(suite("a", [{"size": 1, "cold_s": 0.3, "warm_s": 0.3}]))
        regressions, _ = compare_bench.compare(old, new, 0.20, 1e-4)
        details = [detail for _, detail in regressions]
        assert len(details) == 2
        assert any("cold_s" in d for d in details)
        assert any("warm_s" in d for d in details)

    def test_duplicate_size_rows_do_not_collapse(self):
        """A suite measuring the same size twice keeps both rows; a
        regression hiding in the second copy is still caught."""
        old = doc(suite("a", [
            {"size": 5, "run_s": 0.1},
            {"size": 5, "run_s": 0.1},
        ]))
        new = doc(suite("a", [
            {"size": 5, "run_s": 0.1},
            {"size": 5, "run_s": 0.9},
        ]))
        regressions, _ = compare_bench.compare(old, new, 0.20, 1e-4)
        assert len(regressions) == 1
        assert "size=5#1" in regressions[0][1]

    def test_rows_without_size_match_by_position(self):
        old = doc(suite("a", [{"run_s": 0.1}, {"run_s": 0.1}]))
        new = doc(suite("a", [{"run_s": 0.1}, {"run_s": 0.5}]))
        regressions, _ = compare_bench.compare(old, new, 0.20, 1e-4)
        assert len(regressions) == 1
        assert "[#1]" in regressions[0][1]

    def test_flat_suite_without_rows_compares_directly(self):
        old = doc({"name": "flat", "total_s": 0.1})
        new = doc({"name": "flat", "total_s": 0.5})
        regressions, _ = compare_bench.compare(old, new, 0.20, 1e-4)
        assert len(regressions) == 1 and regressions[0][0] == "flat"

    def test_noise_floor_skips_sub_threshold_rows(self):
        old = doc(suite("a", [{"size": 1, "run_s": 1e-6}]))
        new = doc(suite("a", [{"size": 1, "run_s": 9e-5}]))  # 90x, but tiny
        regressions, _ = compare_bench.compare(old, new, 0.20, 1e-4)
        assert regressions == []

    def test_added_and_dropped_entities_note_but_never_fail(self):
        old = doc(
            suite("kept", [{"size": 1, "run_s": 0.1}, {"size": 2, "run_s": 0.1}]),
            suite("gone", [{"size": 1, "run_s": 0.1}]),
        )
        new = doc(
            suite("kept", [{"size": 1, "run_s": 0.1}, {"size": 3, "run_s": 9.0}]),
            suite("fresh", [{"size": 1, "run_s": 9.0}]),
        )
        regressions, notes = compare_bench.compare(old, new, 0.20, 1e-4)
        assert regressions == []
        assert "benchmark dropped: gone" in notes
        assert "benchmark added: fresh" in notes
        assert "kept[size=3]: row added" in notes
        assert "kept[size=2]: row dropped" in notes

    def test_non_timing_fields_are_ignored(self):
        old = doc(suite("a", [{"size": 1, "run_s": 0.1, "rows": 10}]))
        new = doc(suite("a", [{"size": 1, "run_s": 0.1, "rows": 9000}]))
        regressions, _ = compare_bench.compare(old, new, 0.20, 1e-4)
        assert regressions == []

    def test_new_field_baseline_gates_added_column(self):
        """A column only the new file has is gated against the mapped
        old column instead of getting the added-field free pass."""
        old = doc(suite("a", [{"size": 1, "batch_cold_s": 0.1}]))
        new = doc(suite("a", [
            {"size": 1, "batch_cold_s": 0.1, "compiled_cold_s": 0.5},
        ]))
        regressions, _ = compare_bench.compare(
            old, new, 0.20, 1e-4,
            {"compiled_cold_s": "batch_cold_s"},
        )
        assert len(regressions) == 1
        assert "compiled_cold_s (vs batch_cold_s)" in regressions[0][1]

    def test_new_field_baseline_clean_when_new_column_is_faster(self):
        old = doc(suite("a", [{"size": 1, "batch_cold_s": 0.1}]))
        new = doc(suite("a", [
            {"size": 1, "batch_cold_s": 0.1, "compiled_cold_s": 0.05},
        ]))
        regressions, _ = compare_bench.compare(
            old, new, 0.20, 1e-4,
            {"compiled_cold_s": "batch_cold_s"},
        )
        assert regressions == []

    def test_new_field_baseline_ignored_once_both_sides_have_field(self):
        """When the old file grows the new column, the direct
        comparison wins and the baseline mapping is inert."""
        old = doc(suite("a", [
            {"size": 1, "batch_cold_s": 0.1, "compiled_cold_s": 0.3},
        ]))
        new = doc(suite("a", [
            {"size": 1, "batch_cold_s": 0.1, "compiled_cold_s": 0.3},
        ]))
        regressions, _ = compare_bench.compare(
            old, new, 0.20, 1e-4,
            {"compiled_cold_s": "batch_cold_s"},
        )
        assert regressions == []


class TestMain:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_0_and_summary_when_clean(self, tmp_path, capsys):
        old = self._write(
            tmp_path, "old.json", doc(suite("a", [{"size": 1, "run_s": 0.1}]))
        )
        new = self._write(
            tmp_path, "new.json", doc(suite("a", [{"size": 1, "run_s": 0.1}]))
        )
        assert compare_bench.main([old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_1_lists_every_suite_grouped(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", doc(
            suite("a", [{"size": 1, "run_s": 0.1}]),
            suite("b", [{"size": 1, "cold_s": 0.1, "warm_s": 0.1}]),
        ))
        new = self._write(tmp_path, "new.json", doc(
            suite("a", [{"size": 1, "run_s": 0.5}]),
            suite("b", [{"size": 1, "cold_s": 0.5, "warm_s": 0.5}]),
        ))
        assert compare_bench.main([old, new]) == 1
        out = capsys.readouterr().out
        assert "3 regression(s) in 2 suite(s)" in out
        assert "  a:" in out and "  b:" in out
        # Grouped output: suite header precedes its details.
        assert out.index("  a:") < out.index("run_s")
        assert out.index("  b:") < out.index("cold_s")

    def test_threshold_flag_loosens_the_gate(self, tmp_path):
        old = self._write(
            tmp_path, "old.json", doc(suite("a", [{"size": 1, "run_s": 0.1}]))
        )
        new = self._write(
            tmp_path, "new.json", doc(suite("a", [{"size": 1, "run_s": 0.14}]))
        )
        assert compare_bench.main([old, new]) == 1
        assert compare_bench.main([old, new, "--threshold", "0.5"]) == 0

    def test_new_field_baseline_flag(self, tmp_path):
        old = self._write(tmp_path, "old.json", doc(
            suite("a", [{"size": 1, "batch_cold_s": 0.1}]),
        ))
        new = self._write(tmp_path, "new.json", doc(
            suite("a", [{"size": 1, "batch_cold_s": 0.1,
                         "compiled_cold_s": 0.5}]),
        ))
        assert compare_bench.main([old, new]) == 0
        assert compare_bench.main([
            old, new,
            "--new-field-baseline", "compiled_cold_s=batch_cold_s",
        ]) == 1

    def test_new_field_baseline_flag_rejects_malformed_spec(
        self, tmp_path, capsys
    ):
        old = self._write(tmp_path, "old.json", doc())
        new = self._write(tmp_path, "new.json", doc())
        assert compare_bench.main(
            [old, new, "--new-field-baseline", "no-equals"]
        ) == 2
        assert "NEW=OLD" in capsys.readouterr().err

    def test_exit_2_on_missing_or_invalid_input(self, tmp_path, capsys):
        ok = self._write(tmp_path, "ok.json", doc())
        assert compare_bench.main([ok, str(tmp_path / "absent.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert compare_bench.main([ok, str(bad)]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err and "not valid JSON" in err


@pytest.mark.parametrize("threshold", [0.0, 0.2, 1.0])
def test_threshold_boundary_is_strict(threshold):
    """Exactly at the threshold is NOT a regression (strict >)."""
    old = doc(suite("a", [{"size": 1, "run_s": 0.1}]))
    new = doc(suite("a", [{"size": 1, "run_s": 0.1 * (1 + threshold)}]))
    regressions, _ = compare_bench.compare(old, new, threshold, 1e-4)
    assert regressions == []
