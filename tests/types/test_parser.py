"""Tests for the type parser."""

import pytest

from repro.types.ast import (
    BOOL,
    INT,
    STR,
    BagType,
    ForAll,
    FuncType,
    Product,
    forall,
    func,
    list_of,
    set_of,
    tvar,
)
from repro.types.parser import ParseError, parse_type


class TestAtoms:
    def test_base_types(self):
        assert parse_type("int") == INT
        assert parse_type("bool") == BOOL
        assert parse_type("str") == STR

    def test_unknown_lowercase_is_base_type(self):
        assert parse_type("dom").name == "dom"

    def test_uppercase_is_variable(self):
        assert parse_type("X") == tvar("X")
        assert parse_type("Y1") == tvar("Y1")

    def test_eq_variable(self):
        assert parse_type("X=") == tvar("X", requires_eq=True)


class TestConstructors:
    def test_set(self):
        assert parse_type("{int}") == set_of(INT)

    def test_bag(self):
        assert parse_type("{|int|}") == BagType(INT)

    def test_list(self):
        assert parse_type("<str>") == list_of(STR)

    def test_product(self):
        assert parse_type("int * str") == Product((INT, STR))

    def test_product_three_way(self):
        assert parse_type("int * str * bool") == Product((INT, STR, BOOL))

    def test_arrow_right_associative(self):
        assert parse_type("int -> str -> bool") == func(INT, STR, BOOL)

    def test_product_binds_tighter_than_arrow(self):
        t = parse_type("int * str -> bool")
        assert t == FuncType(Product((INT, STR)), BOOL)

    def test_parens_override(self):
        t = parse_type("int * (str -> bool)")
        assert t == Product((INT, FuncType(STR, BOOL)))

    def test_unit(self):
        assert parse_type("()") == Product(())

    def test_nested_collections(self):
        assert parse_type("{{int}}") == set_of(set_of(INT))
        assert parse_type("<{int * str}>") == list_of(set_of(INT * STR))


class TestForall:
    def test_simple(self):
        t = parse_type("forall X. X -> X")
        assert t == forall("X", func(tvar("X"), tvar("X")))

    def test_nested(self):
        t = parse_type("forall X. forall Y. X -> Y")
        assert isinstance(t, ForAll)
        assert isinstance(t.body, ForAll)

    def test_eq_quantifier(self):
        t = parse_type("forall X=. <X=> * <X=> -> <X=>")
        assert isinstance(t, ForAll)
        assert t.requires_eq
        assert t.body.arg == Product(
            (list_of(tvar("X", True)), list_of(tvar("X", True)))
        )

    def test_paper_types_roundtrip(self):
        # The types named in the paper parse and print consistently.
        for text in [
            "forall X. {X} * {X} -> {X}",
            "forall X. <X> -> int",
            "forall X. (X -> bool) -> {X} -> {X}",
            "forall X. forall Y. (X -> Y -> Y) -> Y -> <X> -> Y",
        ]:
            t = parse_type(text)
            assert parse_type(str(t)) == t


class TestErrors:
    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse_type("{int")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_type("int int")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_type("int + int")

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_type("forall X X")
