"""Tests for the type AST (Definitions 2.1, 2.7, 4.1)."""

import pytest

from repro.types.ast import (
    BOOL,
    INT,
    STR,
    UNIT,
    BagType,
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    TypeError_,
    alpha_equal,
    associated_types,
    bag_of,
    constructor_depth,
    contains_constructor,
    forall,
    free_type_vars,
    func,
    is_complex_value_type,
    is_monomorphic,
    list_of,
    rename_bound,
    set_of,
    strip_foralls,
    substitute,
    subtypes,
    tvar,
)


class TestConstruction:
    def test_base_types_are_named(self):
        assert INT.name == "int"
        assert BOOL.name == "bool"

    def test_mul_builds_flat_products(self):
        t = INT * STR * BOOL
        assert isinstance(t, Product)
        assert t.components == (INT, STR, BOOL)

    def test_nested_products_stay_nested_when_explicit(self):
        inner = Product((INT, STR))
        t = Product((inner, inner))
        assert t.arity == 2
        assert t.components[0] is inner

    def test_rshift_builds_function_types(self):
        t = INT >> BOOL
        assert t == FuncType(INT, BOOL)

    def test_func_right_associates(self):
        t = func(INT, STR, BOOL)
        assert t == FuncType(INT, FuncType(STR, BOOL))

    def test_unit_is_empty_product(self):
        assert UNIT.components == ()

    def test_product_rejects_non_types(self):
        with pytest.raises(TypeError_):
            Product((INT, 42))


class TestPrinting:
    def test_set_syntax(self):
        assert str(set_of(INT)) == "{int}"

    def test_bag_syntax(self):
        assert str(bag_of(INT)) == "{|int|}"

    def test_list_syntax(self):
        assert str(list_of(STR)) == "<str>"

    def test_product_parenthesizes_nested_products(self):
        inner = Product((INT, INT))
        assert str(Product((inner, STR))) == "(int * int) * str"

    def test_forall_syntax(self):
        t = forall("X", func(tvar("X"), tvar("X")))
        assert str(t) == "forall X. X -> X"

    def test_eq_variable_marker(self):
        assert str(tvar("X", requires_eq=True)) == "X="

    def test_arrow_argument_parenthesized(self):
        t = func(func(INT, BOOL), STR)
        assert str(t) == "(int -> bool) -> str"


class TestFreeVars:
    def test_base_type_closed(self):
        assert free_type_vars(INT) == frozenset()

    def test_variable_free(self):
        assert free_type_vars(tvar("X")) == {"X"}

    def test_forall_binds(self):
        t = forall("X", func(tvar("X"), tvar("Y")))
        assert free_type_vars(t) == {"Y"}

    def test_collects_across_constructors(self):
        t = set_of(Product((tvar("A"), list_of(tvar("B")))))
        assert free_type_vars(t) == {"A", "B"}


class TestSubstitution:
    def test_simple(self):
        t = set_of(tvar("X"))
        assert substitute(t, {"X": INT}) == set_of(INT)

    def test_shadowed_variable_untouched(self):
        t = forall("X", func(tvar("X"), tvar("X")))
        assert substitute(t, {"X": INT}) == t

    def test_capture_avoidance(self):
        # forall X. Y -> X with Y := X must rename the binder.
        t = forall("X", func(tvar("Y"), tvar("X")))
        out = substitute(t, {"Y": tvar("X")})
        assert isinstance(out, ForAll)
        assert out.var != "X"
        assert out.body.arg == tvar("X")

    def test_substitute_into_product(self):
        t = Product((tvar("X"), tvar("Y")))
        out = substitute(t, {"X": INT, "Y": STR})
        assert out == Product((INT, STR))


class TestAlphaEquality:
    def test_renamed_binders_equal(self):
        a = forall("X", func(tvar("X"), tvar("X")))
        b = forall("Z", func(tvar("Z"), tvar("Z")))
        assert alpha_equal(a, b)

    def test_different_structure_not_equal(self):
        a = forall("X", func(tvar("X"), tvar("X")))
        b = forall("X", func(tvar("X"), INT))
        assert not alpha_equal(a, b)

    def test_rename_bound_canonicalizes(self):
        t = forall("A", forall("B", func(tvar("A"), tvar("B"))))
        out = rename_bound(t)
        assert str(out) == "forall X0. forall X1. X0 -> X1"


class TestPredicates:
    def test_monomorphic(self):
        assert is_monomorphic(set_of(INT * STR))
        assert not is_monomorphic(set_of(tvar("X")))
        assert not is_monomorphic(forall("X", tvar("X")))

    def test_complex_value_type(self):
        assert is_complex_value_type(set_of(list_of(INT * STR)))
        assert not is_complex_value_type(func(INT, INT))
        assert not is_complex_value_type(set_of(tvar("X")))

    def test_contains_constructor(self):
        t = func(INT, set_of(list_of(STR)))
        assert contains_constructor(t, SetType)
        assert contains_constructor(t, ListType)
        assert not contains_constructor(t, BagType)

    def test_constructor_depth(self):
        assert constructor_depth(INT) == 0
        assert constructor_depth(set_of(INT)) == 1
        assert constructor_depth(set_of(set_of(INT))) == 2
        assert constructor_depth(Product((set_of(INT), set_of(set_of(INT))))) == 2


class TestAssociatedTypes:
    def test_associated_types(self):
        template = set_of(Product((tvar("X"), tvar("X"))))
        t1, t2 = associated_types(template, {"X": INT}, {"X": STR})
        assert t1 == set_of(INT * INT)
        assert t2 == set_of(STR * STR)

    def test_missing_variable_rejected(self):
        with pytest.raises(TypeError_):
            associated_types(tvar("X"), {}, {"X": INT})


class TestStripForalls:
    def test_strips_prefix(self):
        t = forall("X", forall("Y", func(tvar("X"), tvar("Y")), requires_eq=True))
        binders, body = strip_foralls(t)
        assert binders == (("X", False), ("Y", True))
        assert body == func(tvar("X"), tvar("Y"))

    def test_no_quantifier(self):
        binders, body = strip_foralls(INT)
        assert binders == ()
        assert body == INT


class TestSubtypes:
    def test_preorder_walk(self):
        t = set_of(Product((INT, list_of(STR))))
        nodes = list(subtypes(t))
        assert t in nodes
        assert INT in nodes
        assert list_of(STR) in nodes
        assert STR in nodes

    def test_forall_body_walked(self):
        t = forall("X", func(tvar("X"), INT))
        assert INT in list(subtypes(t))
