"""Tests for complex value wrappers."""


from repro.types.values import (
    atoms_of,
    cvbag,
    cvlist,
    cvset,
    is_atom,
    is_value,
    map_atoms,
    tup,
    value_depth,
    value_size,
)


class TestTup:
    def test_iteration_and_indexing(self):
        t = tup(1, "a", True)
        assert len(t) == 3
        assert t[1] == "a"
        assert list(t) == [1, "a", True]

    def test_equality_and_hash(self):
        assert tup(1, 2) == tup(1, 2)
        assert hash(tup(1, 2)) == hash(tup(1, 2))
        assert tup(1, 2) != tup(2, 1)

    def test_project(self):
        assert tup(1, 2, 3).project((2, 0)) == tup(3, 1)

    def test_replace(self):
        assert tup(1, 2).replace(0, 9) == tup(9, 2)

    def test_nested_tuples(self):
        t = tup(tup(1, 2), tup(3, 4))
        assert t[0] == tup(1, 2)


class TestCVSet:
    def test_deduplication(self):
        assert len(cvset(1, 1, 2)) == 2

    def test_sets_of_sets(self):
        outer = cvset(cvset(1), cvset(1, 2))
        assert cvset(1) in outer
        assert cvset(2) not in outer

    def test_algebra(self):
        a, b = cvset(1, 2), cvset(2, 3)
        assert a.union(b) == cvset(1, 2, 3)
        assert a.intersection(b) == cvset(2)
        assert a.difference(b) == cvset(1)
        assert (a | b) == cvset(1, 2, 3)
        assert (a & b) == cvset(2)
        assert (a - b) == cvset(1)

    def test_subset(self):
        assert cvset(1).issubset(cvset(1, 2))
        assert not cvset(3).issubset(cvset(1, 2))

    def test_add_is_persistent(self):
        a = cvset(1)
        b = a.add(2)
        assert a == cvset(1)
        assert b == cvset(1, 2)

    def test_empty_set_repr(self):
        assert repr(cvset()) == "{}"


class TestCVBag:
    def test_multiplicity(self):
        b = cvbag(1, 1, 2)
        assert b.count(1) == 2
        assert b.count(2) == 1
        assert b.count(3) == 0
        assert len(b) == 3

    def test_equality_respects_counts(self):
        assert cvbag(1, 1) != cvbag(1)
        assert cvbag(1, 2) == cvbag(2, 1)

    def test_support(self):
        assert cvbag(1, 1, 2).support() == frozenset({1, 2})

    def test_additive_union(self):
        assert cvbag(1).union(cvbag(1, 2)).count(1) == 2

    def test_iteration_yields_duplicates(self):
        assert sorted(cvbag(1, 1, 2)) == [1, 1, 2]


class TestCVList:
    def test_order_matters(self):
        assert cvlist(1, 2) != cvlist(2, 1)

    def test_append(self):
        assert cvlist(1).append(cvlist(2, 3)) == cvlist(1, 2, 3)

    def test_cons(self):
        assert cvlist(2, 3).cons(1) == cvlist(1, 2, 3)

    def test_indexing_and_slicing(self):
        l = cvlist(1, 2, 3)
        assert l[0] == 1
        assert l[1:] == cvlist(2, 3)

    def test_duplicates_preserved(self):
        assert len(cvlist(1, 1)) == 2

    def test_hashable_inside_sets(self):
        s = cvset(cvlist(1), cvlist(1, 1))
        assert len(s) == 2


class TestPredicates:
    def test_is_atom(self):
        assert is_atom(3)
        assert is_atom("x")
        assert is_atom(True)
        assert is_atom(2.5)
        assert not is_atom(tup(1))
        assert not is_atom(cvset())

    def test_is_value_accepts_nesting(self):
        assert is_value(cvset(tup(1, cvlist("a"))))

    def test_is_value_rejects_raw_containers(self):
        assert not is_value([1, 2])
        assert not is_value({1, 2})


class TestStructuralHelpers:
    def test_atoms_of(self):
        v = cvset(tup(1, cvlist("a", "b")), tup(2, cvlist()))
        assert atoms_of(v) == frozenset({1, 2, "a", "b"})

    def test_atoms_of_bag(self):
        assert atoms_of(cvbag(1, 1, 2)) == frozenset({1, 2})

    def test_value_depth(self):
        assert value_depth(5) == 0
        assert value_depth(tup(1, 2)) == 0
        assert value_depth(cvset(1)) == 1
        assert value_depth(cvset(cvset(1))) == 2
        assert value_depth(tup(cvset(cvset(1)), cvset(2))) == 2
        assert value_depth(cvset()) == 1

    def test_value_size(self):
        assert value_size(5) == 1
        assert value_size(cvset(1, 2)) == 3
        assert value_size(cvbag(1, 1)) == 3

    def test_map_atoms_preserves_structure(self):
        v = cvset(tup(1, cvlist(2, 3)))
        out = map_atoms(v, lambda x: x + 10)
        assert out == cvset(tup(11, cvlist(12, 13)))

    def test_map_atoms_on_bag(self):
        assert map_atoms(cvbag(1, 1), lambda x: x + 1).count(2) == 2

    def test_map_atoms_collapse_in_sets(self):
        # Non-injective atom maps can shrink sets.
        assert map_atoms(cvset(1, 2), lambda _x: 0) == cvset(0)


class TestBagFastPaths:
    """CVBag keeps a dict beside the frozenset: count/contains are O(1)."""

    def test_count_and_contains_agree_with_iteration(self):
        import random
        rng = random.Random(0)
        items = [rng.randrange(50) for _ in range(300)]
        bag = cvbag(*items)
        for v in range(50):
            assert bag.count(v) == items.count(v)
            assert (v in bag) == (items.count(v) > 0)
        assert len(bag) == len(items)

    def test_bool_int_identification_preserved(self):
        # Counter merges True and 1 (hash/eq identified); the dict-backed
        # fast path must agree with the old linear scan's semantics.
        bag = cvbag(True, 1, 1)
        assert bag.count(1) == 3
        assert bag.count(True) == 3

    def test_hash_equality_unchanged(self):
        assert cvbag(1, 2, 2) == cvbag(2, 1, 2)
        assert hash(cvbag(1, 2, 2)) == hash(cvbag(2, 1, 2))
        assert cvbag(1, 2) != cvbag(1, 2, 2)


class TestAtomsMemo:
    def test_atoms_of_memoized_result_is_stable(self):
        v = cvset(tup(1, cvlist(2, 3)), cvbag("a", "a"))
        first = atoms_of(v)
        second = atoms_of(v)
        assert first == second == frozenset({1, 2, 3, "a"})
        assert first is second  # served from the memo
