"""Tests for value/type checking and inference."""

import pytest

from repro.types.ast import (
    BOOL,
    FLOAT,
    INT,
    STR,
    BagType,
    Product,
    TypeError_,
    bag_of,
    list_of,
    set_of,
)
from repro.types.typecheck import (
    EMPTY,
    atom_type,
    check_value,
    infer_value_type,
    join_types,
)
from repro.types.values import cvbag, cvlist, cvset, tup


class TestAtomType:
    def test_bool_before_int(self):
        # Python's bool subclasses int; our typing keeps them apart.
        assert atom_type(True) == BOOL
        assert atom_type(1) == INT

    def test_str_and_float(self):
        assert atom_type("x") == STR
        assert atom_type(1.5) == FLOAT

    def test_non_atom_rejected(self):
        with pytest.raises(TypeError_):
            atom_type(tup(1))


class TestCheckValue:
    def test_atoms(self):
        assert check_value(3, INT)
        assert not check_value(3, STR)
        assert check_value(True, BOOL)
        assert not check_value(1, BOOL)

    def test_tuples(self):
        assert check_value(tup(1, "a"), INT * STR)
        assert not check_value(tup(1, "a"), STR * INT)
        assert not check_value(tup(1), INT * STR)

    def test_sets(self):
        assert check_value(cvset(1, 2), set_of(INT))
        assert not check_value(cvset(1, "a"), set_of(INT))
        assert check_value(cvset(), set_of(INT))

    def test_bags_and_lists(self):
        assert check_value(cvbag(1, 1), bag_of(INT))
        assert check_value(cvlist("a"), list_of(STR))
        assert not check_value(cvlist("a"), set_of(STR))

    def test_nesting(self):
        t = set_of(Product((INT, list_of(set_of(STR)))))
        v = cvset(tup(1, cvlist(cvset("a"), cvset())))
        assert check_value(v, t)

    def test_custom_domain(self):
        from repro.types.ast import BaseType

        dom = BaseType("dom")
        members = {"dom": lambda v: isinstance(v, str) and v.startswith("d")}
        assert check_value("d1", dom, members)
        assert not check_value("x1", dom, members)


class TestJoin:
    def test_empty_is_bottom(self):
        assert join_types(EMPTY, INT) == INT
        assert join_types(set_of(INT), EMPTY) == set_of(INT)

    def test_equal_types(self):
        assert join_types(INT, INT) == INT

    def test_joins_through_constructors(self):
        assert join_types(set_of(EMPTY), set_of(INT)) == set_of(INT)

    def test_incompatible_rejected(self):
        with pytest.raises(TypeError_):
            join_types(INT, STR)
        with pytest.raises(TypeError_):
            join_types(set_of(INT), list_of(INT))


class TestInference:
    def test_atoms(self):
        assert infer_value_type(3) == INT
        assert infer_value_type(True) == BOOL

    def test_tuple(self):
        assert infer_value_type(tup(1, "a")) == Product((INT, STR))

    def test_homogeneous_set(self):
        assert infer_value_type(cvset(1, 2)) == set_of(INT)

    def test_empty_collection_gets_bottom(self):
        assert infer_value_type(cvset()) == set_of(EMPTY)

    def test_heterogeneous_set_rejected(self):
        with pytest.raises(TypeError_):
            infer_value_type(cvset(1, "a"))

    def test_inferred_type_checks(self):
        v = cvset(tup(1, cvlist(cvset("a"))))
        assert check_value(v, infer_value_type(v))

    def test_bag_inference(self):
        assert infer_value_type(cvbag(1, 1)) == BagType(INT)
