"""Tests for signatures and interpreted symbols (Section 2 preamble)."""

import pytest

from repro.types.ast import INT, FuncType, TypeError_
from repro.types.signatures import (
    ABSTRACT,
    Signature,
    standard_signature,
    uninterpreted_signature,
)


class TestSignature:
    def test_bool_always_present(self):
        sig = Signature()
        assert "bool" in sig.base_types

    def test_add_base_type_idempotent(self):
        sig = Signature()
        a = sig.add_base_type("dom")
        b = sig.add_base_type("dom")
        assert a is b

    def test_add_and_call_symbol(self):
        sig = Signature()
        double = sig.add_symbol("double", (INT,), INT, lambda x: 2 * x)
        assert double(21) == 42
        assert sig["double"] is double
        assert "double" in sig

    def test_arity_enforced(self):
        sig = Signature()
        plus = sig.add_symbol("plus", (INT, INT), INT, lambda x, y: x + y)
        with pytest.raises(TypeError_):
            plus(1)

    def test_predicate_classification(self):
        sig = standard_signature()
        assert sig["even"].is_predicate
        assert not sig["succ"].is_predicate
        assert sig["even"] in sig.predicates()
        assert sig["succ"] in sig.functions()

    def test_curried_type(self):
        sig = standard_signature()
        assert sig["plus"].type == FuncType(INT, FuncType(INT, INT))


class TestStandardSignature:
    def test_interpreted_semantics(self):
        sig = standard_signature()
        assert sig["succ"](3) == 4
        assert sig["plus"](2, 3) == 5
        assert sig["even"](4) is True
        assert sig["lt"](1, 2) is True
        assert sig["concat"]("a", "b") == "ab"
        assert sig["not"](True) is False

    def test_expected_base_types(self):
        sig = standard_signature()
        for name in ("int", "str", "float", "bool"):
            assert name in sig.base_types


class TestUninterpretedSignature:
    def test_abstract_domain_and_no_symbols(self):
        sig = uninterpreted_signature()
        assert ABSTRACT.name in sig.base_types
        assert not sig.symbols

    def test_extra_domains(self):
        sig = uninterpreted_signature(extra_domains=["names", "cities"])
        assert "names" in sig.base_types
        assert "cities" in sig.base_types
