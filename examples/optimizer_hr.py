#!/usr/bin/env python3
"""Section 4.4's optimization scenario: employees, students and a shared key.

Builds the paper's motivating database — employees and students sharing
a social-security-style key — and shows:

* projection pushing through union (always sound: parametricity of U);
* projection pushing through difference ONLY under the key constraint
  (difference is generic just w.r.t. injective mappings);
* the rewriter declining the same rewrite for a keyless relation, and
  the random-instance verifier catching the rewrite if forced;
* measured work savings as data scales.

Run with:  python examples/optimizer_hr.py
"""

import random

from repro.engine import hr_database, random_database
from repro.optimizer import (
    Difference,
    Project,
    Rewriter,
    Scan,
    Union,
    verify_equivalence,
)


def main() -> None:
    rng = random.Random(7)
    db = hr_database(rng, employees=200, students=120, overlap=40)
    print(db)
    print()

    plans = {
        "pi_ssn(employees U students)": Project(
            (0,), Union(Scan("employees"), Scan("students"))
        ),
        "pi_ssn(employees - students)": Project(
            (0,), Difference(Scan("employees"), Scan("students"))
        ),
        "pi_ssn(employees - contractors)": Project(
            (0,), Difference(Scan("employees"), Scan("contractors"))
        ),
    }
    for name, plan in plans.items():
        rewriter = Rewriter(db.catalog)
        optimized = rewriter.optimize(plan)
        before = db.run(plan)
        after = db.run(optimized)
        print(f"plan      : {name}")
        print(f"  original : {plan}   (work {before.work})")
        print(f"  optimized: {optimized}   (work {after.work})")
        for line in rewriter.explain():
            print(f"  applied  : {line}")
        if not rewriter.trace:
            print("  applied  : (nothing — no licensing constraint)")
        assert before.value == after.value
        print(f"  answers agree, work ratio "
              f"{before.work / max(after.work, 1):.2f}x")
        print()

    # Force the unsound rewrite for the keyless pair and let the
    # verifier catch it on random databases.
    unsound = Difference(
        Project((0,), Scan("employees")),
        Project((0,), Scan("contractors")),
    )
    sound_original = plans["pi_ssn(employees - contractors)"]
    random_dbs = [
        random_database(rng, ("employees", "contractors"), arity=3)
        for _ in range(100)
    ]
    counterexample = verify_equivalence(sound_original, unsound, random_dbs)
    print("forcing pi through the keyless difference...")
    if counterexample is not None:
        print("  verifier found a counterexample database — the key "
              "constraint really is what licenses the rewrite:")
        print("   employees  =", counterexample["employees"])
        print("   contractors=", counterexample["contractors"])


if __name__ == "__main__":
    main()
