#!/usr/bin/env python3
"""Section 4.4's optimization scenario: employees, students and a shared key.

Builds the paper's motivating database — employees and students sharing
a social-security-style key — and shows:

* projection pushing through union (always sound: parametricity of U);
* projection pushing through difference ONLY under the key constraint
  (difference is generic just w.r.t. injective mappings);
* the rewriter declining the same rewrite for a keyless relation, and
  the random-instance verifier catching the rewrite if forced;
* measured work savings as data scales;
* the streaming executor vs the reference interpreter, cold and with a
  warm result cache (docs/EXECUTION.md).

Run with:  python examples/optimizer_hr.py
"""

import random
import statistics
import time

from repro.engine import execute_streaming, hr_database, random_database
from repro.optimizer import (
    Difference,
    Project,
    Rewriter,
    Scan,
    Union,
    execute_reference,
    verify_equivalence,
)


def main() -> None:
    rng = random.Random(7)
    db = hr_database(rng, employees=200, students=120, overlap=40)
    print(db)
    print()

    plans = {
        "pi_ssn(employees U students)": Project(
            (0,), Union(Scan("employees"), Scan("students"))
        ),
        "pi_ssn(employees - students)": Project(
            (0,), Difference(Scan("employees"), Scan("students"))
        ),
        "pi_ssn(employees - contractors)": Project(
            (0,), Difference(Scan("employees"), Scan("contractors"))
        ),
    }
    for name, plan in plans.items():
        rewriter = Rewriter(db.catalog)
        optimized = rewriter.optimize(plan)
        before = db.run(plan)
        after = db.run(optimized)
        print(f"plan      : {name}")
        print(f"  original : {plan}   (work {before.work})")
        print(f"  optimized: {optimized}   (work {after.work})")
        for line in rewriter.explain():
            print(f"  applied  : {line}")
        if not rewriter.trace:
            print("  applied  : (nothing — no licensing constraint)")
        assert before.value == after.value
        print(f"  answers agree, work ratio "
              f"{before.work / max(after.work, 1):.2f}x")
        print()

    # Force the unsound rewrite for the keyless pair and let the
    # verifier catch it on random databases.
    unsound = Difference(
        Project((0,), Scan("employees")),
        Project((0,), Scan("contractors")),
    )
    sound_original = plans["pi_ssn(employees - contractors)"]
    random_dbs = [
        random_database(rng, ("employees", "contractors"), arity=3)
        for _ in range(100)
    ]
    counterexample = verify_equivalence(sound_original, unsound, random_dbs)
    print("forcing pi through the keyless difference...")
    if counterexample is not None:
        print("  verifier found a counterexample database — the key "
              "constraint really is what licenses the rewrite:")
        print("   employees  =", counterexample["employees"])
        print("   contractors=", counterexample["contractors"])

    # How the plans actually run: the reference interpreter vs the
    # streaming engine, cold and with Database.run's warm result cache.
    def med(fn, repeats=5):
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    print()
    print("executor wall-clock (median of 5), employees=200:")
    plan = plans["pi_ssn(employees - students)"]
    reference_s = med(lambda: execute_reference(plan, db.relations))
    streaming_s = med(lambda: execute_streaming(plan, db.relations))
    db.run(plan)  # warm the result cache
    warm_s = med(lambda: db.run(plan))
    assert db.run(plan).value == execute_reference(plan, db.relations).value
    print(f"  reference interpreter : {reference_s * 1e6:8.1f} us")
    print(f"  streaming (cold)      : {streaming_s * 1e6:8.1f} us")
    print(f"  Database.run (warm)   : {warm_s * 1e6:8.1f} us  "
          f"({reference_s / max(warm_s, 1e-9):.0f}x)")


if __name__ == "__main__":
    main()
