#!/usr/bin/env python3
"""Write System F terms as text, check them, run them, get free theorems.

Shows the full λ-calculus pipeline on user-written terms: parse →
typecheck against a declared polymorphic type → evaluate → check
parametricity → derive the free theorem — including a term that
typechecks at a *weaker* type and correspondingly loses its theorem.

Run with:  python examples/lambda_playground.py
"""

from repro.lambda2 import (
    build_prelude,
    check_parametricity,
    check_term,
    derive,
    evaluate,
    parse_term,
    pretty,
)
from repro.types.ast import INT
from repro.types.parser import parse_type
from repro.types.values import cvlist


def main() -> None:
    prelude = build_prelude()
    names = set(prelude.entries)

    # ------------------------------------------------------------------
    # 1. A user-written polymorphic function: "duplicate every element".
    # ------------------------------------------------------------------
    text = (
        r"/\X. \l:<X>. "
        r"foldr[X][<X>] (\h:X. \t:<X>. cons[X] h (cons[X] h t)) nil[X] l"
    )
    declared = parse_type("forall X. <X> -> <X>")
    term = parse_term(text, names)
    check_term(term, declared, prelude.context())
    print("term     :", pretty(term))
    print("type     :", declared, "(checked)")

    value = evaluate(term, constants=prelude.constant_values())
    print("dup <1,2>:", value[INT](cvlist(1, 2)))

    report = check_parametricity(value, declared, "dup")
    print("parametric:", report.parametric)
    print()
    print(derive("dup", declared))
    print()

    # ------------------------------------------------------------------
    # 2. The same function at a monomorphic type: still typechecks, but
    #    the type now promises nothing — the paper's point that "the
    #    more general the type we have for a query, the more information
    #    that can be gained" (Section 4.3).
    # ------------------------------------------------------------------
    mono = parse_type("<int> -> <int>")
    mono_term = parse_term(
        r"\l:<int>. "
        r"foldr[int][<int>] (\h:int. \t:<int>. cons[int] h (cons[int] h t)) "
        r"nil[int] l",
        names,
    )
    check_term(mono_term, mono, prelude.context())
    print(f"at the monomorphic type {mono} the free theorem degenerates:")
    print(derive("dup_mono", mono).functional_law)
    print()

    # ------------------------------------------------------------------
    # 3. An element-inspecting "optimization" is rejected by the
    #    parametricity check — the type says it cannot look at X, and
    #    summing does.
    # ------------------------------------------------------------------
    impostor = lambda _t: (lambda l: cvlist(sum(l)))
    from repro.mappings.function_maps import PolyValue
    from repro.types.ast import ForAll, TypeVar

    fake = PolyValue(impostor, ForAll("X", TypeVar("X")))
    report = check_parametricity(fake, declared, "sum-impostor")
    print("sum-impostor claims", declared)
    print("parametric:", report.parametric,
          "(violation at mapping instance:", report.violation, ")")


if __name__ == "__main__":
    main()
