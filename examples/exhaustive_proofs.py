#!/usr/bin/env python3
"""Finite proofs: deciding genericity outright on small domains.

The randomized experiments give statistical evidence; this example runs
the *exact* tier — a complete case analysis over every mapping between
two small domains and every related input pair — for a handful of the
paper's claims, and contrasts it with the static analyzer's
closure-theorem guarantees.

Run with:  python examples/exhaustive_proofs.py
"""

from repro.algebra import (
    eq_adom,
    hat_select_eq,
    projection,
    select_eq,
    self_cross,
)
from repro.genericity import analyze_plan, exhaustive_check
from repro.mappings.extensions import REL, STRONG
from repro.optimizer import Difference, Project, Scan, Union


def main() -> None:
    print("Exact tier: complete case analysis at domain size 2x2")
    print("(every mapping x every related input pair)")
    print()

    cases = [
        ("pi_1 (Prop 3.1)", projection((0,), 2), REL, True),
        ("pi_1 (Prop 3.1)", projection((0,), 2), STRONG, True),
        ("R x R (Example 2.2)", self_cross(), REL, True),
        ("sigma_{$1=$2} (Q4)", select_eq(0, 1, 2), REL, False),
        ("sigma-hat (Prop 3.6)", hat_select_eq(0, 1, 2), STRONG, True),
        ("sigma-hat in rel mode", hat_select_eq(0, 1, 2), REL, False),
        ("eq_adom (Prop 3.5)", eq_adom(), REL, True),
        ("eq_adom (Prop 3.5)", eq_adom(), STRONG, False),
    ]
    for label, query, mode, expected in cases:
        report = exhaustive_check(query, mode, 2, 2)
        verdict = "generic" if report.generic else "NOT generic"
        status = "ok" if report.generic == expected else "UNEXPECTED"
        print(f"  {label:28} {mode:6} -> {verdict:12} "
              f"[{report.mappings_checked} mappings, "
              f"{report.pairs_checked} pairs]  {status}")

    print()
    print("Counterexamples are concrete objects:")
    report = exhaustive_check(select_eq(0, 1, 2), REL, 2, 2, max_violations=1)
    mapping, value, partner = report.violations[0]
    print(f"  mapping : {sorted(mapping.pairs())}")
    print(f"  inputs  : {value}  ~  {partner}")
    print(f"  outputs : {select_eq(0, 1, 2).fn(value)}  !~  "
          f"{select_eq(0, 1, 2).fn(partner)}")

    print()
    print("Static analysis (closure theorems) agrees with the exact tier:")
    for text, plan in [
        ("pi[1](R U S)", Project((0,), Union(Scan("R"), Scan("S")))),
        ("pi[1](R - S)", Project((0,), Difference(Scan("R"), Scan("S")))),
    ]:
        print(f"  {text:16} guaranteed {analyze_plan(plan)}")


if __name__ == "__main__":
    main()
