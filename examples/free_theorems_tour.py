#!/usr/bin/env python3
"""Free theorems and the list-to-set transfer, end to end.

Derives Wadler-style free theorems for the System F prelude, validates
their functional specializations on concrete data, then runs the
paper's Section 4.2 pipeline: transfer parametricity from list functions
to their set analogues (Corollary 4.15), including the negative case
(``count`` has no set analogue).

Run with:  python examples/free_theorems_tour.py
"""

from repro.lambda2 import (
    build_prelude,
    check_functional_instance,
    check_parametricity,
    derive,
)
from repro.listset import (
    cardinality,
    is_ltos,
    poly,
    set_union,
    to_set_type,
    transfer_parametricity,
)
from repro.types.ast import INT
from repro.types.parser import parse_type
from repro.types.values import Tup, cvlist


def main() -> None:
    prelude = build_prelude()

    # ------------------------------------------------------------------
    # 1. Free theorems from types alone.
    # ------------------------------------------------------------------
    for name in ("append", "count", "filter", "zip"):
        theorem = derive(name, prelude.type_of(name))
        print(theorem)
        print()

    # ------------------------------------------------------------------
    # 2. Validate append's law on data: append . (map f x map f)
    #    == map f . append, for an arbitrary f.
    # ------------------------------------------------------------------
    theorem = derive("append", prelude.type_of("append"))
    violation = check_functional_instance(
        theorem,
        prelude.value("append")[INT],
        {"X": lambda v: v * 3 + 1},
        [
            Tup((cvlist(1, 2), cvlist(3))),
            Tup((cvlist(), cvlist(0, 0))),
        ],
    )
    print("append law violated?", violation)

    # ------------------------------------------------------------------
    # 3. The eq-type refinement: list difference is parametric only at
    #    forall X= (injective instances).
    # ------------------------------------------------------------------
    ok = check_parametricity(
        prelude.value("difference"), prelude.type_of("difference"),
        "difference",
    )
    bad = check_parametricity(
        prelude.value("difference"),
        parse_type("forall X. <X> * <X> -> <X>"),
        "difference",
    )
    print(f"difference parametric at {prelude.type_of('difference')}:",
          ok.parametric)
    print("difference parametric at forall X (no equality):", bad.parametric)

    # ------------------------------------------------------------------
    # 4. Lists to sets (Cor 4.15): union inherits append's
    #    parametricity; cardinality does NOT inherit count's.
    # ------------------------------------------------------------------
    append_type = prelude.type_of("append")
    print()
    print(f"append type {append_type} is LtoS:", is_ltos(append_type))
    print(f"  related set type: {to_set_type(append_type)}")
    samples = [Tup((cvlist(0, 1), cvlist(1, 2))), Tup((cvlist(0, 0), cvlist()))]
    report = transfer_parametricity(
        "append", prelude.value("append"), poly(set_union), append_type,
        samples,
    )
    print("  transfer to union:", report)

    count_type = prelude.type_of("count")
    report2 = transfer_parametricity(
        "count", prelude.value("count"), poly(cardinality), count_type,
        [cvlist(0, 0), cvlist(1)],
    )
    print("  transfer count -> cardinality:", report2)
    print("  (analogy fails on duplicate lists: count<0,0> = 2 but the")
    print("   analogous set {0} has cardinality 1 — the paper's point")
    print("   that some list functions have no set analogue.)")


if __name__ == "__main__":
    main()
