#!/usr/bin/env python3
"""Classify the relational operator catalog by genericity.

Regenerates the Section 3 picture as one table: for each operation, its
verdict in every (mapping class, extension mode) cell, and the tightest
class per mode.  Also demonstrates the paper's *inexpressibility*
technique: `even` and ``eq_adom`` land outside the classes the fully
generic sublanguage inhabits, hence cannot be expressed in it.

Run with:  python examples/classification_table.py
"""

from repro.algebra import (
    eq_adom,
    even_query,
    hat_select_eq,
    projection,
    select_eq,
    self_compose,
    self_cross,
    union_op,
)
from repro.experiments.report import format_table
from repro.genericity.classify import classification_table
from repro.mappings.extensions import REL, STRONG


def main() -> None:
    catalog = [
        projection((0,), 2),
        self_cross(),
        union_op(),
        select_eq(0, 1, 2),
        hat_select_eq(0, 1, 2),
        self_compose(),
        eq_adom(),
        even_query(),
    ]
    print("Classifying", len(catalog), "operations "
          "(this sweeps 5 mapping classes x 2 modes each)...")
    rows = classification_table(catalog, trials=30)

    spec_names = [v.spec.name for v in rows[0].verdicts if v.mode == REL]
    columns = ["operation"] + [f"{s}/{m}" for s in spec_names for m in (REL, STRONG)]
    table_rows = []
    for row in rows:
        cells = [row.query_name]
        for spec_name in spec_names:
            for mode in (REL, STRONG):
                cells.append("yes" if row.cell(spec_name, mode).generic else "NO")
        table_rows.append(tuple(cells))
    print(format_table(columns, table_rows))

    print()
    for row in rows:
        for mode in (REL, STRONG):
            tightest = row.tightest(mode)
            label = tightest.name if tightest else "(none in lattice)"
            print(f"  tightest {mode:6} class for {row.query_name:18} : {label}")

    print()
    print("Inexpressibility (Section 1 / Chandra's technique):")
    print("  every query in the {x, Pi, U} sublanguage is fully generic;")
    even_row = next(r for r in rows if r.query_name == "even")
    if not even_row.cell("all", REL).generic:
        print("  `even` is NOT rel-fully generic -> `even` is not "
              "expressible in that sublanguage.")
    eq_row = next(r for r in rows if r.query_name == "eq_adom")
    if not eq_row.cell("all", STRONG).generic:
        print("  `eq_adom` is NOT strong-fully generic -> not expressible "
              "in any strong-fully-generic language (Prop 3.5).")


if __name__ == "__main__":
    main()
