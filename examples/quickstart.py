#!/usr/bin/env python3
"""Quickstart: a tour of the genericity/parametricity library.

Reproduces the paper's opening example (Example 2.2) step by step:
complex values, relational mappings, the two set-extension modes,
invariance checking, genericity classification and a first
parametricity check.

Run with:  python examples/quickstart.py
"""

from repro.algebra import projection, select_eq, self_compose, self_cross
from repro.genericity import classify
from repro.lambda2 import build_prelude, check_parametricity
from repro.mappings import REL, STRONG, Mapping, MappingFamily
from repro.types import STR, cvset, set_of, tup


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Complex values: the relations of Example 2.2.
    # ------------------------------------------------------------------
    r1 = cvset(
        tup("e", "f"), tup("i", "f"), tup("e", "j"),
        tup("i", "j"), tup("f", "g"), tup("j", "g"),
    )
    r2 = cvset(tup("a", "b"), tup("b", "c"))
    r3 = cvset(tup("e", "j"), tup("i", "j"), tup("f", "g"))
    print("r1 =", r1)
    print("r2 =", r2)
    print("r3 =", r3)

    # ------------------------------------------------------------------
    # 2. A relational mapping and its extensions.  h collapses e,i -> a
    #    and f,j -> b: a homomorphism of r1 onto r2.
    # ------------------------------------------------------------------
    h = Mapping(
        {("e", "a"), ("i", "a"), ("f", "b"), ("j", "b"), ("g", "c")},
        STR, STR,
    )
    family = MappingFamily({"str": h})
    pair_relation_type = set_of(STR * STR)
    for mode in (REL, STRONG):
        ext = family.extend(pair_relation_type, mode)
        print(f"{{h x h}}^{mode}(r1, r2) =", ext.holds(r1, r2))
        print(f"{{h x h}}^{mode}(r3, r2) =", ext.holds(r3, r2))
    # rel holds for both pairs; strong only for (r1, r2) — h creates a
    # pattern in r2 that r3 does not have.

    # ------------------------------------------------------------------
    # 3. Queries and invariance.  Q1 = R o R notices the difference;
    #    Q2 = R x R does not.
    # ------------------------------------------------------------------
    q1, q2 = self_compose(), self_cross()
    print("Q1(r1) =", q1(r1), "   Q1(r2) =", q1(r2), "   Q1(r3) =", q1(r3))
    out_ext = family.extend(pair_relation_type, REL)
    print("outputs related (r1 -> r2):", out_ext.holds(q1(r1), q1(r2)))
    print("outputs related (r3 -> r2):", out_ext.holds(q1(r3), q1(r2)))

    # ------------------------------------------------------------------
    # 4. Classification: the tightest genericity class of a query.
    # ------------------------------------------------------------------
    for query in (projection((0,), 2), select_eq(0, 1, 2)):
        row = classify(query, trials=25)
        tightest = row.tightest(REL)
        print(f"{query.name}: tightest rel-genericity class = "
              f"{tightest.name if tightest else 'none found'}")

    # ------------------------------------------------------------------
    # 5. Parametricity: append commutes with every mapping its type
    #    mentions (Theorem 4.4), checked empirically.
    # ------------------------------------------------------------------
    prelude = build_prelude()
    report = check_parametricity(
        prelude.value("append"), prelude.type_of("append"), "append"
    )
    print(f"append : {prelude.type_of('append')} parametric?",
          report.parametric)


if __name__ == "__main__":
    main()
