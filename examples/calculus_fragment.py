#!/usr/bin/env python3
"""The restricted calculus fragment of Proposition 3.3, interactively.

Builds calculus queries inside and outside the fully generic fragment
(no repeated variables in atoms, same-variable disjunction, disjoint
conjunction, existential quantification), evaluates them over a small
database, and shows the genericity boundary empirically: the fragment
queries survive arbitrary mappings, the equality-using ones do not.

Run with:  python examples/calculus_fragment.py
"""

from repro.algebra import (
    And,
    Atom,
    CalculusError,
    CalculusQuery,
    EqAtom,
    Exists,
    Or,
    restricted_fragment_ok,
)
from repro.genericity import GenericitySpec, find_counterexample
from repro.mappings.extensions import REL
from repro.types.ast import INT, set_of
from repro.types.values import cvset, tup


def main() -> None:
    db = {
        "R": cvset(tup(1, 2), tup(2, 3), tup(3, 1)),
        "S": cvset(tup(2,), tup(4,)),
    }

    # --- inside the fragment -------------------------------------------
    fragment_queries = {
        "{x | exists y. R(x,y)}": CalculusQuery(
            ("x",), Exists("y", Atom("R", ("x", "y")))
        ),
        "{(x,y) | R(x,y) or R(y,x)}": CalculusQuery(
            ("x", "y"), Or(Atom("R", ("x", "y")), Atom("R", ("y", "x")))
        ),
        "{(x,y,z) | R(x,y) and S(z)}": CalculusQuery(
            ("x", "y", "z"),
            And(Atom("R", ("x", "y")), Atom("S", ("z",))),
        ),
    }
    print("queries INSIDE the Prop 3.3 fragment:")
    for text, query in fragment_queries.items():
        print(f"  {text}")
        print(f"    answer: {query.evaluate(db)}")

    # --- violations rejected at construction ----------------------------
    print()
    print("violations rejected at construction time:")
    try:
        CalculusQuery(("x",), Atom("R", ("x", "x")))
    except CalculusError as error:
        print(f"  R(x,x) [repeated variable]: {error}")
    bad_or = Or(Atom("R", ("x", "y")), Atom("S", ("x",)))
    print(f"  different-variable OR in fragment? "
          f"{restricted_fragment_ok(bad_or)}")
    print(f"  equality atom in fragment? "
          f"{restricted_fragment_ok(EqAtom('x', 'y'))}")

    # --- the genericity boundary ----------------------------------------
    print()
    print("genericity boundary (randomized search vs ALL mappings):")
    spec = GenericitySpec("all", "all")
    inside = fragment_queries["{x | exists y. R(x,y)}"].as_query(("R",))
    search = find_counterexample(
        inside, spec, REL, trials=120,
        input_type=set_of(INT * INT),
    )
    print(f"  fragment query: counterexample found = {search.found} "
          f"(expected False — Prop 3.3)")

    outside = CalculusQuery(
        ("x", "y"),
        And(Atom("R", ("x", "y")), EqAtom("x", "y")),
        strict=False,
    ).as_query(("R",))
    search2 = find_counterexample(
        outside, spec, REL, trials=200,
        input_type=set_of(INT * INT),
    )
    print(f"  equality query:  counterexample found = {search2.found} "
          f"(expected True — equality leaves the fragment)")


if __name__ == "__main__":
    main()
