"""Setup shim: the offline environment lacks the ``wheel`` package, so
PEP 517 editable installs fail; this enables the legacy code path."""
from setuptools import setup

setup()
