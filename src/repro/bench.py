"""Benchmark suites: executor comparison + parallel-harness scaling.

Importable as :mod:`repro.bench` (``python -m repro bench``) with
``benchmarks/run_bench.py`` kept as a thin path-setting shim.  Writes
``BENCH_PR10.json`` at the repo root by default.

Measurements:

* **plan execution** — reference interpreter vs streaming (cold) vs
  batch (cold) vs compiled (cold, memoized program) vs cost-driven
  ``auto`` vs warm result cache, on the HR workload at growing sizes;
* **deep pipeline / hash join** — the same executors on a 6-operator
  pipeline and a multi-column join;
* **cache hit ratio** — the invariance-style sweep access pattern;
* **interleave** — alternating inserts and repeated queries: the
  delta-maintained warm path (cache entries patched in place on
  insert) vs the legacy invalidate-and-recompute path, with the
  maintained answer byte-compared against cold recomputation;
* **parallel sweep** — the genericity classification grid, serial vs
  ``--jobs N`` (:mod:`repro.parallel`), with a byte-identity check of
  the rendered output;
* **parallel fuzz** — differential fuzz seeds, serial vs sharded, with
  a report-identity check;
* **sharded execution** — partition-parallel ``execute_sharded`` vs
  serial streaming on a probe-heavy co-partitioned join, with the
  merged value/work/ledger byte-compared against the serial run;
* **durability** — the write-ahead-log tax and the recovery path:
  per-mutation insert latency with the WAL attached (append + commit
  + apply) vs plain in-memory inserts, on-demand checkpoint cost, and
  ``recovery_s`` — rebuilding the database from checkpoint + committed
  log suffix, digest-compared against the live database it replays;
* **observability** — tracer overhead when enabled (the disabled path
  is the untraced code path every other suite measures), plus cold
  per-operator EXPLAIN breakdowns of the HR plan in every mode;
* **E-PERF** — the pytest micro-benchmark tier, unless ``--skip-eperf``
  (skipped automatically when ``benchmarks/`` is absent, e.g. from an
  installed package).

Honest-numbers note: the parallel suites record ``cpu_count`` next to
the measured speedup — on a single-core host, process sharding cannot
beat serial and the measured value says so; the byte-identity flags are
the correctness claim, the speedup is hardware-dependent.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .engine.exec import (
    PlanCache,
    execute_batch,
    execute_compiled,
    execute_streaming,
)
from .engine.fuzz import run_fuzz
from .engine.workload import hr_database, random_database, random_plan
from .optimizer.plan import (
    Difference,
    Join,
    MapNode,
    Project,
    Scan,
    Select,
    Union,
    execute_reference,
)
from .optimizer.rewriter import Rewriter
from .parallel import default_jobs, render_verdicts, sweep_invariance

__all__ = ["main"]

REPO_ROOT = Path(__file__).resolve().parents[2]


#: Repeats per timed row; recorded in the JSON so the regression gate
#: knows what it is comparing.
_REPEATS = 5


def _time(fn, repeats: int = _REPEATS) -> float:
    """Best (min) per-call wall-clock seconds of ``fn``.

    Min, not median: these are deterministic CPU-bound bodies, so the
    minimum is the best estimate of the true cost and the statistic
    least contaminated by scheduler/GC noise — medians were jittery
    enough to trip ``compare_bench.py``'s +20% gate on unchanged code.

    Sub-millisecond bodies are looped inside each sample so a single
    scheduler tick cannot dominate the measurement (single-digit
    microsecond calls were showing ±20% run-to-run swings otherwise).
    """
    start = time.perf_counter()
    fn()
    once = time.perf_counter() - start
    inner = max(1, min(64, int(1e-3 / once) if once > 0 else 64))
    best = once if inner == 1 else float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def bench_plan_execution(sizes=(100, 400, 1600)) -> dict:
    """HR workload: reference vs streaming/batch/compiled (cold) vs
    cost-driven auto vs warm result cache.

    "Cold" means result-cache-cold throughout.  The compiled row times
    repeated cold execution — the artifact is memoized in the plan
    cache's side table after the first run (that is the mode's
    contract; recompiling per call would be measuring ``exec`` speed,
    not the executor)."""
    rows = []
    for size in sizes:
        db = hr_database(random.Random(4), employees=size,
                         students=size // 2, overlap=size // 4)
        plan = Project((0,), Difference(Scan("employees"),
                                        Scan("students")))
        reference = execute_reference(plan, db.relations)
        reference_s = _time(lambda: execute_reference(plan, db.relations))
        streaming_s = _time(
            lambda: execute_streaming(plan, db.relations)
        )
        # Warm the maintained per-relation stats once (the Database
        # keeps them incrementally across mutations; computing them is
        # not part of a per-execution cold path).
        batch = execute_batch(plan, db.relations,
                              relation_stats=db.relation_stats)
        assert batch.value == reference.value
        batch_s = _time(
            lambda: execute_batch(plan, db.relations,
                                  relation_stats=db.relation_stats)
        )
        compiled = db.run(plan, mode="compiled", use_cache=False)
        assert compiled.value == reference.value
        assert compiled.work == reference.work
        compiled_s = _time(
            lambda: db.run(plan, mode="compiled", use_cache=False)
        )
        auto = db.run(plan, mode="auto", use_cache=False)
        assert auto.value == reference.value
        auto_s = _time(lambda: db.run(plan, mode="auto", use_cache=False))
        # Disabled-injection robustness path: the same streaming cold
        # run, routed through Database.run's degradation chain with no
        # injector attached — what the fault hooks cost when off.
        chaos = db.run(plan, use_cache=False)
        assert chaos.value == reference.value
        chaos_s = _time(lambda: db.run(plan, use_cache=False))
        db.run(plan)  # warm
        warm_s = _time(lambda: db.run(plan))
        check = db.run(plan)
        assert check.value == reference.value
        # Maintained warm path: an insert absorbed by delta maintenance
        # must leave the entry alive — the next run is still a hit, and
        # its answer is byte-identical to cold recomputation.
        maintained_before = db.plan_cache.maintained
        hits_before = db.plan_cache.hits
        db.insert("employees", [(1, f"late{size}", "dept0")])
        patched = db.run(plan)
        assert db.plan_cache.maintained > maintained_before
        assert db.plan_cache.hits == hits_before + 1
        want = db.run_reference(plan)
        assert patched.value == want.value
        assert patched.work == want.work
        assert patched.per_node == want.per_node
        maintained_warm_s = _time(lambda: db.run(plan))
        rows.append({
            "size": size,
            "repeats": _REPEATS,
            "reference_s": reference_s,
            "streaming_cold_s": streaming_s,
            "batch_cold_s": batch_s,
            "compiled_cold_s": compiled_s,
            "auto_s": auto_s,
            "chaos_overhead_s": chaos_s,
            "cached_warm_s": warm_s,
            "maintained_warm_s": maintained_warm_s,
            "streaming_speedup": reference_s / max(streaming_s, 1e-9),
            "batch_speedup": reference_s / max(batch_s, 1e-9),
            "compiled_speedup": reference_s / max(compiled_s, 1e-9),
            "auto_speedup": reference_s / max(auto_s, 1e-9),
            "warm_speedup": reference_s / max(warm_s, 1e-9),
        })
    return {"name": "hr_plan_execution", "rows": rows}


def bench_deep_pipeline(sizes=(400, 1600)) -> dict:
    """A 6-operator pipeline: per-tuple frames vs operator-at-a-time."""
    rows = []
    for size in sizes:
        db = hr_database(random.Random(8), employees=size,
                         students=size // 2, overlap=size // 4)
        plan = Project(
            (0,),
            Select(
                "always", lambda t: True,
                MapNode(
                    "swap", lambda t: t.project((2, 1, 0)),
                    Select(
                        "always", lambda t: True,
                        Union(Scan("employees"), Scan("students")),
                    ),
                ),
            ),
        )
        reference_s = _time(lambda: execute_reference(plan, db.relations))
        streaming_s = _time(
            lambda: execute_streaming(plan, db.relations)
        )
        batch_s = _time(
            lambda: execute_batch(plan, db.relations,
                                  relation_stats=db.relation_stats)
        )
        store = PlanCache()
        execute_compiled(plan, db.relations, compile_store=store,
                         relation_stats=db.relation_stats)
        compiled_s = _time(
            lambda: execute_compiled(plan, db.relations,
                                     compile_store=store,
                                     relation_stats=db.relation_stats)
        )
        rows.append({
            "size": size,
            "repeats": _REPEATS,
            "reference_s": reference_s,
            "streaming_cold_s": streaming_s,
            "batch_cold_s": batch_s,
            "compiled_cold_s": compiled_s,
            "streaming_speedup": reference_s / max(streaming_s, 1e-9),
            "batch_speedup": reference_s / max(batch_s, 1e-9),
            "compiled_speedup": reference_s / max(compiled_s, 1e-9),
        })
    return {"name": "deep_pipeline", "rows": rows}


def bench_hash_join(sizes=(200, 800, 2000)) -> dict:
    """Join build/probe micro-benchmark, multi-column ``on``."""
    rows = []
    for size in sizes:
        rng = random.Random(9)
        db = random_database(rng, ("a", "b"), arity=2,
                             domain_size=max(size // 4, 4), max_rows=size)
        plan = Join(((0, 0), (1, 1)), Scan("a"), Scan("b"))
        reference_s = _time(lambda: execute_reference(plan, db))
        streaming_s = _time(lambda: execute_streaming(plan, db))
        batch_s = _time(lambda: execute_batch(plan, db))
        store = PlanCache()
        execute_compiled(plan, db, compile_store=store)
        compiled_s = _time(
            lambda: execute_compiled(plan, db, compile_store=store)
        )
        rows.append({
            "size": size,
            "repeats": _REPEATS,
            "reference_s": reference_s,
            "streaming_s": streaming_s,
            "batch_s": batch_s,
            "compiled_s": compiled_s,
            "speedup": reference_s / max(streaming_s, 1e-9),
            "batch_speedup": reference_s / max(batch_s, 1e-9),
            "compiled_speedup": reference_s / max(compiled_s, 1e-9),
        })
    return {"name": "hash_join_build_probe", "rows": rows}


def bench_sharded_execution(sizes=(100, 400, 1600), shards: int = 4) -> dict:
    """Partition-parallel ``execute_sharded`` vs serial streaming.

    The workload is a probe-heavy multi-column join whose children
    co-partition on the first join column, so every shard's hash join
    probes only co-located rows and the probe work divides across the
    pool.  Byte-identity of the merged (value, work, ledger) against
    the serial streaming run is asserted in the harness at every size
    — including ``shards=1`` (the degenerate single-shard path) — so
    the speedup claim never outruns the correctness claim.  The fixed
    cost of spinning up the process pool is charged to every sharded
    sample; small sizes honestly lose to serial streaming, and the
    recorded ``cpu_count`` says whether a win was possible at all."""
    from .engine.exec import execute_sharded

    rows_out = []
    for size in sizes:
        rng = random.Random(33)
        db = random_database(rng, ("a", "b"), arity=3,
                             domain_size=max(size // 130, 4), max_rows=size)
        plan = Join(((0, 0), (1, 1)), Scan("a"), Scan("b"))
        want = execute_streaming(plan, db)
        for check_shards in (1, shards):
            got = execute_sharded(plan, db, shards=check_shards)
            assert got.value == want.value
            assert got.work == want.work
            assert got.per_node == want.per_node
        streaming_s = _time(lambda: execute_streaming(plan, db))
        sharded_s = _time(
            lambda: execute_sharded(plan, db, shards=shards)
        )
        rows_out.append({
            "size": size,
            "shards": shards,
            "cpu_count": os.cpu_count(),
            "repeats": _REPEATS,
            "streaming_cold_s": streaming_s,
            "sharded_cold_s": sharded_s,
            "sharded_speedup": streaming_s / max(sharded_s, 1e-9),
            "byte_identical": True,  # asserted above, recorded here
        })
    return {"name": "sharded_execution", "rows": rows_out}


def bench_durability(sizes=(100, 400, 1600)) -> dict:
    """WAL write tax + checkpoint cost + ``recovery_s``.

    ``fsync`` is disabled so the numbers measure the engine (record
    encoding, CRC, commit protocol, replay), not the disk; the write
    ordering and formats are identical either way, and the recorded
    flag says so.  The recovered database is digest-compared (contents,
    generation, fingerprints) against the live one it replays — the
    latency claim never outruns the correctness claim."""
    import itertools
    import shutil
    import tempfile

    from .durability import DurabilityManager, recover
    from .engine.serialize import database_to_json

    def digest(db):
        return (
            json.dumps(database_to_json(db), sort_keys=True),
            db._generation,
            tuple(sorted((n, db.fingerprint(n)) for n in db.relations)),
        )

    from .engine.database import Database

    rows_out = []
    for size in sizes:
        workdir = tempfile.mkdtemp(prefix="bench-durability-")
        try:
            state = os.path.join(workdir, "state")
            live = Database()
            live.durability = DurabilityManager(state, fsync=False)
            live.create("r", 2)
            live.insert("r", [(i, i % 7) for i in range(size)])
            # Checkpoint the bulk load; the replayed tail is then one
            # mutation per row — the recovery-dominant shape.
            live.durability.checkpoint(live)
            tail = itertools.count(size)
            for _ in range(size // 4):
                i = next(tail)
                live.insert("r", [(i, i % 7)])

            counter = itertools.count(10 * size)
            wal_insert_s = _time(
                lambda: live.insert("r", [(next(counter), 0)])
            )
            plain = Database()
            plain.create("r", 2)
            plain.insert("r", [(i, i % 7) for i in range(size)])
            plain_counter = itertools.count(10 * size)
            plain_insert_s = _time(
                lambda: plain.insert("r", [(next(plain_counter), 0)])
            )
            checkpoint_s = _time(lambda: live.durability.checkpoint(live))

            # Rebuild a recovery-shaped directory: snapshot of the bulk
            # load, WAL tail of size//4 committed single-row inserts.
            recovery_state = os.path.join(workdir, "recovery")
            fresh = Database()
            fresh.durability = DurabilityManager(recovery_state,
                                                 fsync=False)
            fresh.create("r", 2)
            fresh.insert("r", [(i, i % 7) for i in range(size)])
            fresh.durability.checkpoint(fresh)
            for j in range(size // 4):
                fresh.insert("r", [(size + j, j % 7)])
            fresh.durability.close()

            recovered, report = recover(recovery_state)
            assert digest(recovered) == digest(fresh)
            recovery_s = _time(lambda: recover(recovery_state))
            rows_out.append({
                "size": size,
                "repeats": _REPEATS,
                "fsync": False,
                "wal_insert_s": wal_insert_s,
                "plain_insert_s": plain_insert_s,
                "wal_overhead":
                    wal_insert_s / max(plain_insert_s, 1e-9),
                "checkpoint_s": checkpoint_s,
                "recovery_s": recovery_s,
                "replayed": report.replayed,
                "byte_identical": True,  # asserted above, recorded here
            })
            live.durability.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return {"name": "durability", "rows": rows_out}


def bench_cache_invariance_sweep(repetitions: int = 5) -> dict:
    """The invariance/verification access pattern: a fixed plan set
    re-executed over the same database, many times.

    The first pass is cold (misses + populate); later passes should hit.
    Reported hit rate covers the warm phase, plus the overall rate."""
    db = hr_database(random.Random(12), employees=400, students=200,
                     overlap=50)
    rewriter = Rewriter(db.catalog)
    base_plans = [
        Project((0,), Union(Scan("employees"), Scan("students"))),
        Project((0,), Difference(Scan("employees"), Scan("students"))),
        Project((0,), Difference(Scan("employees"), Scan("contractors"))),
        Join(((0, 0),), Scan("employees"), Scan("students")),
        Project((0, 2), Select("always", lambda t: True,
                               Union(Scan("employees"),
                                     Scan("contractors")))),
    ]
    plans = base_plans + [rewriter.optimize(p) for p in base_plans]

    def sweep():
        for plan in plans:
            db.run(plan)

    sweep()  # cold pass
    cold = db.plan_cache.stats()
    db.plan_cache.reset_stats()
    warm_start = time.perf_counter()
    for _ in range(repetitions - 1):
        sweep()
    warm_elapsed = time.perf_counter() - warm_start
    warm = db.plan_cache.stats()
    return {
        "name": "cache_invariance_sweep",
        "plans": len(plans),
        "repetitions": repetitions,
        "cold": cold,
        "warm": warm,
        "warm_hit_rate": warm["hit_rate"],
        "warm_elapsed_s": warm_elapsed,
    }


def bench_interleave(sizes=(100, 400, 1600), rounds: int = 8) -> dict:
    """Alternating inserts and repeated queries: delta maintenance vs
    invalidate-and-recompute.

    Two identically-seeded databases run the same insert/query
    interleave over a join plan.  The *maintained* database patches the
    cached entry in place on every insert (the query after each write
    is a warm hit); the *legacy* database runs with
    ``plan_cache.maintenance_enabled = False``, so every insert
    invalidates and every query recomputes cold.  Reported times are
    the mean post-insert query latency.  Byte-identity of the
    maintained warm answer against cold reference recomputation is
    asserted in the harness — the speedup claim never outruns the
    correctness claim."""
    rows_out = []
    for size in sizes:
        plan = Join(((0, 0),), Scan("employees"), Scan("students"))
        batches = [
            [(9_000_000 + size * 100 + r * 10 + i, f"new{r}_{i}", "dept0")
             for i in range(3)]
            for r in range(rounds)
        ]

        def fresh():
            return hr_database(random.Random(21), employees=size,
                               students=size // 2, overlap=size // 4)

        def interleave(db):
            db.run(plan)  # populate the cache
            result = None
            elapsed = 0.0
            for batch in batches:
                db.insert("employees", batch)
                start = time.perf_counter()
                result = db.run(plan)
                elapsed += time.perf_counter() - start
            return result, elapsed / rounds

        maintained_db = fresh()
        maintained_result, maintained_warm_s = interleave(maintained_db)
        legacy_db = fresh()
        legacy_db.plan_cache.maintenance_enabled = False
        legacy_result, invalidate_warm_s = interleave(legacy_db)

        want = maintained_db.run_reference(plan)
        assert maintained_result.value == want.value
        assert maintained_result.work == want.work
        assert maintained_result.per_node == want.per_node
        assert legacy_result.value == want.value
        assert maintained_db.plan_cache.maintained >= rounds
        assert maintained_db.plan_cache.maintain_fallback == 0
        assert legacy_db.plan_cache.maintained == 0
        rows_out.append({
            "size": size,
            "rounds": rounds,
            "maintained_warm_s": maintained_warm_s,
            "invalidate_warm_s": invalidate_warm_s,
            "maintained_speedup":
                invalidate_warm_s / max(maintained_warm_s, 1e-9),
            "byte_identical": True,  # asserted above, recorded here
        })
    return {"name": "interleave_maintenance", "rows": rows_out}


def bench_equivalence_spotcheck(pairs: int = 50) -> dict:
    """Random-plan equivalence (the property-test workload), timed."""
    rng = random.Random(77)
    start = time.perf_counter()
    for _ in range(pairs):
        db = random_database(rng, ("r", "s", "t"), arity=2, domain_size=5,
                             max_rows=10)
        plan = random_plan(rng, ("r", "s", "t"), depth=3)
        assert (
            execute_streaming(plan, db).value
            == execute_reference(plan, db).value
        )
        assert (
            execute_batch(plan, db).value
            == execute_reference(plan, db).value
        )
    return {
        "name": "random_plan_equivalence",
        "pairs": pairs,
        "elapsed_s": time.perf_counter() - start,
    }


def bench_parallel_sweep(jobs: int, quick: bool = False) -> dict:
    """Genericity classification grid: serial vs sharded, byte-compared."""
    from .cli import OPERATION_CATALOG

    operations = (
        ["projection", "eq_adom"] if quick else list(OPERATION_CATALOG)
    )
    trials = 6 if quick else 25

    start = time.perf_counter()
    serial = sweep_invariance(operations, trials=trials, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = sweep_invariance(operations, trials=trials, jobs=jobs)
    parallel_s = time.perf_counter() - start

    return {
        "name": "parallel_invariance_sweep",
        "operations": len(operations),
        "cells": len(serial),
        "trials": trials,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "parallel_speedup": serial_s / max(parallel_s, 1e-9),
        "byte_identical": render_verdicts(serial) == render_verdicts(parallel),
    }


def bench_parallel_fuzz(jobs: int, quick: bool = False) -> dict:
    """Differential fuzz seeds: serial vs sharded, report-compared."""
    seeds = 12 if quick else 60

    start = time.perf_counter()
    serial = run_fuzz(seeds, base_seed=0)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_fuzz(seeds, base_seed=0, jobs=jobs)
    parallel_s = time.perf_counter() - start

    return {
        "name": "parallel_fuzz",
        "seeds": seeds,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "parallel_speedup": serial_s / max(parallel_s, 1e-9),
        "serial_ok": serial.ok,
        "identical_report": serial.summary() == parallel.summary(),
    }


def bench_observability(size: int = 800) -> dict:
    """Tracer overhead + per-operator EXPLAIN breakdowns.

    Two claims, measured: the *disabled* path (``tracer=None``) is the
    PR 3 code path — its cost shows up in every other suite, gated by
    ``compare_bench.py`` — and the *enabled* path costs a bounded,
    reported overhead.  The per-operator breakdowns are cold uncached
    runs of the HR plan in every executor mode, ``compiled`` and
    cost-driven ``auto`` included (deterministic modulo wall time, so
    the JSON doubles as an EXPLAIN fixture)."""
    from .obs import Tracer, explain

    db = hr_database(random.Random(4), employees=size,
                     students=size // 2, overlap=size // 4)
    plan = Project((0,), Difference(Scan("employees"), Scan("students")))
    untraced_s = _time(lambda: execute_streaming(plan, db.relations))
    traced_s = _time(
        lambda: execute_streaming(plan, db.relations, tracer=Tracer())
    )
    breakdowns = {
        mode: explain(plan, db, mode=mode, use_cache=False).to_dict(
            wall=False
        )
        for mode in ("reference", "stream", "batch", "compiled", "auto")
    }
    return {
        "name": "observability",
        "size": size,
        "untraced_stream_s": untraced_s,
        "traced_stream_s": traced_s,
        "tracer_overhead": traced_s / max(untraced_s, 1e-9),
        "per_operator": breakdowns,
    }


def run_eperf() -> dict:
    """The E-PERF sweep (bench_framework.py), one pass via pytest."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest",
         str(REPO_ROOT / "benchmarks" / "bench_framework.py"),
         "-q", "--benchmark-disable", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"),
             "PATH": "/usr/bin:/bin:/usr/local/bin"},
        capture_output=True,
        text=True,
    )
    return {
        "name": "eperf_sweep",
        "passed": proc.returncode == 0,
        "elapsed_s": time.perf_counter() - start,
        "tail": proc.stdout.strip().splitlines()[-1:] if proc.stdout else [],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro bench")
    parser.add_argument("--skip-eperf", action="store_true",
                        help="skip the pytest E-PERF sweep")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes / few repeats, for CI smoke")
    parser.add_argument("--jobs", type=int, default=0,
                        help="workers for the parallel suites "
                             "(0 = all cores)")
    parser.add_argument("--out", default="BENCH_PR10.json")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else default_jobs()

    sizes = (100, 400) if args.quick else (100, 400, 1600)
    results = {
        "pr": 10,
        "title": "write-ahead-logged durability with crash recovery",
        "cpu_count": os.cpu_count(),
        "benchmarks": [],
    }
    suites = [
        lambda: bench_plan_execution(sizes),
        lambda: bench_deep_pipeline(sizes[-2:]),
        lambda: bench_hash_join((200, 800) if args.quick
                                else (200, 800, 2000)),
        lambda: bench_sharded_execution(sizes),
        lambda: bench_durability(sizes),
        bench_cache_invariance_sweep,
        lambda: bench_interleave(sizes),
        lambda: bench_equivalence_spotcheck(10 if args.quick else 50),
        lambda: bench_parallel_sweep(jobs, quick=args.quick),
        lambda: bench_parallel_fuzz(jobs, quick=args.quick),
        lambda: bench_observability(400 if args.quick else 800),
    ]
    for bench in suites:
        result = bench()
        results["benchmarks"].append(result)
        print(f"[bench] {result['name']}: done")
    has_eperf = (REPO_ROOT / "benchmarks" / "bench_framework.py").exists()
    if not args.skip_eperf and has_eperf:
        result = run_eperf()
        results["benchmarks"].append(result)
        print(f"[bench] eperf_sweep: passed={result['passed']}")

    hr_rows = results["benchmarks"][0]["rows"]
    largest = hr_rows[-1]
    sweep = next(b for b in results["benchmarks"]
                 if b["name"] == "cache_invariance_sweep")
    psweep = next(b for b in results["benchmarks"]
                  if b["name"] == "parallel_invariance_sweep")
    pfuzz = next(b for b in results["benchmarks"]
                 if b["name"] == "parallel_fuzz")
    obs = next(b for b in results["benchmarks"]
               if b["name"] == "observability")
    inter = next(b for b in results["benchmarks"]
                 if b["name"] == "interleave_maintenance")
    inter_largest = inter["rows"][-1]
    sharded = next(b for b in results["benchmarks"]
                   if b["name"] == "sharded_execution")
    sharded_largest = sharded["rows"][-1]
    durability = next(b for b in results["benchmarks"]
                      if b["name"] == "durability")
    durability_largest = durability["rows"][-1]
    results["acceptance"] = {
        "tracer_overhead_when_enabled": obs["tracer_overhead"],
        "hr_largest_size": largest["size"],
        "hr_warm_speedup_vs_reference": largest["warm_speedup"],
        "hr_streaming_cold_speedup_vs_reference":
            largest["streaming_speedup"],
        "hr_batch_cold_speedup_vs_reference": largest["batch_speedup"],
        "hr_compiled_cold_speedup_vs_reference":
            largest["compiled_speedup"],
        "hr_auto_speedup_vs_reference": largest["auto_speedup"],
        "auto_within_10pct_of_best": all(
            row["auto_s"] <= 1.1 * min(
                row["reference_s"], row["streaming_cold_s"],
                row["batch_cold_s"], row["compiled_cold_s"],
            )
            for row in hr_rows
        ),
        "warm_cache_hit_rate": sweep["warm_hit_rate"],
        "interleave_largest_size": inter_largest["size"],
        "interleave_maintained_speedup_vs_invalidate":
            inter_largest["maintained_speedup"],
        "interleave_maintained_at_least_5x":
            inter_largest["maintained_speedup"] >= 5.0,
        "interleave_byte_identical": all(
            row["byte_identical"] for row in inter["rows"]
        ),
        "sharded_largest_size": sharded_largest["size"],
        "sharded_shards": sharded_largest["shards"],
        # Hardware-dependent (see the suite's honest-numbers note): on
        # a single-core host process sharding cannot beat serial and
        # the recorded value says so; byte-identity is the claim.
        "sharded_speedup_vs_streaming_cold":
            sharded_largest["sharded_speedup"],
        "sharded_byte_identical": all(
            row["byte_identical"] for row in sharded["rows"]
        ),
        "durability_largest_size": durability_largest["size"],
        "durability_wal_insert_overhead_vs_plain":
            durability_largest["wal_overhead"],
        "durability_recovery_s": durability_largest["recovery_s"],
        "durability_byte_identical": all(
            row["byte_identical"] for row in durability["rows"]
        ),
        "parallel_sweep_jobs": psweep["jobs"],
        "parallel_sweep_speedup": psweep["parallel_speedup"],
        "parallel_sweep_byte_identical": psweep["byte_identical"],
        "parallel_fuzz_identical_report": pfuzz["identical_report"],
        "cpu_count": os.cpu_count(),
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(results["acceptance"], indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
