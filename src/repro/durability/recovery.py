"""Crash recovery: checkpoint + committed WAL replay.

:func:`recover` rebuilds a database from a durability directory in
three phases, each its own span on the ``recover`` span tree:

1. **checkpoint** — rebuild the last published snapshot (or start
   empty), restoring the snapshot's recorded generation;
2. **scan** — decode the WAL's longest trustworthy prefix
   (:func:`~repro.durability.wal.scan_wal`), dropping a torn tail or
   anything after a CRC failure, then keep only records whose commit
   marker made it into that prefix;
3. **replay** — apply the committed records past the checkpoint's LSN
   through the ordinary Database mutation methods, verifying after
   each one that the rebuilt generation matches the logged one.

Replaying through the public mutation surface is what makes the
result *byte-identical* to a database that applied the mutations
in-process: the same index, atom, weight, width and distinct
maintenance runs, the same fingerprints emerge, and — because
``Database.insert`` routes deltas through ``PlanCache.maintain`` —
cached plan results warmed before replay (``warm_plans``) are patched
forward by the PR 8 semi-naive delta path instead of being recomputed
from scratch.

Counters (``robustness.wal.*``) make every recovery auditable:
replayed / skipped-stale / dropped-uncommitted record counts, torn
tails and corrupt records dropped, checkpoints loaded.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..engine.database import Database
from ..engine.serialize import value_from_json
from ..obs.metrics import counter
from ..obs.trace import Span, Tracer
from .checkpoint import load_checkpoint
from .wal import WAL_NAME, WalError, WalRecord, committed_records, scan_wal

__all__ = ["RecoveryReport", "apply_record", "recover", "replay_records"]


@dataclass
class RecoveryReport:
    """What one :func:`recover` call found and did."""

    directory: str
    checkpoint_lsn: int = 0
    checkpoint_loaded: bool = False
    records_scanned: int = 0
    replayed: int = 0
    skipped_stale: int = 0
    dropped_uncommitted: int = 0
    torn_tail: bool = False
    corrupt: bool = False
    scan_error: Optional[str] = None
    generation: int = 0
    rewarmed: int = 0
    root: Optional[Span] = field(default=None, repr=False)

    def summary(self) -> str:
        lines = [
            f"recover {self.directory}: generation {self.generation}",
            f"  checkpoint: "
            + (
                f"loaded (lsn {self.checkpoint_lsn})"
                if self.checkpoint_loaded
                else "none"
            ),
            f"  wal: {self.records_scanned} record(s) scanned, "
            f"{self.replayed} replayed, {self.skipped_stale} stale, "
            f"{self.dropped_uncommitted} uncommitted dropped",
        ]
        if self.torn_tail or self.corrupt:
            lines.append(f"  tail dropped: {self.scan_error}")
        if self.rewarmed:
            lines.append(
                f"  cache: {self.rewarmed} entr(ies) delta-maintained "
                f"during replay"
            )
        return "\n".join(lines)

    def render(self) -> str:
        """Summary plus the recovery span tree."""
        from ..obs.explain import render_span_tree

        parts = [self.summary()]
        if self.root is not None:
            parts.append(render_span_tree(self.root, wall=False))
        return "\n".join(parts)

    def to_dict(self) -> dict:
        return {
            "directory": self.directory,
            "checkpoint_lsn": self.checkpoint_lsn,
            "checkpoint_loaded": self.checkpoint_loaded,
            "records_scanned": self.records_scanned,
            "replayed": self.replayed,
            "skipped_stale": self.skipped_stale,
            "dropped_uncommitted": self.dropped_uncommitted,
            "torn_tail": self.torn_tail,
            "corrupt": self.corrupt,
            "scan_error": self.scan_error,
            "generation": self.generation,
            "rewarmed": self.rewarmed,
        }


def apply_record(db: Database, record: WalRecord) -> None:
    """Apply one committed record through the public mutation surface.

    Raises :class:`~repro.durability.wal.WalError` when a payload that
    passed its CRC still does not describe a replayable mutation — by
    construction that is a logging bug, not a crash artifact, so it is
    surfaced rather than skipped.
    """
    payload = record.payload
    try:
        name = payload["name"]
        if record.kind == "create":
            db.create(
                name,
                payload["arity"],
                keys=[tuple(k) for k in payload["keys"]],
                shared_keys={
                    tuple(entry["columns"]): entry["group"]
                    for entry in payload["shared_keys"]
                },
            )
        elif record.kind == "insert":
            rows = [value_from_json(row) for row in payload["rows"]]
            db.insert(name, [tuple(t) for t in rows])
        elif record.kind == "replace":
            db[name] = value_from_json(payload["value"])
        else:
            raise WalError(f"cannot replay record kind {record.kind!r}")
    except WalError:
        raise
    except Exception as exc:
        raise WalError(
            f"unreplayable {record.kind} record at lsn {record.lsn}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if db._generation != record.generation:
        raise WalError(
            f"generation mismatch replaying lsn {record.lsn}: "
            f"log says {record.generation}, rebuilt {db._generation}"
        )


def replay_records(
    db: Database,
    records: Sequence[WalRecord],
    *,
    after_lsn: int = 0,
) -> tuple[int, int]:
    """Apply committed ``records`` with ``lsn > after_lsn`` to ``db``.

    Returns ``(replayed, skipped_stale)``.  The LSN filter is what
    makes a stale WAL (crash between checkpoint publication and log
    reset) harmless: its records are already inside the snapshot.
    """
    replayed = skipped = 0
    for record in records:
        if record.lsn <= after_lsn:
            skipped += 1
            continue
        apply_record(db, record)
        replayed += 1
    return replayed, skipped


def recover(
    directory,
    *,
    warm_plans: Sequence = (),
    tracer: Optional[Tracer] = None,
    fsync: bool = True,
) -> tuple[Database, RecoveryReport]:
    """Rebuild the database a durability directory describes.

    ``warm_plans`` are executed against the checkpointed state before
    replay, so their cached results ride the delta-maintenance path
    through the replayed inserts and come out warm *and* current.
    ``fsync`` is accepted for symmetry with the manager and unused
    (recovery only reads).
    """
    del fsync  # recovery is read-only; kept for call-site symmetry
    directory = os.fspath(directory)
    report = RecoveryReport(directory=directory)
    root = Span("recover")
    checkpoint_span = Span("checkpoint")
    scan_span = Span("scan")
    replay_span = Span("replay")
    root.children = [checkpoint_span, scan_span, replay_span]

    loaded = load_checkpoint(directory)
    if loaded is None:
        db = Database()
        checkpoint_lsn = 0
    else:
        db, checkpoint_lsn = loaded
        report.checkpoint_loaded = True
        counter("robustness.wal.checkpoint_loaded")
    report.checkpoint_lsn = checkpoint_lsn
    checkpoint_span.rows = len(db.relations)
    checkpoint_span.meta = {"lsn": checkpoint_lsn}

    maintained_before = db.plan_cache.maintained
    for plan in warm_plans:
        db.run(plan)

    wal_path = os.path.join(directory, WAL_NAME)
    if os.path.exists(wal_path):
        with open(wal_path, "rb") as handle:
            data = handle.read()
    else:
        data = b""
    scan = scan_wal(data)
    committed, uncommitted = committed_records(scan.records)
    report.records_scanned = len(scan.records)
    report.torn_tail = scan.torn_tail
    report.corrupt = scan.corrupt
    report.scan_error = scan.error
    report.dropped_uncommitted = uncommitted
    scan_span.rows = len(scan.records)
    scan_span.meta = {
        "bytes": len(data),
        "clean_bytes": scan.clean_length,
        "committed": len(committed),
    }
    if scan.torn_tail:
        counter("robustness.wal.torn_tail_dropped")
    if scan.corrupt:
        counter("robustness.wal.corrupt_record_dropped")
    if uncommitted:
        counter("robustness.wal.uncommitted_dropped", uncommitted)

    replayed, skipped = replay_records(
        db, committed, after_lsn=checkpoint_lsn
    )
    report.replayed = replayed
    report.skipped_stale = skipped
    if replayed:
        counter("robustness.wal.records_replayed", replayed)
    if skipped:
        counter("robustness.wal.records_skipped_stale", skipped)
    counter("robustness.wal.recoveries")
    report.generation = db._generation
    report.rewarmed = db.plan_cache.maintained - maintained_before
    replay_span.rows = replayed
    replay_span.meta = {
        "skipped_stale": skipped,
        "rewarmed": report.rewarmed,
    }
    root.meta = {"generation": db._generation}
    root.rows = replayed
    report.root = root
    if tracer is not None:
        tracer.record(root)
    return db, report
