"""The write-ahead log: append-only JSONL of mutation records.

Record format — one JSON object per line, sorted keys, no whitespace::

    {"crc": C, "gen": G, "kind": K, "lsn": N, "payload": {...}}

* ``lsn`` — monotonic log sequence number, unique per record, never
  reused across checkpoints (so a stale WAL left by a crash between
  checkpoint publication and log reset is filtered by lsn, not guessed
  at);
* ``kind`` — ``"create"`` / ``"insert"`` / ``"replace"`` for data
  records, ``"commit"`` for the marker that makes a data record
  durable (``payload = {"of": lsn}``);
* ``gen`` — the database generation the mutation produces when
  applied, so replay can verify it rebuilt the *exact* state
  (generation-derived memos included);
* ``crc`` — ``zlib.crc32`` over the canonical JSON of the other four
  fields.  A record whose bytes changed after it was written — torn
  write, bit rot, truncation mid-line — fails the check and ends the
  readable prefix.

The durability contract lives in :func:`scan_wal`'s shape: decoding
stops at the *first* bad line (torn tail, CRC mismatch, malformed
JSON) and everything from there on is dropped.  Combined with the
commit-marker rule — a data record counts only once its commit marker
is also inside the readable prefix — recovery of *any* byte prefix of
a WAL yields a prefix of the committed mutation sequence, never a
partial mutation and never a reordering.  ``tests/durability``
exercises literally every byte offset.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "RECORD_KINDS",
    "WAL_NAME",
    "WalError",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "committed_records",
    "decode_line",
    "encode_record",
    "scan_wal",
]

#: File name of the log inside a durability directory.
WAL_NAME = "wal.jsonl"

#: Data record kinds (mirroring the Database mutation surface) plus
#: the commit marker.
RECORD_KINDS = ("create", "insert", "replace", "commit")


class WalError(Exception):
    """A WAL record that cannot be trusted: malformed, truncated, or
    failing its CRC.  Scanning treats the first such record as the end
    of the readable prefix."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    kind: str
    generation: int
    payload: dict


def _record_crc(lsn: int, kind: str, generation: int, payload: dict) -> int:
    canonical = json.dumps(
        {"gen": generation, "kind": kind, "lsn": lsn, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return zlib.crc32(canonical.encode("utf-8"))


def encode_record(record: WalRecord) -> bytes:
    """Encode a record as one newline-terminated JSONL line."""
    crc = _record_crc(
        record.lsn, record.kind, record.generation, record.payload
    )
    line = json.dumps(
        {
            "crc": crc,
            "gen": record.generation,
            "kind": record.kind,
            "lsn": record.lsn,
            "payload": record.payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return line.encode("utf-8") + b"\n"


def decode_line(line: bytes) -> WalRecord:
    """Decode one line (without its newline); raise :class:`WalError`
    on anything that cannot be trusted byte-for-byte."""
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalError(f"undecodable record: {exc}") from None
    if not isinstance(data, dict):
        raise WalError(f"record is not an object: {data!r}")
    try:
        crc = data["crc"]
        generation = data["gen"]
        kind = data["kind"]
        lsn = data["lsn"]
        payload = data["payload"]
    except KeyError as exc:
        raise WalError(f"record missing field {exc}") from None
    if kind not in RECORD_KINDS:
        raise WalError(f"unknown record kind {kind!r}")
    for field_name, value in (("lsn", lsn), ("gen", generation)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise WalError(f"record {field_name} must be an int: {value!r}")
    if not isinstance(payload, dict):
        raise WalError(f"record payload must be an object: {payload!r}")
    if _record_crc(lsn, kind, generation, payload) != crc:
        raise WalError(f"crc mismatch at lsn {lsn}")
    return WalRecord(lsn, kind, generation, payload)


@dataclass(frozen=True)
class WalScan:
    """The readable prefix of a WAL byte string.

    ``clean_length`` is the byte length of the decoded prefix
    (including each line's newline) — reopening a log for append
    truncates to it, so new records never concatenate onto torn bytes.
    ``torn_tail`` marks an unterminated final line (a write that never
    finished); ``corrupt`` marks a complete line that failed to decode
    (bit flip, CRC mismatch).  Both end the scan.
    """

    records: tuple[WalRecord, ...]
    clean_length: int
    torn_tail: bool = False
    corrupt: bool = False
    error: Optional[str] = None


def scan_wal(data: bytes) -> WalScan:
    """Decode the longest trustworthy prefix of ``data``.

    Stops at the first torn (unterminated) or corrupt line; records
    after a bad one are never returned even if they would decode —
    trusting bytes beyond a corruption would let recovery skip a
    mutation and violate the prefix guarantee.
    """
    records: list[WalRecord] = []
    offset = 0
    torn = corrupt = False
    error: Optional[str] = None
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            torn = True
            error = f"torn tail: {len(data) - offset} unterminated byte(s)"
            break
        try:
            records.append(decode_line(data[offset:newline]))
        except WalError as exc:
            corrupt = True
            error = str(exc)
            break
        offset = newline + 1
    return WalScan(
        tuple(records), offset, torn_tail=torn, corrupt=corrupt, error=error
    )


def committed_records(
    records: tuple[WalRecord, ...]
) -> tuple[list[WalRecord], int]:
    """Data records whose commit marker is inside the scanned prefix.

    Returns ``(committed, uncommitted_count)``.  Committed records are
    ordered by their commit markers, which for this engine's
    single-writer log is also data-record order — a record logged but
    never committed (crash between the data append and the commit
    append) is simply dropped, exactly the atomicity the caller was
    promised when the mutation raised instead of returning.
    """
    pending: dict[int, WalRecord] = {}
    committed: list[WalRecord] = []
    for record in records:
        if record.kind == "commit":
            target = pending.pop(record.payload.get("of"), None)
            if target is not None:
                committed.append(target)
        else:
            pending[record.lsn] = record
    return committed, len(pending)


class WriteAheadLog:
    """Append-side of the log: one file handle, monotonic LSNs.

    ``fsync=False`` trades durability-against-power-loss for speed
    (tests and benchmarks); the write ordering and the record format
    are identical, so every crash-consistency property still holds.

    ``fault_injector`` (a
    :class:`~repro.robustness.faults.FaultInjector`) arms the
    ``durability`` site: appends may be torn mid-record or corrupted
    in place (:meth:`FaultInjector.tamper_wal_line`), and ``sync`` may
    fail.  All injection happens *below* the commit protocol, so the
    recovery guarantees are exercised, not bypassed.
    """

    def __init__(
        self, path, *, fsync: bool = True, fault_injector=None
    ) -> None:
        self.path = os.fspath(path)
        self.fsync_enabled = fsync
        self.fault_injector = fault_injector
        next_lsn = 1
        if os.path.exists(self.path):
            with open(self.path, "rb") as handle:
                data = handle.read()
            scan = scan_wal(data)
            if scan.clean_length < len(data):
                # Drop the torn/corrupt tail *before* appending: new
                # records concatenated onto torn bytes would be
                # unreadable (the scan stops at the bad line), turning
                # one lost uncommitted record into lost committed ones.
                with open(self.path, "r+b") as handle:
                    handle.truncate(scan.clean_length)
            if scan.records:
                next_lsn = max(r.lsn for r in scan.records) + 1
        self._next_lsn = next_lsn
        self._handle = open(self.path, "ab")

    @property
    def last_lsn(self) -> int:
        """The highest LSN ever handed out (0 before the first)."""
        return self._next_lsn - 1

    def append(self, kind: str, payload: dict, generation: int) -> int:
        """Append one record; returns its LSN.

        Under an armed ``durability`` fault site the written bytes may
        be a torn prefix (the injector then raises — the model of a
        crash mid-append) or a silently bit-flipped full record (the
        model of media corruption; the CRC catches it at scan time).
        """
        lsn = self._next_lsn
        line = encode_record(WalRecord(lsn, kind, generation, payload))
        crash_label = None
        if self.fault_injector is not None:
            line, crash_label = self.fault_injector.tamper_wal_line(line)
        self._next_lsn += 1
        self._handle.write(line)
        if crash_label is not None:
            from ..robustness.faults import InjectedFault

            self._handle.flush()
            raise InjectedFault("durability", crash_label)
        return lsn

    def commit(self, lsn: int, generation: int) -> int:
        """Append the commit marker for ``lsn``."""
        return self.append("commit", {"of": lsn}, generation)

    def sync(self) -> None:
        """Flush (and fsync, unless disabled) the log file.

        The armed ``durability`` site can fail the sync — callers must
        abort the mutation, leaving an uncommitted (hence recovery-
        invisible) record behind.
        """
        if self.fault_injector is not None:
            self.fault_injector.maybe_raise("durability", "fsync")
        self._handle.flush()
        if self.fsync_enabled:
            os.fsync(self._handle.fileno())

    def reset(self) -> None:
        """Empty the log (after a durable checkpoint).  LSNs stay
        monotonic across resets; the checkpoint's recorded LSN is the
        filter, not file identity."""
        self._handle.close()
        with open(self.path, "wb"):
            pass
        self._handle = open(self.path, "ab")

    def close(self) -> None:
        self._handle.close()

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.path!r}, next_lsn={self._next_lsn})"
