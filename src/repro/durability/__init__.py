"""Write-ahead-logged durability: WAL + checkpoints + crash recovery.

The mutation surface of :class:`~repro.engine.database.Database`
(``create``, ``insert``, ``db[name] = ...``) logs each mutation to an
append-only JSONL WAL *before* applying it (data record, fsync, commit
marker, fsync, apply); :func:`recover` rebuilds the database from the
last checkpoint plus the committed log suffix, dropping torn tails and
anything past a CRC failure, so any crash point yields a prefix of the
committed mutation sequence.  See ``docs/ROBUSTNESS.md`` ("Durability
and crash recovery") and ``tests/durability``.

Quick start::

    from repro.durability import DurabilityManager, recover

    db.durability = DurabilityManager("state/", checkpoint_every=100)
    db.insert("r", rows)          # logged, committed, then applied
    ...
    db2, report = recover("state/")   # after a crash
"""

from .checkpoint import (
    CHECKPOINT_NAME,
    load_checkpoint,
    write_checkpoint,
)
from .manager import DurabilityManager
from .recovery import RecoveryReport, apply_record, recover, replay_records
from .wal import (
    RECORD_KINDS,
    WAL_NAME,
    WalError,
    WalRecord,
    WalScan,
    WriteAheadLog,
    committed_records,
    decode_line,
    encode_record,
    scan_wal,
)

__all__ = [
    "CHECKPOINT_NAME",
    "DurabilityManager",
    "RECORD_KINDS",
    "RecoveryReport",
    "WAL_NAME",
    "WalError",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "apply_record",
    "committed_records",
    "decode_line",
    "encode_record",
    "load_checkpoint",
    "recover",
    "replay_records",
    "scan_wal",
    "write_checkpoint",
]
