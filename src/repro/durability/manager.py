"""The :class:`DurabilityManager`: the Database's logging hook.

Attach one to a database and every mutation becomes crash-durable::

    db.durability = DurabilityManager("state/")

The write protocol, per mutation (WAL is the source of truth):

1. append the data record, ``sync`` — the mutation's bytes are on disk
   but *not yet committed*: a crash here loses nothing the caller was
   promised;
2. append the commit marker, ``sync`` — the mutation is now durable:
   recovery will replay it even if the process dies this instant;
3. apply in memory (the Database method body runs).

A failure in step 1 or 2 (a real I/O error or an injected ``fsync``
fault) aborts *before* any in-memory state changed: the caller sees
the exception, the half-logged record stays uncommitted, and recovery
ignores it — the mutation atomically never happened.  A crash between
step 2 and step 3 (the injected ``apply`` fault) is the opposite
promise: the log already committed, so recovery replays the mutation
the in-memory process never finished.  Both directions are
differentially checked by the ``recovery`` chaos scenario.

Validation stays ahead of logging: the Database only calls the
``log_*`` hooks after its own checks passed (arity, declared keys), so
a committed record is always replayable.

Checkpoints: ``checkpoint_every=N`` publishes a snapshot after every
``N`` applied mutations and resets the log; ``checkpoint(db)`` does it
on demand.  Replay cost is bounded by the checkpoint interval.
"""

from __future__ import annotations

import os
from typing import Optional

from ..engine.serialize import value_to_json
from ..obs.metrics import counter
from .checkpoint import write_checkpoint
from .wal import WAL_NAME, WriteAheadLog

__all__ = ["DurabilityManager"]


class DurabilityManager:
    """Write-ahead logging + checkpoint policy for one directory."""

    def __init__(
        self,
        directory,
        *,
        fsync: bool = True,
        checkpoint_every: Optional[int] = None,
        fault_injector=None,
    ) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        self.wal = WriteAheadLog(
            os.path.join(self.directory, WAL_NAME),
            fsync=fsync,
            fault_injector=fault_injector,
        )
        self._since_checkpoint = 0

    # ------------------------------------------------------------------
    # Fault injection (the ``durability`` site lives on the WAL).

    @property
    def fault_injector(self):
        return self.wal.fault_injector

    @fault_injector.setter
    def fault_injector(self, injector) -> None:
        self.wal.fault_injector = injector

    # ------------------------------------------------------------------
    # Logging hooks (called by Database, after validation, before apply).

    def _log(self, kind: str, payload: dict, generation: int) -> int:
        lsn = self.wal.append(kind, payload, generation)
        self.wal.sync()
        self.wal.commit(lsn, generation)
        self.wal.sync()
        counter("robustness.wal.records_committed")
        injector = self.wal.fault_injector
        if injector is not None:
            # The crash-between-commit-and-apply window: the record is
            # durable, the in-memory apply never happens.  Recovery
            # must replay it.
            injector.maybe_raise("durability", f"apply:{kind}")
        return lsn

    def log_create(
        self, name: str, arity: int, keys, shared_keys, generation: int
    ) -> int:
        payload = {
            "name": name,
            "arity": arity,
            "keys": [list(k) for k in keys],
            "shared_keys": [
                {"columns": list(cols), "group": group}
                for cols, group in shared_keys.items()
            ],
        }
        return self._log("create", payload, generation)

    def log_insert(self, name: str, rows, generation: int) -> int:
        """Log the *effective* insert delta (rows not already present);
        the Database passes exactly what it is about to apply, so
        replay inserts the identical delta and lands on the identical
        generation."""
        payload = {
            "name": name,
            "rows": [value_to_json(t) for t in rows],
        }
        return self._log("insert", payload, generation)

    def log_replace(self, name: str, relation, generation: int) -> int:
        payload = {"name": name, "value": value_to_json(relation)}
        return self._log("replace", payload, generation)

    # ------------------------------------------------------------------
    # Checkpoint policy.

    def mutation_applied(self, db) -> None:
        """Called by the Database after a logged mutation took effect
        in memory; drives the ``checkpoint_every`` policy."""
        self._since_checkpoint += 1
        if (
            self.checkpoint_every
            and self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint(db)

    def checkpoint(self, db) -> str:
        """Publish a snapshot, then reset the log.

        The order matters: the snapshot lands (atomically) first, so a
        crash before the reset leaves a WAL whose records are all
        covered by the snapshot's LSN and skipped on replay.
        """
        path = write_checkpoint(self.directory, db, lsn=self.wal.last_lsn)
        self.wal.reset()
        self._since_checkpoint = 0
        counter("robustness.wal.checkpoints_written")
        return path

    def close(self) -> None:
        self.wal.close()

    def __repr__(self) -> str:
        return (
            f"DurabilityManager({self.directory!r}, "
            f"last_lsn={self.wal.last_lsn})"
        )
