"""Checkpoints: atomic snapshots bounding WAL replay.

A checkpoint is one JSON file (``checkpoint.json``) next to the WAL::

    {"format": 1, "lsn": L, "generation": G, "database": {...}}

``database`` reuses :func:`repro.engine.serialize.database_to_json` —
the same snapshot format ``save_database`` writes — and the file is
published with the same crash-safe idiom (same-directory temp file,
flush + fsync, ``os.replace``), so a crash mid-checkpoint leaves the
previous checkpoint intact, never a truncated one.

``lsn`` is the last log record the snapshot already contains: recovery
replays only committed records *past* it.  Publication order is
checkpoint first, log reset second; a crash between the two leaves a
stale WAL whose records all carry ``lsn <= L`` and are filtered out,
so the window is harmless by construction.

``generation`` pins the database's mutation counter.  Rebuilding a
snapshot replays inserts (each bumping the counter), so without the
recorded value a recovered database would disagree with the original
on every generation-derived memo; :func:`load_checkpoint` restores it
explicitly.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..engine.database import Database
from ..engine.serialize import (
    SerializeError,
    atomic_write_text,
    database_from_json,
    database_to_json,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_NAME",
    "load_checkpoint",
    "write_checkpoint",
]

CHECKPOINT_NAME = "checkpoint.json"
CHECKPOINT_FORMAT = 1


def write_checkpoint(directory, db: Database, *, lsn: int) -> str:
    """Atomically publish a snapshot of ``db`` covering LSNs ``<= lsn``.

    Returns the checkpoint path.
    """
    path = os.path.join(os.fspath(directory), CHECKPOINT_NAME)
    payload = {
        "format": CHECKPOINT_FORMAT,
        "lsn": lsn,
        "generation": db._generation,
        "database": database_to_json(db),
    }
    atomic_write_text(path, json.dumps(payload, sort_keys=True, indent=1))
    return path


def load_checkpoint(directory) -> Optional[tuple[Database, int]]:
    """Rebuild the checkpointed database, or ``None`` when no
    checkpoint exists.  Returns ``(db, lsn)`` with the database's
    generation restored to the snapshot's recorded value.

    Malformed checkpoint bytes raise
    :class:`~repro.engine.serialize.SerializeError` — unlike a torn
    WAL tail, a broken checkpoint is not a survivable crash artifact
    (publication is atomic), so it is surfaced, not skipped.
    """
    path = os.path.join(os.fspath(directory), CHECKPOINT_NAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SerializeError(f"malformed checkpoint {path}: {exc}") from None
    if not isinstance(payload, dict) or "database" not in payload:
        raise SerializeError(f"malformed checkpoint {path}: not a snapshot")
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise SerializeError(
            f"unsupported checkpoint format {payload.get('format')!r}"
        )
    lsn = payload.get("lsn")
    generation = payload.get("generation")
    for name, value in (("lsn", lsn), ("generation", generation)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise SerializeError(f"checkpoint {name} must be an int")
    db = database_from_json(payload["database"])
    db._restore_generation(generation)
    return db, lsn
