"""Derived relational operators: division, semijoin, antijoin.

Classical derived operators, each expressible in the algebra fragments
Section 3 classifies — so their genericity profiles follow from the
closure results and are checked in the catalog experiments:

* **semijoin** ``R |>< S``: keeps the R-tuples with a join partner.
  Equality is used but *eliminated from the output* (no S column
  survives), so like sigma-hat it is strong-fully generic and
  rel-generic from the injective class down.
* **antijoin** ``R |>< not S``: complement of the semijoin inside R;
  composed of strong-closed operations, same profile.
* **division** ``R / S`` (for binary R, unary S): the tuples ``a`` with
  ``(a, b) in R`` for *every* ``b in S``.  Expressible as
  ``pi_1(R) - pi_1((pi_1(R) x S) - R)`` — again strong-side only.
"""

from __future__ import annotations

from ..types.ast import Product, SetType, TypeVar
from ..types.values import CVSet, Tup, Value
from .query import Query

__all__ = ["semijoin", "antijoin", "division"]


def semijoin(on: int = 0) -> Query:
    """``R |>< S`` joining R's column ``on`` with unary S."""
    x, y = TypeVar("X"), TypeVar("Y")

    def fn(pair: Value) -> Value:
        r, s = pair
        keys = {t[0] for t in s}
        return CVSet(t for t in r if t[on] in keys)

    left = Product((x, y)) if on == 1 else Product((x, y))
    key_var = y if on == 1 else x
    return Query(
        name=f"semijoin[{on + 1}]",
        fn=fn,
        input_type=Product((SetType(left), SetType(Product((key_var,))))),
        output_type=SetType(left),
        uses_equality=True,
        notes="equality used, not shown: sigma-hat profile",
    )


def antijoin(on: int = 0) -> Query:
    """``R`` minus its semijoin with S."""
    x, y = TypeVar("X"), TypeVar("Y")

    def fn(pair: Value) -> Value:
        r, s = pair
        keys = {t[0] for t in s}
        return CVSet(t for t in r if t[on] not in keys)

    left = Product((x, y))
    key_var = y if on == 1 else x
    return Query(
        name=f"antijoin[{on + 1}]",
        fn=fn,
        input_type=Product((SetType(left), SetType(Product((key_var,))))),
        output_type=SetType(left),
        uses_equality=True,
    )


def division() -> Query:
    """``R / S`` for binary R and unary S.

    Semantically: ``{a | forall b in S. (a, b) in R}``; for empty S
    every first-column value qualifies (the standard convention via the
    algebraic definition)."""
    x, y = TypeVar("X"), TypeVar("Y")

    def fn(pair: Value) -> Value:
        r, s = pair
        required = {t[0] for t in s}
        by_first: dict[Value, set] = {}
        for t in r:
            by_first.setdefault(t[0], set()).add(t[1])
        return CVSet(
            Tup((a,))
            for a, seconds in by_first.items()
            if required <= seconds
        )

    return Query(
        name="division",
        fn=fn,
        input_type=Product(
            (SetType(Product((x, y))), SetType(Product((y,))))
        ),
        output_type=SetType(Product((x,))),
        uses_equality=True,
        notes="= pi1(R) - pi1((pi1(R) x S) - R); strong-side profile",
    )
