"""The (flat) relational operator catalog classified by the paper.

Section 3 classifies relational algebra / calculus operations by their
genericity.  This module implements each operation the paper mentions as
a typed :class:`~repro.algebra.query.Query` so the genericity machinery
can test it:

* the fully generic core: projection, cross product, union, identity,
  the empty query Ø̂ (Prop 3.1 / Cor 3.2);
* equality-using operations: selection ``sigma $i=$j``, intersection,
  difference, natural join, ``R o R`` composition (Example 2.2's Q1);
* Chandra's variant ``sigma-hat`` which uses equality in the query but
  eliminates it from the output (Prop 3.6);
* constant-using operations: ``sigma $i=c``, insert-constant (Section
  2.4/4.3);
* domain-sensitive operations: active domain, `eq_adom`` (Prop 3.5),
  complement (Section 3.3), ``even`` (Lemma 2.12).

Relations are sets of tuples: ``CVSet`` of ``Tup``.  A *database* input
for a binary operator is the pair ``Tup((R, S))``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Optional, Sequence

from ..types.ast import (
    BOOL,
    BaseType,
    Product,
    SetType,
    Type,
    TypeVar,
)
from ..types.values import CVSet, Tup, Value, atoms_of
from .query import Query, constant_query

__all__ = [
    "projection",
    "projection_out",
    "select_eq",
    "hat_select_eq",
    "select_const",
    "select_pred",
    "union_op",
    "intersection_op",
    "difference_op",
    "cross_op",
    "self_cross",
    "self_compose",
    "natural_join",
    "map_query",
    "eq_adom",
    "even_query",
    "identity_query",
    "empty_query",
    "active_domain",
    "adom_complement",
    "full_complement",
    "ins_const",
    "rename_query",
    "FULLY_GENERIC_CATALOG",
    "EQUALITY_CATALOG",
]


def _vars(arity: int) -> tuple[TypeVar, ...]:
    return tuple(TypeVar(f"X{i + 1}") for i in range(arity))


def _rel_type(arity: int) -> SetType:
    return SetType(Product(_vars(arity)))


def _single_var_rel(arity: int, var: str = "X") -> SetType:
    """Relation type over a single repeated variable: ``{X * ... * X}``."""
    return SetType(Product(tuple(TypeVar(var) for _ in range(arity))))


def projection(indices: Sequence[int], arity: int) -> Query:
    """``Pi_{i1,...,ik}`` — fully generic for both modes (Prop 3.1)."""
    indices = tuple(indices)
    all_vars = _vars(arity)

    def fn(r: Value) -> Value:
        return CVSet(t.project(indices) for t in r)

    return Query(
        name=f"pi[{','.join(str(i + 1) for i in indices)}]",
        fn=fn,
        input_type=SetType(Product(all_vars)),
        output_type=SetType(Product(tuple(all_vars[i] for i in indices))),
    )


def projection_out(j: int, arity: int) -> Query:
    """Projection *out of* column ``j`` — the ``pi_{\\hat j}`` of Prop 3.6."""
    keep = [i for i in range(arity) if i != j]
    q = projection(keep, arity)
    q.name = f"pi[-{j + 1}]"
    return q


def select_eq(i: int, j: int, arity: int) -> Query:
    """``sigma_{$i=$j}`` — keeps tuples whose i-th and j-th components
    are equal.  Uses equality *and shows it in the output* (the columns
    stay), so it is not strong-fully generic (Section 3.2)."""
    variables = list(_vars(arity))
    variables[j] = variables[i]  # same value constraint ties the type vars

    def fn(r: Value) -> Value:
        return CVSet(t for t in r if t[i] == t[j])

    return Query(
        name=f"sigma[{i + 1}={j + 1}]",
        fn=fn,
        input_type=SetType(Product(tuple(variables))),
        output_type=SetType(Product(tuple(variables))),
        uses_equality=True,
    )


def hat_select_eq(i: int, j: int, arity: int) -> Query:
    """Chandra's ``sigma-hat``: select on ``$i=$j`` then project column
    ``j`` *out*, eliminating one of the equal occurrences (Prop 3.6).
    Strong-fully generic, unlike plain ``sigma``."""
    keep = [k for k in range(arity) if k != j]
    variables = list(_vars(arity))
    variables[j] = variables[i]

    def fn(r: Value) -> Value:
        return CVSet(t.project(keep) for t in r if t[i] == t[j])

    return Query(
        name=f"sigma-hat[{i + 1}={j + 1}]",
        fn=fn,
        input_type=SetType(Product(tuple(variables))),
        output_type=SetType(Product(tuple(variables[k] for k in keep))),
        uses_equality=True,
        notes="equality used in the query but eliminated from the output",
    )


def select_const(i: int, c: Value, arity: int, base: BaseType) -> Query:
    """``sigma_{$i=c}`` — the paper's Q5 with c=7.  Generic only w.r.t.
    mappings that strictly preserve ``c`` (Section 2.4.1)."""
    component_types: list[Type] = [TypeVar(f"X{k + 1}") for k in range(arity)]
    component_types[i] = base

    def fn(r: Value) -> Value:
        return CVSet(t for t in r if t[i] == c)

    t = SetType(Product(tuple(component_types)))
    return Query(
        name=f"sigma[{i + 1}={c!r}]",
        fn=fn,
        input_type=t,
        output_type=t,
        uses_equality=True,
        notes=f"mentions constant {c!r}",
    )


def select_pred(
    predicate: Callable[[Value], bool],
    name: str,
    element_type: Type,
) -> Query:
    """``sigma_p`` over set elements, p applied to the whole element.

    Generic w.r.t. mappings preserving ``p`` (Section 4.3)."""

    def fn(r: Value) -> Value:
        return CVSet(x for x in r if predicate(x))

    t = SetType(element_type)
    return Query(name=f"sigma[{name}]", fn=fn, input_type=t, output_type=t)


def union_op() -> Query:
    """Binary union on a pair of relations — fully generic (Prop 3.1)."""
    x = TypeVar("X")

    def fn(pair: Value) -> Value:
        r, s = pair
        return r.union(s)

    return Query(
        name="union",
        fn=fn,
        input_type=Product((SetType(x), SetType(x))),
        output_type=SetType(x),
    )


def intersection_op() -> Query:
    """Binary intersection — uses equality; strong-fully generic but not
    rel-fully generic (Props 3.4, 3.6)."""
    x = TypeVar("X")

    def fn(pair: Value) -> Value:
        r, s = pair
        return r.intersection(s)

    return Query(
        name="intersect",
        fn=fn,
        input_type=Product((SetType(x), SetType(x))),
        output_type=SetType(x),
        uses_equality=True,
    )


def difference_op() -> Query:
    """Binary difference — same genericity profile as intersection."""
    x = TypeVar("X")

    def fn(pair: Value) -> Value:
        r, s = pair
        return r.difference(s)

    return Query(
        name="difference",
        fn=fn,
        input_type=Product((SetType(x), SetType(x))),
        output_type=SetType(x),
        uses_equality=True,
    )


def cross_op() -> Query:
    """Binary cross product of unary element sets: {X} x {Y} -> {X*Y}."""
    x, y = TypeVar("X"), TypeVar("Y")

    def fn(pair: Value) -> Value:
        r, s = pair
        return CVSet(Tup((a, b)) for a in r for b in s)

    return Query(
        name="cross",
        fn=fn,
        input_type=Product((SetType(x), SetType(y))),
        output_type=SetType(Product((x, y))),
    )


def self_cross() -> Query:
    """``Q2 = R x R`` of Example 2.2 — invariant under *all* mappings."""
    x = TypeVar("X")

    def fn(r: Value) -> Value:
        return CVSet(Tup((a, b)) for a in r for b in r)

    return Query(
        name="RxR",
        fn=fn,
        input_type=SetType(x),
        output_type=SetType(Product((x, x))),
    )


def self_compose() -> Query:
    """``Q1 = pi_{$1,$3}(R |x| R)``, i.e. relational composition R o R
    (Example 2.2).  The implicit join uses equality."""
    x = TypeVar("X")

    def fn(r: Value) -> Value:
        by_first: dict[Value, set] = {}
        for t in r:
            by_first.setdefault(t[0], set()).add(t[1])
        out = set()
        for t in r:
            for c in by_first.get(t[1], ()):
                out.add(Tup((t[0], c)))
        return CVSet(out)

    return Query(
        name="RoR",
        fn=fn,
        input_type=SetType(Product((x, x))),
        output_type=SetType(Product((x, x))),
        uses_equality=True,
    )


def natural_join(arity_left: int, arity_right: int, on: Sequence[tuple[int, int]]) -> Query:
    """Equi-join of two relations on column pairs ``on``; equality-using."""
    on = tuple(on)

    def fn(pair: Value) -> Value:
        r, s = pair
        out = set()
        for t in r:
            for u in s:
                if all(t[i] == u[j] for i, j in on):
                    out.add(Tup(tuple(t) + tuple(u)))
        return CVSet(out)

    left_vars = tuple(TypeVar(f"X{i + 1}") for i in range(arity_left))
    right_vars = list(TypeVar(f"Y{i + 1}") for i in range(arity_right))
    for i, j in on:
        right_vars[j] = left_vars[i]
    return Query(
        name=f"join[{on}]",
        fn=fn,
        input_type=Product(
            (SetType(Product(left_vars)), SetType(Product(tuple(right_vars))))
        ),
        output_type=SetType(Product(left_vars + tuple(right_vars))),
        uses_equality=True,
    )


def map_query(f: Callable[[Value], Value], name: str, element_in: Type, element_out: Type) -> Query:
    """``map(f)`` over a set — the closure constructor of Prop 3.1."""

    def fn(r: Value) -> Value:
        return CVSet(f(x) for x in r)

    return Query(
        name=f"map({name})",
        fn=fn,
        input_type=SetType(element_in),
        output_type=SetType(element_out),
    )


def eq_adom() -> Query:
    """``eq_adom(d)`` — the equality relation over the active domain
    (Prop 3.5: rel-fully generic, *not* strong-fully generic)."""
    x = TypeVar("X")

    def fn(r: Value) -> Value:
        adom = set()
        for t in r:
            adom |= set(atoms_of(t))
        return CVSet(Tup((a, a)) for a in adom)

    return Query(
        name="eq_adom",
        fn=fn,
        input_type=SetType(x),
        output_type=SetType(Product((x, x))),
        uses_equality=True,
        notes="shows equality in the output without testing it",
    )


def even_query() -> Query:
    """``even`` — true iff the input set has even cardinality (Lemma
    2.12: not strictly C-generic for any finite C)."""
    x = TypeVar("X")

    def fn(r: Value) -> Value:
        return len(r) % 2 == 0

    return Query(
        name="even",
        fn=fn,
        input_type=SetType(x),
        output_type=BOOL,
        uses_equality=True,
        notes="counts distinct elements, hence uses equality implicitly",
    )


def identity_query(t: Optional[Type] = None) -> Query:
    """``Id`` — fully generic for both modes (Prop 3.1)."""
    t = t if t is not None else TypeVar("X")
    return Query(name="id", fn=lambda v: v, input_type=t, output_type=t)


def empty_query(t: Optional[Type] = None) -> Query:
    """The paper's Ø̂, returning the empty relation on any input."""
    t = t if t is not None else SetType(TypeVar("X"))
    return constant_query("empty", CVSet(), t, SetType(TypeVar("Y")))


def active_domain(arity: int) -> Query:
    """``adom`` — all atoms appearing in the relation, as a unary set."""

    def fn(r: Value) -> Value:
        out = set()
        for t in r:
            out |= set(atoms_of(t))
        return CVSet(out)

    return Query(
        name="adom",
        fn=fn,
        input_type=_single_var_rel(arity),
        output_type=SetType(TypeVar("X")),
        uses_equality=True,
    )


def adom_complement(arity: int) -> Query:
    """Complement w.r.t. the active domain: ``adom^arity - R``.

    Prop 3.6 notes strong classes are closed under this complement."""

    def fn(r: Value) -> Value:
        adom = set()
        for t in r:
            adom |= set(atoms_of(t))
        universe = {Tup(c) for c in itertools.product(sorted(adom, key=repr), repeat=arity)}
        return CVSet(universe - set(r))

    t = _single_var_rel(arity)
    return Query(
        name="adom_complement",
        fn=fn,
        input_type=t,
        output_type=t,
        uses_equality=True,
    )


def full_complement(universe: Iterable[Value], arity: int) -> Query:
    """Complement w.r.t. an explicit finite full domain (Section 3.3).

    ``{t | not R(t)}`` — generic only w.r.t. total *and* surjective
    mappings (Prop 3.7)."""
    universe = list(universe)

    def fn(r: Value) -> Value:
        all_tuples = {Tup(c) for c in itertools.product(universe, repeat=arity)}
        return CVSet(all_tuples - set(r))

    t = _single_var_rel(arity)
    return Query(
        name="complement",
        fn=fn,
        input_type=t,
        output_type=t,
        uses_equality=True,
        notes="full-domain semantics; domain dependent",
    )


def ins_const(c: Value, base: BaseType) -> Query:
    """``ins_c(R) = R union {c}`` (Section 4.3) — generic w.r.t. mappings
    that (regularly) preserve ``c``."""

    def fn(r: Value) -> Value:
        return r.add(c)

    t = SetType(base)
    return Query(
        name=f"ins[{c!r}]",
        fn=fn,
        input_type=t,
        output_type=t,
        notes=f"mentions constant {c!r}; needs only regular preservation",
    )


def rename_query(permutation: Sequence[int], arity: int) -> Query:
    """Column permutation ``rho`` — fully generic."""
    permutation = tuple(permutation)
    q = projection(permutation, arity)
    q.name = f"rho[{permutation}]"
    return q


#: Operations Prop 3.1/Cor 3.2 certify as fully generic for both modes.
FULLY_GENERIC_CATALOG: tuple[Callable[[], Query], ...] = (
    lambda: projection((0,), 2),
    lambda: projection((1, 0), 2),
    union_op,
    cross_op,
    self_cross,
    identity_query,
    empty_query,
)

#: Equality-using operations, each with a distinct genericity profile.
EQUALITY_CATALOG: tuple[Callable[[], Query], ...] = (
    lambda: select_eq(0, 1, 2),
    lambda: hat_select_eq(0, 1, 2),
    intersection_op,
    difference_op,
    self_compose,
    eq_adom,
    even_query,
)
