"""Nested-relational / complex-value operations.

The paper's Section 4 works over nested sets; these operators supply the
nested side of the catalog: powerset (the language of [1, 4, 5] the
paper says its L-to-S types cover), nest/unnest, set-map, singleton and
flatten (the monad structure of the monadic algebra of [5]), plus the
``nest parity`` query of Proposition 4.16 — the paper's example of a
query that is *fully generic but not parametric*.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

from ..types.ast import BOOL, Product, SetType, Type, TypeVar
from ..types.values import CVSet, Tup, Value, is_atom, value_depth
from .query import Query

__all__ = [
    "powerset",
    "nest",
    "unnest",
    "singleton",
    "flatten",
    "set_map",
    "nest_parity",
    "deep_flatten",
]


def powerset() -> Query:
    """``powerset(R)`` — all subsets of R, as a set of sets.

    Polymorphic type ``{X} -> {{X}}``; fully generic (it is definable in
    the quantifier-only fragment of the monadic algebra)."""
    x = TypeVar("X")

    def fn(r: Value) -> Value:
        items = sorted(r, key=repr)
        return CVSet(
            CVSet(combo)
            for size in range(len(items) + 1)
            for combo in itertools.combinations(items, size)
        )

    return Query(
        name="powerset",
        fn=fn,
        input_type=SetType(x),
        output_type=SetType(SetType(x)),
    )


def nest(group_by: Sequence[int], collect: Sequence[int], arity: int) -> Query:
    """``nu`` — group tuples by the ``group_by`` columns, collecting the
    ``collect`` columns into an inner set.  Uses equality on the grouped
    columns."""
    group_by = tuple(group_by)
    collect = tuple(collect)
    variables = tuple(TypeVar(f"X{i + 1}") for i in range(arity))

    def fn(r: Value) -> Value:
        groups: dict[Value, set] = {}
        for t in r:
            key = t.project(group_by)
            groups.setdefault(key, set()).add(t.project(collect))
        return CVSet(
            Tup(tuple(key) + (CVSet(members),)) for key, members in groups.items()
        )

    inner = Product(tuple(variables[i] for i in collect))
    outer = tuple(variables[i] for i in group_by) + (SetType(inner),)
    return Query(
        name=f"nest[{group_by}|{collect}]",
        fn=fn,
        input_type=SetType(Product(variables)),
        output_type=SetType(Product(outer)),
        uses_equality=True,
    )


def unnest(set_column: int, arity: int) -> Query:
    """``mu`` — flatten an inner set column back into tuples."""

    def fn(r: Value) -> Value:
        out = set()
        for t in r:
            inner = t[set_column]
            rest = tuple(t[i] for i in range(len(t)) if i != set_column)
            for member in inner:
                member_items = tuple(member) if isinstance(member, Tup) else (member,)
                out.add(Tup(rest + member_items))
        return CVSet(out)

    variables = tuple(TypeVar(f"X{i + 1}") for i in range(arity))
    inner_var = TypeVar("Y")
    input_components = list(variables)
    input_components[set_column] = SetType(inner_var)
    output_components = [v for i, v in enumerate(variables) if i != set_column]
    output_components.append(inner_var)
    return Query(
        name=f"unnest[{set_column}]",
        fn=fn,
        input_type=SetType(Product(tuple(input_components))),
        output_type=SetType(Product(tuple(output_components))),
    )


def singleton() -> Query:
    """``eta`` — the monad unit ``x |-> {x}``; fully generic."""
    x = TypeVar("X")
    return Query(
        name="singleton",
        fn=lambda v: CVSet((v,)),
        input_type=x,
        output_type=SetType(x),
    )


def flatten() -> Query:
    """``mu`` — the monad multiplication ``{{X}} -> {X}``; fully generic."""
    x = TypeVar("X")

    def fn(r: Value) -> Value:
        out = set()
        for inner in r:
            out |= set(inner)
        return CVSet(out)

    return Query(
        name="flatten",
        fn=fn,
        input_type=SetType(SetType(x)),
        output_type=SetType(x),
    )


def set_map(f: Callable[[Value], Value], name: str, elem_in: Type, elem_out: Type) -> Query:
    """``map(f)`` over sets of arbitrary element type."""

    def fn(r: Value) -> Value:
        return CVSet(f(x) for x in r)

    return Query(
        name=f"map({name})",
        fn=fn,
        input_type=SetType(elem_in),
        output_type=SetType(elem_out),
    )


def nest_parity() -> Query:
    """``np`` of Proposition 4.16: true iff the nesting depth is even.

    It inspects only the *structure* of the value, never the elements,
    so it is fully generic — yet it cannot be parametric at any type
    ``forall X. {^n X}^n -> bool`` because parametricity relates values
    of *different* structures."""

    def fn(v: Value) -> Value:
        return value_depth(v) % 2 == 0

    x = TypeVar("X")
    return Query(
        name="nest_parity",
        fn=fn,
        input_type=SetType(x),  # nominal; np is untyped/structural
        output_type=BOOL,
        notes="structural query: fully generic, not parametric (Prop 4.16)",
    )


def deep_flatten() -> Query:
    """Flatten arbitrarily nested sets to the set of their atoms.

    Another structure-inspecting (hence non-parametric) query, used in
    the genericity-vs-parametricity experiments."""

    def atoms(v: Value) -> set:
        if is_atom(v):
            return {v}
        out: set = set()
        for item in v:
            out |= atoms(item)
        return out

    x = TypeVar("X")
    return Query(
        name="deep_flatten",
        fn=lambda v: CVSet(atoms(v)),
        input_type=SetType(x),
        output_type=SetType(x),
    )
