"""Relational and nested algebra substrate (paper Section 3)."""

from .bags import (
    bag_map,
    bag_min_intersection,
    bag_monus,
    bag_of_set,
    bag_projection,
    bag_select_eq,
    bag_union,
    duplicate_elim,
)
from .derived_ops import antijoin, division, semijoin
from .calculus import (
    And,
    Atom,
    CalculusError,
    CalculusQuery,
    EqAtom,
    Exists,
    Formula,
    Or,
    restricted_fragment_ok,
)
from .fixpoint import inflationary_fixpoint, transitive_closure, while_query
from .nested import (
    deep_flatten,
    flatten,
    nest,
    nest_parity,
    powerset,
    set_map,
    singleton,
    unnest,
)
from .operators import (
    EQUALITY_CATALOG,
    FULLY_GENERIC_CATALOG,
    active_domain,
    adom_complement,
    cross_op,
    difference_op,
    eq_adom,
    even_query,
    empty_query,
    full_complement,
    hat_select_eq,
    identity_query,
    ins_const,
    intersection_op,
    map_query,
    natural_join,
    projection,
    projection_out,
    rename_query,
    select_const,
    select_eq,
    select_pred,
    self_compose,
    self_cross,
    union_op,
)
from .query import Query, compose, constant_query, pair_query

__all__ = [name for name in dir() if not name.startswith("_")]
