"""Queries as first-class typed objects.

The paper treats queries as functions from complex values to complex
values ("databases can be viewed as tuples of complex values", Section
2).  :class:`Query` packages the function with its *type expression* —
input and output types that may contain type variables, so that a query
"defined at all types" (Section 2.3, before Prop 2.11) carries its
polymorphic type, e.g. projection ``{X1 * X2} -> {X1}``.

Queries compose (Proposition 3.1 views operators like union as query
*constructors*); the combinators here are exactly the constructors whose
closure properties Section 3 classifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..types.ast import Product, Type, TypeVar, substitute
from ..types.values import Tup, Value

__all__ = ["Query", "compose", "pair_query", "constant_query"]


@dataclass
class Query:
    """A named, typed query.

    ``input_type`` / ``output_type`` may contain type variables; a query
    whose types share the same variables is *defined at all types* in
    the paper's sense and can be instantiated at any substitution.
    """

    name: str
    fn: Callable[[Value], Value]
    input_type: Type
    output_type: Type
    uses_equality: bool = False
    notes: str = ""

    def __call__(self, v: Value) -> Value:
        return self.fn(v)

    def defined_at_all_types(self) -> bool:
        """True iff the query's type is purely variable-leaved."""
        from ..types.ast import BaseType, subtypes

        def variable_leaved(t: Type) -> bool:
            return not any(isinstance(node, BaseType) for node in subtypes(t))

        return variable_leaved(self.input_type) and variable_leaved(self.output_type)

    def instantiate(self, assignment: dict[str, Type]) -> "Query":
        """Substitute types for the query's type variables."""
        return Query(
            name=self.name,
            fn=self.fn,
            input_type=substitute(self.input_type, assignment),
            output_type=substitute(self.output_type, assignment),
            uses_equality=self.uses_equality,
            notes=self.notes,
        )

    def then(self, other: "Query") -> "Query":
        """Sequential composition ``other after self``."""
        return compose(other, self)

    def __repr__(self) -> str:
        return f"Query({self.name} : {self.input_type} -> {self.output_type})"


def _match_type(pattern: Type, target: Type, subst: dict[str, Type]) -> None:
    """One-way structural matching: bind pattern variables to target
    subtypes.  On a conflicting rebinding the first binding wins — sound
    for genericity checking, where every variable is later instantiated
    at the same base type anyway."""
    from ..types.ast import (
        BagType,
        BaseType,
        FuncType,
        ListType,
        SetType as _SetType,
    )

    if isinstance(pattern, TypeVar):
        subst.setdefault(pattern.name, target)
        return
    if isinstance(pattern, Product) and isinstance(target, Product):
        if len(pattern.components) == len(target.components):
            for p, t in zip(pattern.components, target.components):
                _match_type(p, t, subst)
        return
    for constructor in (_SetType, BagType, ListType):
        if isinstance(pattern, constructor) and isinstance(target, constructor):
            _match_type(pattern.element, target.element, subst)
            return
    if isinstance(pattern, FuncType) and isinstance(target, FuncType):
        _match_type(pattern.arg, target.arg, subst)
        _match_type(pattern.result, target.result, subst)


def compose(outer: Query, inner: Query) -> Query:
    """``outer . inner`` — the composition closure of Proposition 3.1.

    The outer query's type variables are matched against the inner
    query's output type, so the composite's output type tracks the real
    value shapes (e.g. ``RxR . pi_1`` produces pairs of 1-tuples, not
    pairs of atoms)."""
    subst: dict[str, Type] = {}
    _match_type(outer.input_type, inner.output_type, subst)
    output_type = substitute(outer.output_type, subst) if subst else outer.output_type
    return Query(
        name=f"{outer.name}.{inner.name}",
        fn=lambda v: outer.fn(inner.fn(v)),
        input_type=inner.input_type,
        output_type=output_type,
        uses_equality=outer.uses_equality or inner.uses_equality,
    )


def pair_query(first: Query, second: Query) -> Query:
    """Run two queries on the same input, returning the pair of results.

    The glue that lets binary operators (union, difference, ...) act as
    query constructors: ``union_op . pair_query(q1, q2)``.
    """
    return Query(
        name=f"<{first.name},{second.name}>",
        fn=lambda v: Tup((first.fn(v), second.fn(v))),
        input_type=first.input_type,
        output_type=Product((first.output_type, second.output_type)),
        uses_equality=first.uses_equality or second.uses_equality,
    )


def constant_query(name: str, value: Value, input_type: Type, output_type: Type) -> Query:
    """The constant query returning ``value`` on every input.

    ``empty`` (the paper's Ø̂) is ``constant_query("empty", CVSet(), ...)``.
    """
    return Query(name=name, fn=lambda _v: value, input_type=input_type, output_type=output_type)
