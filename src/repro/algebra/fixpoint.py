"""Fixpoint and while operations.

The abstract defers the fixpoint/while results to the full paper but
announces them ("In the full paper we present results about *fixpoint*
and *while* operations", Section 3.2).  We implement the standard
inflationary fixpoint and a while-loop constructor so the experiments
can probe their genericity empirically: an inflationary fixpoint of a
fully generic body stays fully generic (closure under composition and
union, Prop 3.1, applied omega times on finite instances).
"""

from __future__ import annotations

from typing import Callable

from ..types.values import Value
from .query import Query

__all__ = ["inflationary_fixpoint", "while_query", "transitive_closure"]

#: Safety bound — on finite instances every inflationary fixpoint
#: converges well before this.
_MAX_ITERATIONS = 10_000


def inflationary_fixpoint(body: Query, name: str | None = None) -> Query:
    """``fix R. R union body(R)`` — iterate until no new tuples appear."""

    def fn(r: Value) -> Value:
        current = r
        for _ in range(_MAX_ITERATIONS):
            step = body.fn(current)
            merged = current.union(step)
            if merged == current:
                return current
            current = merged
        raise RuntimeError(f"fixpoint of {body.name} did not converge")

    return Query(
        name=name or f"fix({body.name})",
        fn=fn,
        input_type=body.input_type,
        output_type=body.input_type,
        uses_equality=body.uses_equality,
        notes="inflationary fixpoint",
    )


def while_query(
    condition: Callable[[Value], bool],
    body: Query,
    name: str | None = None,
) -> Query:
    """``while condition(R): R := body(R)`` — the while operation.

    Unlike the inflationary fixpoint this need not be monotone; the
    iteration bound guards non-termination on adversarial bodies."""

    def fn(r: Value) -> Value:
        current = r
        for _ in range(_MAX_ITERATIONS):
            if not condition(current):
                return current
            next_value = body.fn(current)
            if next_value == current:
                return current
            current = next_value
        raise RuntimeError(f"while({body.name}) did not converge")

    return Query(
        name=name or f"while({body.name})",
        fn=fn,
        input_type=body.input_type,
        output_type=body.input_type,
        uses_equality=body.uses_equality,
        notes="while loop",
    )


def transitive_closure() -> Query:
    """Transitive closure of a binary relation via the inflationary
    fixpoint of ``R o R`` — the classical fixpoint query, equality-using
    through its join."""
    from .operators import self_compose

    body = self_compose()
    q = inflationary_fixpoint(body, name="tc")
    q.notes = "transitive closure = fix(R union R o R)"
    return q
