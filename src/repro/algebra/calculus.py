"""The restricted relational calculus fragment of Proposition 3.3.

The paper proves fully generic (both modes) every query expressed in the
relational calculus using only:

* atomic formulas ``R(x1, ..., xn)`` with **no repeated variables**;
* disjunction of formulas with the **same** free variables;
* conjunction of formulas with **disjoint** variable sets;
* existential quantification.

This module implements that fragment with the restrictions *enforced at
construction time*, plus an unrestricted fragment (equality atoms,
repeated variables) used to exhibit the contrast in the experiments.

A database is a mapping from relation names to relations (``CVSet`` of
``Tup``); evaluation is standard active-domain bottom-up evaluation
producing the set of head-variable bindings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping as TMapping, Sequence

from ..types.ast import Product, SetType, TypeVar
from ..types.values import CVSet, Tup, Value
from .query import Query

__all__ = [
    "Formula",
    "Atom",
    "Or",
    "And",
    "Exists",
    "EqAtom",
    "CalculusError",
    "CalculusQuery",
    "restricted_fragment_ok",
]


class CalculusError(Exception):
    """Raised when a formula violates the fragment restrictions."""


@dataclass(frozen=True)
class Formula:
    """Abstract formula node."""

    def free_vars(self) -> frozenset[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Atom(Formula):
    """``R(x1, ..., xn)`` — variables must be pairwise distinct in the
    restricted fragment (checked by :func:`restricted_fragment_ok`)."""

    relation: str
    variables: tuple[str, ...]

    def free_vars(self) -> frozenset[str]:
        return frozenset(self.variables)


@dataclass(frozen=True)
class EqAtom(Formula):
    """``x = y`` — *outside* the restricted fragment; used for contrast."""

    left: str
    right: str

    def free_vars(self) -> frozenset[str]:
        return frozenset({self.left, self.right})


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction; restricted fragment demands equal free-variable sets."""

    left: Formula
    right: Formula

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()


@dataclass(frozen=True)
class And(Formula):
    """Conjunction; restricted fragment demands disjoint variable sets."""

    left: Formula
    right: Formula

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over one variable."""

    var: str
    body: Formula

    def free_vars(self) -> frozenset[str]:
        return self.body.free_vars() - {self.var}


def restricted_fragment_ok(f: Formula) -> bool:
    """Check membership in the Prop 3.3 fragment."""
    if isinstance(f, Atom):
        return len(set(f.variables)) == len(f.variables)
    if isinstance(f, EqAtom):
        return False
    if isinstance(f, Or):
        return (
            f.left.free_vars() == f.right.free_vars()
            and restricted_fragment_ok(f.left)
            and restricted_fragment_ok(f.right)
        )
    if isinstance(f, And):
        return (
            not (f.left.free_vars() & f.right.free_vars())
            and restricted_fragment_ok(f.left)
            and restricted_fragment_ok(f.right)
        )
    if isinstance(f, Exists):
        return restricted_fragment_ok(f.body)
    raise CalculusError(f"unknown formula node: {f!r}")


Assignment = tuple[tuple[str, Value], ...]


def _assignments(
    f: Formula, db: TMapping[str, CVSet], adom: frozenset
) -> set[Assignment]:
    """Bottom-up evaluation to sets of sorted variable assignments."""
    if isinstance(f, Atom):
        out: set[Assignment] = set()
        relation = db.get(f.relation, CVSet())
        for t in relation:
            if len(t) != len(f.variables):
                raise CalculusError(
                    f"arity mismatch: {f.relation} has {len(t)} columns, "
                    f"atom has {len(f.variables)} variables"
                )
            binding: dict[str, Value] = {}
            consistent = True
            for var, value in zip(f.variables, t):
                if var in binding and binding[var] != value:
                    consistent = False
                    break
                binding[var] = value
            if consistent:
                out.add(tuple(sorted(binding.items())))
        return out
    if isinstance(f, EqAtom):
        return {
            tuple(sorted({f.left: a, f.right: a}.items()))
            for a in adom
        }
    if isinstance(f, Or):
        return _assignments(f.left, db, adom) | _assignments(f.right, db, adom)
    if isinstance(f, And):
        left = _assignments(f.left, db, adom)
        right = _assignments(f.right, db, adom)
        out = set()
        for a in left:
            da = dict(a)
            for b in right:
                dbd = dict(b)
                if all(da.get(k, v) == v for k, v in dbd.items()):
                    merged = dict(da)
                    merged.update(dbd)
                    out.add(tuple(sorted(merged.items())))
        return out
    if isinstance(f, Exists):
        inner = _assignments(f.body, db, adom)
        return {
            tuple((k, v) for k, v in a if k != f.var)
            for a in inner
        }
    raise CalculusError(f"unknown formula node: {f!r}")


class CalculusQuery:
    """``{ (x1, ..., xk) | phi }`` over a named-relation database.

    ``strict=True`` (default) enforces the Prop 3.3 fragment.
    """

    def __init__(
        self,
        head: Sequence[str],
        formula: Formula,
        strict: bool = True,
    ) -> None:
        self.head = tuple(head)
        self.formula = formula
        if strict and not restricted_fragment_ok(formula):
            raise CalculusError(
                "formula outside the restricted fragment of Prop 3.3"
            )
        if set(self.head) != set(formula.free_vars()):
            raise CalculusError(
                f"head variables {self.head} must equal free variables "
                f"{sorted(formula.free_vars())}"
            )

    def evaluate(self, db: TMapping[str, CVSet]) -> CVSet:
        """Evaluate against a database mapping names to relations."""
        adom: set = set()
        for relation in db.values():
            for t in relation:
                adom |= set(t)
        result = _assignments(self.formula, db, frozenset(adom))
        return CVSet(
            Tup(dict(a)[var] for var in self.head) for a in result
        )

    def as_query(self, relation_names: Sequence[str]) -> Query:
        """Package as a :class:`Query` over a tuple of input relations.

        The input value is ``Tup((R1, ..., Rn))`` in the order of
        ``relation_names``; types use one shared variable per column of
        the restricted fragment (all columns range over the same
        abstract domain)."""
        names = tuple(relation_names)

        def fn(v: Value) -> Value:
            relations = v if isinstance(v, Tup) else Tup((v,))
            return self.evaluate(dict(zip(names, relations)))

        x = TypeVar("X")
        # Arities are not statically known here; expose a nominal type.
        input_type = Product(tuple(SetType(x) for _ in names)) if len(names) > 1 else SetType(x)
        output_type = SetType(Product(tuple(x for _ in self.head)))
        return Query(
            name=f"calc[{','.join(self.head)}]",
            fn=fn,
            input_type=input_type,
            output_type=output_type,
        )

    def __repr__(self) -> str:
        return f"CalculusQuery({self.head} | {self.formula})"
