"""Bag (multiset) operations.

The PODS abstract defers bags to the full paper ("In the full paper we
present definitions and results for bags"); we reconstruct the standard
bag algebra so the genericity experiments can probe it under the
support-based bag extensions of :mod:`repro.mappings.extensions`:

* additive union, monus (bag difference), min-intersection;
* duplicate elimination ``delta : {|t|} -> {t}``;
* bag projection / selection / map (multiplicity preserving);
* ``bag_count`` — multiplicity lookup, the bag analogue of membership.

Genericity expectations (verified by experiment E-BAGS): operations that
only rearrange elements (additive union, map, projection) are fully
generic like their set counterparts; monus and min-intersection need
equality on multiplicities and are generic only w.r.t. injective
mappings; duplicate elimination is fully generic under the rel bag
extension (supports are what rel mode sees) but *not* under the strong
one (mass is not preserved).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Sequence

from ..types.ast import BagType, Product, SetType, TypeVar
from ..types.values import CVBag, CVSet, Value
from .query import Query

__all__ = [
    "bag_union",
    "bag_monus",
    "bag_min_intersection",
    "duplicate_elim",
    "bag_projection",
    "bag_select_eq",
    "bag_map",
    "bag_of_set",
]


def _counts(b: CVBag) -> Counter:
    return Counter({v: b.count(v) for v in b.support()})


def bag_union() -> Query:
    """Additive bag union: multiplicities add."""
    x = TypeVar("X")

    def fn(pair: Value) -> Value:
        left, right = pair
        return left.union(right)

    return Query(
        name="bag_union",
        fn=fn,
        input_type=Product((BagType(x), BagType(x))),
        output_type=BagType(x),
    )


def bag_monus() -> Query:
    """Bag difference (monus): multiplicities subtract, floored at 0."""
    x = TypeVar("X")

    def fn(pair: Value) -> Value:
        left, right = pair
        counts = _counts(left)
        counts.subtract(_counts(right))
        out: list[Value] = []
        for value, n in counts.items():
            out.extend([value] * max(n, 0))
        return CVBag(out)

    return Query(
        name="bag_monus",
        fn=fn,
        input_type=Product((BagType(x), BagType(x))),
        output_type=BagType(x),
        uses_equality=True,
    )


def bag_min_intersection() -> Query:
    """Bag intersection: element-wise minimum multiplicity."""
    x = TypeVar("X")

    def fn(pair: Value) -> Value:
        left, right = pair
        out: list[Value] = []
        for value in left.support() & right.support():
            out.extend([value] * min(left.count(value), right.count(value)))
        return CVBag(out)

    return Query(
        name="bag_min_intersection",
        fn=fn,
        input_type=Product((BagType(x), BagType(x))),
        output_type=BagType(x),
        uses_equality=True,
    )


def duplicate_elim() -> Query:
    """``delta`` — collapse a bag to its support set."""
    x = TypeVar("X")

    def fn(b: Value) -> Value:
        return CVSet(b.support())

    return Query(
        name="delta",
        fn=fn,
        input_type=BagType(x),
        output_type=SetType(x),
        uses_equality=True,
        notes="collapses multiplicities; needs equality to do so",
    )


def bag_projection(indices: Sequence[int], arity: int) -> Query:
    """Multiplicity-preserving bag projection."""
    indices = tuple(indices)
    variables = tuple(TypeVar(f"X{i + 1}") for i in range(arity))

    def fn(b: Value) -> Value:
        return CVBag(t.project(indices) for t in b)

    return Query(
        name=f"bag_pi[{','.join(str(i + 1) for i in indices)}]",
        fn=fn,
        input_type=BagType(Product(variables)),
        output_type=BagType(Product(tuple(variables[i] for i in indices))),
    )


def bag_select_eq(i: int, j: int, arity: int) -> Query:
    """Bag selection on ``$i = $j``, keeping multiplicities."""
    variables = list(TypeVar(f"X{k + 1}") for k in range(arity))
    variables[j] = variables[i]

    def fn(b: Value) -> Value:
        return CVBag(t for t in b if t[i] == t[j])

    t = BagType(Product(tuple(variables)))
    return Query(
        name=f"bag_sigma[{i + 1}={j + 1}]",
        fn=fn,
        input_type=t,
        output_type=t,
        uses_equality=True,
    )


def bag_map(f: Callable[[Value], Value], name: str, elem_in, elem_out) -> Query:
    """``map(f)`` over bags — multiplicities of images add up."""

    def fn(b: Value) -> Value:
        return CVBag(f(v) for v in b)

    return Query(
        name=f"bag_map({name})",
        fn=fn,
        input_type=BagType(elem_in),
        output_type=BagType(elem_out),
    )


def bag_of_set() -> Query:
    """Embed a set as a bag of multiplicity-1 elements."""
    x = TypeVar("X")

    def fn(s: Value) -> Value:
        return CVBag(s)

    return Query(
        name="bag_of_set",
        fn=fn,
        input_type=SetType(x),
        output_type=BagType(x),
    )
