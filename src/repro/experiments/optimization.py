"""Experiments for Section 4.4: optimization from genericity/parametricity."""

from __future__ import annotations

import random

from ..engine.exec import PlanCache
from ..engine.workload import hr_database, random_database
from ..optimizer.plan import Difference, MapNode, Project, Scan, Union
from ..optimizer.rewriter import Rewriter, verify_equivalence
from ..types.values import Tup
from .report import ExperimentResult

__all__ = ["opt_4_4", "opt_cost_sweep"]


def opt_4_4(seed: int = 0, verification_dbs: int = 60) -> ExperimentResult:
    """The Section 4.4 equivalences, end to end.

    * ``map(f)(R U S) = map(f)(R) U map(f)(S)`` for an arbitrary f;
    * ``pi_1(R U S) = pi_1(R) U pi_1(S)``;
    * ``pi_1(R - S) = pi_1(R) - pi_1(S)`` fires only under the shared
      key; without the key the rewriter declines, and force-applying the
      rewrite is caught by the verifier.
    """
    result = ExperimentResult(
        "E-OPT",
        "Section 4.4: rewrites justified by genericity/parametricity",
        "map/projection push through union unconditionally; projection "
        "pushes through difference only under a key constraint",
        ("case", "rewrite fired", "plans equivalent", "expected"),
    )
    rng = random.Random(seed)
    db = hr_database(rng, employees=30, students=20, overlap=8)
    # Unconstrained rewrites must hold on *arbitrary* databases; the
    # key-justified rewrite is only promised on instances satisfying the
    # declared constraints, so it is verified on constraint-respecting
    # workloads (many seeds/sizes) instead.
    random_dbs = [db.snapshot()] + [
        random_database(rng, ("employees", "students", "contractors"),
                        arity=3)
        for _ in range(verification_dbs)
    ]
    keyed_dbs = [
        hr_database(
            random.Random(seed + i),
            employees=5 + 3 * i,
            students=4 + 2 * i,
            overlap=i,
        ).snapshot()
        for i in range(verification_dbs // 3)
    ]

    def opaque(t: Tup) -> Tup:
        # A "user-defined method about which we know nothing".
        return Tup((repr(t[0]), t[2], t[1]))

    cases = []
    # 1. map(f) through union — any f.
    plan1 = MapNode("opaque", opaque,
                    Union(Scan("employees"), Scan("students")))
    cases.append(("map-through-union", plan1, True, random_dbs))
    # 2. projection through union.
    plan2 = Project((0,), Union(Scan("employees"), Scan("students")))
    cases.append(("project-through-union", plan2, True, random_dbs))
    # 3. projection through difference WITH shared key.
    plan3 = Project((0,), Difference(Scan("employees"), Scan("students")))
    cases.append(("project-through-diff (key)", plan3, True, keyed_dbs))
    # 4. projection through difference WITHOUT key must NOT fire.
    plan4 = Project((0,), Difference(Scan("employees"), Scan("contractors")))
    cases.append(("project-through-diff (no key)", plan4, False, random_dbs))

    # One result cache across all verification sweeps: the cases share
    # sub-plans and databases, so identical sub-plan executions are
    # computed once (fingerprint keys keep it sound across databases).
    cache = PlanCache(capacity=4096)
    for label, plan, expect_fire, verification in cases:
        rewriter = Rewriter(db.catalog)
        optimized = rewriter.optimize(plan)
        fired = bool(rewriter.trace)
        counterexample = verify_equivalence(plan, optimized, verification,
                                            cache=cache)
        equivalent = counterexample is None
        result.add(label, fired, equivalent, "fires" if expect_fire else "skips")
        result.require(fired == expect_fire, f"{label}: rule firing")
        result.require(equivalent, f"{label}: rewritten plan must agree")

    # 5. The unsound variant of case 4, applied blindly, is caught.
    unsound = Difference(
        Project((0,), Scan("employees")),
        Project((0,), Scan("contractors")),
    )
    counterexample = verify_equivalence(plan4, unsound, random_dbs,
                                        cache=cache)
    result.add("unsound diff-push detected", "forced", counterexample is not None,
               "caught")
    result.require(counterexample is not None,
                   "verifier must catch the unsound rewrite")
    return result


def opt_cost_sweep(seed: int = 0, sizes=(50, 100, 200, 400)) -> ExperimentResult:
    """Measured work reduction of the justified rewrites as data scales.

    The paper offers the rewrites as optimizations; this experiment
    quantifies them under the width-weighted work model."""
    result = ExperimentResult(
        "E-OPT-COST",
        "Section 4.4: measured work, original vs optimized plans",
        "rewrites preserve answers and reduce measured work",
        ("relation size", "plan", "work before", "work after", "speedup"),
    )
    rng = random.Random(seed)
    for size in sizes:
        db = hr_database(rng, employees=size, students=size // 2,
                         overlap=size // 4)
        plans = {
            "pi(R U S)": Project(
                (0,), Union(Scan("employees"), Scan("students"))
            ),
            "pi(R - S)": Project(
                (0,), Difference(Scan("employees"), Scan("students"))
            ),
        }
        for name, plan in plans.items():
            rewriter = Rewriter(db.catalog)
            optimized = rewriter.optimize(plan)
            # mode="auto": the work ledger is executor-invariant, so
            # letting the cost model pick the engine exercises the
            # adaptive path while leaving the measured numbers (and the
            # writeup tables) untouched.
            before = db.run(plan, mode="auto")
            after = db.run(optimized, mode="auto")
            result.require(before.value == after.value,
                           f"{name}@{size}: answers differ")
            speedup = before.work / after.work if after.work else float("inf")
            result.add(size, name, before.work, after.work,
                       f"{speedup:.2f}x")
            result.require(after.work <= before.work,
                           f"{name}@{size}: work must not increase")
    return result
