"""Experiment E-TABLE1: the full classification table, checked.

Sweeps every operation of the curated catalog
(:mod:`repro.genericity.catalog`) over the whole (mapping class,
extension mode) lattice and compares the measured verdict in each cell
with the paper's expectation.  This is the reproduction's master table —
the closest analogue of a systems paper's "Table 1".
"""

from __future__ import annotations

from ..genericity.catalog import PAPER_TABLE, expected_cell
from ..genericity.classify import classify
from ..mappings.extensions import REL, STRONG
from .report import ExperimentResult

__all__ = ["table1"]


def table1(seed: int = 0, trials: int = 50) -> ExperimentResult:
    """Classify the full catalog and check every cell."""
    result = ExperimentResult(
        "E-TABLE1",
        "Master classification table (Section 3 + full-paper nested ops)",
        "every operation lands in exactly the genericity cells the paper "
        "(or, for nested ops, the framework's own derivation) predicts",
        ("operation", "source", "measured profile", "cells checked",
         "mismatches"),
    )
    for entry in PAPER_TABLE:
        query = entry.factory()
        row = classify(query, trials=trials, seed=seed)
        mismatches = 0
        checked = 0
        profile_bits = []
        for verdict in row.verdicts:
            expected = expected_cell(entry, verdict.spec.name, verdict.mode)
            if expected is None:
                continue
            checked += 1
            if verdict.generic != expected:
                mismatches += 1
        for mode in (REL, STRONG):
            tightest = row.tightest(mode)
            profile_bits.append(
                f"{mode}:{tightest.name if tightest else '-'}"
            )
        result.add(
            entry.name,
            entry.paper_source,
            " ".join(profile_bits),
            checked,
            mismatches,
        )
        result.require(
            mismatches == 0,
            f"{entry.name}: {mismatches} cells diverge",
        )
    return result
