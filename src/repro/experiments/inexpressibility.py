"""Experiment E-INEXPR: genericity as an inexpressibility tool.

Section 1: "genericity can be used as a tool for proving
inexpressibility results: If one shows that all queries in a language
are of a certain genericity class, then queries not in the class are
not expressible.  We follow Chandra [6] in presenting a few such
results."

The experiment machine-checks the three ingredients of each such
argument:

1. *language side* — every generated query of the sublanguage lies in
   the claimed genericity class (sampled over randomly composed terms);
2. *query side* — the target query does **not** lie in that class
   (counterexample found and re-verified);
3. the conclusion — the target is not expressible in the sublanguage.

Arguments checked:

* ``even`` is not expressible in the {x, Pi, U, Id, Ø̂} algebra
  (everything there is rel-fully generic; ``even`` is not);
* ``eq_adom`` is not expressible in any strong-fully generic language
  (e.g. Chandra's sigma-hat algebra of Prop 3.6);
* ``sigma_{$1=$2}`` is not expressible in the sigma-hat algebra either
  — equality can be *used* there but never *shown* (Section 3.2's four
  sublanguages);
* full-domain complement is not expressible in any language of queries
  generic w.r.t. non-total mappings (domain independence, Section 3.3).
"""

from __future__ import annotations

import random

from ..algebra.operators import (
    eq_adom,
    even_query,
    full_complement,
    hat_select_eq,
    projection,
    select_eq,
    self_cross,
    union_op,
)
from ..algebra.query import Query, compose, pair_query
from ..genericity.hierarchy import GenericitySpec
from ..genericity.witnesses import find_counterexample
from ..mappings.extensions import REL, STRONG
from ..mappings.generators import random_relation_value
from .report import ExperimentResult

__all__ = ["inexpressibility"]

_ALL = GenericitySpec("all", "all")


def _random_positive_term(rng: random.Random, depth: int = 2) -> Query:
    """A random query over the fully generic constructors of Cor 3.2."""
    if depth == 0:
        choice = rng.randrange(3)
        if choice == 0:
            return projection((rng.randrange(2),), 2)
        if choice == 1:
            return projection((0, 1), 2)
        return projection((1, 0), 2)
    choice = rng.randrange(3)
    if choice == 0:
        return compose(self_cross(), _random_positive_term(rng, depth - 1))
    if choice == 1:
        left = _random_positive_term(rng, depth - 1)
        right = _random_positive_term(rng, depth - 1)
        if str(left.output_type) == str(right.output_type):
            return compose(union_op(), pair_query(left, right))
        return left
    return compose(
        projection((0,), 2), _random_positive_term(rng, 0)
    )


def _random_hat_term(rng: random.Random) -> Query:
    """A random query over Chandra's strong-closed operations."""
    base = [
        hat_select_eq(0, 1, 2),
        projection((0,), 2),
        projection((1, 0), 2),
        self_cross(),
        compose(projection((0,), 1), hat_select_eq(0, 1, 2)),
    ]
    return rng.choice(base)


def inexpressibility(seed: int = 0, language_samples: int = 12,
                     trials: int = 200) -> ExperimentResult:
    """Check the three-step inexpressibility arguments."""
    rng = random.Random(seed)
    result = ExperimentResult(
        "E-INEXPR",
        "Genericity as an inexpressibility tool (Section 1 / Chandra)",
        "the sublanguage stays inside its genericity class while the "
        "target query falls outside, hence the target is inexpressible",
        ("argument", "step", "outcome", "expected"),
    )

    # ------------------------------------------------------------------
    # Argument 1: even not in the {x, Pi, U} algebra.
    # ------------------------------------------------------------------
    violations = 0
    for _ in range(language_samples):
        term = _random_positive_term(rng)
        search = find_counterexample(term, _ALL, REL, trials=25, seed=seed)
        violations += int(search.found)
    result.add("even vs {x,Pi,U}", "language fully generic",
               f"{language_samples - violations}/{language_samples} terms ok",
               "all ok")
    result.require(violations == 0, "sampled sublanguage term not generic")

    even_search = find_counterexample(even_query(), _ALL, REL,
                                      trials=trials, seed=seed)
    result.add("even vs {x,Pi,U}", "target outside class",
               even_search.found, True)
    result.require(even_search.found, "even must fail full genericity")
    result.add("even vs {x,Pi,U}", "conclusion",
               "even NOT expressible", "inexpressible")

    # ------------------------------------------------------------------
    # Argument 2: eq_adom not in the sigma-hat algebra (strong mode).
    # ------------------------------------------------------------------
    violations = 0
    for _ in range(language_samples):
        term = _random_hat_term(rng)
        search = find_counterexample(term, _ALL, STRONG, trials=25, seed=seed)
        violations += int(search.found)
    result.add("eq_adom vs sigma-hat algebra", "language strong-generic",
               f"{language_samples - violations}/{language_samples} terms ok",
               "all ok")
    result.require(violations == 0)

    eq_search = find_counterexample(eq_adom(), _ALL, STRONG,
                                    trials=trials, seed=seed)
    result.add("eq_adom vs sigma-hat algebra", "target outside class",
               eq_search.found, True)
    result.require(eq_search.found)
    result.add("eq_adom vs sigma-hat algebra", "conclusion",
               "eq_adom NOT expressible", "inexpressible")

    # ------------------------------------------------------------------
    # Argument 3: sigma (equality shown in output) not in the sigma-hat
    # algebra — Section 3.2's sublanguage separation.
    # ------------------------------------------------------------------
    sigma_search = find_counterexample(select_eq(0, 1, 2), _ALL, STRONG,
                                       trials=trials, seed=seed)
    result.add("sigma vs sigma-hat algebra", "target outside class",
               sigma_search.found, True)
    result.require(sigma_search.found)
    result.add("sigma vs sigma-hat algebra", "conclusion",
               "equality usable but not showable", "inexpressible")

    # ------------------------------------------------------------------
    # Argument 4: complement is domain dependent — not generic for
    # partial mappings, so not expressible in any domain-independent
    # (fully generic) language.
    # ------------------------------------------------------------------
    domain = list(range(4))
    comp = full_complement(domain, 2)
    all_same = GenericitySpec("all", "all", same_domain=True)
    comp_search = find_counterexample(
        comp, all_same, STRONG, trials=trials, seed=seed, domain_size=4,
        fixed_inputs=[
            random_relation_value(rng, 2, domain, rng.randint(0, 5))
            for _ in range(4)
        ],
    )
    result.add("complement vs domain-independent languages",
               "target outside class", comp_search.found, True)
    result.require(comp_search.found)
    result.add("complement vs domain-independent languages", "conclusion",
               "complement NOT expressible", "inexpressible")
    return result
