"""ASCII figures for the experiment record.

The paper has no figures; the reproduction adds two, rendered as plain
text so EXPERIMENTS.md stays self-contained:

* Figure 1 — measured work of original vs optimized plans as data
  scales (from experiment E-OPT-COST);
* Figure 2 — counterexample-search effort vs domain size (from
  experiment E-ABLATION-SEARCH).
"""

from __future__ import annotations

from typing import Sequence

from .report import ExperimentResult

__all__ = ["bar_chart", "figure_opt_cost", "figure_search_effort"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 46,
    unit: str = "",
) -> str:
    """Render horizontal bars scaled to the maximum value."""
    if not values:
        return "(no data)"
    peak = max(values) or 1.0
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def figure_opt_cost(result: ExperimentResult) -> str:
    """Figure 1: work before/after per plan and size (rows of
    E-OPT-COST: size, plan, before, after, speedup)."""
    labels = []
    values = []
    for size, plan, before, after, _speedup in result.rows:
        labels.append(f"n={size} {plan} original ")
        values.append(float(before))
        labels.append(f"n={size} {plan} optimized")
        values.append(float(after))
    header = (
        "Figure 1 — measured work, original vs optimized plans "
        "(width-weighted tuples)"
    )
    return header + "\n" + bar_chart(labels, values)


def figure_search_effort(result: ExperimentResult) -> str:
    """Figure 2: related pairs examined before a counterexample was
    found (rows of E-ABLATION-SEARCH: query, size, mode, trials, pairs)."""
    labels = []
    values = []
    for query, size, _mode, _trials, pairs in result.rows:
        labels.append(f"{query} |D|={size}")
        values.append(float(pairs))
    header = (
        "Figure 2 — pairs examined until a counterexample was found, "
        "by domain size"
    )
    return header + "\n" + bar_chart(labels, values)
