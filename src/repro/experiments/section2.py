"""Experiments for Section 2: definitions and notions of genericity.

One experiment per numbered claim; each returns an
:class:`~repro.experiments.report.ExperimentResult` whose
``matches_paper`` flag certifies the reproduced behaviour.
"""

from __future__ import annotations

import random

from ..algebra.operators import (
    even_query,
    projection,
    select_const,
    select_eq,
    self_compose,
    self_cross,
)
from ..engine.workload import paper_h_pairs, paper_r1, paper_r2, paper_r3
from ..genericity.hierarchy import GenericitySpec, STANDARD_LATTICE
from ..genericity.witnesses import find_counterexample
from ..mappings.extensions import REL, STRONG
from ..mappings.families import ConstantSpec, MappingFamily, preserves_predicate
from ..mappings.generators import random_domain, random_mapping_in_class
from ..mappings.mapping import Mapping
from ..types.ast import BOOL, INT, STR, Product, set_of
from ..types.signatures import standard_signature
from ..types.values import CVSet, cvset, tup
from .report import ExperimentResult

__all__ = [
    "example_2_2",
    "example_2_6",
    "prop_2_8",
    "queries_q3_q4",
    "prop_2_10",
    "prop_2_11",
    "lemma_2_12",
    "prop_2_13",
    "query_q5",
]

_PAIR_STR = set_of(STR * STR)
_PAIR_INT = set_of(INT * INT)


def _paper_family() -> MappingFamily:
    h = Mapping(paper_h_pairs(), STR, STR)
    return MappingFamily({"str": h})


def example_2_2(seed: int = 0) -> ExperimentResult:
    """Q1 = R o R commutes with the strong homomorphism h on r1 but not
    with the regular homomorphism on r3; Q2 = R x R commutes with all."""
    result = ExperimentResult(
        "E-2.2",
        "Example 2.2: composition query vs homomorphisms",
        "Q1(h(r1)) = h(Q1(r1)) holds; fails for r3; Q2 invariant always",
        ("query", "instance", "mode", "inputs related", "outputs related"),
    )
    family = _paper_family()
    q1, q2 = self_compose(), self_cross()
    rel_in = family.extend(_PAIR_STR, REL)
    strong_in = family.extend(_PAIR_STR, STRONG)
    r1, r2, r3 = paper_r1(), paper_r2(), paper_r3()

    # Q1 on r1 -> r2 (strong homomorphism): outputs must be related.
    q1_out_rel = family.extend(_PAIR_STR, REL)
    expected_q1_r1 = cvset(tup("e", "g"), tup("i", "g"))
    result.require(q1.fn(r1) == expected_q1_r1, "Q1(r1) differs from paper")
    result.require(q1.fn(r2) == cvset(tup("a", "c")), "Q1(r2) differs from paper")
    for mode, in_rel in ((REL, rel_in), (STRONG, strong_in)):
        related_in = in_rel.holds(r1, r2)
        related_out = q1_out_rel.holds(q1.fn(r1), q1.fn(r2))
        result.add("Q1=RoR", "r1->r2", mode, related_in, related_out)
        result.require(related_in and related_out)

    # Q1 on r3 -> r2: related only in rel mode, and invariance FAILS.
    related_in_rel = rel_in.holds(r3, r2)
    related_in_strong = strong_in.holds(r3, r2)
    out_related = q1_out_rel.holds(q1.fn(r3), q1.fn(r2))
    result.add("Q1=RoR", "r3->r2", REL, related_in_rel, out_related)
    result.add("Q1=RoR", "r3->r2", STRONG, related_in_strong, "n/a")
    result.require(related_in_rel and not out_related,
                   "Q1 should break under the regular homomorphism")
    result.require(not related_in_strong, "r3->r2 must not be strong")
    result.require(q1.fn(r3) == CVSet(), "Q1(r3) should be empty")

    # Q2 = R x R is invariant for both instances in rel mode.  Note the
    # output elements are pairs-of-pairs, not flat 4-tuples, so the
    # product type is built nested (the * operator flattens).
    pair = Product((STR, STR))
    q2_out_rel = family.extend(set_of(Product((pair, pair))), REL)
    for name, source in (("r1", r1), ("r3", r3)):
        ok = q2_out_rel.holds(q2.fn(source), q2.fn(r2))
        result.add("Q2=RxR", f"{name}->r2", REL, True, ok)
        result.require(ok, f"Q2 must stay invariant on {name}")
    return result


def example_2_6(seed: int = 0) -> ExperimentResult:
    """Extension-mode behaviour of {h x h}^x on the paper's instances."""
    result = ExperimentResult(
        "E-2.6",
        "Example 2.6: rel vs strong set extensions",
        "{hxh}^x(r1,r2) for both modes; {hxh}^rel(r3,r2) but not strong",
        ("pair", "mode", "holds", "expected"),
    )
    family = _paper_family()
    cases = [
        ("r1,r2", paper_r1(), paper_r2(), REL, True),
        ("r1,r2", paper_r1(), paper_r2(), STRONG, True),
        ("r3,r2", paper_r3(), paper_r2(), REL, True),
        ("r3,r2", paper_r3(), paper_r2(), STRONG, False),
    ]
    for name, left, right, mode, expected in cases:
        rel = family.extend(_PAIR_STR, mode)
        holds = rel.holds(left, right)
        result.add(name, mode, holds, expected)
        result.require(holds == expected, f"{name}/{mode} mismatch")
    return result


def prop_2_8(seed: int = 0, trials: int = 60) -> ExperimentResult:
    """Proposition 2.8 (i)-(iv) on random mappings."""
    result = ExperimentResult(
        "E-2.8",
        "Prop 2.8: structural properties of extensions",
        "(i) total/surjective lift to rel; (ii) strong injective on set "
        "types; (iii) composition; (iv) inverse commutes with extension",
        ("part", "checks", "failures"),
    )
    rng = random.Random(seed)
    t = set_of(INT * INT)

    # (i) If H total/surjective then H^rel is too: every value over the
    # source domain has an image / every value over the target a preimage.
    failures_i = 0
    checks_i = 0
    for _ in range(trials):
        left = random_domain(rng, 3, INT)
        right = random_domain(rng, 3, INT, offset=100)
        h = random_mapping_in_class(rng, "total_surjective", left, right, INT)
        fam = MappingFamily({"int": h})
        rel = fam.extend(t, REL)
        from ..mappings.generators import random_relation_value
        from ..genericity.invariance import sample_image

        value = random_relation_value(rng, 2, left, rng.randint(0, 4))
        checks_i += 1
        if sample_image(rel, value, rng) is None:
            failures_i += 1
    result.add("(i) totality lifts", checks_i, failures_i)
    result.require(failures_i == 0)

    # (ii) Strong extension is injective on set types: distinct images
    # of the same set never occur; symmetric check by preimages.
    failures_ii = 0
    checks_ii = 0
    for _ in range(trials):
        left = random_domain(rng, 3, INT)
        right = random_domain(rng, 3, INT, offset=100)
        h = random_mapping_in_class(rng, "all", left, right, INT)
        fam = MappingFamily({"int": h})
        strong = fam.extend(set_of(INT), STRONG)
        from ..mappings.generators import random_value

        s1 = random_value(rng, set_of(INT), {"int": left})
        images = list(strong.images(s1))
        checks_ii += 1
        if len(images) > 1:
            failures_ii += 1
    result.add("(ii) strong injective", checks_ii, failures_ii)
    result.require(failures_ii == 0)

    # (iii) (H1 o H2)^rel = H1^rel o H2^rel on sampled values.
    failures_iii = 0
    checks_iii = 0
    for _ in range(trials):
        a = random_domain(rng, 3, INT)
        b = random_domain(rng, 3, INT, offset=100)
        c = random_domain(rng, 3, INT, offset=200)
        h1 = random_mapping_in_class(rng, "all", a, b, INT)
        h2 = random_mapping_in_class(rng, "all", b, c, INT)
        h3 = h1.compose(h2)
        rel1 = MappingFamily({"int": h1}).extend(set_of(INT), REL)
        rel2 = MappingFamily({"int": h2}).extend(set_of(INT), REL)
        rel3 = MappingFamily({"int": h3}).extend(set_of(INT), REL)
        from ..mappings.generators import random_value

        s1 = random_value(rng, set_of(INT), {"int": a})
        s3 = random_value(rng, set_of(INT), {"int": c})
        checks_iii += 1
        lhs = rel3.holds(s1, s3)
        rhs = any(
            rel1.holds(s1, mid) and rel2.holds(mid, s3)
            for mid in _subsets(b)
        )
        if lhs != rhs:
            failures_iii += 1
    result.add("(iii) composition", checks_iii, failures_iii)
    result.require(failures_iii == 0)

    # (iv) {H^-1}^x = ({H}^x)^-1.
    failures_iv = 0
    checks_iv = 0
    for _ in range(trials):
        left = random_domain(rng, 3, INT)
        right = random_domain(rng, 3, INT, offset=100)
        h = random_mapping_in_class(rng, "all", left, right, INT)
        fam = MappingFamily({"int": h})
        fam_inv = fam.inverse()
        for mode in (REL, STRONG):
            fwd = fam.extend(set_of(INT), mode)
            bwd = fam_inv.extend(set_of(INT), mode)
            from ..mappings.generators import random_value

            s1 = random_value(rng, set_of(INT), {"int": left})
            s2 = random_value(rng, set_of(INT), {"int": right})
            checks_iv += 1
            if fwd.holds(s1, s2) != bwd.holds(s2, s1):
                failures_iv += 1
    result.add("(iv) inverse", checks_iv, failures_iv)
    result.require(failures_iv == 0)
    return result


def _subsets(domain):
    import itertools

    for size in range(len(domain) + 1):
        for combo in itertools.combinations(sorted(domain, key=repr), size):
            yield CVSet(combo)


def queries_q3_q4(seed: int = 0, trials: int = 60) -> ExperimentResult:
    """Definition 2.9's examples: Q3 generic everywhere; Q4 fails for
    general mappings (the paper's {[a,a]} vs {[b,c]} witness) but is
    rel-generic w.r.t. injective mappings."""
    result = ExperimentResult(
        "E-2.9",
        "Q3 = pi_1 and Q4 = sigma_{$1=$2}",
        "Q3 x-generic w.r.t. all mappings; Q4 not (witness H={(a,b),(a,c)}),"
        " but rel-generic w.r.t. injective mappings",
        ("query", "class", "mode", "verdict"),
    )
    q3 = projection((0,), 2)
    q4 = select_eq(0, 1, 2)

    # The paper's explicit witness for Q4.
    h = Mapping({(0, 1), (0, 2)}, INT, INT)
    fam = MappingFamily({"int": h})
    in_rel = fam.extend(_PAIR_INT, REL)
    r1 = cvset(tup(0, 0))
    r2 = cvset(tup(1, 2))
    witness_ok = in_rel.holds(r1, r2) and not in_rel.holds(
        q4.fn(r1), q4.fn(r2)
    )
    result.add("Q4", "paper witness", REL, "violates" if witness_ok else "?")
    result.require(witness_ok, "paper's Q4 witness must violate invariance")

    for query, spec_name, mode, expect_generic in [
        (q3, "all", REL, True),
        (q3, "all", STRONG, True),
        (q4, "all", REL, False),
        (q4, "injective", REL, True),
        (q4, "injective", STRONG, True),
    ]:
        spec = next(s for s in STANDARD_LATTICE if s.name == spec_name)
        search = find_counterexample(
            query, spec, mode, trials=trials, seed=seed
        )
        verdict = "generic" if not search.found else "NOT generic"
        result.add(query.name, spec_name, mode, verdict)
        result.require(search.found != expect_generic)
    return result


def prop_2_10(seed: int = 0, trials: int = 40) -> ExperimentResult:
    """Monotonicity: genericity w.r.t. a class implies genericity w.r.t.
    every contained class — verified across the operation catalog."""
    from ..genericity.classify import classify
    from ..genericity.hierarchy import spec_leq

    result = ExperimentResult(
        "E-2.10",
        "Prop 2.10: smaller mapping class => larger genericity class",
        "H' subset H implies Gen(H) subset Gen(H')",
        ("query", "violations of monotonicity"),
    )
    catalog = [projection((0,), 2), select_eq(0, 1, 2), self_cross(), self_compose()]
    for query in catalog:
        row = classify(query, trials=trials, seed=seed)
        violations = 0
        for a in row.verdicts:
            for b in row.verdicts:
                if a.mode != b.mode:
                    continue
                # a.spec contains b.spec => generic(a) implies generic(b)
                if spec_leq(b.spec, a.spec) and a.generic and not b.generic:
                    violations += 1
        result.add(query.name, violations)
        result.require(violations == 0)
    return result


def prop_2_11(seed: int = 0, trials: int = 120) -> ExperimentResult:
    """Queries defined at all types: generic w.r.t. functional mappings
    iff generic w.r.t. all mappings."""
    result = ExperimentResult(
        "E-2.11",
        "Prop 2.11: functional vs general mappings coincide",
        "for queries defined at all types, x-genericity w.r.t. functional "
        "mappings iff w.r.t. all mappings",
        ("query", "mode", "functional verdict", "all verdict", "agree"),
    )
    catalog = [
        projection((0,), 2),
        self_cross(),
        self_compose(),
        select_eq(0, 1, 2),
    ]
    spec_all = GenericitySpec("all", "all")
    spec_fun = GenericitySpec("functional", "functional")
    for query in catalog:
        result.require(query.defined_at_all_types(),
                       f"{query.name} should be defined at all types")
        for mode in (REL, STRONG):
            found_fun = find_counterexample(
                query, spec_fun, mode, trials=trials, seed=seed
            ).found
            found_all = find_counterexample(
                query, spec_all, mode, trials=trials, seed=seed
            ).found
            agree = found_fun == found_all
            result.add(
                query.name,
                mode,
                "NOT generic" if found_fun else "generic",
                "NOT generic" if found_all else "generic",
                agree,
            )
            result.require(agree, f"{query.name}/{mode} disagree")
    return result


def lemma_2_12(seed: int = 0, trials: int = 400) -> ExperimentResult:
    """`even` is not strictly x-C-generic for any finite C from an
    infinite domain: the counterexample search must succeed even when
    the mappings strictly preserve a finite constant set."""
    result = ExperimentResult(
        "E-2.12",
        "Lemma 2.12: `even` vs strict constant preservation",
        "for finite C, `even` is not strictly x-C-generic (x = rel, strong)",
        ("constants |C|", "mode", "counterexample found"),
    )
    q = even_query()
    for size in (0, 1, 2):
        constants = tuple(
            ConstantSpec(value, INT, strict=True) for value in range(size)
        )
        spec = GenericitySpec(
            f"strict-C{size}", "functional", constants=constants,
            same_domain=True,
        )
        for mode in (REL, STRONG):
            search = find_counterexample(
                q, spec, mode, trials=trials, seed=seed, domain_size=5
            )
            result.add(size, mode, search.found)
            result.require(search.found,
                           f"even must fail vs strict C of size {size}")
    return result


def prop_2_13(seed: int = 0, trials: int = 120) -> ExperimentResult:
    """H^x preserves p iff it preserves not p."""
    result = ExperimentResult(
        "E-2.13",
        "Prop 2.13: predicate preservation symmetric under negation",
        "under the functional interpretation (bool fixed to identity), "
        "H^x preserves p iff it preserves not-p",
        ("predicate", "checks", "disagreements"),
    )
    rng = random.Random(seed)
    sig = standard_signature()
    even_p = sig["even"]
    # Build the negation as a fresh symbol.
    odd_p = sig.add_symbol("odd", (INT,), BOOL, lambda x: x % 2 != 0)
    disagreements = 0
    for _ in range(trials):
        left = random_domain(rng, 4, INT)
        right = random_domain(rng, 4, INT, offset=50)
        h = random_mapping_in_class(rng, "all", left, right, INT)
        fam = MappingFamily({"int": h})
        if preserves_predicate(fam, even_p) != preserves_predicate(fam, odd_p):
            disagreements += 1
    result.add("even vs odd", trials, disagreements)
    result.require(disagreements == 0)
    return result


def query_q5(seed: int = 0, trials: int = 200) -> ExperimentResult:
    """Q5 = sigma_{$1=7}: not generic in general; rel-generic for
    mappings strictly preserving 7; NOT for mappings merely preserving 7;
    and generic for the larger class preserving the predicate =_7."""
    result = ExperimentResult(
        "E-Q5",
        "Q5 = sigma_{$1=7} and constant/predicate preservation",
        "Q5 generic iff 7 strictly preserved; preserving =_7 suffices "
        "and is the tighter classification (Section 2.5)",
        ("mapping class", "mode", "verdict", "expected"),
    )
    sig = standard_signature()
    sig.add_symbol("eq7", (INT,), BOOL, lambda x: x == 7)
    q5 = select_const(0, 7, 1, INT)

    def spec_with(name, constants=(), predicates=()):
        return GenericitySpec(
            name, "functional", constants=constants, predicates=predicates,
            same_domain=False,
        )

    cases = [
        # Domain size 8 so the constant 7 occurs in the inputs at all —
        # otherwise Q5 is vacuously invariant.
        (GenericitySpec("plain", "functional"), REL, False),
        (
            spec_with(
                "strict-7", constants=(ConstantSpec(7, INT, strict=True),)
            ),
            REL,
            True,
        ),
        (
            spec_with(
                "regular-7", constants=(ConstantSpec(7, INT, strict=False),)
            ),
            REL,
            False,
        ),
        (spec_with("preserve-eq7", predicates=("eq7",)), REL, True),
    ]
    for spec, mode, expect_generic in cases:
        search = find_counterexample(
            q5, spec, mode, trials=trials, seed=seed, domain_size=8,
            signature=sig,
        )
        verdict = "generic" if not search.found else "NOT generic"
        result.add(spec.name, mode, verdict,
                   "generic" if expect_generic else "NOT generic")
        result.require(search.found != expect_generic, f"{spec.name} mismatch")
    return result
