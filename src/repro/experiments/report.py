"""Structured experiment results and table rendering.

Every experiment returns an :class:`ExperimentResult`: the paper claim,
a table of measured rows, and a pass/fail conclusion comparing measured
behaviour to the claim.  The benchmark harness prints these tables —
the reproduction's stand-in for the (absent) tables of a systems paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["ExperimentResult", "format_table", "render", "render_many"]


@dataclass
class ExperimentResult:
    """One reproduced claim."""

    exp_id: str
    title: str
    paper_claim: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    matches_paper: bool = True
    notes: str = ""

    def add(self, *row) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row arity {len(row)} != columns {len(self.columns)}"
            )
        self.rows.append(tuple(row))

    def require(self, condition: bool, note: str = "") -> bool:
        """Record a per-claim check; any failure flips matches_paper."""
        if not condition:
            self.matches_paper = False
            if note:
                self.notes = (self.notes + "; " if self.notes else "") + note
        return condition


def format_table(columns: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain-text aligned table."""
    texts = [[str(c) for c in columns]] + [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in texts) for i in range(len(columns))]
    lines = []
    header = " | ".join(t.ljust(w) for t, w in zip(texts[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in texts[1:]:
        lines.append(" | ".join(t.ljust(w) for t, w in zip(row, widths)))
    return "\n".join(lines)


def render(result: ExperimentResult) -> str:
    """Render a full experiment report block."""
    status = "MATCHES PAPER" if result.matches_paper else "** MISMATCH **"
    parts = [
        f"== {result.exp_id}: {result.title} [{status}]",
        f"   claim: {result.paper_claim}",
    ]
    if result.notes:
        parts.append(f"   notes: {result.notes}")
    parts.append(format_table(result.columns, result.rows))
    return "\n".join(parts)


def render_many(results: Sequence[ExperimentResult]) -> str:
    """Render a batch of reports as one stable text block.

    Used by the parallel registry path for serial-vs-parallel output
    comparison: the text depends only on the results and their order.
    """
    return "\n\n".join(render(result) for result in results)
