"""Extension experiments beyond the abstract's numbered claims.

The PODS abstract defers two threads to the full paper — bags
("definitions and results for bags") and fixpoint/while ("in the full
paper we present results about fixpoint and while operations") — and
asserts without proof that lists are expressible in the 2nd-order
calculus.  These experiments reconstruct all three, plus a methodology
ablation quantifying the counterexample search the reproduction rests
on.
"""

from __future__ import annotations

import random

from ..algebra.bags import (
    bag_min_intersection,
    bag_monus,
    bag_projection,
    bag_union,
    duplicate_elim,
)
from ..algebra.fixpoint import transitive_closure
from ..algebra.operators import eq_adom, select_eq
from ..genericity.hierarchy import GenericitySpec
from ..genericity.witnesses import find_counterexample
from ..lambda2.church import (
    church_prelude_terms,
    decode_list,
    encode_list,
)
from ..lambda2.eval import evaluate
from ..lambda2.prelude import build_prelude
from ..mappings.extensions import REL, STRONG, BagRelExt
from ..mappings.mapping import Mapping
from ..types.ast import INT
from ..types.values import CVList, Tup, cvbag
from .report import ExperimentResult

__all__ = ["bags_genericity", "fixpoint_genericity", "church_lists", "search_ablation"]

_ALL = GenericitySpec("all", "all")
_INJ = GenericitySpec("injective", "injective")


def bags_genericity(seed: int = 0, trials: int = 150) -> ExperimentResult:
    """Genericity of the bag algebra under support-based extensions.

    Union, projection and duplicate elimination behave like their set
    counterparts; monus and min-intersection are *not* generic even for
    injective mappings, because the support-based extension (our Def
    2.5 analogue for bags) does not constrain multiplicities — the
    witness below relates ``{|1,1|}`` to ``{|10|}``.  This documents
    exactly why the full paper needs bag-specific (multiplicity-aware)
    extensions.
    """
    result = ExperimentResult(
        "E-BAGS",
        "Bag algebra genericity (full-paper material, reconstructed)",
        "additive union / projection / delta are fully generic; monus "
        "and min-intersection fail even for injective mappings under "
        "support-based extensions",
        ("operation", "class", "mode", "verdict", "expected"),
    )
    cases = [
        (bag_union(), _ALL, REL, True),
        (bag_projection((0,), 2), _ALL, REL, True),
        (duplicate_elim(), _ALL, REL, True),
        (bag_monus(), _ALL, REL, False),
        (bag_monus(), _INJ, REL, False),
        (bag_min_intersection(), _ALL, REL, False),
    ]
    for query, spec, mode, expect_generic in cases:
        search = find_counterexample(
            query, spec, mode, trials=trials, seed=seed
        )
        verdict = "generic" if not search.found else "NOT generic"
        result.add(query.name, spec.name, mode, verdict,
                   "generic" if expect_generic else "NOT generic")
        result.require(search.found != expect_generic,
                       f"{query.name}/{spec.name}")

    # The multiplicity witness, exhibited explicitly: {|1,1|} rel-relates
    # to {|10|} under an injective base mapping, yet monus tells them
    # apart.
    h = Mapping({(1, 10), (2, 20)}, INT, INT)
    rel = BagRelExt(h)
    b1, b2 = cvbag(1, 1), cvbag(10)
    sub1, sub2 = cvbag(1), cvbag(10)
    related_in = rel.holds(b1, b2) and rel.holds(sub1, sub2)
    out1 = bag_monus().fn(Tup((b1, sub1)))
    out2 = bag_monus().fn(Tup((b2, sub2)))
    related_out = rel.holds(out1, out2)
    result.add("monus multiplicity witness", "injective", REL,
               f"in={related_in}, out={related_out}", "in=True, out=False")
    result.require(related_in and not related_out,
                   "multiplicity witness must separate the bags")
    return result


def fixpoint_genericity(seed: int = 0, trials: int = 250) -> ExperimentResult:
    """Fixpoint operations (announced for the full paper).

    Transitive closure = inflationary fixpoint of ``R union R o R``.
    Its body is strong-fully generic (Prop 3.6 closure), and on finite
    instances the fixpoint is a finite composition of strong-generic
    steps, so tc is strong-fully generic; in rel mode it inherits Q1's
    failure (the Example 2.2 instance extends to a tc counterexample).
    """
    result = ExperimentResult(
        "E-FIX",
        "Fixpoint genericity (full-paper material, reconstructed)",
        "transitive closure is strong-fully generic but not rel-fully "
        "generic; both verdicts follow from closure of the classes",
        ("query", "mode", "verdict", "expected"),
    )
    tc = transitive_closure()
    strong_search = find_counterexample(tc, _ALL, STRONG, trials=trials,
                                        seed=seed)
    rel_search = find_counterexample(tc, _ALL, REL, trials=trials, seed=seed)
    result.add("tc", STRONG,
               "generic" if not strong_search.found else "NOT generic",
               "generic")
    result.add("tc", REL,
               "generic" if not rel_search.found else "NOT generic",
               "NOT generic")
    result.require(not strong_search.found, "tc must be strong-generic")
    result.require(rel_search.found, "tc must fail in rel mode")

    # tc stays generic w.r.t. injective mappings in both modes
    # (isomorphism-genericity of all computable queries).
    for mode in (REL, STRONG):
        search = find_counterexample(tc, _INJ, mode, trials=60, seed=seed)
        result.add("tc", f"{mode} (injective)",
                   "generic" if not search.found else "NOT generic",
                   "generic")
        result.require(not search.found)
    return result


def church_lists(seed: int = 0, trials: int = 60) -> ExperimentResult:
    """Lists are expressible in the pure 2nd-order calculus (Section 4.2
    footnote): Boehm-Berarducci encodings typecheck, round-trip, and the
    Church append agrees with the prelude append everywhere tested."""
    result = ExperimentResult(
        "E-CHURCH",
        "Lists via Church encodings in pure System F",
        "the calculus expresses lists: encodings typecheck at their "
        "polymorphic types and agree with the native implementation",
        ("check", "cases", "failures"),
    )
    entries = church_prelude_terms()  # raises on typecheck failure
    result.add("typecheck c_nil/c_cons/c_append", len(entries), 0)

    rng = random.Random(seed)
    prelude = build_prelude()
    native_append = prelude.value("append")[INT]
    church_append_value = evaluate(entries["c_append"][0])[INT]

    roundtrip_failures = 0
    agreement_failures = 0
    for _ in range(trials):
        xs = CVList(rng.randrange(5) for _ in range(rng.randint(0, 5)))
        ys = CVList(rng.randrange(5) for _ in range(rng.randint(0, 5)))
        if decode_list(encode_list(xs, INT), INT) != xs:
            roundtrip_failures += 1
        church_out = decode_list(
            church_append_value(encode_list(xs, INT))(encode_list(ys, INT)),
            INT,
        )
        if church_out != native_append(Tup((xs, ys))):
            agreement_failures += 1
    result.add("encode/decode roundtrip", trials, roundtrip_failures)
    result.add("church append == native append", trials, agreement_failures)
    result.require(roundtrip_failures == 0 and agreement_failures == 0)
    return result


def search_ablation(seed: int = 0) -> ExperimentResult:
    """Methodology ablation: how hard are counterexamples to find?

    Negative claims rest on randomized search; this sweep records, per
    query and domain size, how many trials the search needed.  Small
    counts mean the reproduction's negative verdicts are robust to the
    trial budget; the table doubles as guidance for choosing budgets.
    """
    result = ExperimentResult(
        "E-ABLATION-SEARCH",
        "Counterexample search effort vs domain size",
        "violations of the paper's negative claims are found within a "
        "handful of trials across domain sizes",
        ("query", "domain size", "mode", "trials to find", "pairs checked"),
    )
    queries = [select_eq(0, 1, 2), eq_adom()]
    modes = {select_eq(0, 1, 2).name: REL, eq_adom().name: STRONG}
    for query in queries:
        mode = modes[query.name]
        for domain_size in (2, 4, 8):
            search = find_counterexample(
                query, _ALL, mode, trials=400, seed=seed,
                domain_size=domain_size,
            )
            result.add(
                query.name, domain_size, mode,
                search.trials if search.found else "not found",
                search.pairs_checked,
            )
            result.require(search.found,
                           f"{query.name}@{domain_size} must be found")
            result.require(search.trials <= 100,
                           f"{query.name}@{domain_size} needed too many trials")
    return result
