"""Experiments for Section 3: properties of genericity."""

from __future__ import annotations

import itertools
import random

from ..algebra.calculus import And, Atom, CalculusQuery, Exists, Or
from ..algebra.operators import (
    cross_op,
    difference_op,
    eq_adom,
    full_complement,
    hat_select_eq,
    identity_query,
    intersection_op,
    projection,
    select_eq,
    self_compose,
    self_cross,
    union_op,
)
from ..algebra.query import Query, compose, pair_query
from ..genericity.hierarchy import GenericitySpec
from ..genericity.invariance import instantiate_at
from ..genericity.witnesses import find_counterexample
from ..mappings.extensions import REL, STRONG
from ..mappings.families import MappingFamily
from ..mappings.generators import (
    random_domain,
    random_mapping_in_class,
    random_relation_value,
)
from ..types.ast import INT, TypeVar, set_of
from ..types.values import CVSet, Tup
from .report import ExperimentResult

__all__ = [
    "prop_3_1_3_2",
    "prop_3_3",
    "prop_3_4",
    "prop_3_5",
    "prop_3_6",
    "prop_3_7_3_8",
    "thm_3_9",
]

_ALL = GenericitySpec("all", "all")
_TOTSUR = GenericitySpec("total_surjective", "total_surjective")


def prop_3_1_3_2(seed: int = 0, trials: int = 80) -> ExperimentResult:
    """Closure of full genericity under composition, x, union, map(f);
    Ø̂, Id and projection fully generic; hence the {x, Pi, U, Ø̂, R}
    sublanguage of the algebra is fully generic (Cor 3.2)."""
    result = ExperimentResult(
        "E-3.1/3.2",
        "Prop 3.1 / Cor 3.2: the fully generic sublanguage",
        "x, Pi, U (plus Ø̂, Id, composition, map) are fully generic for "
        "both extension modes",
        ("query", "mode", "verdict"),
    )
    x = TypeVar("X")
    # Compound queries built only from the fully generic constructors.
    pi_then_cross = compose(self_cross(), projection((0,), 2))
    union_of_projections = compose(
        union_op(), pair_query(projection((0,), 2), projection((1,), 2))
    )
    catalog: list[Query] = [
        projection((0, 1), 2),
        self_cross(),
        identity_query(set_of(x)),
        pi_then_cross,
        union_of_projections,
    ]
    for query in catalog:
        for mode in (REL, STRONG):
            search = find_counterexample(
                query, _ALL, mode, trials=trials, seed=seed
            )
            verdict = "fully generic" if not search.found else "VIOLATED"
            result.add(query.name, mode, verdict)
            result.require(not search.found, f"{query.name}/{mode}")
    return result


def prop_3_3(seed: int = 0, trials: int = 80) -> ExperimentResult:
    """The restricted calculus fragment is fully generic for both modes."""
    result = ExperimentResult(
        "E-3.3",
        "Prop 3.3: restricted calculus fragment fully generic",
        "atoms without repeated variables, same-vars OR, disjoint-vars "
        "AND, and EXISTS yield fully generic queries",
        ("calculus query", "mode", "verdict"),
    )
    # {x | exists y. R(x, y)}  — projection via the calculus.
    q_exists = CalculusQuery(
        ("x",), Exists("y", Atom("R", ("x", "y")))
    ).as_query(("R",))
    # {(x, y) | R(x, y) or R(y, x)} is ILLEGAL (shared vars under Or is
    # fine — Or needs *equal* free vars; this one qualifies).
    q_or = CalculusQuery(
        ("x", "y"), Or(Atom("R", ("x", "y")), Atom("R", ("y", "x")))
    ).as_query(("R",))
    # {(x, y, u, v) | R(x, y) and R(u, v)} — disjoint-variable AND.
    q_and = CalculusQuery(
        ("x", "y", "u", "v"),
        And(Atom("R", ("x", "y")), Atom("R", ("u", "v"))),
    ).as_query(("R",))
    in_type = set_of(INT * INT)
    for query in (q_exists, q_or, q_and):
        for mode in (REL, STRONG):
            search = find_counterexample(
                query,
                _ALL,
                mode,
                trials=trials,
                seed=seed,
                input_type=in_type,
                output_type=instantiate_at(query.output_type, INT),
            )
            verdict = "fully generic" if not search.found else "VIOLATED"
            result.add(query.name, mode, verdict)
            result.require(not search.found, f"{query.name}/{mode}")
    return result


def prop_3_4(seed: int = 0, trials: int = 300) -> ExperimentResult:
    """rel-full C-genericity is not closed under difference and
    intersection: counterexamples must exist."""
    result = ExperimentResult(
        "E-3.4",
        "Prop 3.4: -, intersect break rel-full genericity",
        "the class of rel-fully C-generic queries is not closed under "
        "- and intersect",
        ("operation", "counterexample found"),
    )
    for op in (difference_op(), intersection_op()):
        # The operands (two copies of the identity on a pair of input
        # relations) are fully generic; the composite is not.
        search = find_counterexample(op, _ALL, REL, trials=trials, seed=seed)
        result.add(op.name, search.found)
        result.require(search.found, f"{op.name} must break rel mode")
    return result


def prop_3_5(seed: int = 0, trials: int = 300) -> ExperimentResult:
    """eq_adom is rel-fully generic but not strong-fully generic."""
    result = ExperimentResult(
        "E-3.5",
        "Prop 3.5: eq_adom separates the two modes",
        "eq_adom is rel-fully generic, NOT strong-fully generic; hence "
        "the rel/strong fully generic classes are incomparable",
        ("mode", "verdict", "expected"),
    )
    q = eq_adom()
    rel_search = find_counterexample(q, _ALL, REL, trials=trials, seed=seed)
    strong_search = find_counterexample(
        q, _ALL, STRONG, trials=trials, seed=seed
    )
    result.add(REL, "generic" if not rel_search.found else "NOT generic",
               "generic")
    result.add(STRONG, "generic" if not strong_search.found else "NOT generic",
               "NOT generic")
    result.require(not rel_search.found, "eq_adom must be rel-fully generic")
    result.require(strong_search.found, "eq_adom must fail in strong mode")
    return result


def prop_3_6(seed: int = 0, trials: int = 120) -> ExperimentResult:
    """Chandra's closure: strong-generic classes closed under U, &, Pi,
    x, -, sigma-hat.  sigma-hat_{1=2} is strong-fully generic while
    sigma_{1=2} is not."""
    result = ExperimentResult(
        "E-3.6",
        "Prop 3.6: strong genericity and hat-selection",
        "U, &, Pi, x, -, sigma-hat preserve strong genericity; sigma-hat "
        "is strong-fully generic, plain sigma is not",
        ("query", "mode", "verdict", "expected"),
    )
    cases = [
        (hat_select_eq(0, 1, 2), STRONG, True),
        (select_eq(0, 1, 2), STRONG, False),
        (difference_op(), STRONG, True),
        (intersection_op(), STRONG, True),
        (union_op(), STRONG, True),
        (cross_op(), STRONG, True),
        (self_compose(), STRONG, True),  # = Pi(sigma-hat(R x R))
    ]
    for query, mode, expect_generic in cases:
        search = find_counterexample(
            query, _ALL, mode, trials=trials, seed=seed
        )
        verdict = "generic" if not search.found else "NOT generic"
        result.add(query.name, mode, verdict,
                   "generic" if expect_generic else "NOT generic")
        result.require(search.found != expect_generic, query.name)
    return result


def prop_3_7_3_8(seed: int = 0, trials: int = 60) -> ExperimentResult:
    """Full-domain complement under total+surjective mappings:
    H^strong(R, R') iff H^strong(co-R, co-R'); and a query is
    strong-generic w.r.t. total+surjective mappings iff its complement
    is."""
    result = ExperimentResult(
        "E-3.7/3.8",
        "Props 3.7/3.8: complements and total+surjective mappings",
        "for total+surjective H: strong relatedness of relations and of "
        "their full-domain complements coincide",
        ("part", "checks", "failures"),
    )
    rng = random.Random(seed)
    failures = 0
    checks = 0
    for _ in range(trials):
        left = random_domain(rng, 3, INT)
        right = random_domain(rng, 3, INT, offset=100)
        h = random_mapping_in_class(rng, "total_surjective", left, right, INT)
        fam = MappingFamily({"int": h})
        strong = fam.extend(set_of(INT * INT), STRONG)
        r = random_relation_value(rng, 2, left, rng.randint(0, 6))
        r_prime = random_relation_value(rng, 2, right, rng.randint(0, 6))
        co_r = CVSet(
            {Tup(c) for c in itertools.product(left, repeat=2)} - set(r)
        )
        co_r_prime = CVSet(
            {Tup(c) for c in itertools.product(right, repeat=2)}
            - set(r_prime)
        )
        checks += 1
        if strong.holds(r, r_prime) != strong.holds(co_r, co_r_prime):
            failures += 1
    result.add("3.7 complement equivalence", checks, failures)
    result.require(failures == 0)

    # 3.8: complement query is strong-generic w.r.t. total+surjective
    # mappings of the (single, fixed) full domain onto itself — the
    # full-domain semantics needs the query and the mappings to agree on
    # what "the domain" is.
    domain = list(range(4))
    comp_q = full_complement(domain, 2)
    totsur_same = GenericitySpec(
        "total_surjective", "total_surjective", same_domain=True
    )
    search = find_counterexample(
        comp_q,
        totsur_same,
        STRONG,
        trials=trials,
        seed=seed,
        domain_size=4,
        fixed_inputs=[
            random_relation_value(rng, 2, domain, rng.randint(0, 6))
            for _ in range(4)
        ],
    )
    result.add("3.8 complement query generic (strong)", search.trials,
               1 if search.found else 0)
    result.require(not search.found, "complement must be strong-generic")

    # ... and NOT generic w.r.t. arbitrary mappings (domain dependence).
    all_same = GenericitySpec("all", "all", same_domain=True)
    search_all = find_counterexample(
        comp_q,
        all_same,
        STRONG,
        trials=300,
        seed=seed,
        domain_size=4,
        fixed_inputs=[
            random_relation_value(rng, 2, domain, rng.randint(0, 6))
            for _ in range(4)
        ],
    )
    result.add("complement vs partial mappings", search_all.trials,
               1 if search_all.found else 0)
    result.require(search_all.found,
                   "complement must fail for non-total mappings")
    return result


def thm_3_9(seed: int = 0, trials: int = 40) -> ExperimentResult:
    """The four-Russians instance: if a total+surjective-generic query
    outputs a tuple with a component outside the active domain, every
    replacement of that component by another non-adom element is also in
    the output."""
    result = ExperimentResult(
        "E-3.9",
        "Thm 3.9: non-adom output components are interchangeable",
        "a tuple with a co-adom component forces all its co-adom variants",
        ("query", "checks", "failures"),
    )
    rng = random.Random(seed)
    domain = list(range(5))
    comp_q = full_complement(domain, 2)
    failures = 0
    checks = 0
    for _ in range(trials):
        r = random_relation_value(rng, 2, domain[:3], rng.randint(0, 4))
        out = comp_q.fn(r)
        adom = {a for t in r for a in t}
        co_adom = [d for d in domain if d not in adom]
        for t in out:
            for position in range(2):
                if t[position] in co_adom:
                    checks += 1
                    variants_present = all(
                        t.replace(position, other) in out
                        for other in co_adom
                    )
                    if not variants_present:
                        failures += 1
    result.add(comp_q.name, checks, failures)
    result.require(checks > 0, "experiment must exercise co-adom outputs")
    result.require(failures == 0)
    return result
