"""Experiment E-STATIC: the static genericity analyzer is sound.

Section 5 hopes that genericity properties "can be verified or
discovered automatically".  :mod:`repro.genericity.static_analysis`
derives guaranteed profiles from the closure theorems; this experiment
checks soundness against the dynamic machinery: wherever the analyzer
promises "generic w.r.t. class C in mode m", the randomized
counterexample search must come up empty for that (class, mode).
"""

from __future__ import annotations

from typing import Sequence

from ..algebra.query import Query
from ..genericity.hierarchy import GenericitySpec
from ..genericity.static_analysis import ClassBound, analyze_plan
from ..genericity.witnesses import find_counterexample
from ..mappings.extensions import REL, STRONG
from ..optimizer.plan import (
    Difference,
    Intersect,
    Join,
    Plan,
    Product as PlanProduct,
    Project,
    Scan,
    Select,
    Union,
    execute,
)
from ..types.ast import Product, SetType, TypeVar
from ..types.values import Tup, Value
from .report import ExperimentResult

__all__ = ["static_soundness", "plan_as_query"]


def plan_as_query(plan: Plan, relations: Sequence[str], arity: int = 2) -> Query:
    """Wrap a plan over named base relations as a typed Query.

    The query input is the tuple of base relations in ``relations``
    order; all columns range over one type variable (an abstract
    domain), matching the genericity setting."""
    names = tuple(relations)

    def fn(v: Value) -> Value:
        db = dict(zip(names, v if isinstance(v, Tup) else Tup((v,))))
        return execute(plan, db).value

    x = TypeVar("X")
    rel_type = SetType(Product(tuple(x for _ in range(arity))))
    input_type = (
        Product(tuple(rel_type for _ in names)) if len(names) > 1 else rel_type
    )
    # Output arity is not statically tracked; a single-variable set of
    # tuples covers every plan in this experiment (output columns all
    # range over the same abstract domain).
    out_arity = _output_arity(plan, arity)
    output_type = SetType(Product(tuple(x for _ in range(out_arity))))
    return Query(
        name=f"plan[{plan}]", fn=fn, input_type=input_type,
        output_type=output_type,
    )


def _output_arity(plan: Plan, base_arity: int) -> int:
    if isinstance(plan, Scan):
        return base_arity
    if isinstance(plan, Project):
        return len(plan.columns)
    if isinstance(plan, (Union, Difference, Intersect)):
        return _output_arity(plan.left, base_arity)
    if isinstance(plan, PlanProduct):
        return _output_arity(plan.left, base_arity) + _output_arity(
            plan.right, base_arity
        )
    if isinstance(plan, Join):
        return _output_arity(plan.left, base_arity) + _output_arity(
            plan.right, base_arity
        )
    if isinstance(plan, Select):
        return _output_arity(plan.child, base_arity)
    return base_arity


_SPECS = {
    ClassBound.ALL: GenericitySpec("all", "all"),
    ClassBound.INJECTIVE: GenericitySpec("injective", "injective"),
}


def static_soundness(seed: int = 0, trials: int = 60) -> ExperimentResult:
    """Check every static guarantee dynamically."""
    result = ExperimentResult(
        "E-STATIC",
        "Static genericity analysis is sound (Section 5 direction)",
        "whenever the closure-theorem analysis guarantees genericity for "
        "a (class, mode) cell, randomized search finds no violation",
        ("plan", "static profile", "cells promised", "violations"),
    )
    plans = [
        (Project((0,), Union(Scan("R"), Scan("S"))), ("R", "S")),
        (Project((0,), Difference(Scan("R"), Scan("S"))), ("R", "S")),
        (Union(Intersect(Scan("R"), Scan("S")), Scan("R")), ("R", "S")),
        (PlanProduct(Project((0,), Scan("R")), Project((1,), Scan("S"))),
         ("R", "S")),
        (Join(((0, 0),), Scan("R"), Scan("S")), ("R", "S")),
        (Project((0,), Join(((1, 0),), Scan("R"), Scan("S"))), ("R", "S")),
        (Difference(Scan("R"), Intersect(Scan("S"), Scan("R"))), ("R", "S")),
    ]
    for plan, relations in plans:
        profile = analyze_plan(plan)
        query = plan_as_query(plan, relations)
        promised = 0
        violations = 0
        for mode, bound in ((REL, profile.rel), (STRONG, profile.strong)):
            if bound is ClassBound.NONE:
                continue
            # The guarantee covers `bound` and every smaller class; the
            # strongest check is at `bound` itself.
            spec = _SPECS[bound]
            promised += 1
            search = find_counterexample(
                query, spec, mode, trials=trials, seed=seed
            )
            violations += int(search.found)
        result.add(str(plan), str(profile), promised, violations)
        result.require(violations == 0, f"{plan}: unsound guarantee")
    return result
