"""Generate EXPERIMENTS.md from actual experiment runs.

``python -m repro.experiments.writeup [path]`` runs the full registry
and writes the paper-vs-measured record for every claim.  The same
tables are printed by ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys
import time

from .figures import figure_opt_cost, figure_search_effort
from .registry import EXPERIMENTS, run
from .report import ExperimentResult, format_table

__all__ = ["generate", "main"]

_HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction record for *On Genericity and Parametricity* (Beeri, Milo,
Ta-Shma, PODS 1996).  The paper is a theory paper with no empirical
tables; each numbered claim (example / proposition / lemma / theorem)
is reproduced as an executable experiment.  For every claim this file
records the paper's statement, the measured behaviour, and whether they
match.  Regenerate with:

    python -m repro.experiments.writeup

or inspect the same tables live via:

    pytest benchmarks/ --benchmark-only

Notes on methodology (see DESIGN.md for the full substitution table):
positive universal claims are checked on the paper's own witnesses,
exhaustively on small domains, and on randomized instance families;
negative claims are established by *found and independently re-verified
counterexamples*, which is exact.
"""


def _section(result: ExperimentResult, elapsed: float) -> str:
    status = "match" if result.matches_paper else "MISMATCH"
    lines = [
        f"## {result.exp_id} — {result.title}",
        "",
        f"*Paper claim.* {result.paper_claim}.",
        "",
        f"*Outcome.* **{status}** ({elapsed:.2f}s).",
    ]
    if result.notes:
        lines.append(f"*Notes.* {result.notes}")
    lines.append("")
    lines.append("```text")
    lines.append(format_table(result.columns, result.rows))
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def generate() -> str:
    """Run every experiment and render the full markdown document."""
    parts = [_HEADER]
    total = 0.0
    matched = 0
    sections = []
    figures = []
    for exp_id in EXPERIMENTS:
        start = time.perf_counter()
        result = run(exp_id)
        elapsed = time.perf_counter() - start
        total += elapsed
        matched += int(result.matches_paper)
        sections.append(_section(result, elapsed))
        if exp_id == "E-OPT-COST":
            figures.append(figure_opt_cost(result))
        if exp_id == "E-ABLATION-SEARCH":
            figures.append(figure_search_effort(result))
    summary = (
        f"\n**Summary: {matched}/{len(EXPERIMENTS)} claims reproduce** "
        f"(total runtime {total:.1f}s on this machine).\n"
    )
    parts.append(summary)
    parts.extend(sections)
    if figures:
        parts.append("## Figures\n")
        for figure in figures:
            parts.append("```text")
            parts.append(figure)
            parts.append("```")
            parts.append("")
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    path = argv[0] if argv else "EXPERIMENTS.md"
    text = generate()
    with open(path, "w") as handle:
        handle.write(text)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
