"""One executable experiment per numbered claim of the paper."""

from .registry import EXPERIMENTS, run, run_all
from .report import ExperimentResult, format_table, render

__all__ = ["EXPERIMENTS", "run", "run_all", "ExperimentResult", "format_table", "render"]
