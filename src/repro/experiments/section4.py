"""Experiments for Section 4: parametricity and the list-to-set transfer."""

from __future__ import annotations

import random

from ..algebra.nested import nest_parity
from ..genericity.hierarchy import GenericitySpec
from ..genericity.witnesses import find_counterexample
from ..lambda2.parametricity import check_parametricity
from ..lambda2.prelude import build_prelude
from ..listset.setfuncs import (
    cardinality,
    poly,
    set_filter,
    set_ins,
    set_union,
)
from ..listset.transfer import (
    lemma_4_6_part1,
    lemma_4_6_part2,
    transfer_parametricity,
)
from ..listset.typeclasses import is_ltos
from ..mappings.extensions import REL, STRONG, ListRel, SetRelExt
from ..mappings.generators import random_domain, random_mapping_in_class
from ..mappings.mapping import Budget, Mapping
from ..types.ast import INT, SetType, forall, func, set_of, tvar
from ..types.parser import parse_type
from ..types.values import CVList, CVSet, Tup, cvlist
from .report import ExperimentResult

__all__ = [
    "thm_4_4",
    "prop_4_16",
    "lemma_4_6",
    "example_4_14",
    "thm_4_13",
    "cor_4_15",
]


def thm_4_4(seed: int = 0) -> ExperimentResult:
    """The parametricity theorem over the entire prelude, plus the
    eq-type refinement for list difference."""
    result = ExperimentResult(
        "E-4.4",
        "Thm 4.4: parametricity of the System F prelude",
        "every term expressible in the calculus satisfies T(l, l); list "
        "difference is parametric only at forall X=",
        ("term", "type", "parametric", "expected"),
    )
    prelude = build_prelude()
    positive = (
        "id", "append", "map", "count", "reverse", "filter", "zip",
        "nil", "cons", "ins", "difference",
    )
    for name in positive:
        report = check_parametricity(
            prelude.value(name), prelude.type_of(name), name
        )
        result.add(name, str(prelude.type_of(name)), report.parametric, True)
        result.require(report.parametric, f"{name} must be parametric")

    # Negative control: difference at the unrestricted type.
    wrong_type = parse_type("forall X. <X> * <X> -> <X>")
    report = check_parametricity(
        prelude.value("difference"), wrong_type, "difference@X"
    )
    result.add("difference@X", str(wrong_type), report.parametric, False)
    result.require(not report.parametric,
                   "difference must fail at the eq-free type")
    return result


def prop_4_16(seed: int = 0, trials: int = 150) -> ExperimentResult:
    """Nest parity: fully generic, yet not parametric at any type
    forall X. {^n X}^n -> bool."""
    result = ExperimentResult(
        "E-4.16",
        "Prop 4.16: np is generic but not parametric",
        "np is fully generic; np is not parametric for any type "
        "forall X. {^n X}^n -> bool",
        ("check", "n", "verdict", "expected"),
    )
    np = nest_parity()

    # Full genericity: extensions preserve structure, so nesting depth —
    # all np sees — is invariant.  Check at several nesting depths.
    spec = GenericitySpec("all", "all")
    for n in (1, 2):
        in_type = set_of(INT)
        for _ in range(n - 1):
            in_type = set_of(in_type)
        for mode in (REL, STRONG):
            search = find_counterexample(
                np, spec, mode, trials=trials, seed=seed,
                input_type=in_type, output_type=np.output_type,
            )
            result.add("generic", n, not search.found, True)
            result.require(not search.found, f"np must be generic at depth {n}")

    # Non-parametricity: the quantifier ranges over mappings between
    # types of different structure; a cross-structure candidate that
    # relates an atom to a set flips the parity np sees.
    cross = Mapping(
        {(0, CVSet((0,)))},
        INT,
        set_of(INT),
        source_domain=(0,),
        target_domain=(CVSet((0,)),),
    )
    candidates = [(INT, set_of(INT), cross)]
    for n in (1, 2):
        t = tvar("X")
        body = t
        for _ in range(n):
            body = SetType(body)
        np_type = forall("X", func(body, parse_type("bool")))
        report = check_parametricity(
            poly(np.fn), np_type, f"np@{n}", candidates=candidates
        )
        result.add("parametric", n, report.parametric, False)
        result.require(not report.parametric,
                       f"np must fail parametricity at depth {n}")
    return result


def lemma_4_6(seed: int = 0, trials: int = 120) -> ExperimentResult:
    """Both directions of Lemma 4.6 on random instances."""
    result = ExperimentResult(
        "E-4.6",
        "Lemma 4.6: toset vs the rel set extension",
        "(1) <H>-related lists have {H}^rel-related tosets; (2) "
        "{H}^rel-related sets lift to <H>-related lists",
        ("part", "checks", "failures"),
    )
    rng = random.Random(seed)
    part1_failures = part2_failures = 0
    part1_checks = part2_checks = 0
    for _ in range(trials):
        left = random_domain(rng, 3, INT)
        right = random_domain(rng, 3, INT, offset=100)
        h = random_mapping_in_class(rng, "all", left, right, INT)
        list_rel = ListRel(h)
        # Part 1: build a related list pair constructively.
        pairs = list(h.pairs())
        if pairs:
            chosen = [rng.choice(pairs) for _ in range(rng.randint(0, 4))]
            l1 = CVList(x for x, _ in chosen)
            l2 = CVList(y for _, y in chosen)
            part1_checks += 1
            if not lemma_4_6_part1(h, l1, l2):
                part1_failures += 1
        # Part 2: build a related set pair, lift to lists.
        from ..mappings.generators import random_value
        from ..genericity.invariance import sample_image

        s1 = random_value(rng, set_of(INT), {"int": left})
        image = sample_image(SetRelExt(h), s1, rng)
        if image is not None:
            part2_checks += 1
            if not lemma_4_6_part2(h, s1, image):
                part2_failures += 1
    result.add("(1) lists -> sets", part1_checks, part1_failures)
    result.add("(2) sets -> lists", part2_checks, part2_failures)
    result.require(part1_checks > 0 and part2_checks > 0, "coverage")
    result.require(part1_failures == 0 and part2_failures == 0)
    return result


def example_4_14(seed: int = 0) -> ExperimentResult:
    """The type classifications of Example 4.14."""
    result = ExperimentResult(
        "E-4.14",
        "Example 4.14: LtoS type classification",
        "sigma's type is LtoS; predicate-on-list is not; fold is LtoS; "
        "ext is not",
        ("type", "LtoS", "expected"),
    )
    cases = [
        ("forall X. (X -> bool) -> <X> -> <X>", True),
        ("forall X. (<X> -> bool) -> <X> -> <X>", False),
        ("forall X. forall Y. (X -> Y -> Y) -> Y -> <X> -> Y", True),
        ("forall X. forall Y. (X -> <Y>) -> <X> -> <Y>", False),
        ("forall X. <X> * <X> -> <X>", True),
        ("forall X. <X> -> int", True),
    ]
    for text, expected in cases:
        verdict = is_ltos(parse_type(text))
        result.add(text, verdict, expected)
        result.require(verdict == expected, text)
    return result


def thm_4_13(seed: int = 0, trials: int = 40) -> ExperimentResult:
    """Transfer of relatedness from list values to analogous set values
    at LtoS types, on the append/union pair."""
    result = ExperimentResult(
        "E-4.13",
        "Thm 4.13: list relatedness transfers to sets",
        "T^list(l1, l2) and analogy imply T^set(s1, s2) for LtoS types",
        ("instance family", "checks", "failures"),
    )
    rng = random.Random(seed)
    prelude = build_prelude()
    append = prelude.value("append")[INT]
    failures = 0
    checks = 0
    for _ in range(trials):
        left = random_domain(rng, 3, INT)
        right = random_domain(rng, 3, INT, offset=100)
        h = random_mapping_in_class(rng, "all", left, right, INT)
        pairs = list(h.pairs())
        if not pairs:
            continue
        # Related list-pair inputs for append.
        chosen_a = [rng.choice(pairs) for _ in range(rng.randint(0, 3))]
        chosen_b = [rng.choice(pairs) for _ in range(rng.randint(0, 3))]
        la1 = CVList(x for x, _ in chosen_a)
        la2 = CVList(y for _, y in chosen_a)
        lb1 = CVList(x for x, _ in chosen_b)
        lb2 = CVList(y for _, y in chosen_b)
        out1 = append(Tup((la1, lb1)))
        out2 = append(Tup((la2, lb2)))
        # List-side relatedness (parametricity instance).
        if not ListRel(h).holds(out1, out2):
            failures += 1
            checks += 1
            continue
        # Set side via analogy: union of the tosets.
        s_out1 = set_union(Tup((CVSet(la1), CVSet(lb1))))
        s_out2 = set_union(Tup((CVSet(la2), CVSet(lb2))))
        checks += 1
        if not SetRelExt(h).holds(s_out1, s_out2):
            failures += 1
    result.add("append/union over random H", checks, failures)
    result.require(checks > 0, "coverage")
    result.require(failures == 0)
    return result


def cor_4_15(seed: int = 0) -> ExperimentResult:
    """Corollary 4.15 pipeline: set functions inherit parametricity from
    analogous list functions of LtoS type; cardinality (no analogous
    list function relationship) fails."""
    result = ExperimentResult(
        "E-4.15",
        "Cor 4.15: set parametricity via list analogues",
        "union from append, set-sigma from filter, set-map from map, "
        "set-ins from ins; card is NOT analogous to count and NOT "
        "rel-parametric",
        ("pair", "LtoS", "analogy", "set parametric", "transferred"),
    )
    prelude = build_prelude()
    list_pairs = [
        Tup((cvlist(0, 1), cvlist(1, 2))),
        Tup((cvlist(), cvlist(2,))),
        Tup((cvlist(0, 0), cvlist(1,))),
    ]
    plain_lists = [cvlist(0, 0), cvlist(1,), cvlist(), cvlist(0, 1, 2)]

    cases = [
        ("append->union", "append", poly(set_union), list_pairs, True),
        ("count->card", "count", poly(cardinality), plain_lists, False),
    ]
    for label, name, set_value, samples, expect in cases:
        report = transfer_parametricity(
            name, prelude.value(name), set_value, prelude.type_of(name),
            samples,
        )
        result.add(label, report.ltos, report.analogy_validated,
                   report.set_parametric, report.transferred)
        result.require(report.transferred == expect, label)

    # filter -> set_filter: higher-order; check the set side directly.
    sigma_set_type = parse_type("forall X. (X -> bool) -> {X} -> {X}")
    report = check_parametricity(
        poly(lambda p: set_filter(p)), sigma_set_type, "set-sigma",
        budget=Budget(max_list_len=2, max_set_size=2, max_pairs=200_000),
    )
    result.add("filter->set-sigma", True, "(by Example 4.14)",
               report.parametric, report.parametric)
    result.require(report.parametric, "set sigma must be parametric")

    # ins -> set_ins (Section 4.3's constant-insertion discussion).
    ins_set_type = parse_type("forall X. X -> {X} -> {X}")
    report = check_parametricity(
        poly(lambda c: set_ins(c)), ins_set_type, "set-ins"
    )
    result.add("ins->set-ins", True, "(complex value type)",
               report.parametric, report.parametric)
    result.require(report.parametric, "set ins must be parametric")

    # card is directly non-parametric at {X} -> int.
    card_type = parse_type("forall X. {X} -> int")
    report = check_parametricity(poly(cardinality), card_type, "card")
    result.add("card@{X}->int", True, "n/a", report.parametric, False)
    result.require(not report.parametric, "card must fail rel-parametricity")
    return result
