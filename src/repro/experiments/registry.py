"""Registry of all experiments, keyed by experiment id.

``run(exp_id)`` executes one experiment; ``run_all()`` the whole suite.
The ids match the per-experiment index in DESIGN.md and the sections of
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .extensions import (
    bags_genericity,
    church_lists,
    fixpoint_genericity,
    search_ablation,
)
from .inexpressibility import inexpressibility
from .optimization import opt_4_4, opt_cost_sweep
from .orders import order_preservation
from .report import ExperimentResult, render
from .static_check import static_soundness
from .table1 import table1
from .section2 import (
    example_2_2,
    example_2_6,
    lemma_2_12,
    prop_2_8,
    prop_2_10,
    prop_2_11,
    prop_2_13,
    queries_q3_q4,
    query_q5,
)
from .section3 import (
    prop_3_1_3_2,
    prop_3_3,
    prop_3_4,
    prop_3_5,
    prop_3_6,
    prop_3_7_3_8,
    thm_3_9,
)
from .section4 import (
    cor_4_15,
    example_4_14,
    lemma_4_6,
    prop_4_16,
    thm_4_4,
    thm_4_13,
)

__all__ = ["EXPERIMENTS", "run", "run_all"]

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "E-2.2": example_2_2,
    "E-2.6": example_2_6,
    "E-2.8": prop_2_8,
    "E-2.9": queries_q3_q4,
    "E-2.10": prop_2_10,
    "E-2.11": prop_2_11,
    "E-2.12": lemma_2_12,
    "E-2.13": prop_2_13,
    "E-Q5": query_q5,
    "E-3.1/3.2": prop_3_1_3_2,
    "E-3.3": prop_3_3,
    "E-3.4": prop_3_4,
    "E-3.5": prop_3_5,
    "E-3.6": prop_3_6,
    "E-3.7/3.8": prop_3_7_3_8,
    "E-3.9": thm_3_9,
    "E-4.4": thm_4_4,
    "E-4.16": prop_4_16,
    "E-4.6": lemma_4_6,
    "E-4.14": example_4_14,
    "E-4.13": thm_4_13,
    "E-4.15": cor_4_15,
    "E-TABLE1": table1,
    "E-INEXPR": inexpressibility,
    "E-STATIC": static_soundness,
    "E-ORDER": order_preservation,
    "E-BAGS": bags_genericity,
    "E-FIX": fixpoint_genericity,
    "E-CHURCH": church_lists,
    "E-ABLATION-SEARCH": search_ablation,
    "E-OPT": opt_4_4,
    "E-OPT-COST": opt_cost_sweep,
}


def run(exp_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    return EXPERIMENTS[exp_id]()


def run_all(
    ids: Iterable[str] | None = None,
    verbose: bool = False,
    jobs: int = 1,
) -> list[ExperimentResult]:
    """Run all (or the selected) experiments; optionally print reports.

    Experiments are independent (each seeds its own rng), so with
    ``jobs > 1`` they are sharded across worker processes via
    :func:`repro.parallel.parallel_map`; results come back in id order
    either way, and reports are printed only after the whole batch
    completes so the rendered output matches the serial run's.
    """
    selected = list(ids) if ids is not None else list(EXPERIMENTS)
    if jobs > 1:
        from ..parallel import parallel_map

        results = parallel_map(run, selected, jobs=jobs)
    else:
        results = [run(exp_id) for exp_id in selected]
    if verbose:
        for result in results:
            print(render(result))
            print()
    return results
