"""Experiment E-ORDER: interpreted order predicates (Section 2.5).

The paper's motivating second-order constants are ``=`` and ``<``:
``sigma_{$1>$2}`` is not C-generic for any finite C, but *is* generic
w.r.t. mappings preserving the order predicate; and "for the special
case of equality (or a total order), we arrive back at injective
functional mappings" — an order-preserving mapping of a linear order
is forced to be strictly monotone, hence injective and functional-like.

Checked here:

1. ``sigma_{$1>$2}`` is NOT generic w.r.t. plain injective mappings
   (an order-scrambling bijection breaks it);
2. it IS generic w.r.t. order-preserving mappings (strictly monotone
   injections, constructed directly);
3. every sampled general mapping that preserves ``<`` (functional
   interpretation, Section 2.5) is injective and functional — the
   "arrive back at injective functional mappings" claim;
4. ``even`` stays non-generic even for order-preserving mappings —
   order preservation does not rescue cardinality queries across
   domains of different sizes... but monotone *bijections between equal
   chains* do preserve it, which the experiment also exhibits.
"""

from __future__ import annotations

import random

from ..algebra.operators import even_query
from ..algebra.query import Query
from ..genericity.hierarchy import GenericitySpec
from ..genericity.invariance import check_invariance
from ..genericity.witnesses import find_counterexample
from ..mappings.extensions import REL
from ..mappings.families import MappingFamily, preserves_predicate
from ..mappings.generators import random_domain, random_mapping_in_class
from ..mappings.mapping import Mapping
from ..types.ast import INT, Product, SetType
from ..types.values import CVSet, Value
from .report import ExperimentResult

__all__ = ["order_preservation", "select_less_than", "monotone_family"]


def select_less_than() -> Query:
    """``sigma_{$1<$2}`` over pairs of ints — mentions ``<``."""
    t = SetType(Product((INT, INT)))

    def fn(r: Value) -> Value:
        return CVSet(row for row in r if row[0] < row[1])

    return Query(
        name="sigma[$1<$2]", fn=fn, input_type=t, output_type=t,
        uses_equality=True, notes="mentions the interpreted predicate <",
    )


def monotone_family(rng: random.Random, size: int = 4) -> MappingFamily:
    """A strictly monotone injection between two int chains."""
    left = list(range(size))
    targets = sorted(rng.sample(range(100, 100 + 3 * size), size))
    mapping = Mapping(
        set(zip(left, targets)), INT, INT,
        source_domain=left, target_domain=targets,
    )
    return MappingFamily({"int": mapping})


def order_preservation(seed: int = 0, trials: int = 200) -> ExperimentResult:
    """Run the four order-preservation checks."""
    rng = random.Random(seed)
    result = ExperimentResult(
        "E-ORDER",
        "Section 2.5: order predicates and monotone mappings",
        "sigma_{$1<$2} is generic exactly for order-preserving mappings; "
        "mappings preserving < collapse to injective functional ones",
        ("check", "outcome", "expected"),
    )
    query = select_less_than()

    # 1. Plain injective mappings break it (order scrambling).
    injective = GenericitySpec("injective", "injective")
    search = find_counterexample(query, injective, REL,
                                 trials=trials, seed=seed)
    result.add("not generic vs plain injective", search.found, True)
    result.require(search.found, "an order-scrambling injection must break it")

    # 2. Order-preserving mappings keep it invariant.
    violations = 0
    checks = 0
    from ..mappings.generators import random_relation_value

    for _ in range(trials):
        family = monotone_family(rng)
        domain = list(family["int"].source_domain)
        inputs = [
            random_relation_value(rng, 2, domain, rng.randint(0, 5))
            for _ in range(3)
        ]
        report = check_invariance(query, family, REL, inputs, rng=rng)
        checks += report.pairs_checked
        violations += 0 if report.invariant else 1
    result.add(f"invariant under monotone mappings ({checks} pairs)",
               violations == 0, True)
    result.require(violations == 0)

    # 3. Preserving < forces injectivity and functionality.
    from ..types.signatures import standard_signature

    sig = standard_signature()
    lt = sig["lt"]
    sampled = 0
    preserving = 0
    non_injective_preserving = 0
    for _ in range(trials * 3):
        left = random_domain(rng, 3, INT)
        right = random_domain(rng, 3, INT, offset=100)
        mapping = random_mapping_in_class(rng, "all", left, right, INT)
        family = MappingFamily({"int": mapping})
        sampled += 1
        if preserves_predicate(family, lt):
            preserving += 1
            if not (mapping.is_functional() and mapping.is_injective()):
                non_injective_preserving += 1
    result.add(
        f"<-preserving mappings that are injective functions "
        f"({preserving}/{sampled} preserved)",
        non_injective_preserving == 0,
        True,
    )
    result.require(preserving > 0, "sampling must hit preserving mappings")
    result.require(non_injective_preserving == 0,
                   "a <-preserving mapping must be an injective function")

    # 4. even is invariant under monotone *bijections of chains* (they
    # preserve cardinality) — the classification is orthogonal to order.
    even_violations = 0
    for _ in range(40):
        family = monotone_family(rng)
        domain = list(family["int"].source_domain)
        inputs = [CVSet(rng.sample(domain, rng.randint(0, len(domain))))
                  for _ in range(3)]
        report = check_invariance(even_query(), family, REL, inputs, rng=rng)
        even_violations += 0 if report.invariant else 1
    result.add("even invariant under monotone injections",
               even_violations == 0, True)
    result.require(even_violations == 0)
    return result
