"""Fault injection and graceful degradation.

``faults`` supplies the deterministic adversary (seeded fault plans,
the injector threaded through the executors / plan cache / parallel
harness); ``chaos`` runs the differential fuzz matrix under injected
faults and asserts the engine degrades instead of diverging.  See
``docs/ROBUSTNESS.md``.
"""

from .chaos import ChaosReport, run_chaos
from .faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    WorkerCrash,
)

__all__ = [
    "FAULT_SITES",
    "ChaosReport",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "WorkerCrash",
    "run_chaos",
]
