"""Deterministic fault injection: :class:`FaultPlan` and
:class:`FaultInjector`.

The engine's core invariant is four-way executor parity (value, work,
ledger).  This module supplies the *adversary* for that invariant: a
seeded, reproducible source of component failures threaded through the
executors, the :class:`~repro.engine.exec.cache.PlanCache`, the
write-ahead log, and the parallel harness via optional hooks.  Seven
fault sites:

* ``"operator"`` — a physical operator raises mid-execution (streaming
  and batch executors draw once per compiled operator; the compiled
  executor draws once per artifact run);
* ``"cache"`` — a result-cache entry comes back corrupted from
  ``PlanCache.get`` (value, work, or ledger tampered, seal left stale —
  the model of a poisoned/bit-flipped entry);
* ``"compile"`` — plan lowering fails (drawn before ``compile_plan``);
* ``"worker"`` — a parallel worker process dies hard
  (:class:`WorkerCrash` is the picklable ``chunk_fault`` hook for
  :func:`repro.parallel.parallel_map`; it kills the process with
  ``os._exit``, producing a real ``BrokenProcessPool``);
* ``"maintenance"`` — semi-naive delta maintenance of a cached entry
  fails mid-patch (drawn once per maintainable entry inside
  ``PlanCache.maintain``); the cache must degrade to
  invalidate-then-recompute, never serve a half-patched entry;
* ``"shard"`` — a shard worker is lost mid-shard (drawn once per shard,
  in shard order, before ``execute_sharded`` dispatches the partition);
  the fault escapes into ``Database.run``'s sharded degradation chain
  (``sharded -> batch -> stream -> reference``);
* ``"durability"`` — the write-ahead log misbehaves: an append is torn
  mid-record (a crash during the write — only a byte prefix reaches
  disk), a full record is silently bit-flipped in place (media
  corruption the per-record CRC must catch at scan time), an fsync
  fails (the mutation must abort *before* any in-memory change), or
  the process "dies" between the commit marker and the in-memory
  apply (recovery must replay the committed record).  See
  :meth:`FaultInjector.tamper_wal_line` and
  :mod:`repro.durability.wal`.

Determinism: every draw comes from one ``random.Random`` seeded from
the plan, in execution order.  Executor traversal order is itself
deterministic, so a given (seed, rates, workload) injects the same
faults at the same sites on every run — a chaos failure always
reproduces.  ``FaultInjector.injected`` counts what actually fired, per
site, so harnesses can assert that degradation events line up with
injections.

The hooks are ``None`` by default everywhere; the disabled path costs
one ``is not None`` check per site.
"""

from __future__ import annotations

import os
import random
import zlib
from dataclasses import dataclass

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "WorkerCrash",
]

#: Fault sites an injector understands, in documentation order.
FAULT_SITES = (
    "operator", "cache", "compile", "worker", "maintenance", "shard",
    "durability",
)


class InjectedFault(RuntimeError):
    """An exception raised *on purpose* by a :class:`FaultInjector`.

    Carries the site and label it fired at, so degradation records and
    chaos reports can say exactly which injection a fallback answered.
    """

    def __init__(self, site: str, label: str = "") -> None:
        self.site = site
        self.label = label
        detail = f"injected {site} fault"
        if label:
            detail += f" at {label}"
        super().__init__(detail)


def _derive_seed(*parts) -> int:
    """A stable 32-bit seed from structured parts (no ``hash()`` — that
    is salted per process and would break cross-run determinism)."""
    return zlib.crc32(repr(parts).encode("utf-8"))


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault rates per site.  All rates default to 0.0 (never
    fire); 1.0 fires on every draw.  The plan is immutable — one plan
    can parameterize many injectors."""

    seed: int = 0
    operator_rate: float = 0.0
    cache_rate: float = 0.0
    compile_rate: float = 0.0
    worker_rate: float = 0.0
    maintenance_rate: float = 0.0
    shard_rate: float = 0.0
    durability_rate: float = 0.0

    def rate_for(self, site: str) -> float:
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; choose from {FAULT_SITES}"
            )
        return getattr(self, f"{site}_rate")


class FaultInjector:
    """Draws seeded faults for one execution context.

    ``maybe_raise(site, label)`` raises :class:`InjectedFault` at the
    site's configured rate; ``tamper_entry(entry)`` returns a corrupted
    copy of a cache entry at the ``cache`` rate (the stored seal is
    deliberately kept stale, so fingerprint revalidation can catch it).
    ``injected`` counts fired faults per site.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(_derive_seed("fault-injector", plan.seed))
        self.injected: dict[str, int] = {}
        self.draws = 0

    def _fire(self, site: str) -> bool:
        rate = self.plan.rate_for(site)
        self.draws += 1
        if rate <= 0.0:
            return False
        if self._rng.random() >= rate:
            return False
        self.injected[site] = self.injected.get(site, 0) + 1
        return True

    def maybe_raise(self, site: str, label: str = "") -> None:
        """Raise :class:`InjectedFault` at ``site``'s configured rate."""
        if self._fire(site):
            raise InjectedFault(site, label)

    def tamper_entry(self, entry):
        """Return ``entry`` or a corrupted copy of it (``cache`` site).

        Three corruption shapes, chosen by the seeded rng: a wrong
        value (an extra sentinel row), a wrong work total, or a
        tampered ledger.  The copy keeps the original's seal, modelling
        an entry whose bytes changed after it was sealed.
        """
        if not self._fire("cache"):
            return entry
        from ..engine.exec.cache import CacheEntry
        from ..types.values import CVSet, Tup

        shape = self._rng.randrange(3)
        if shape == 0:
            wrong_value = CVSet(
                list(entry.value) + [Tup(("__corrupt__",))]
            )
            return CacheEntry(
                wrong_value, entry.work, entry.entries, entry.relations,
                entry.seal,
            )
        if shape == 1:
            return CacheEntry(
                entry.value, entry.work + 1, entry.entries,
                entry.relations, entry.seal,
            )
        return CacheEntry(
            entry.value, entry.work,
            entry.entries + (("__corrupt__", 1),), entry.relations,
            entry.seal,
        )

    def tamper_wal_line(self, line: bytes) -> tuple[bytes, "str | None"]:
        """Corrupt one encoded WAL record (``durability`` site).

        Returns ``(bytes_to_write, crash_label)``.  Three shapes,
        chosen by the seeded rng:

        * **truncate-at-byte-k** — only a prefix of the record reaches
          disk and the writer "crashes" (``crash_label`` is set; the
          WAL raises :class:`InjectedFault` after writing).  Recovery
          must drop the torn tail;
        * **torn record** — a prefix plus garbage bytes, no
          terminating newline, then the crash.  Same requirement,
          nastier bytes;
        * **bit flip** — a full-length record with one byte flipped,
          written *silently* (no crash, the writer carries on).  The
          per-record CRC must catch it at scan time, ending the
          readable prefix there.

        The final newline byte is never the flip target — corrupting
        the framing alone would only split the line, which the decoder
        already rejects; flipping content exercises the CRC.
        """
        if not self._fire("durability"):
            return line, None
        body = max(1, len(line) - 1)  # keep off the trailing newline
        shape = self._rng.randrange(3)
        if shape == 0:
            return line[: self._rng.randrange(body)], "torn-write"
        if shape == 1:
            k = self._rng.randrange(body)
            return line[:k] + b"\x00\xffgarbage", "torn-record"
        i = self._rng.randrange(body)
        flipped = bytes([line[i] ^ 0x40])
        return line[:i] + flipped + line[i + 1 :], None

    def total_injected(self) -> int:
        return sum(self.injected.values())

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.plan.seed}, "
            f"injected={self.injected})"
        )


@dataclass(frozen=True)
class WorkerCrash:
    """Picklable worker-crash hook for
    :func:`repro.parallel.parallel_map`'s ``chunk_fault`` parameter.

    Called in the *worker process* as ``fault(chunk_index, attempt)``
    before the chunk runs.  A chunk crashes (hard, via ``os._exit``)
    when its seeded draw fires **and** ``attempt < crash_attempts`` —
    so the default configuration crashes a chunk's first attempt only,
    and the bounded retry must recover it.  ``crash_attempts`` larger
    than the harness's retry budget forces the in-parent serial
    fallback instead (the parent never calls this hook).

    Whether a chunk crashes depends only on ``(seed, chunk_index)``, so
    the same chunks crash on every run — crash recovery is as
    reproducible as every other fault site.
    """

    seed: int = 0
    rate: float = 0.5
    crash_attempts: int = 1

    def crashes(self, chunk_index: int) -> bool:
        rng = random.Random(
            _derive_seed("worker-crash", self.seed, chunk_index)
        )
        return rng.random() < self.rate

    def __call__(self, chunk_index: int, attempt: int) -> None:
        if attempt < self.crash_attempts and self.crashes(chunk_index):
            # A hard exit, not an exception: the pool sees a dead
            # process, exactly like a segfault or an OOM kill.
            os._exit(3)
