"""Chaos harness: the differential fuzz matrix under injected faults.

Each seed builds a live :class:`~repro.engine.database.Database`,
draws per-site fault rates from its seeded rng, attaches a
:class:`~repro.robustness.faults.FaultInjector`, and runs random plans
through every executor mode — stream, batch, compiled, auto, sharded
(partition-parallel, under ``shard`` faults that must degrade down
``SHARDED_CHAIN``), warm-cache repeats, and post-mutation re-runs.  The oracle is the reference
interpreter, which sits outside the fault surface (no cache, no
compiler, no injection hooks), so its answer is always the fault-free
truth.  Two invariants, checked per execution:

* **zero semantic divergences** — whatever faults fired, the answer the
  engine returns (possibly after degrading down the executor chain)
  has the reference's exact value, work, and per-node ledger;
* **zero unhandled escapes** — no injected fault propagates out of
  ``Database.run``; the degradation chain absorbs every one.

Every ``crash_every`` seeds the harness also runs a worker-crash
scenario: :func:`~repro.parallel.parallel_map` under a seeded
:class:`~repro.robustness.faults.WorkerCrash` hook, asserting the
merged output is byte-identical to the serial path both through the
bounded retry and through the in-parent serial fallback.

Every seed additionally plays a **recovery** scenario against the
durability subsystem (:mod:`repro.durability`): a scripted mutation
sequence runs through a WAL-attached database (under drawn
``durability`` fault rates — torn appends, silent bit flips, failed
fsyncs, crashes between commit and apply), then the resulting log is
crash-truncated at *every record boundary* plus a sampled set of
intra-record byte offsets, and each truncation is recovered and
checked against the golden prefixes: a recovered database must be
content-, fingerprint- and generation-identical to one that applied
some prefix of the committed mutations in-process.  A deliberate
mid-record bit flip is recovered the same way — the CRC must stop the
replay at the corruption, still yielding a committed prefix.

Determinism: everything — database contents, plans, fault rates, which
draws fire — derives from ``(base_seed, seed)``, so a chaos failure
always reproduces under the same arguments.

CLI: ``python -m repro chaos --seeds N`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field

from ..durability import WAL_NAME, DurabilityManager, recover
from ..engine.database import Database
from ..engine.serialize import database_to_json
from ..engine.workload import derive_rng, random_database, random_plan
from ..obs.metrics import REGISTRY
from ..parallel import parallel_map
from ..types.values import CVSet, Tup
from .faults import FaultInjector, FaultPlan, InjectedFault, WorkerCrash

__all__ = ["ChaosReport", "run_chaos"]

_NAMES = ("r", "s", "t")
_MODES = ("stream", "batch", "compiled", "auto")

#: Per-site rate menu each seed draws from.  Zero keeps the disabled
#: path honest; 1.0 forces full-chain degradation down to the
#: reference; the middle rates exercise partial fallbacks and
#: corruption-amid-hits.
_RATES = (0.0, 0.1, 0.35, 1.0)


@dataclass(frozen=True)
class ChaosFailure:
    """One broken invariant: a semantic divergence or an escape."""

    seed: int
    kind: str  # "divergence" | "escape"
    mode: str
    detail: str

    def __str__(self) -> str:
        return f"seed={self.seed} mode={self.mode} [{self.kind}]: {self.detail}"


@dataclass
class ChaosReport:
    """Aggregate outcome of a chaos run."""

    seeds: int = 0
    checks: int = 0
    injected: dict = field(default_factory=dict)
    degradations: int = 0
    corruptions_caught: int = 0
    maintenance_fallbacks: int = 0
    crash_scenarios: int = 0
    recovery_scenarios: int = 0
    recovery_points: int = 0
    divergences: list = field(default_factory=list)
    escapes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.escapes

    def summary(self) -> str:
        fired = ", ".join(
            f"{site}={count}" for site, count in sorted(self.injected.items())
        ) or "none"
        lines = [
            f"chaos: {self.seeds} seeds, {self.checks} checks, "
            f"{self.crash_scenarios} worker-crash scenarios",
            f"  faults injected: {fired}",
            f"  degradations: {self.degradations}, "
            f"cache corruptions caught: {self.corruptions_caught}, "
            f"maintenance fallbacks: {self.maintenance_fallbacks}",
            f"  recovery: {self.recovery_scenarios} scenario(s), "
            f"{self.recovery_points} crash point(s) recovered",
        ]
        if self.ok:
            lines.append("  zero semantic divergences, zero escapes")
        else:
            failures = self.divergences + self.escapes
            lines.append(
                f"  {len(self.divergences)} DIVERGENCE(S), "
                f"{len(self.escapes)} ESCAPE(S):"
            )
            for f in failures[:20]:
                lines.append(f"    {f}")
            if len(failures) > 20:
                lines.append(f"    ... and {len(failures) - 20} more")
        return "\n".join(lines)


def _mismatch(got, want) -> str | None:
    if got.value != want.value:
        return (
            f"value mismatch: engine {len(got.value)} rows, "
            f"reference {len(want.value)} rows"
        )
    if got.work != want.work:
        return f"work mismatch: engine {got.work}, reference {want.work}"
    if got.per_node != want.per_node:
        return (
            f"ledger mismatch: engine {len(got.per_node)} entries, "
            f"reference {len(want.per_node)}"
        )
    return None


def _build_database(rng) -> Database:
    """A populated Database (not a bare mapping — chaos must exercise
    the cache, the stats memos, and the degradation path in ``run``)."""
    db = Database(cache_capacity=32)
    contents = random_database(rng, _NAMES)
    for name in _NAMES:
        db.create(name, 2)
        db.insert(name, [tuple(t) for t in contents[name]])
    return db


def _check_seed(report: ChaosReport, base_seed: int, seed: int) -> None:
    rng = derive_rng("chaos", base_seed, seed)
    db = _build_database(rng)
    plans = [
        random_plan(rng, _NAMES, depth=rng.randint(2, 4))
        for _ in range(rng.randint(1, 3))
    ]
    fault_plan = FaultPlan(
        seed=derive_rng("chaos-rates", base_seed, seed).randrange(2**31),
        operator_rate=rng.choice(_RATES),
        cache_rate=rng.choice(_RATES),
        compile_rate=rng.choice(_RATES),
        maintenance_rate=rng.choice(_RATES),
        shard_rate=rng.choice(_RATES),
    )
    injector = FaultInjector(fault_plan)

    def check(plan, mode: str, use_cache: bool, shards=None) -> None:
        # The oracle runs with injection detached; run_reference never
        # touches the cache or the injector, but detaching makes the
        # fault-free contract explicit and keeps draw sequences tied to
        # engine executions only.
        db.fault_injector = None
        want = db.run_reference(plan)
        db.fault_injector = injector
        report.checks += 1
        try:
            got = db.run(plan, mode=mode, use_cache=use_cache, shards=shards)
        except Exception as exc:  # noqa: BLE001 — escapes are the finding
            report.escapes.append(
                ChaosFailure(
                    seed, "escape", mode, f"{type(exc).__name__}: {exc}"
                )
            )
            return
        detail = _mismatch(got, want)
        if detail is not None:
            report.divergences.append(
                ChaosFailure(seed, "divergence", mode, detail)
            )

    for plan in plans:
        for mode in _MODES:
            check(plan, mode, use_cache=False)
        # Sharded tier: ``shard`` faults fire in the parent before
        # dispatch and must degrade down SHARDED_CHAIN
        # (sharded -> batch -> stream -> reference), never escape.
        check(plan, "sharded", use_cache=False, shards=rng.choice((2, 4)))
        # Warm path: first run populates, second must revalidate any
        # tampered entry instead of serving it.
        check(plan, "stream", use_cache=True)
        check(plan, rng.choice(_MODES), use_cache=True)

    # Mutate and re-check: delta maintenance + degradation interplay.
    # The injector stays attached through the insert, so the
    # ``maintenance`` site fires *inside* ``PlanCache.maintain`` —
    # which must degrade to invalidate-then-recompute, never serve a
    # half-patched entry or let the fault escape ``insert``.
    mutated = rng.choice(_NAMES)
    db.fault_injector = injector
    report.checks += 1
    try:
        db.insert(
            mutated,
            [(rng.randrange(6), rng.randrange(6))
             for _ in range(rng.randint(1, 3))],
        )
    except Exception as exc:  # noqa: BLE001 — escapes are the finding
        report.escapes.append(
            ChaosFailure(
                seed, "escape", "maintain", f"{type(exc).__name__}: {exc}"
            )
        )
    for plan in plans[:1]:
        check(plan, "stream", use_cache=True)
        check(plan, rng.choice(_MODES), use_cache=True)

    report.corruptions_caught += db.plan_cache.corruptions
    for site, count in injector.injected.items():
        report.injected[site] = report.injected.get(site, 0) + count


def _recovery_digest(db: Database) -> tuple:
    """Everything recovery must get byte-identical: relation contents
    + schema (canonical JSON), the mutation generation (which keys the
    stats/mode memos), and every relation fingerprint (which keys the
    plan-result cache)."""
    return (
        json.dumps(database_to_json(db), sort_keys=True),
        db._generation,
        tuple(
            sorted((name, db.fingerprint(name)) for name in db.relations)
        ),
    )


def _random_mutation_script(rng) -> tuple[dict, list]:
    """Deterministic base contents + a short mutation script, drawn up
    front so the golden (in-process) and WAL-attached runs replay the
    exact same sequence."""
    base_rows = {
        name: sorted(
            {(rng.randrange(5), rng.randrange(5))
             for _ in range(rng.randint(1, 4))}
        )
        for name in _NAMES
    }
    ops: list = []
    for i in range(rng.randint(3, 6)):
        kind = rng.randrange(6)
        if kind == 0:
            ops.append(("create", f"u{i}", 2))
        elif kind == 1:
            name = rng.choice(_NAMES)
            ops.append((
                "replace", name,
                [(rng.randrange(5), rng.randrange(5))
                 for _ in range(rng.randint(1, 3))],
            ))
        else:
            name = rng.choice(_NAMES)
            ops.append((
                "insert", name,
                [(rng.randrange(9), rng.randrange(9))
                 for _ in range(rng.randint(1, 3))],
            ))
    return base_rows, ops


def _apply_op(db: Database, op: tuple) -> None:
    kind, name = op[0], op[1]
    if kind == "create":
        db.create(name, op[2])
    elif kind == "insert":
        db.insert(name, op[2])
    else:
        db[name] = CVSet(Tup(row) for row in op[2])


def _check_recovery(report: ChaosReport, base_seed: int, seed: int) -> None:
    """The crash-recovery differential: every truncation point of the
    WAL must recover to *some prefix* of the committed mutations."""
    rng = derive_rng("chaos-recovery", base_seed, seed)
    base_rows, ops = _random_mutation_script(rng)

    def build_base() -> Database:
        db = Database(cache_capacity=32)
        for name in _NAMES:
            db.create(name, 2)
            db.insert(name, base_rows[name])
        return db

    # Golden prefixes: digest after applying ops[:k] in-process, for
    # every k.  Any crash point must recover to one of these.
    shadow = build_base()
    golden = [_recovery_digest(shadow)]
    for op in ops:
        _apply_op(shadow, op)
        golden.append(_recovery_digest(shadow))
    golden_set = set(golden)
    report.recovery_scenarios += 1

    injector = FaultInjector(FaultPlan(
        seed=derive_rng("chaos-recovery-rates", base_seed, seed)
        .randrange(2**31),
        durability_rate=rng.choice(_RATES),
    ))
    with tempfile.TemporaryDirectory() as workdir:
        state_dir = os.path.join(workdir, "state")
        live = build_base()
        # Attaching durability *after* the base build auto-checkpoints
        # it: the base state is the snapshot and the script is the
        # log — the same split a long-lived database would have.
        live.durability = DurabilityManager(
            state_dir,
            fsync=False,
            checkpoint_every=rng.choice((None, None, 2)),
            fault_injector=injector,
        )
        for op in ops:
            try:
                _apply_op(live, op)
            except InjectedFault:
                break  # the simulated crash: the process is "dead"
            except Exception as exc:  # noqa: BLE001 — escapes are the finding
                report.escapes.append(ChaosFailure(
                    seed, "escape", "recovery",
                    f"{type(exc).__name__}: {exc}",
                ))
                return

        wal_path = os.path.join(state_dir, WAL_NAME)
        with open(wal_path, "rb") as handle:
            data = handle.read()

        # Crash points: every record boundary (including the empty log
        # and the full log) plus sampled intra-record byte offsets.
        offsets = {0, len(data)}
        offsets.update(
            i + 1 for i, byte in enumerate(data) if byte == 0x0A
        )
        if data:
            offsets.update(
                rng.sample(range(len(data)), min(6, len(data)))
            )

        scratch = os.path.join(workdir, "crash")
        os.makedirs(scratch)
        checkpoint_src = os.path.join(state_dir, "checkpoint.json")
        if os.path.exists(checkpoint_src):
            shutil.copy(checkpoint_src, scratch)

        def check_recovered(tag: str, wal_bytes: bytes) -> None:
            with open(os.path.join(scratch, WAL_NAME), "wb") as handle:
                handle.write(wal_bytes)
            report.checks += 1
            report.recovery_points += 1
            try:
                recovered, _ = recover(scratch)
            except Exception as exc:  # noqa: BLE001 — escapes are the finding
                report.escapes.append(ChaosFailure(
                    seed, "escape", "recovery",
                    f"{tag}: {type(exc).__name__}: {exc}",
                ))
                return
            if _recovery_digest(recovered) not in golden_set:
                report.divergences.append(ChaosFailure(
                    seed, "divergence", "recovery",
                    f"{tag}: recovered database matches no committed "
                    f"prefix (gen {recovered._generation})",
                ))

        for offset in sorted(offsets):
            check_recovered(f"truncate@{offset}", data[:offset])

        # A mid-record bit flip (media corruption, not truncation):
        # the CRC must end the readable prefix at the flip, still
        # yielding a committed prefix.
        if data:
            flip_at = rng.randrange(len(data))
            if data[flip_at] != 0x0A:  # keep the framing, break the CRC
                flipped = (
                    data[:flip_at]
                    + bytes([data[flip_at] ^ 0x20])
                    + data[flip_at + 1:]
                )
                check_recovered(f"bitflip@{flip_at}", flipped)

    for site, count in injector.injected.items():
        report.injected[site] = report.injected.get(site, 0) + count


def _square_shift(x: int) -> int:
    """Top-level (picklable) worker for the crash scenario."""
    return x * x + 7


def _check_worker_crash(
    report: ChaosReport, base_seed: int, seed: int
) -> None:
    rng = derive_rng("chaos-crash", base_seed, seed)
    items = list(range(rng.randint(12, 30)))
    serial = [_square_shift(x) for x in items]
    crash_seed = rng.randrange(2**31)
    report.crash_scenarios += 1
    # Recoverable: each crashing chunk dies on its first attempt only.
    report.checks += 1
    recovered = parallel_map(
        _square_shift,
        items,
        jobs=2,
        chunk_size=4,
        chunk_fault=WorkerCrash(seed=crash_seed, rate=0.5, crash_attempts=1),
    )
    if recovered != serial:
        report.divergences.append(
            ChaosFailure(
                seed, "divergence", "parallel",
                "crash-retry merge differs from serial output",
            )
        )
    # Unrecoverable in-pool: forces the in-parent serial fallback.
    report.checks += 1
    fallback = parallel_map(
        _square_shift,
        items,
        jobs=2,
        chunk_size=4,
        max_chunk_retries=1,
        chunk_fault=WorkerCrash(seed=crash_seed, rate=0.5, crash_attempts=9),
    )
    if fallback != serial:
        report.divergences.append(
            ChaosFailure(
                seed, "divergence", "parallel",
                "serial-fallback merge differs from serial output",
            )
        )


def run_chaos(
    seeds: int = 50, *, base_seed: int = 0, crash_every: int = 25
) -> ChaosReport:
    """Run the chaos matrix over ``seeds`` seeds; see the module doc.

    ``crash_every <= 0`` disables the worker-crash scenarios (they
    spawn process pools, so e.g. doctest environments may want them
    off).
    """
    report = ChaosReport(seeds=seeds)
    before = REGISTRY.snapshot().get("counters", {})
    for seed in range(seeds):
        _check_seed(report, base_seed, seed)
        _check_recovery(report, base_seed, seed)
        if crash_every > 0 and seed % crash_every == crash_every - 1:
            _check_worker_crash(report, base_seed, seed)
    after = REGISTRY.snapshot().get("counters", {})
    report.degradations = after.get("robustness.degraded", 0) - before.get(
        "robustness.degraded", 0
    )
    report.maintenance_fallbacks = after.get(
        "robustness.maintenance.fallback", 0
    ) - before.get("robustness.maintenance.fallback", 0)
    return report
