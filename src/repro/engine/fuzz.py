"""Differential fuzzing of the streaming engine against the reference.

The streaming executor's contract is *bit-for-bit agreement* with the
reference interpreter — same ``CVSet`` answer, same total work, same
per-node postorder ledger — for every plan over every database, in
every cache state.  The property tests pin that contract on curated
plans; this harness hammers it with generated ones:

* **random** — random plans over random tuple databases;
* **nested** — the same plans over databases whose components are
  nested complex values (tuples, sets, lists);
* **atoms** — set-operation trees over relations of bare atoms, the
  inputs that once crashed the bulk path's inline ``len(t)`` weighting;
* **alias** — one ``predicate_name`` bound to *different* closures
  across (and within) plans sharing a cache — the cache-poisoning
  repro, generalized;
* **deep** — unary chains hundreds to thousands of operators deep
  (recursion-safety, pipeline-depth cutting);
* **mutation** — a live :class:`~repro.engine.database.Database`
  mutated between runs (inserts and wholesale replacement), checking
  that invalidation keeps the shared cache honest.

Every generated plan is executed in up to three modes — cold (no
cache), fresh cache (cold run then warm re-run), and a cache shared
across the whole scenario — and each run is compared against the
reference.  Any mismatch is recorded as a :class:`Divergence`.

Entry points: :func:`run_fuzz` (library) and ``python -m repro fuzz
--seeds N`` (CLI, exits non-zero on divergence).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping as TMapping, Optional

from ..optimizer.plan import (
    Difference,
    Intersect,
    MapNode,
    Plan,
    Scan,
    Select,
    Union,
    execute_reference,
)
from ..types.values import CVSet, Tup, Value
from .database import Database
from .exec import PlanCache, execute_streaming
from .workload import (
    deep_chain_plan,
    random_atom_database,
    random_database,
    random_nested_database,
    random_plan,
)

__all__ = ["Divergence", "FuzzReport", "run_fuzz", "SCENARIOS"]


@dataclass(frozen=True)
class Divergence:
    """One disagreement between streaming and reference execution."""

    seed: int
    scenario: str
    mode: str
    detail: str

    def __str__(self) -> str:
        return (
            f"seed={self.seed} scenario={self.scenario} "
            f"mode={self.mode}: {self.detail}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz run."""

    seeds: int = 0
    checks: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    per_scenario: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.seeds} seeds, {self.checks} differential checks"
        ]
        for name in sorted(self.per_scenario):
            lines.append(f"  {name:10} {self.per_scenario[name]} checks")
        if self.ok:
            lines.append("  zero divergences")
        else:
            lines.append(f"  {len(self.divergences)} DIVERGENCE(S):")
            for d in self.divergences[:20]:
                lines.append(f"    {d}")
            if len(self.divergences) > 20:
                lines.append(
                    f"    ... and {len(self.divergences) - 20} more"
                )
        return "\n".join(lines)


def _describe_mismatch(got, want) -> Optional[str]:
    if got.value != want.value:
        return (
            f"value mismatch: streaming {len(got.value)} rows, "
            f"reference {len(want.value)} rows"
        )
    if got.work != want.work:
        return f"work mismatch: streaming {got.work}, reference {want.work}"
    if got.per_node != want.per_node:
        return (
            f"ledger mismatch: streaming {len(got.per_node)} entries, "
            f"reference {len(want.per_node)}"
        )
    return None


class _Checker:
    """Runs one plan through the execution modes, recording divergences."""

    def __init__(self, report: FuzzReport, seed: int, scenario: str) -> None:
        self.report = report
        self.seed = seed
        self.scenario = scenario
        self.shared = PlanCache()

    def _record(self, mode: str, detail: str) -> None:
        self.report.divergences.append(
            Divergence(self.seed, self.scenario, mode, detail)
        )

    def _compare(self, mode: str, got, want) -> None:
        self.report.checks += 1
        self.report.per_scenario[self.scenario] = (
            self.report.per_scenario.get(self.scenario, 0) + 1
        )
        detail = _describe_mismatch(got, want)
        if detail is not None:
            self._record(mode, detail)

    def check(
        self,
        plan: Plan,
        db: TMapping[str, CVSet],
        *,
        modes: tuple[str, ...] = ("cold", "fresh", "shared"),
    ) -> None:
        reference = execute_reference(plan, db)
        if "cold" in modes:
            self._compare("cold", execute_streaming(plan, db), reference)
        if "fresh" in modes:
            fresh = PlanCache()
            self._compare(
                "fresh-cold",
                execute_streaming(plan, db, cache=fresh),
                reference,
            )
            self._compare(
                "fresh-warm",
                execute_streaming(plan, db, cache=fresh),
                reference,
            )
        if "shared" in modes:
            self._compare(
                "shared",
                execute_streaming(plan, db, cache=self.shared),
                reference,
            )


# ----------------------------------------------------------------------
# Scenario generators.  Each takes (rng, checker) and drives the checker
# through one seed's worth of plans.

_NAMES = ("r", "s", "t")


def _scenario_random(rng: random.Random, check: _Checker) -> None:
    db = random_database(rng, _NAMES)
    for _ in range(3):
        check.check(random_plan(rng, _NAMES, depth=rng.randint(1, 4)), db)


def _scenario_nested(rng: random.Random, check: _Checker) -> None:
    db = random_nested_database(rng, _NAMES)
    for _ in range(3):
        check.check(random_plan(rng, _NAMES, depth=rng.randint(1, 3)), db)


def _atom_even(v: Value) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v % 2 == 0


def _atom_wrap(v: Value) -> Value:
    return Tup((v,))


def _random_atom_plan(rng: random.Random, depth: int) -> Plan:
    """Set-operation trees over atom relations (no positional access)."""
    if depth <= 0:
        return Scan(rng.choice(_NAMES))
    kind = rng.randrange(5)
    if kind == 0:
        return Select("atom_even", _atom_even, _random_atom_plan(rng, depth - 1))
    if kind == 1:
        return MapNode("wrap", _atom_wrap, _random_atom_plan(rng, depth - 1),
                       injective=True)
    op = (Union, Difference, Intersect)[kind - 2]
    return op(_random_atom_plan(rng, depth - 1),
              _random_atom_plan(rng, depth - 1))


def _scenario_atoms(rng: random.Random, check: _Checker) -> None:
    db = random_atom_database(rng, _NAMES)
    # Always include the bulk fast path (set op over two bare scans)...
    op = rng.choice((Union, Difference, Intersect))
    check.check(op(Scan(rng.choice(_NAMES)), Scan(rng.choice(_NAMES))), db)
    # ...and a couple of deeper trees.
    for _ in range(2):
        check.check(_random_atom_plan(rng, rng.randint(1, 3)), db)


def _threshold_pred(k: int) -> Callable[[Value], bool]:
    def pred(t: Value) -> bool:
        try:
            return t[0] >= k
        except TypeError:
            return False

    return pred


def _scenario_alias(rng: random.Random, check: _Checker) -> None:
    """Adversarial name aliasing: one name, many closures, one cache."""
    db = random_database(rng, _NAMES)
    base = Scan(rng.choice(_NAMES))
    thresholds = rng.sample(range(-1, 7), rng.randint(2, 4))
    # Across plans sharing check.shared: a poisoned cache would replay
    # the first threshold's answer for all of them.
    for k in thresholds:
        check.check(Select("thresh", _threshold_pred(k), base), db)
    # Within one plan: the CSE memo must also key on semantics, not
    # just on structural (name-based) equality.
    k1, k2 = thresholds[0], thresholds[1]
    check.check(
        Union(
            Select("thresh", _threshold_pred(k1), base),
            Select("thresh", _threshold_pred(k2), base),
        ),
        db,
    )


def _scenario_deep(rng: random.Random, check: _Checker) -> None:
    db = random_database(rng, _NAMES)
    depth = rng.randint(600, 1500)
    plan = deep_chain_plan(rng, rng.choice(_NAMES), depth)
    # Deep chains are expensive; skip the redundant fresh-cache pair.
    check.check(plan, db, modes=("cold", "shared"))


def _scenario_mutation(rng: random.Random, check: _Checker) -> None:
    """A live database mutated mid-sweep; its own cache must stay honest."""
    db = Database()
    for name in _NAMES:
        db.create(name, 2)
        db.insert(
            name,
            {
                (rng.randrange(5), rng.randrange(5))
                for _ in range(rng.randint(0, 8))
            },
        )
    for _ in range(3):
        plan = random_plan(rng, _NAMES, depth=rng.randint(1, 3))
        check._compare("db-warmup", db.run(plan), db.run_reference(plan))
        victim = rng.choice(_NAMES)
        if rng.random() < 0.5:
            db.insert(
                victim,
                [(rng.randrange(5), rng.randrange(5))
                 for _ in range(rng.randint(1, 3))],
            )
        else:
            db[victim] = CVSet(
                Tup((rng.randrange(5), rng.randrange(5)))
                for _ in range(rng.randint(0, 6))
            )
        check._compare("db-mutated", db.run(plan), db.run_reference(plan))


SCENARIOS: dict[str, Callable[[random.Random, _Checker], None]] = {
    "random": _scenario_random,
    "nested": _scenario_nested,
    "atoms": _scenario_atoms,
    "alias": _scenario_alias,
    "mutation": _scenario_mutation,
    "deep": _scenario_deep,
}


def run_fuzz(
    seeds: int,
    *,
    base_seed: int = 0,
    deep_every: int = 10,
    scenarios: Optional[tuple[str, ...]] = None,
) -> FuzzReport:
    """Run ``seeds`` differential fuzz iterations.

    Each seed cycles through the cheap scenarios; the expensive ``deep``
    scenario runs every ``deep_every``-th seed.  ``scenarios`` restricts
    the set (by name) when given.  Determinism: seed ``i`` always plays
    the same plans against the same databases, independent of the
    overall count.
    """
    active = tuple(scenarios) if scenarios is not None else tuple(SCENARIOS)
    unknown = [name for name in active if name not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s): {', '.join(unknown)}")
    report = FuzzReport()
    cheap = [name for name in active if name != "deep"]
    for i in range(seeds):
        report.seeds += 1
        names: list[str] = []
        if cheap:
            names.append(cheap[i % len(cheap)])
        if "deep" in active and deep_every > 0 and i % deep_every == 0:
            names.append("deep")
        for name in names:
            rng = random.Random(f"{base_seed}/{i}/{name}")
            SCENARIOS[name](rng, _Checker(report, base_seed + i, name))
    return report
