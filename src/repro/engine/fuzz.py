"""Differential fuzzing of the streaming engine against the reference.

The streaming executor's contract is *bit-for-bit agreement* with the
reference interpreter — same ``CVSet`` answer, same total work, same
per-node postorder ledger — for every plan over every database, in
every cache state.  The property tests pin that contract on curated
plans; this harness hammers it with generated ones:

* **random** — random plans over random tuple databases;
* **nested** — the same plans over databases whose components are
  nested complex values (tuples, sets, lists);
* **atoms** — set-operation trees over relations of bare atoms, the
  inputs that once crashed the bulk path's inline ``len(t)`` weighting;
* **alias** — one ``predicate_name`` bound to *different* closures
  across (and within) plans sharing a cache — the cache-poisoning
  repro, generalized;
* **deep** — unary chains hundreds to thousands of operators deep
  (recursion-safety, pipeline-depth cutting);
* **mutation** — a live :class:`~repro.engine.database.Database`
  mutated between runs (inserts and wholesale replacement), checking
  that invalidation keeps the shared cache honest;
* **delta** — random insert/query interleavings against a live
  database, differentially checking semi-naive *delta maintenance* of
  cached entries (``engine/exec/delta.py``): after every insert, warm
  cached answers across streaming/batch/compiled modes must be
  byte-identical to cold recomputation — value, work, and per-node
  ledger — whether an entry was patched in place or invalidated;
* **compiled** — the plan compiler hammered directly: artifact-store
  reuse across calls, aliased predicates sharing one cache, nested
  databases, cost-driven ``mode="auto"`` on a live database, and the
  deep-chain fallback to streaming;
* **trace** — every plan run traced in streaming *and* batch mode:
  results must still match the reference (observer effect zero), each
  span tree's work must sum to the executor's ledger total, and the
  two executors' span trees must agree node-for-node on rows, work and
  cache annotations (:meth:`repro.obs.trace.Span.structure`) — shared
  subplans served by CSE included.  Trace checks also exercise the
  metrics registry, whose totals ``run_fuzz(jobs=N)`` merges across
  worker processes.

Every generated plan is executed in up to nine modes — cold (no
cache), fresh cache (cold run then warm re-run), and a cache shared
across the whole scenario, for each of the streaming, batch and
compiled executors (the shared runs all probe the *same* cache, so
cross-executor cache interop — including results a compiled run
materialized being served to a streaming run — is fuzzed too) — and
each run is compared against the reference.  Any mismatch is recorded
as a :class:`Divergence`.

Seeds are independent by construction: every scenario derives its rng
as ``derive_rng(base_seed, i, scenario)``, so seed ``i`` plays the same
plans regardless of how many seeds run or which process runs it.  That
is what lets ``run_fuzz(jobs=N)`` shard seeds across worker processes
(:func:`repro.parallel.parallel_map`) and still merge a byte-identical
report.

Entry points: :func:`run_fuzz` (library) and ``python -m repro fuzz
--seeds N [--jobs N]`` (CLI, exits non-zero on divergence).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping as TMapping, Optional

from ..obs.metrics import counter, observe
from ..obs.trace import Tracer
from ..optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Scan,
    Select,
    Union,
    execute_reference,
)
from ..types.values import CVSet, Tup, Value
from .database import Database
from .exec import (
    PlanCache,
    execute_batch,
    execute_compiled,
    execute_sharded,
    execute_streaming,
)
from .workload import (
    deep_chain_plan,
    derive_rng,
    random_atom_database,
    random_database,
    random_nested_database,
    random_plan,
)

__all__ = ["Divergence", "FuzzReport", "run_fuzz", "SCENARIOS"]


@dataclass(frozen=True)
class Divergence:
    """One disagreement between streaming and reference execution."""

    seed: int
    scenario: str
    mode: str
    detail: str

    def __str__(self) -> str:
        return (
            f"seed={self.seed} scenario={self.scenario} "
            f"mode={self.mode}: {self.detail}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz run."""

    seeds: int = 0
    checks: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    per_scenario: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.seeds} seeds, {self.checks} differential checks"
        ]
        for name in sorted(self.per_scenario):
            lines.append(f"  {name:10} {self.per_scenario[name]} checks")
        if self.ok:
            lines.append("  zero divergences")
        else:
            lines.append(f"  {len(self.divergences)} DIVERGENCE(S):")
            for d in self.divergences[:20]:
                lines.append(f"    {d}")
            if len(self.divergences) > 20:
                lines.append(
                    f"    ... and {len(self.divergences) - 20} more"
                )
        return "\n".join(lines)


def _describe_mismatch(got, want) -> Optional[str]:
    if got.value != want.value:
        return (
            f"value mismatch: streaming {len(got.value)} rows, "
            f"reference {len(want.value)} rows"
        )
    if got.work != want.work:
        return f"work mismatch: streaming {got.work}, reference {want.work}"
    if got.per_node != want.per_node:
        return (
            f"ledger mismatch: streaming {len(got.per_node)} entries, "
            f"reference {len(want.per_node)}"
        )
    return None


class _Checker:
    """Runs one plan through the execution modes, recording divergences."""

    def __init__(self, report: FuzzReport, seed: int, scenario: str) -> None:
        self.report = report
        self.seed = seed
        self.scenario = scenario
        self.shared = PlanCache()

    def _record(self, mode: str, detail: str) -> None:
        self.report.divergences.append(
            Divergence(self.seed, self.scenario, mode, detail)
        )

    def _compare(self, mode: str, got, want) -> None:
        self.report.checks += 1
        self.report.per_scenario[self.scenario] = (
            self.report.per_scenario.get(self.scenario, 0) + 1
        )
        detail = _describe_mismatch(got, want)
        if detail is not None:
            self._record(mode, detail)

    def _check(self, mode: str, ok: bool, detail: str) -> None:
        """A non-differential predicate check (counts like a compare)."""
        self.report.checks += 1
        self.report.per_scenario[self.scenario] = (
            self.report.per_scenario.get(self.scenario, 0) + 1
        )
        if not ok:
            self._record(mode, detail)

    #: Streaming, batch and compiled variants of every cache state.
    #: The shared runs all probe the same cache the other executors
    #: populate, so the modes also fuzz cross-executor cache interop.
    ALL_MODES = (
        "cold",
        "fresh",
        "shared",
        "batch-cold",
        "batch-fresh",
        "batch-shared",
        "compiled-cold",
        "compiled-fresh",
        "compiled-shared",
    )

    def check(
        self,
        plan: Plan,
        db: TMapping[str, CVSet],
        *,
        modes: tuple[str, ...] = ALL_MODES,
    ) -> None:
        reference = execute_reference(plan, db)
        if "cold" in modes:
            self._compare("cold", execute_streaming(plan, db), reference)
        if "fresh" in modes:
            fresh = PlanCache()
            self._compare(
                "fresh-cold",
                execute_streaming(plan, db, cache=fresh),
                reference,
            )
            self._compare(
                "fresh-warm",
                execute_streaming(plan, db, cache=fresh),
                reference,
            )
        if "shared" in modes:
            self._compare(
                "shared",
                execute_streaming(plan, db, cache=self.shared),
                reference,
            )
        if "batch-cold" in modes:
            self._compare("batch-cold", execute_batch(plan, db), reference)
        if "batch-fresh" in modes:
            fresh = PlanCache()
            self._compare(
                "batch-fresh-cold",
                execute_batch(plan, db, cache=fresh),
                reference,
            )
            self._compare(
                "batch-fresh-warm",
                execute_batch(plan, db, cache=fresh),
                reference,
            )
        if "batch-shared" in modes:
            self._compare(
                "batch-shared",
                execute_batch(plan, db, cache=self.shared),
                reference,
            )
        if "compiled-cold" in modes:
            self._compare(
                "compiled-cold", execute_compiled(plan, db), reference
            )
        if "compiled-fresh" in modes:
            fresh = PlanCache()
            self._compare(
                "compiled-fresh-cold",
                execute_compiled(plan, db, cache=fresh),
                reference,
            )
            self._compare(
                "compiled-fresh-warm",
                execute_compiled(plan, db, cache=fresh),
                reference,
            )
        if "compiled-shared" in modes:
            self._compare(
                "compiled-shared",
                execute_compiled(plan, db, cache=self.shared),
                reference,
            )

    def check_trace(self, plan: Plan, db: TMapping[str, CVSet]) -> None:
        """Cross-check streaming vs batch span trees on one cold plan.

        Traced runs must still match the reference bit-for-bit (the
        tracer has no observer effect on results), every span tree's
        work must sum to its executor's ledger total, and the two
        executors' trees must agree node-for-node — labels, row counts,
        work, cache annotations — at every subplan, shared (CSE-served)
        occurrences included.
        """
        reference = execute_reference(plan, db)
        ts, tb = Tracer(), Tracer()
        streamed = execute_streaming(plan, db, tracer=ts)
        batched = execute_batch(plan, db, tracer=tb)
        self._compare("trace-stream", streamed, reference)
        self._compare("trace-batch", batched, reference)
        for mode, tracer, result in (
            ("trace-stream", ts, streamed),
            ("trace-batch", tb, batched),
        ):
            root = tracer.last
            self._check(
                mode,
                root.total_work() == result.work,
                f"span work sum {root.total_work()} != "
                f"ledger total {result.work}",
            )
            self._check(
                mode,
                root.rows == len(result.value),
                f"root span rows {root.rows} != "
                f"result rows {len(result.value)}",
            )
        self._check(
            "trace-structure",
            ts.last.structure() == tb.last.structure(),
            "stream and batch span trees disagree "
            f"({ts.last.span_count()} vs {tb.last.span_count()} spans)",
        )
        counter("fuzz.trace.plans")
        observe("fuzz.trace.spans", ts.last.span_count())


# ----------------------------------------------------------------------
# Scenario generators.  Each takes (rng, checker) and drives the checker
# through one seed's worth of plans.

_NAMES = ("r", "s", "t")


def _scenario_random(rng: random.Random, check: _Checker) -> None:
    db = random_database(rng, _NAMES)
    for _ in range(3):
        check.check(random_plan(rng, _NAMES, depth=rng.randint(1, 4)), db)


def _scenario_nested(rng: random.Random, check: _Checker) -> None:
    db = random_nested_database(rng, _NAMES)
    for _ in range(3):
        check.check(random_plan(rng, _NAMES, depth=rng.randint(1, 3)), db)


def _atom_even(v: Value) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v % 2 == 0


def _atom_wrap(v: Value) -> Value:
    return Tup((v,))


def _random_atom_plan(rng: random.Random, depth: int) -> Plan:
    """Set-operation trees over atom relations (no positional access)."""
    if depth <= 0:
        return Scan(rng.choice(_NAMES))
    kind = rng.randrange(5)
    if kind == 0:
        return Select("atom_even", _atom_even, _random_atom_plan(rng, depth - 1))
    if kind == 1:
        return MapNode("wrap", _atom_wrap, _random_atom_plan(rng, depth - 1),
                       injective=True)
    op = (Union, Difference, Intersect)[kind - 2]
    return op(_random_atom_plan(rng, depth - 1),
              _random_atom_plan(rng, depth - 1))


def _scenario_atoms(rng: random.Random, check: _Checker) -> None:
    db = random_atom_database(rng, _NAMES)
    # Always include the bulk fast path (set op over two bare scans)...
    op = rng.choice((Union, Difference, Intersect))
    check.check(op(Scan(rng.choice(_NAMES)), Scan(rng.choice(_NAMES))), db)
    # ...and a couple of deeper trees.
    for _ in range(2):
        check.check(_random_atom_plan(rng, rng.randint(1, 3)), db)


def _threshold_pred(k: int) -> Callable[[Value], bool]:
    def pred(t: Value) -> bool:
        try:
            return t[0] >= k
        except TypeError:
            return False

    return pred


def _scenario_alias(rng: random.Random, check: _Checker) -> None:
    """Adversarial name aliasing: one name, many closures, one cache."""
    db = random_database(rng, _NAMES)
    base = Scan(rng.choice(_NAMES))
    thresholds = rng.sample(range(-1, 7), rng.randint(2, 4))
    # Across plans sharing check.shared: a poisoned cache would replay
    # the first threshold's answer for all of them.
    for k in thresholds:
        check.check(Select("thresh", _threshold_pred(k), base), db)
    # Within one plan: the CSE memo must also key on semantics, not
    # just on structural (name-based) equality.
    k1, k2 = thresholds[0], thresholds[1]
    check.check(
        Union(
            Select("thresh", _threshold_pred(k1), base),
            Select("thresh", _threshold_pred(k2), base),
        ),
        db,
    )


def _scenario_trace(rng: random.Random, check: _Checker) -> None:
    """Span-tree cross-checks over random plans (see ``check_trace``)."""
    db = random_database(rng, _NAMES)
    for _ in range(2):
        check.check_trace(
            random_plan(rng, _NAMES, depth=rng.randint(1, 3)), db
        )


def _scenario_deep(rng: random.Random, check: _Checker) -> None:
    db = random_database(rng, _NAMES)
    depth = rng.randint(600, 1500)
    plan = deep_chain_plan(rng, rng.choice(_NAMES), depth)
    # Deep chains are expensive; skip the redundant fresh-cache pairs.
    # batch-cold rides along to pin the batch executor's explicit-stack
    # depth safety.
    check.check(plan, db, modes=("cold", "shared", "batch-cold"))


def _scenario_mutation(rng: random.Random, check: _Checker) -> None:
    """A live database mutated mid-sweep; its own cache must stay honest."""
    db = Database()
    for name in _NAMES:
        db.create(name, 2)
        db.insert(
            name,
            {
                (rng.randrange(5), rng.randrange(5))
                for _ in range(rng.randint(0, 8))
            },
        )
    for _ in range(3):
        plan = random_plan(rng, _NAMES, depth=rng.randint(1, 3))
        check._compare("db-warmup", db.run(plan), db.run_reference(plan))
        check._compare(
            "db-batch", db.run(plan, mode="batch"), db.run_reference(plan)
        )
        victim = rng.choice(_NAMES)
        if rng.random() < 0.5:
            db.insert(
                victim,
                [(rng.randrange(5), rng.randrange(5))
                 for _ in range(rng.randint(1, 3))],
            )
        else:
            db[victim] = CVSet(
                Tup((rng.randrange(5), rng.randrange(5)))
                for _ in range(rng.randint(0, 6))
            )
        check._compare("db-mutated", db.run(plan), db.run_reference(plan))
        check._compare(
            "db-mutated-batch",
            db.run(plan, mode="batch"),
            db.run_reference(plan),
        )


def _scenario_durability(rng: random.Random, check: _Checker) -> None:
    """Crash-recovery differential: a WAL-attached database, mutated
    and (maybe) checkpointed, must recover to the live database's
    exact contents, fingerprints and generation — and a plan run on
    the recovered database must match the live reference answer."""
    import tempfile

    from ..durability import DurabilityManager, recover
    from .serialize import database_to_json

    with tempfile.TemporaryDirectory() as directory:
        live = Database(cache_capacity=16)
        live.durability = DurabilityManager(
            directory,
            fsync=False,
            checkpoint_every=rng.choice((None, 2)),
        )
        for name in _NAMES:
            live.create(name, 2)
            live.insert(
                name,
                {
                    (rng.randrange(6), rng.randrange(6))
                    for _ in range(rng.randint(1, 6))
                },
            )
        for _ in range(rng.randint(1, 3)):
            victim = rng.choice(_NAMES)
            if rng.random() < 0.8:
                live.insert(
                    victim,
                    [(rng.randrange(6), rng.randrange(6))
                     for _ in range(rng.randint(1, 3))],
                )
            else:
                live[victim] = CVSet(
                    Tup((rng.randrange(6), rng.randrange(6)))
                    for _ in range(rng.randint(0, 5))
                )
        recovered, _report = recover(directory)
        check._check(
            "recover-content",
            database_to_json(recovered) == database_to_json(live),
            "recovered contents differ from the live database",
        )
        check._check(
            "recover-generation",
            recovered._generation == live._generation,
            f"recovered generation {recovered._generation} != "
            f"live {live._generation}",
        )
        check._check(
            "recover-fingerprints",
            all(
                recovered.fingerprint(name) == live.fingerprint(name)
                for name in live.relations
            ),
            "recovered fingerprints differ from the live database",
        )
        for _ in range(2):
            plan = random_plan(rng, _NAMES, depth=rng.randint(1, 3))
            check._compare(
                "recover-plan", recovered.run(plan), live.run_reference(plan)
            )


def _scenario_delta(rng: random.Random, check: _Checker) -> None:
    """Insert/query interleavings vs semi-naive cache maintenance.

    A live database serves a fixed plan set warm; between rounds, rows
    are inserted into random relations, so cached entries are patched
    in place by ``PlanCache.maintain`` (or invalidated when not
    maintainable).  Every answer — streaming, batch, compiled, auto —
    is compared byte-for-byte against the reference interpreter over
    the post-insert contents.  A second pass runs the same plans on a
    maintenance-disabled twin database fed the same inserts, pinning
    maintained results to the legacy invalidate-and-recompute answers.
    """
    db = Database()
    legacy = Database()
    legacy.plan_cache.maintenance_enabled = False
    for name in _NAMES:
        db.create(name, 2)
        legacy.create(name, 2)
        rows = {
            (rng.randrange(5), rng.randrange(5))
            for _ in range(rng.randint(2, 8))
        }
        db.insert(name, rows)
        legacy.insert(name, rows)
    plans = [
        random_plan(rng, _NAMES, depth=rng.randint(1, 4))
        for _ in range(rng.randint(2, 3))
    ]
    modes = ("stream", "batch", "compiled", "auto")
    for plan in plans:  # populate both caches
        db.run(plan, mode=rng.choice(modes))
        legacy.run(plan, mode="stream")
    for _ in range(3):
        victim = rng.choice(_NAMES)
        batch = [
            (rng.randrange(6), rng.randrange(6))
            for _ in range(rng.randint(1, 3))
        ]
        db.insert(victim, batch)
        legacy.insert(victim, batch)
        for plan in plans:
            want = db.run_reference(plan)
            for mode in modes:
                check._compare(
                    f"delta-{mode}", db.run(plan, mode=mode), want
                )
            # Maintained warm answer == legacy invalidate+recompute.
            check._compare(
                "delta-legacy", legacy.run(plan, mode="stream"), want
            )
    # The maintained cache must actually have maintained something on
    # most seeds; assert the counters stay coherent either way.
    stats = db.plan_cache.stats()
    check._check(
        "delta-counters",
        stats["maintained"] >= 0
        and stats["maintain_fallback"] == 0,
        f"unexpected maintenance fallback: {stats}",
    )


def _scenario_compiled(rng: random.Random, check: _Checker) -> None:
    """Plan-compiler hammering: artifact reuse, aliasing, nesting,
    auto-mode on a live database, and the deep-chain fallback."""
    db = random_database(rng, _NAMES)
    store = PlanCache()
    for _ in range(2):
        plan = random_plan(rng, _NAMES, depth=rng.randint(1, 4))
        reference = execute_reference(plan, db)
        # Second run replays the memoized artifact — same contract.
        check._compare(
            "compiled-store-cold",
            execute_compiled(plan, db, compile_store=store),
            reference,
        )
        check._compare(
            "compiled-store-warm",
            execute_compiled(plan, db, compile_store=store),
            reference,
        )
    ndb = random_nested_database(rng, _NAMES)
    check.check(
        random_plan(rng, _NAMES, depth=rng.randint(1, 3)),
        ndb,
        modes=("compiled-cold", "compiled-fresh"),
    )
    # One predicate name over different closures against one shared
    # cache: artifact keys must alias apart exactly like result keys.
    base = Scan(rng.choice(_NAMES))
    k1, k2 = rng.sample(range(-1, 7), 2)
    for k in (k1, k2):
        check.check(
            Select("thresh", _threshold_pred(k), base),
            db,
            modes=("compiled-shared",),
        )
    check.check(
        Union(
            Select("thresh", _threshold_pred(k1), base),
            Select("thresh", _threshold_pred(k2), base),
        ),
        db,
        modes=("compiled-cold", "compiled-shared"),
    )
    # Live database: compiled cold/warm and cost-driven auto dispatch.
    live = Database()
    for name in _NAMES:
        live.create(name, 2)
        live.insert(
            name,
            {
                (rng.randrange(5), rng.randrange(5))
                for _ in range(rng.randint(0, 8))
            },
        )
    for _ in range(2):
        plan = random_plan(rng, _NAMES, depth=rng.randint(1, 3))
        want = live.run_reference(plan)
        check._compare(
            "db-compiled-cold",
            live.run(plan, mode="compiled", use_cache=False),
            want,
        )
        check._compare(
            "db-compiled-warm", live.run(plan, mode="compiled"), want
        )
        check._compare(
            "db-auto-cold",
            live.run(plan, mode="auto", use_cache=False),
            want,
        )
        check._compare("db-auto-warm", live.run(plan, mode="auto"), want)
    # Past MAX_PIPELINE_DEPTH the compiler must fall back to streaming.
    plan = deep_chain_plan(rng, rng.choice(_NAMES), rng.randint(200, 400))
    check.check(plan, db, modes=("compiled-cold",))


def _scenario_sharded(rng: random.Random, check: _Checker) -> None:
    """Sharded-vs-streaming twin: one plan, shard counts 1/2/4.

    Random plans exercise the analysis fallback (non-partitionable
    plans must collapse to single-shard and still match); the forced
    co-partitioned join and atom set-op trees pin the genuinely
    partitioned paths.  Twin runs use ``jobs=1`` so fuzz workers never
    nest process pools — the partition/merge accounting is identical
    either way — while the live-database pass goes through
    ``Database.run(mode="sharded")`` end to end.
    """
    db = random_database(rng, _NAMES)
    for _ in range(2):
        plan = random_plan(rng, _NAMES, depth=rng.randint(1, 4))
        want = execute_streaming(plan, db)
        for shards in (1, 2, 4):
            check._compare(
                f"sharded-{shards}",
                execute_sharded(plan, db, shards=shards, jobs=1),
                want,
            )
    # A guaranteed co-partitioned equi-join (cross-shard probes vanish).
    join = Join(
        ((rng.randrange(2), rng.randrange(2)),),
        Scan(rng.choice(_NAMES)),
        Scan(rng.choice(_NAMES)),
    )
    want = execute_streaming(join, db)
    for shards in (2, 4):
        check._compare(
            f"sharded-join-{shards}",
            execute_sharded(join, db, shards=shards, jobs=1),
            want,
        )
    # Atom relations: column keys are impossible, so set-op trees run
    # on whole-tuple hash and bare scans on round-robin.
    adb = random_atom_database(rng, _NAMES)
    atom_plan = _random_atom_plan(rng, rng.randint(1, 3))
    want = execute_streaming(atom_plan, adb)
    for shards in (1, 2, 4):
        check._compare(
            f"sharded-atoms-{shards}",
            execute_sharded(atom_plan, adb, shards=shards, jobs=1),
            want,
        )
    # Live database end to end: cache on, degradation chain wired, and
    # picklable plans really cross the process pool.
    live = Database()
    for name in _NAMES:
        live.create(name, 2)
        live.insert(
            name,
            {
                (rng.randrange(5), rng.randrange(5))
                for _ in range(rng.randint(0, 8))
            },
        )
    for _ in range(2):
        plan = random_plan(rng, _NAMES, depth=rng.randint(1, 3))
        want = live.run_reference(plan)
        check._compare(
            "db-sharded-cold",
            live.run(
                plan,
                mode="sharded",
                shards=rng.choice((2, 4)),
                use_cache=False,
            ),
            want,
        )
        check._compare(
            "db-sharded-warm", live.run(plan, mode="sharded", shards=2),
            want,
        )


SCENARIOS: dict[str, Callable[[random.Random, _Checker], None]] = {
    "random": _scenario_random,
    "nested": _scenario_nested,
    "atoms": _scenario_atoms,
    "alias": _scenario_alias,
    "mutation": _scenario_mutation,
    "delta": _scenario_delta,
    "durability": _scenario_durability,
    "compiled": _scenario_compiled,
    "sharded": _scenario_sharded,
    "trace": _scenario_trace,
    "deep": _scenario_deep,
}


def _seed_scenarios(
    i: int, active: tuple[str, ...], deep_every: int
) -> list[str]:
    """Which scenarios seed ``i`` plays (cheap rotation + periodic deep)."""
    cheap = [name for name in active if name != "deep"]
    names: list[str] = []
    if cheap:
        names.append(cheap[i % len(cheap)])
    if "deep" in active and deep_every > 0 and i % deep_every == 0:
        names.append("deep")
    return names


def _fuzz_one_seed(
    task: tuple[int, int, tuple[str, ...], int]
) -> FuzzReport:
    """Run one seed's scenarios into a single-seed report.

    Top-level (picklable) so :func:`repro.parallel.parallel_map` can
    ship it to worker processes; the rng is derived from the task alone,
    so the result is identical wherever it runs.
    """
    base_seed, i, active, deep_every = task
    report = FuzzReport(seeds=1)
    for name in _seed_scenarios(i, active, deep_every):
        rng = derive_rng(base_seed, i, name)
        SCENARIOS[name](rng, _Checker(report, base_seed + i, name))
    return report


def _merge_reports(parts: list[FuzzReport]) -> FuzzReport:
    """Concatenate per-seed reports in seed order."""
    merged = FuzzReport()
    for part in parts:
        merged.seeds += part.seeds
        merged.checks += part.checks
        merged.divergences.extend(part.divergences)
        for name, n in part.per_scenario.items():
            merged.per_scenario[name] = merged.per_scenario.get(name, 0) + n
    return merged


def run_fuzz(
    seeds: int,
    *,
    base_seed: int = 0,
    deep_every: int = 10,
    scenarios: Optional[tuple[str, ...]] = None,
    jobs: int = 1,
) -> FuzzReport:
    """Run ``seeds`` differential fuzz iterations.

    Each seed cycles through the cheap scenarios; the expensive ``deep``
    scenario runs every ``deep_every``-th seed.  ``scenarios`` restricts
    the set (by name) when given.  Determinism: seed ``i`` always plays
    the same plans against the same databases, independent of the
    overall count and of ``jobs`` — with ``jobs > 1`` the seeds are
    sharded across worker processes and the per-seed reports merged in
    seed order, so the report (and its rendered summary) is identical
    to the serial run's.
    """
    active = tuple(scenarios) if scenarios is not None else tuple(SCENARIOS)
    unknown = [name for name in active if name not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s): {', '.join(unknown)}")
    tasks = [(base_seed, i, active, deep_every) for i in range(seeds)]
    if jobs > 1:
        from ..parallel import parallel_map

        parts = parallel_map(
            _fuzz_one_seed, tasks, jobs=jobs, merge_metrics=True
        )
    else:
        parts = [_fuzz_one_seed(task) for task in tasks]
    return _merge_reports(parts)
