"""In-memory databases over a signature.

A :class:`Database` is the runtime object tying together the pieces:
named relations (sets of tuples), their declared schemas/keys (a
:class:`~repro.optimizer.constraints.Catalog`), and the signature of
interpreted symbols.  The optimizer and the experiments run against it.

Physical-layer state maintained alongside the relations (all lazy,
all incrementally updated on :meth:`insert`, all dropped on wholesale
replacement via ``db[name] = ...``):

* **secondary hash indexes** per equality-column set — used both to
  validate declared keys incrementally (no full-relation rescan per
  insert batch) and to serve hash-join build sides without rebuilding;
* **content fingerprints** (O(1), from the relation's precomputed hash)
  keying the plan-result cache;
* **atom sets** per relation, so :meth:`active_domain` is a union of
  cached frozensets instead of a full value walk;
* a :class:`~repro.engine.exec.PlanCache` of plan results, invalidated
  per relation on every mutation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..optimizer.constraints import Catalog, RelationInfo
from ..optimizer.plan import (
    ExecutionResult,
    Plan,
    execute_reference,
    tuple_weight,
)
from ..types.signatures import Signature, standard_signature
from ..types.values import CVSet, Tup, Value, atoms_of
from .exec import (
    MAX_PIPELINE_DEPTH,
    NotPartitionable,
    PlanCache,
    execute_compiled,
    execute_sharded,
    execute_streaming,
    plan_depth,
    plan_partitioning,
    relation_fingerprint,
)

__all__ = ["Database", "SchemaError", "MODE_CHAIN", "SHARDED_CHAIN"]

_EMPTY = CVSet()

#: Degradation order for :meth:`Database.run`: on executor failure,
#: fall back one step right.  The reference interpreter is the
#: injection-free terminal fallback — it has no cache, no compiler and
#: no fault hooks, so the chain always terminates with an answer (or
#: re-raises if even the reference fails, which no injected fault can
#: cause).
MODE_CHAIN = ("compiled", "batch", "stream", "reference")

#: Degradation order when entering at ``mode="sharded"``: a lost
#: worker or partition failure drops straight to the single-process
#: batch executor — recompiling or re-partitioning cannot recover a
#: fault the shard layer already hit.
SHARDED_CHAIN = ("sharded", "batch", "stream", "reference")


class SchemaError(Exception):
    """Raised for arity mismatches or violated declared keys."""


class Database:
    """Named relations + schema catalog + signature + physical state."""

    def __init__(
        self,
        signature: Optional[Signature] = None,
        cache_capacity: int = 256,
    ) -> None:
        self.relations: dict[str, CVSet] = {}
        self.catalog = Catalog()
        self.signature = signature or standard_signature()
        self.plan_cache = PlanCache(cache_capacity)
        #: ``relation name -> {column tuple -> hash index}``.  Scoped
        #: per relation so insert-time maintenance touches only the
        #: inserted relation's indexes, not every live index.
        self._eq_indexes: dict[str, dict[tuple[int, ...], dict]] = {}
        self._atoms: dict[str, frozenset] = {}
        self._weights: dict[str, int] = {}
        #: ``name -> uniform element len`` (or None when mixed/atoms);
        #: lets the batch executor compute intermediate weights as
        #: ``count * width`` instead of per-tuple sums.
        self._widths: dict[str, Optional[int]] = {}
        #: ``name -> {column -> distinct count}`` for the cost model.
        self._distincts: dict[str, dict[int, int]] = {}
        #: Backing value sets for ``_distincts`` (``name -> {column ->
        #: set of values}``), maintained incrementally on insert so a
        #: write updates distinct counts in O(batch) instead of
        #: discarding them; dropped on wholesale replacement.
        self._distinct_sets: dict[str, dict[int, set]] = {}
        #: Bumped on every mutation; keys the stats/mode-decision memos
        #: below, so a stale catalog can never drive a mode choice.
        self._generation = 0
        self._stats_memo: Optional[tuple[int, object]] = None
        #: ``id(plan) -> (generation, plan, decision)``.  The strong
        #: plan reference pins the id against reuse; bounded, cleared
        #: wholesale when full.
        self._mode_memo: dict[int, tuple[int, Plan, object]] = {}
        #: Optional :class:`~repro.robustness.faults.FaultInjector`;
        #: see the ``fault_injector`` property.
        self._fault_injector = None
        #: Optional :class:`~repro.durability.DurabilityManager`; see
        #: the ``durability`` property.  When attached, every mutation
        #: is written (and committed) to the write-ahead log *before*
        #: it takes effect in memory.
        self._durability = None

    def create(
        self,
        name: str,
        arity: int,
        keys: Sequence[Sequence[int]] = (),
        shared_keys: Optional[dict[tuple[int, ...], str]] = None,
    ) -> None:
        """Declare a relation schema."""
        info = RelationInfo(
            name,
            arity,
            tuple(tuple(k) for k in keys),
            dict(shared_keys or {}),
        )
        if self._durability is not None:
            # Log-before-apply; ``create`` does not bump the mutation
            # generation, so the logged post-apply generation is the
            # current one.
            self._durability.log_create(
                name, info.arity, info.keys, info.shared_keys,
                self._generation,
            )
        self.catalog.add(info)
        if name not in self.relations:
            self.relations[name] = CVSet()
            # Seed the width cache with the declared arity: computing
            # the width of an empty relation yields ``None`` (no rows
            # to measure), and a cached ``None`` would defeat the
            # batch/compiled executors' O(1) count*width accounting
            # for the relation's whole life.
            self._widths[name] = arity
        if self._durability is not None:
            self._durability.mutation_applied(self)

    def insert(self, name: str, rows: Iterable[Sequence[Value]]) -> None:
        """Insert rows, validating arity and declared keys.

        Key validation is incremental: each declared key keeps a hash
        index (built lazily on first use, validated once at build time,
        then maintained per insert), so a batch costs O(batch) instead
        of O(|relation|) per call.  Nothing is mutated on failure.
        """
        if name not in self.catalog:
            raise SchemaError(f"unknown relation {name}")
        info = self.catalog[name]
        tuples = list(dict.fromkeys(Tup(row) for row in rows))
        for t in tuples:
            if len(t) != info.arity:
                raise SchemaError(
                    f"{name} expects arity {info.arity}, got {len(t)}: {t!r}"
                )
        for key in info.keys:
            self._validate_key_batch(name, key, tuples)

        current = self.relations[name]
        new_rows = [t for t in tuples if t not in current]
        if not new_rows:
            return
        if self._durability is not None:
            # Log-before-apply, and only after validation passed: the
            # WAL carries exactly the effective delta (``new_rows``,
            # not the raw batch), so replaying it from the same base
            # state re-creates the identical relation *and* the
            # identical generation bump.  A logging failure (real I/O
            # or an injected ``durability`` fault) aborts here, before
            # any in-memory state changed — the mutation atomically
            # never happened, matching what recovery will say.
            self._durability.log_insert(name, new_rows, self._generation + 1)
        self.relations[name] = current.union(CVSet(new_rows))
        # Maintain this relation's live indexes incrementally; other
        # relations' indexes are never even iterated.
        for cols, index in self._eq_indexes.get(name, {}).items():
            for t in new_rows:
                index.setdefault(tuple(t[i] for i in cols), []).append(t)
        if name in self._atoms:
            extra: set = set()
            for t in new_rows:
                extra |= atoms_of(t)
            self._atoms[name] = self._atoms[name] | extra
        if name in self._weights:
            self._weights[name] += sum(tuple_weight(t) for t in new_rows)
        cached_width = self._widths.get(name, info.arity)
        if cached_width != info.arity:
            # Inserted rows all have the declared arity.  If the
            # relation was empty, its width *is* the declared arity now
            # (a cached ``None`` here just means "measured while
            # empty", not "mixed" — never let it pin the relation as
            # widthless forever).  Otherwise a differing cached width
            # means the relation is genuinely mixed-width.
            self._widths[name] = info.arity if not current else None
        sets = self._distinct_sets.get(name)
        if sets is not None:
            for t in new_rows:
                try:
                    items = tuple(t)
                except TypeError:
                    continue
                for i, v in enumerate(items):
                    sets.setdefault(i, set()).add(v)
            self._distincts[name] = {
                i: len(vals) for i, vals in sets.items()
            }
        else:
            self._distincts.pop(name, None)
        self._generation += 1
        self._refresh_stats_memo(name)
        # Semi-naive maintenance instead of wholesale invalidation:
        # maintainable cached entries absorb the delta and stay live;
        # the rest (and all compiled artifacts for this relation)
        # invalidate exactly as before.  See engine/exec/delta.py.
        self.plan_cache.maintain(name, new_rows, self.relations)
        if self._durability is not None:
            self._durability.mutation_applied(self)

    def _validate_key_batch(
        self, name: str, key: Sequence[int], tuples: Sequence[Tup]
    ) -> None:
        """Check a declared key against the maintained index + batch."""
        key_cols = tuple(key)
        fresh = key_cols not in self._eq_indexes.get(name, {})
        index = self.equality_index(name, key_cols)
        if fresh and any(len(bucket) > 1 for bucket in index.values()):
            # A wholesale replacement (db[name] = ...) bypassed
            # validation; surface the violation now, as the full
            # rescan of the old implementation would have.
            raise SchemaError(
                f"key {tuple(c + 1 for c in key_cols)} of {name} violated"
            )
        pending: dict[tuple, Tup] = {}
        for t in tuples:
            k = tuple(t[i] for i in key_cols)
            bucket = index.get(k)
            if bucket and bucket[0] != t:
                raise SchemaError(
                    f"key {tuple(c + 1 for c in key_cols)} of {name} violated"
                )
            previous = pending.get(k)
            if previous is not None and previous != t:
                raise SchemaError(
                    f"key {tuple(c + 1 for c in key_cols)} of {name} violated"
                )
            pending[k] = t

    # ------------------------------------------------------------------
    # Physical state: indexes, fingerprints, cached statistics.

    def equality_index(
        self, name: str, columns: Sequence[int]
    ) -> dict[tuple, list[Tup]]:
        """Hash index ``columns-value -> rows`` over a relation.

        Created lazily, maintained incrementally by :meth:`insert`,
        dropped on wholesale replacement.  Shared by key validation and
        by the streaming executor's join build sides.
        """
        cols = tuple(columns)
        if name not in self.relations:
            # Unknown relation: hand back a throwaway empty index
            # without caching it.  A cached entry under this name
            # would be maintained as stale-empty if the relation is
            # later created and populated (``insert`` maintains every
            # cached index for the inserted relation, including ones
            # built before the relation existed).
            return {}
        per_relation = self._eq_indexes.setdefault(name, {})
        index = per_relation.get(cols)
        if index is None:
            index = {}
            for t in self.relations[name]:
                index.setdefault(tuple(t[i] for i in cols), []).append(t)
            per_relation[cols] = index
        return index

    def fingerprint(self, name: str) -> tuple[int, int]:
        """O(1) content fingerprint of one relation."""
        return relation_fingerprint(self.relations.get(name))

    def relation_weight(self, name: str) -> int:
        """Cached width-weighted size (work units to scan the relation)."""
        weight = self._weights.get(name)
        if weight is None:
            weight = sum(
                tuple_weight(t) for t in self.relations.get(name, _EMPTY)
            )
            self._weights[name] = weight
        return weight

    def relation_width(self, name: str) -> Optional[int]:
        """Cached uniform element length of a relation, or ``None`` when
        elements are mixed-width or atoms (computed once, maintained on
        insert, dropped on wholesale replacement)."""
        if name not in self._widths:
            self._widths[name] = self._compute_width(name)
        return self._widths[name]

    def _compute_width(self, name: str) -> Optional[int]:
        width: Optional[int] = None
        for t in self.relations.get(name, _EMPTY):
            try:
                n = len(t)
            except TypeError:
                return None
            if width is None:
                width = n
            elif width != n:
                return None
        return width

    def relation_stats(self, name: str) -> tuple[int, Optional[int]]:
        """The batch executor's ``relation_stats`` hook: cached
        ``(scan weight, uniform width)`` for one relation."""
        return (self.relation_weight(name), self.relation_width(name))

    def column_distincts(self, name: str) -> dict[int, int]:
        """Cached per-column distinct value counts of one relation
        (atom elements contribute nothing — they have no columns).

        The first call walks the relation once; the backing value sets
        are kept (``_distinct_sets``) so later inserts refresh the
        counts in O(batch) instead of discarding them."""
        cached = self._distincts.get(name)
        if cached is None:
            columns: dict[int, set] = {}
            for t in self.relations.get(name, _EMPTY):
                try:
                    items = tuple(t)
                except TypeError:
                    continue
                for i, v in enumerate(items):
                    columns.setdefault(i, set()).add(v)
            cached = {i: len(vals) for i, vals in columns.items()}
            self._distinct_sets[name] = columns
            self._distincts[name] = cached
        return cached

    def current_stats(self):
        """A :class:`~repro.optimizer.cost.Stats` catalog reflecting the
        live contents, memoized per mutation generation.

        Inserts refresh the memo *incrementally* (see
        :meth:`_refresh_stats_memo`): the full ``Stats.from_database``
        pass runs at most once per wholesale replacement, not once per
        write."""
        memo = self._stats_memo
        if memo is not None and memo[0] == self._generation:
            return memo[1]
        from ..optimizer.cost import Stats

        stats = Stats.from_database(self)
        self._stats_memo = (self._generation, stats)
        return stats

    def _refresh_stats_memo(self, name: str) -> None:
        """Re-memoize :meth:`current_stats` after an insert into
        ``name`` by updating that one relation's row count, width and
        distincts in a shallow copy of the memoized catalog — O(1)
        plus the (incrementally maintained) distincts lookup, instead
        of a full ``Stats.from_database`` pass over every relation.

        A cold memo stays cold: stats are only assembled when a
        cost-based decision first asks for them."""
        memo = self._stats_memo
        if memo is None:
            return
        from ..optimizer.cost import Stats

        old = memo[1]
        rows = dict(old.rows)
        widths = dict(old.widths)
        distincts = dict(old.distincts)
        relation = self.relations.get(name, _EMPTY)
        rows[name] = len(relation)
        width = self.relation_width(name)
        if width is None:
            width = max(
                (len(t) for t in relation if hasattr(t, "__len__")),
                default=1,
            )
        widths[name] = max(width, 1)
        distincts[name] = self.column_distincts(name)
        self._stats_memo = (
            self._generation,
            Stats(rows, widths, distincts),
        )

    def plan_mode(self, plan: Plan):
        """The cost model's executor choice for ``plan`` (a
        :class:`~repro.optimizer.cost.ModeDecision`), memoized per
        (plan identity, mutation generation).

        Plans deeper than ``MAX_PIPELINE_DEPTH`` never choose the
        compiled path — its codegen is meant for pipelines, not
        thousand-operator chains."""
        entry = self._mode_memo.get(id(plan))
        if (
            entry is not None
            and entry[0] == self._generation
            and entry[1] is plan
        ):
            return entry[2]
        from ..optimizer.cost import choose_mode

        candidates = ("reference", "stream", "batch", "compiled")
        if plan_depth(plan) > MAX_PIPELINE_DEPTH:
            candidates = ("reference", "stream", "batch")
        else:
            try:
                plan_partitioning(plan)
            except NotPartitionable:
                pass
            else:
                # Partition-parallel execution is only a candidate when
                # the plan actually admits a ledger-preserving partition
                # — its MODE_COST overhead keeps it out until estimated
                # work dwarfs the process-pool spin-up.
                candidates = candidates + ("sharded",)
        decision = choose_mode(
            plan, self.current_stats(), candidates=candidates
        )
        if len(self._mode_memo) >= 1024:
            self._mode_memo.clear()
        self._mode_memo[id(plan)] = (self._generation, plan, decision)
        return decision

    def atoms_in(self, name: str) -> frozenset:
        """Cached atom set of one relation."""
        atoms = self._atoms.get(name)
        if atoms is None:
            out: set = set()
            for t in self.relations.get(name, _EMPTY):
                out |= atoms_of(t)
            atoms = frozenset(out)
            self._atoms[name] = atoms
        return atoms

    def _invalidate_relation(self, name: str) -> None:
        self._atoms.pop(name, None)
        self._weights.pop(name, None)
        self._widths.pop(name, None)
        self._distincts.pop(name, None)
        self._distinct_sets.pop(name, None)
        self._eq_indexes.pop(name, None)
        self._generation += 1
        self.plan_cache.invalidate(name)

    def _join_index(
        self, name: str, columns: tuple[int, ...]
    ) -> Optional[tuple[dict, int]]:
        """The executor's ``key_index`` hook: index + scan weight."""
        if name not in self.relations:
            return None
        return (
            self.equality_index(name, columns),
            self.relation_weight(name),
        )

    # ------------------------------------------------------------------
    # Mapping protocol.

    def __getitem__(self, name: str) -> CVSet:
        return self.relations[name]

    def __setitem__(self, name: str, relation: CVSet) -> None:
        if self._durability is not None:
            # Wholesale replacement bumps the generation (via
            # ``_invalidate_relation``), so the logged post-apply
            # generation is one ahead.
            self._durability.log_replace(
                name, relation, self._generation + 1
            )
        self.relations[name] = relation
        self._invalidate_relation(name)
        if self._durability is not None:
            self._durability.mutation_applied(self)

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def active_domain(self) -> frozenset:
        """All atoms appearing anywhere in the database.

        Assembled from per-relation cached atom sets, maintained
        incrementally on insert — no per-call value walk.
        """
        out: set = set()
        for name in self.relations:
            out |= self.atoms_in(name)
        return frozenset(out)

    # ------------------------------------------------------------------
    # Execution.

    @property
    def fault_injector(self):
        """Optional :class:`~repro.robustness.faults.FaultInjector`
        threaded into the executors and the plan cache.  Assigning it
        here also attaches the ``cache`` fault site to
        :attr:`plan_cache`; assign ``None`` to detach everywhere."""
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector) -> None:
        self._fault_injector = injector
        self.plan_cache.fault_injector = injector

    @property
    def durability(self):
        """Optional :class:`~repro.durability.DurabilityManager`.

        When attached, ``create``/``insert``/``__setitem__`` append a
        committed record to the write-ahead log *before* mutating any
        in-memory state (see docs/ROBUSTNESS.md, "Durability and crash
        recovery"); :func:`repro.durability.recover` rebuilds the
        database from the manager's directory after a crash.  Assign
        ``None`` to detach (mutations stop being logged).

        Attaching to a database that already holds relations publishes
        an immediate checkpoint: the WAL replays over the last
        snapshot (or an empty database), so pre-attach state that only
        exists in memory would otherwise be unrecoverable — replay
        would hit inserts into relations the base never created."""
        return self._durability

    @durability.setter
    def durability(self, manager) -> None:
        self._durability = manager
        if manager is not None and self.relations:
            manager.checkpoint(self)

    def _restore_generation(self, generation: int) -> None:
        """Pin the mutation generation to a recovered value.

        Rebuilding a snapshot replays inserts, each bumping the
        counter; recovery must land on the *original* database's
        generation or every generation-derived memo would disagree.
        The stats/mode memos are dropped — they were keyed by the
        rebuild-time counter, and a recovered database recomputes them
        from (identical) content on first use."""
        self._generation = generation
        self._stats_memo = None
        self._mode_memo.clear()

    def _run_mode(
        self, plan: Plan, mode: str, use_cache: bool, tracer,
        shards=None,
    ) -> ExecutionResult:
        """Dispatch one executor attempt (no fallback)."""
        if mode == "sharded":
            return execute_sharded(
                plan,
                self.relations,
                shards=shards,
                cache=self.plan_cache if use_cache else None,
                key_index=self._join_index,
                relation_stats=self.relation_stats,
                tracer=tracer,
                fault_injector=self._fault_injector,
            )
        if mode == "reference":
            # The terminal fallback: no cache, no compiler, no fault
            # hooks — an injected fault can never reach it.
            return execute_reference(plan, self.relations, tracer=tracer)
        if mode == "compiled":
            # The artifact memo is a *program* cache, not a result
            # cache: it stays on even when ``use_cache=False`` asks for
            # result-cold execution.
            return execute_compiled(
                plan,
                self.relations,
                cache=self.plan_cache if use_cache else None,
                compile_store=self.plan_cache,
                key_index=self._join_index,
                relation_stats=self.relation_stats,
                tracer=tracer,
                fault_injector=self._fault_injector,
            )
        return execute_streaming(
            plan,
            self.relations,
            cache=self.plan_cache if use_cache else None,
            key_index=self._join_index,
            mode=mode,
            relation_stats=self.relation_stats,
            tracer=tracer,
            fault_injector=self._fault_injector,
        )

    def run(
        self,
        plan: Plan,
        *,
        use_cache: bool = True,
        mode: str = "stream",
        tracer=None,
        shards=None,
    ) -> ExecutionResult:
        """Execute a plan (cached by default).

        Every mode returns the identical value/work/ledger.
        ``mode="batch"`` uses the operator-at-a-time batch executor —
        fastest one-shot cold path; ``mode="compiled"`` lowers the plan
        to a specialized function memoized in the plan cache's artifact
        table — fastest repeated cold path; ``mode="reference"`` runs
        the tuple-at-a-time interpreter.  ``mode="sharded"`` hash-
        partitions the base relations per the plan's equality keys and
        evaluates shard-by-shard on a process pool (``shards=N``; see
        :mod:`repro.engine.exec.shard`), merging a result byte-identical
        to streaming; non-partitionable plans run single-shard.
        ``mode="auto"`` derives a
        cost catalog from the live contents (:meth:`current_stats`),
        scores every candidate executor (:func:`~repro.optimizer.cost.
        choose_mode`) and runs the cheapest; the decision is memoized
        per (plan, mutation generation) and surfaced on the root span's
        ``meta`` when tracing.  See docs/EXECUTION.md.

        **Graceful degradation**: if an executor fails mid-query (an
        injected fault, a compile error, any unexpected exception), the
        engine falls back down :data:`MODE_CHAIN` — compiled → batch →
        stream → reference — starting from the requested mode
        (``mode="sharded"`` enters at :data:`SHARDED_CHAIN`: sharded →
        batch → stream → reference), and
        re-runs on the next-simpler executor.  Executor parity
        guarantees the fallback answer is the answer (identical value,
        work, ledger).  Every degradation event bumps the
        ``robustness.degraded`` metrics counters and is annotated on
        the root span's ``meta["degraded"]`` so EXPLAIN/tracing show
        why a mode was not used; see docs/ROBUSTNESS.md.  The reference
        interpreter is the end of the chain — if it fails too, the
        error propagates.

        ``tracer`` (a :class:`~repro.obs.trace.Tracer`) records a span
        tree for the execution; see docs/OBSERVABILITY.md."""
        decision = None
        if mode == "auto":
            decision = self.plan_mode(plan)
            mode = decision.mode
        if mode == "sharded":
            chain: tuple = SHARDED_CHAIN
        elif mode in MODE_CHAIN:
            chain = MODE_CHAIN[MODE_CHAIN.index(mode):]
        else:
            raise ValueError(
                f"mode must be 'auto', 'reference', 'stream', 'batch', "
                f"'compiled' or 'sharded', got {mode!r}"
            )
        degraded: list[dict] = []
        result: Optional[ExecutionResult] = None
        for step, attempt in enumerate(chain):
            try:
                result = self._run_mode(
                    plan, attempt, use_cache, tracer, shards
                )
                break
            except Exception as exc:
                if step == len(chain) - 1:
                    raise
                from ..obs.metrics import counter

                counter("robustness.degraded")
                counter(f"robustness.degraded.{attempt}")
                degraded.append(
                    {
                        "mode": attempt,
                        "to": chain[step + 1],
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
        meta: dict = {}
        if decision is not None:
            meta["auto"] = decision.to_dict()
        if degraded:
            meta["degraded"] = degraded
        if meta and tracer is not None and tracer.last is not None:
            # Merge, never clobber: the executor may have attached its
            # own meta to the root span already.
            tracer.last.merge_meta(meta)
        return result

    def run_reference(self, plan: Plan, *, tracer=None) -> ExecutionResult:
        """Execute with the reference tuple-at-a-time interpreter."""
        return execute_reference(plan, self.relations, tracer=tracer)

    def query(self, text: str, optimize: bool = False) -> ExecutionResult:
        """Parse and run a textual plan (see
        :mod:`repro.optimizer.parser`); with ``optimize=True`` the plan
        is first rewritten against this database's catalog."""
        from ..optimizer.parser import parse_plan
        from ..optimizer.rewriter import Rewriter

        plan = parse_plan(text)
        if optimize:
            plan = Rewriter(self.catalog).optimize(plan)
        return self.run(plan)

    def snapshot(self) -> dict[str, CVSet]:
        """An immutable-enough copy of the relation map."""
        return dict(self.relations)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{len(rel)}]" for name, rel in sorted(self.relations.items())
        )
        return f"Database({parts})"
