"""In-memory databases over a signature.

A :class:`Database` is the runtime object tying together the pieces:
named relations (sets of tuples), their declared schemas/keys (a
:class:`~repro.optimizer.constraints.Catalog`), and the signature of
interpreted symbols.  The optimizer and the experiments run against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping as TMapping, Optional, Sequence

from ..optimizer.constraints import Catalog, RelationInfo, check_key_on_instance
from ..optimizer.plan import ExecutionResult, Plan, execute
from ..types.signatures import Signature, standard_signature
from ..types.values import CVSet, Tup, Value, atoms_of

__all__ = ["Database", "SchemaError"]


class SchemaError(Exception):
    """Raised for arity mismatches or violated declared keys."""


class Database:
    """Named relations + schema catalog + signature."""

    def __init__(self, signature: Optional[Signature] = None) -> None:
        self.relations: dict[str, CVSet] = {}
        self.catalog = Catalog()
        self.signature = signature or standard_signature()

    def create(
        self,
        name: str,
        arity: int,
        keys: Sequence[Sequence[int]] = (),
        shared_keys: Optional[dict[tuple[int, ...], str]] = None,
    ) -> None:
        """Declare a relation schema."""
        self.catalog.add(
            RelationInfo(
                name,
                arity,
                tuple(tuple(k) for k in keys),
                dict(shared_keys or {}),
            )
        )
        self.relations.setdefault(name, CVSet())

    def insert(self, name: str, rows: Iterable[Sequence[Value]]) -> None:
        """Insert rows, validating arity and declared keys."""
        if name not in self.catalog:
            raise SchemaError(f"unknown relation {name}")
        info = self.catalog[name]
        tuples = [Tup(row) for row in rows]
        for t in tuples:
            if len(t) != info.arity:
                raise SchemaError(
                    f"{name} expects arity {info.arity}, got {len(t)}: {t!r}"
                )
        merged = self.relations[name].union(CVSet(tuples))
        for key in info.keys:
            if not check_key_on_instance(merged, key):
                raise SchemaError(
                    f"key {tuple(c + 1 for c in key)} of {name} violated"
                )
        self.relations[name] = merged

    def __getitem__(self, name: str) -> CVSet:
        return self.relations[name]

    def __setitem__(self, name: str, relation: CVSet) -> None:
        self.relations[name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def active_domain(self) -> frozenset:
        """All atoms appearing anywhere in the database."""
        out: set = set()
        for relation in self.relations.values():
            for t in relation:
                out |= set(atoms_of(t))
        return frozenset(out)

    def run(self, plan: Plan) -> ExecutionResult:
        """Execute a plan against this database."""
        return execute(plan, self.relations)

    def query(self, text: str, optimize: bool = False) -> ExecutionResult:
        """Parse and run a textual plan (see
        :mod:`repro.optimizer.parser`); with ``optimize=True`` the plan
        is first rewritten against this database's catalog."""
        from ..optimizer.parser import parse_plan
        from ..optimizer.rewriter import Rewriter

        plan = parse_plan(text)
        if optimize:
            plan = Rewriter(self.catalog).optimize(plan)
        return self.run(plan)

    def snapshot(self) -> dict[str, CVSet]:
        """An immutable-enough copy of the relation map."""
        return dict(self.relations)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{len(rel)}]" for name, rel in sorted(self.relations.items())
        )
        return f"Database({parts})"
