"""In-memory database engine, physical execution layer and workloads."""

from .database import Database, SchemaError
from .exec import (
    CacheEntry,
    CacheInvariantError,
    PlanCache,
    execute_streaming,
    plan_structural_hash,
    relation_fingerprint,
    result_cache_key,
    semantic_cache_key,
)
from .fuzz import Divergence, FuzzReport, run_fuzz
from .serialize import (
    database_from_json,
    database_to_json,
    load_database,
    save_database,
    value_from_json,
    value_to_json,
)
from .workload import (
    hr_database,
    layered_graph,
    paper_h_pairs,
    paper_r1,
    paper_r2,
    paper_r3,
    random_database,
    random_graph,
    random_plan,
)

__all__ = [name for name in dir() if not name.startswith("_")]
