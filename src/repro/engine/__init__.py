"""In-memory database engine and synthetic workloads."""

from .database import Database, SchemaError
from .serialize import (
    database_from_json,
    database_to_json,
    load_database,
    save_database,
    value_from_json,
    value_to_json,
)
from .workload import (
    hr_database,
    layered_graph,
    paper_h_pairs,
    paper_r1,
    paper_r2,
    paper_r3,
    random_database,
    random_graph,
)

__all__ = [name for name in dir() if not name.startswith("_")]
