"""Synthetic workload generators.

The paper has no datasets; these generators build the instance families
its claims are exercised on:

* random graph relations (binary) for composition/transitive-closure
  queries (Example 2.2's Q1 is graph composition);
* layered graphs like the paper's ``r1`` (bipartite-ish chains that have
  interesting homomorphic collapses);
* keyed "employees/students" relations sharing a social-security-style
  key, the Section 4.4 optimization scenario;
* random databases for optimizer equivalence verification.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from ..types.values import CVList, CVSet, Tup, Value
from .database import Database

__all__ = [
    "derive_rng",
    "random_graph",
    "layered_graph",
    "paper_r1",
    "paper_r2",
    "paper_r3",
    "paper_h_pairs",
    "hr_database",
    "random_database",
    "random_plan",
    "deep_chain_plan",
    "random_atom_database",
    "random_nested_database",
]


def derive_rng(*parts: object) -> random.Random:
    """A fresh, explicitly-seeded rng keyed by a path of parts.

    ``derive_rng(base_seed, i, scenario)`` gives every (seed, scenario)
    cell of a sweep its own independent stream — never the module-level
    ``random`` state — so a cell draws the same values whether it runs
    serially or on any worker process of a parallel shard, in any
    order.  The key is the ``/``-joined ``str`` of the parts, so
    ``derive_rng(0, 3, "deep")`` reproduces the historical seeding
    ``random.Random("0/3/deep")`` exactly.
    """
    return random.Random("/".join(str(p) for p in parts))


def random_graph(
    rng: random.Random, nodes: int, edges: int, labels: Optional[Sequence[Value]] = None
) -> CVSet:
    """A random directed graph as a binary relation."""
    labels = list(labels) if labels is not None else list(range(nodes))
    out = set()
    attempts = 0
    while len(out) < min(edges, nodes * nodes) and attempts < 20 * edges:
        a, b = rng.choice(labels), rng.choice(labels)
        out.add(Tup((a, b)))
        attempts += 1
    return CVSet(out)


def layered_graph(rng: random.Random, layers: int, width: int) -> CVSet:
    """A layered DAG: edges only between consecutive layers.

    Collapsing each layer to a point is a homomorphism, making these
    instances rich in Example 2.2-style structure."""
    out = set()
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                if rng.random() < 0.6:
                    out.add(Tup((f"n{layer}_{i}", f"n{layer + 1}_{j}")))
    return CVSet(out)


def paper_r1() -> CVSet:
    """Example 2.2's ``r1``."""
    return CVSet(
        Tup(pair)
        for pair in [
            ("e", "f"),
            ("i", "f"),
            ("e", "j"),
            ("i", "j"),
            ("f", "g"),
            ("j", "g"),
        ]
    )


def paper_r2() -> CVSet:
    """Example 2.2's ``r2`` — the homomorphic image of ``r1``."""
    return CVSet(Tup(pair) for pair in [("a", "b"), ("b", "c")])


def paper_r3() -> CVSet:
    """``r3`` — ``r1`` minus ``(e,f), (i,f), (j,g)``; maps onto ``r2``
    only as a *regular* (non-strong) homomorphism."""
    return CVSet(Tup(pair) for pair in [("e", "j"), ("i", "j"), ("f", "g")])


def paper_h_pairs() -> set[tuple[str, str]]:
    """The homomorphism ``h`` of Example 2.2."""
    return {("e", "a"), ("i", "a"), ("f", "b"), ("j", "b"), ("g", "c")}


def hr_database(
    rng: random.Random,
    employees: int,
    students: int,
    overlap: int = 0,
    departments: int = 4,
) -> Database:
    """The Section 4.4 scenario: employees and students sharing an
    SSN-style key in column 1.

    Schema: ``employees(ssn, name, dept)``, ``students(ssn, name,
    dept)``; ``ssn`` is a key for the *union* (declared as a shared
    key), so ``pi_ssn`` is injective on ``employees union students`` and
    the paper's ``pi(R - S) = pi(R) - pi(S)`` rewrite is licensed."""
    db = Database()
    shared = {(0,): "ssn"}
    db.create("employees", 3, keys=[(0,)], shared_keys=shared)
    db.create("students", 3, keys=[(0,)], shared_keys=shared)
    db.create("contractors", 3, keys=[])  # no key: rewrite must NOT fire

    def person(ssn: int) -> tuple:
        # Deterministic per ssn: a person enrolled both as employee and
        # student contributes the *same* tuple to both relations, which
        # is what makes ssn a key for the union (the paper's premise).
        return (ssn, f"person{ssn}", f"dept{ssn % departments}")

    employee_ssns = list(range(1000, 1000 + employees))
    student_ssns = list(
        range(1000 + employees - overlap, 1000 + employees - overlap + students)
    )
    db.insert("employees", [person(s) for s in employee_ssns])
    db.insert("students", [person(s) for s in student_ssns])
    db.insert(
        "contractors",
        [
            (rng.randrange(1000, 1000 + employees + students), f"c{i}", "dept0")
            for i in range(max(1, employees // 2))
        ],
    )
    return db


def _is_plain_int(v: Value) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


#: Named predicates/functions for random plans.  Names identify
#: semantics — the invariant the plan-result cache and the rewriter's
#: rule trace both rely on.
_PREDICATES = {
    "always": lambda t: True,
    "first_even": lambda t: _is_plain_int(t[0]) and t[0] % 2 == 0,
    "first_small": lambda t: _is_plain_int(t[0]) and t[0] < 3,
}
_PREDICATES_WIDE = dict(
    _PREDICATES, first_two_equal=lambda t: t[0] == t[1]
)


def _map_swap(t: Tup) -> Tup:
    return Tup(tuple(t)[::-1])


def _map_dup_first(t: Tup) -> Tup:
    return Tup((t[0],) + tuple(t))


def _map_first_only(t: Tup) -> Tup:
    return Tup((t[0],))


def random_plan(
    rng: random.Random,
    names: Sequence[str],
    *,
    base_arity: int = 2,
    depth: int = 3,
    arity: Optional[int] = None,
) -> Plan:
    """A random logical plan over the named base relations.

    Exercises every node type — including multi-pair and empty-``on``
    joins, non-injective maps, and duplicated-column projections — while
    tracking arities so union-compatible operators get matching inputs.
    Used by the executor-equivalence property tests and benchmarks.
    """
    target = arity if arity is not None else rng.randint(1, 3)

    def leaf(want: int) -> Plan:
        scan = Scan(rng.choice(list(names)))
        if want == base_arity and rng.random() < 0.7:
            return scan
        columns = tuple(rng.randrange(base_arity) for _ in range(want))
        return Project(columns, scan)

    def gen(levels: int, want: int) -> Plan:
        if levels <= 0:
            return leaf(want)
        choices = ["project", "select", "union", "difference", "intersect"]
        choices.append("map_swap")
        if want >= 2:
            choices += ["product", "join", "map_dup"]
        if want == 1:
            choices.append("map_first")
        kind = rng.choice(choices)
        if kind == "project":
            child_arity = rng.randint(1, 3)
            child = gen(levels - 1, child_arity)
            columns = tuple(
                rng.randrange(child_arity) for _ in range(want)
            )
            return Project(columns, child)
        if kind == "select":
            pool = _PREDICATES_WIDE if want >= 2 else _PREDICATES
            name = rng.choice(sorted(pool))
            return Select(name, pool[name], gen(levels - 1, want))
        if kind == "map_swap":
            return MapNode("swap", _map_swap, gen(levels - 1, want),
                           injective=True)
        if kind == "map_dup":
            return MapNode("dup_first", _map_dup_first,
                           gen(levels - 1, want - 1), injective=True)
        if kind == "map_first":
            return MapNode("first_only", _map_first_only,
                           gen(levels - 1, rng.randint(1, 3)))
        if kind == "union":
            return Union(gen(levels - 1, want), gen(levels - 1, want))
        if kind == "difference":
            return Difference(gen(levels - 1, want), gen(levels - 1, want))
        if kind == "intersect":
            return Intersect(gen(levels - 1, want), gen(levels - 1, want))
        left_arity = rng.randint(1, want - 1)
        right_arity = want - left_arity
        left = gen(levels - 1, left_arity)
        right = gen(levels - 1, right_arity)
        if kind == "product":
            return Product(left, right)
        pairs = tuple(
            (rng.randrange(left_arity), rng.randrange(right_arity))
            for _ in range(rng.randint(0, min(left_arity, right_arity)))
        )
        return Join(pairs, left, right)

    return gen(depth, target)


def random_database(
    rng: random.Random,
    names: Sequence[str],
    arity: int = 2,
    domain_size: int = 6,
    max_rows: int = 12,
) -> dict[str, CVSet]:
    """A random database for equivalence verification."""
    domain = list(range(domain_size))
    out = {}
    for name in names:
        rows = {
            Tup(tuple(rng.choice(domain) for _ in range(arity)))
            for _ in range(rng.randint(0, max_rows))
        }
        out[name] = CVSet(rows)
    return out


def deep_chain_plan(
    rng: random.Random, name: str, depth: int, *, base_arity: int = 2
) -> Plan:
    """A unary-operator chain of the given depth over one scan.

    Every link preserves arity ``base_arity`` (selections from the
    standard pool, permuting projections, the ``swap`` map), so chains
    compose to any depth.  Exercises deep-plan safety: compilation,
    optimization and ledger collection must all survive depths far past
    the default recursion limit.
    """
    plan: Plan = Scan(name)
    columns_swap = tuple(range(base_arity))[::-1]
    predicate_names = sorted(_PREDICATES)
    for _ in range(depth):
        kind = rng.randrange(3)
        if kind == 0:
            pname = rng.choice(predicate_names)
            plan = Select(pname, _PREDICATES[pname], plan)
        elif kind == 1:
            plan = Project(columns_swap, plan)
        else:
            plan = MapNode("swap", _map_swap, plan, injective=True)
    return plan


def random_atom_database(
    rng: random.Random,
    names: Sequence[str],
    domain_size: int = 6,
    max_rows: int = 8,
) -> dict[str, CVSet]:
    """Relations whose elements are bare atoms, not tuples.

    The value model admits sets of atoms directly; work accounting must
    weigh them via :func:`~repro.optimizer.plan.tuple_weight` (1 per
    atom) instead of assuming ``len(t)`` exists.
    """
    atoms: list[Value] = [*range(domain_size // 2)]
    atoms += [f"a{i}" for i in range(domain_size - domain_size // 2)]
    out = {}
    for name in names:
        rows = {rng.choice(atoms) for _ in range(rng.randint(0, max_rows))}
        out[name] = CVSet(rows)
    return out


def random_nested_database(
    rng: random.Random,
    names: Sequence[str],
    arity: int = 2,
    domain_size: int = 5,
    max_rows: int = 8,
) -> dict[str, CVSet]:
    """Binary relations whose components are nested complex values
    (atoms, pairs, sets, lists) — the complex-value model the paper's
    queries actually range over."""
    domain = list(range(domain_size))

    def component() -> Value:
        roll = rng.random()
        if roll < 0.5:
            return rng.choice(domain)
        if roll < 0.7:
            return Tup((rng.choice(domain), rng.choice(domain)))
        if roll < 0.9:
            return CVSet(rng.choice(domain) for _ in range(rng.randint(0, 3)))
        return CVList(rng.choice(domain) for _ in range(rng.randint(0, 3)))

    out = {}
    for name in names:
        rows = {
            Tup(tuple(component() for _ in range(arity)))
            for _ in range(rng.randint(0, max_rows))
        }
        out[name] = CVSet(rows)
    return out
