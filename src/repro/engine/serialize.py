"""JSON (de)serialization for complex values and databases.

Complex values are not plain JSON (sets and bags have no JSON
counterpart; tuples and lists must stay distinct), so values are
encoded as tagged nodes::

    5                      atoms (int/str/float) encode as themselves
    {"b": true}            bool atoms are tagged to survive int/bool
    {"t": [...]}           tuple
    {"s": [...]}           set
    {"l": [...]}           list
    {"m": [[v, n], ...]}   bag (multiplicities)

A :class:`~repro.engine.database.Database` serializes to a dict of
relations plus its schema catalog, enabling save/load of experiment
workloads.

Error contract: every malformed input — undecodable JSON, an unknown
value tag, a bag entry that is not a ``[value, count]`` pair, a schema
whose arity is missing or non-integral, a row violating its declared
arity or key — raises :class:`SerializeError`, never a bare
``KeyError``/``TypeError``/``ValueError``.  Callers get one exception
type to catch for "these bytes are not a database".

Write contract: :func:`save_database` (and the durability subsystem's
checkpoints, via :func:`atomic_write_text`) publishes atomically —
same-directory temp file, flush + fsync, ``os.replace`` — so a crash
mid-save can truncate only the temp file, never the snapshot a reader
will open.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from ..types.values import CVBag, CVList, CVSet, Tup, Value, is_atom
from .database import Database, SchemaError

__all__ = [
    "value_to_json",
    "value_from_json",
    "database_to_json",
    "database_from_json",
    "save_database",
    "load_database",
    "atomic_write_text",
    "SerializeError",
]


class SerializeError(Exception):
    """Raised on unserializable or malformed payloads."""


def value_to_json(v: Value) -> Any:
    """Encode a complex value as a JSON-compatible structure."""
    if isinstance(v, bool):
        return {"b": v}
    if is_atom(v):
        return v
    if isinstance(v, Tup):
        return {"t": [value_to_json(x) for x in v]}
    if isinstance(v, CVSet):
        return {"s": sorted((value_to_json(x) for x in v), key=repr)}
    if isinstance(v, CVList):
        return {"l": [value_to_json(x) for x in v]}
    if isinstance(v, CVBag):
        return {
            "m": sorted(
                ([value_to_json(x), v.count(x)] for x in v.support()),
                key=repr,
            )
        }
    raise SerializeError(f"not a complex value: {v!r}")


def _tagged_items(data: dict, tag: str) -> list:
    items = data[tag]
    if not isinstance(items, list):
        raise SerializeError(
            f"malformed {tag!r} payload: expected a list, got {items!r}"
        )
    return items


def value_from_json(data: Any) -> Value:
    """Decode the tagged representation back to a complex value."""
    if isinstance(data, (int, float, str)) and not isinstance(data, bool):
        return data
    if isinstance(data, dict):
        if set(data) == {"b"}:
            return bool(data["b"])
        if set(data) == {"t"}:
            return Tup(value_from_json(x) for x in _tagged_items(data, "t"))
        if set(data) == {"s"}:
            return CVSet(value_from_json(x) for x in _tagged_items(data, "s"))
        if set(data) == {"l"}:
            return CVList(
                value_from_json(x) for x in _tagged_items(data, "l")
            )
        if set(data) == {"m"}:
            items = []
            for entry in _tagged_items(data, "m"):
                if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                    raise SerializeError(f"malformed bag entry: {entry!r}")
                value, count = entry
                if (
                    not isinstance(count, int)
                    or isinstance(count, bool)
                    or count < 0
                ):
                    raise SerializeError(
                        f"bag multiplicity must be a non-negative int, "
                        f"got {count!r}"
                    )
                items.extend([value_from_json(value)] * count)
            return CVBag(items)
    raise SerializeError(f"malformed value payload: {data!r}")


def database_to_json(db: Database) -> dict:
    """Encode relations + schema catalog."""
    relations = {
        name: [value_to_json(t) for t in sorted(rel, key=repr)]
        for name, rel in db.relations.items()
    }
    schema = {}
    for name, info in db.catalog.relations.items():
        schema[name] = {
            "arity": info.arity,
            "keys": [list(k) for k in info.keys],
            "shared_keys": [
                {"columns": list(cols), "group": group}
                for cols, group in info.shared_keys.items()
            ],
        }
    return {"relations": relations, "schema": schema}


def _schema_from_json(db: Database, schema: Any) -> None:
    if not isinstance(schema, dict):
        raise SerializeError(
            f"schema must be an object, got {type(schema).__name__}"
        )
    for name, info in schema.items():
        if not isinstance(info, dict):
            raise SerializeError(f"malformed schema for {name!r}: {info!r}")
        try:
            arity = info["arity"]
        except KeyError:
            raise SerializeError(
                f"schema for {name!r} is missing its arity"
            ) from None
        if not isinstance(arity, int) or isinstance(arity, bool) or arity < 0:
            raise SerializeError(
                f"schema arity for {name!r} must be a non-negative int, "
                f"got {arity!r}"
            )
        try:
            keys = [tuple(k) for k in info.get("keys", [])]
            shared_keys = {
                tuple(entry["columns"]): entry["group"]
                for entry in info.get("shared_keys", [])
            }
        except (KeyError, TypeError) as exc:
            raise SerializeError(
                f"malformed schema for {name!r}: {exc!r}"
            ) from None
        db.create(name, arity, keys=keys, shared_keys=shared_keys)


def database_from_json(data: Any) -> Database:
    """Rebuild a database (relations validated against the schema).

    Every malformed payload raises :class:`SerializeError` — including
    rows that violate the schema they arrived with (arity mismatches,
    duplicate keys), which are a *serialization* problem here: the
    bytes disagree with themselves.
    """
    if not isinstance(data, dict):
        raise SerializeError(
            f"database payload must be an object, "
            f"got {type(data).__name__}"
        )
    db = Database()
    _schema_from_json(db, data.get("schema", {}))
    relations = data.get("relations", {})
    if not isinstance(relations, dict):
        raise SerializeError(
            f"relations must be an object, got {type(relations).__name__}"
        )
    for name, rows in relations.items():
        if not isinstance(rows, list):
            raise SerializeError(
                f"relation {name!r} must be a list of rows, got {rows!r}"
            )
        decoded = [value_from_json(row) for row in rows]
        if name in db.catalog:
            try:
                tuples = [tuple(t) for t in decoded]
            except TypeError:
                raise SerializeError(
                    f"relation {name!r} contains a non-tuple row"
                ) from None
            try:
                db.insert(name, tuples)
            except SchemaError as exc:
                raise SerializeError(
                    f"relation {name!r} violates its schema: {exc}"
                ) from None
        else:
            db[name] = CVSet(decoded)
    return db


def atomic_write_text(path: str, text: str) -> None:
    """Crash-safe file publication: write a same-directory temp file,
    flush + fsync it, then ``os.replace`` onto ``path``.

    Readers see either the old contents or the complete new contents,
    never a truncation — ``os.replace`` is atomic on POSIX and the
    fsync ensures the bytes hit disk before the name does.  The temp
    file lives in the target's directory because ``os.replace`` across
    filesystems is not atomic (it degrades to copy+delete).
    """
    target = os.path.abspath(os.fspath(path))
    directory = os.path.dirname(target)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_database(db: Database, path: str) -> None:
    """Write the database to a JSON file (atomically; see
    :func:`atomic_write_text`)."""
    atomic_write_text(
        path, json.dumps(database_to_json(db), indent=1, sort_keys=True)
    )


def load_database(path: str) -> Database:
    """Read a database from a JSON file.

    Raises :class:`SerializeError` for any malformed contents (invalid
    JSON included); I/O errors (missing file, permissions) propagate
    as ``OSError`` — they are environmental, not a format problem.
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SerializeError(f"malformed database file: {exc}") from None
    return database_from_json(data)
