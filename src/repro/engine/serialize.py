"""JSON (de)serialization for complex values and databases.

Complex values are not plain JSON (sets and bags have no JSON
counterpart; tuples and lists must stay distinct), so values are
encoded as tagged nodes::

    5                      atoms (int/str/float) encode as themselves
    {"b": true}            bool atoms are tagged to survive int/bool
    {"t": [...]}           tuple
    {"s": [...]}           set
    {"l": [...]}           list
    {"m": [[v, n], ...]}   bag (multiplicities)

A :class:`~repro.engine.database.Database` serializes to a dict of
relations plus its schema catalog, enabling save/load of experiment
workloads.
"""

from __future__ import annotations

import json
from typing import Any

from ..types.values import CVBag, CVList, CVSet, Tup, Value, is_atom
from .database import Database

__all__ = [
    "value_to_json",
    "value_from_json",
    "database_to_json",
    "database_from_json",
    "save_database",
    "load_database",
    "SerializeError",
]


class SerializeError(Exception):
    """Raised on unserializable or malformed payloads."""


def value_to_json(v: Value) -> Any:
    """Encode a complex value as a JSON-compatible structure."""
    if isinstance(v, bool):
        return {"b": v}
    if is_atom(v):
        return v
    if isinstance(v, Tup):
        return {"t": [value_to_json(x) for x in v]}
    if isinstance(v, CVSet):
        return {"s": sorted((value_to_json(x) for x in v), key=repr)}
    if isinstance(v, CVList):
        return {"l": [value_to_json(x) for x in v]}
    if isinstance(v, CVBag):
        return {
            "m": sorted(
                ([value_to_json(x), v.count(x)] for x in v.support()),
                key=repr,
            )
        }
    raise SerializeError(f"not a complex value: {v!r}")


def value_from_json(data: Any) -> Value:
    """Decode the tagged representation back to a complex value."""
    if isinstance(data, (int, float, str)) and not isinstance(data, bool):
        return data
    if isinstance(data, dict):
        if set(data) == {"b"}:
            return bool(data["b"])
        if set(data) == {"t"}:
            return Tup(value_from_json(x) for x in data["t"])
        if set(data) == {"s"}:
            return CVSet(value_from_json(x) for x in data["s"])
        if set(data) == {"l"}:
            return CVList(value_from_json(x) for x in data["l"])
        if set(data) == {"m"}:
            items = []
            for entry in data["m"]:
                value, count = entry
                items.extend([value_from_json(value)] * int(count))
            return CVBag(items)
    raise SerializeError(f"malformed value payload: {data!r}")


def database_to_json(db: Database) -> dict:
    """Encode relations + schema catalog."""
    relations = {
        name: [value_to_json(t) for t in sorted(rel, key=repr)]
        for name, rel in db.relations.items()
    }
    schema = {}
    for name, info in db.catalog.relations.items():
        schema[name] = {
            "arity": info.arity,
            "keys": [list(k) for k in info.keys],
            "shared_keys": [
                {"columns": list(cols), "group": group}
                for cols, group in info.shared_keys.items()
            ],
        }
    return {"relations": relations, "schema": schema}


def database_from_json(data: dict) -> Database:
    """Rebuild a database (relations validated against the schema)."""
    db = Database()
    for name, info in data.get("schema", {}).items():
        db.create(
            name,
            info["arity"],
            keys=[tuple(k) for k in info.get("keys", [])],
            shared_keys={
                tuple(entry["columns"]): entry["group"]
                for entry in info.get("shared_keys", [])
            },
        )
    for name, rows in data.get("relations", {}).items():
        decoded = [value_from_json(row) for row in rows]
        if name in db.catalog:
            db.insert(name, [tuple(t) for t in decoded])
        else:
            db[name] = CVSet(decoded)
    return db


def save_database(db: Database, path: str) -> None:
    """Write the database to a JSON file."""
    with open(path, "w") as handle:
        json.dump(database_to_json(db), handle, indent=1, sort_keys=True)


def load_database(path: str) -> Database:
    """Read a database from a JSON file."""
    with open(path) as handle:
        return database_from_json(json.load(handle))
