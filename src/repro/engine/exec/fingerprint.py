"""Fingerprints for relations and plans — the result-cache key.

A cached plan result may be reused only when (a) the plan is
*structurally identical* and (b) every base relation it reads has the
same contents.  Both checks must be cheap:

* plans are frozen dataclasses whose equality/hash ignore the attached
  callables and compare by *name* (``Select.predicate_name``,
  ``MapNode.fn_name``), so a plan is its own structural key.  The
  standing invariant — already relied on by the rewriter's rule trace —
  is that a predicate/function name identifies its semantics within one
  cache's lifetime;
* :class:`~repro.types.values.CVSet` precomputes its hash at
  construction, so a relation fingerprint ``(cardinality, hash)`` is an
  O(1) lookup, not a rescan.
"""

from __future__ import annotations

from typing import Mapping as TMapping, Optional

from ...optimizer.constraints import base_relations
from ...optimizer.plan import Plan
from ...types.values import CVSet

__all__ = [
    "relation_fingerprint",
    "plan_structural_hash",
    "result_cache_key",
]

_EMPTY = CVSet()


def relation_fingerprint(relation: Optional[CVSet]) -> tuple[int, int]:
    """A cheap content fingerprint: ``(cardinality, precomputed hash)``.

    Missing relations fingerprint as the empty set, matching the
    executor's ``db.get(name, CVSet())`` semantics.
    """
    if relation is None:
        relation = _EMPTY
    return (len(relation), hash(relation))


def plan_structural_hash(plan: Plan) -> int:
    """Structural hash of a plan tree (callables excluded by design)."""
    return hash(plan)


def result_cache_key(
    plan: Plan, db: TMapping[str, CVSet]
) -> tuple[Plan, tuple[tuple[str, tuple[int, int]], ...]]:
    """Cache key: the plan itself plus fingerprints of every base
    relation it reads, in sorted name order."""
    names = sorted(base_relations(plan))
    return (
        plan,
        tuple((name, relation_fingerprint(db.get(name))) for name in names),
    )
