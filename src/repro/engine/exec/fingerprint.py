"""Fingerprints for relations and plans — the result-cache key.

A cached plan result may be reused only when (a) the plan is
*structurally identical*, (b) every named callable it carries
(``Select.predicate``, ``MapNode.fn``) has the same *semantics*, and
(c) every base relation it reads has the same contents.  All three
checks must be cheap:

* plans are frozen dataclasses whose equality/hash ignore the attached
  callables and compare by *name* (``Select.predicate_name``,
  ``MapNode.fn_name``), so a plan is its own structural key;
* structural identity alone is **not** sufficient for reuse: two plans
  may alias one ``predicate_name`` to different callables.  The old
  "standing invariant" (a name identifies its semantics within one
  cache's lifetime) was documented but unenforced, and a violation
  silently returned the *wrong answer* from a shared cache.  It is now
  enforced by machine: :func:`annotate_plan` assigns every subtree an
  interned **semantic token** that folds in a disambiguator for each
  named callable (see :func:`callable_identity`), and the cache keys on
  the token instead of the bare plan;
* :class:`~repro.types.values.CVSet` precomputes its hash at
  construction, so a relation fingerprint ``(cardinality, hash)`` is an
  O(1) lookup, not a rescan.
"""

from __future__ import annotations

from typing import Callable, Mapping as TMapping, Optional

from ...optimizer.constraints import base_relations
from ...optimizer.plan import MapNode, Plan, Scan, Select
from ...types.values import CVSet

__all__ = [
    "relation_fingerprint",
    "plan_structural_hash",
    "result_cache_key",
    "callable_identity",
    "annotate_plan",
    "semantic_cache_key",
]

_EMPTY = CVSet()


def relation_fingerprint(relation: Optional[CVSet]) -> tuple[int, int]:
    """A cheap content fingerprint: ``(cardinality, precomputed hash)``.

    Missing relations fingerprint as the empty set, matching the
    executor's ``db.get(name, CVSet())`` semantics.
    """
    if relation is None:
        relation = _EMPTY
    return (len(relation), hash(relation))


def plan_structural_hash(plan: Plan) -> int:
    """Structural hash of a plan tree (callables excluded by design)."""
    return hash(plan)


def result_cache_key(
    plan: Plan, db: TMapping[str, CVSet]
) -> tuple[Plan, tuple[tuple[str, tuple[int, int]], ...]]:
    """Legacy *structural* cache key: the plan itself plus fingerprints
    of every base relation it reads, in sorted name order.

    This key ignores which callables back the plan's predicate/function
    names, so it is only safe when names are never aliased.
    :class:`~repro.engine.exec.cache.PlanCache` no longer keys on it —
    see :func:`annotate_plan`/:func:`semantic_cache_key` — but it
    remains the cheap structural key for callers that control their
    naming."""
    names = sorted(base_relations(plan))
    return (
        plan,
        tuple((name, relation_fingerprint(db.get(name))) for name in names),
    )


_MAX_CLOSURE_DEPTH = 8


def callable_identity(fn: Callable, _depth: int = 0) -> object:
    """A hashable token that identifies a callable's semantics.

    Two callables with the same token are guaranteed to compute the
    same function (assuming no mutation of globals they read); distinct
    tokens make no claim either way, which errs on the side of cache
    misses, never wrong answers.

    For plain Python functions the token is ``(code object, closure
    values, defaults)``: re-creating a closure from the same source with
    equal captured values — e.g. the plan parser building ``lambda t:
    compare(t[column], literal)`` afresh per parse — yields the *same*
    token, so caches stay warm across re-parses.  Captured callables are
    resolved recursively (depth-bounded).  Anything else — builtins,
    callable objects, unhashable captures — falls back to the callable
    itself, i.e. identity semantics, with the returned token holding a
    strong reference so a freed callable's ``id`` can never be reused
    for a different one.

    Captured values can mutate between calls (a closure over a
    ``nonlocal`` counter, say), in which case re-deriving the token for
    the *same* function object yields a different answer.  Callers that
    need per-object stability memoize the first derivation — the
    :class:`~repro.engine.exec.cache.PlanCache` does.
    """
    code = getattr(fn, "__code__", None)
    if code is None or _depth >= _MAX_CLOSURE_DEPTH:
        return fn
    parts: list[object] = []
    for cell in getattr(fn, "__closure__", None) or ():
        try:
            value = cell.cell_contents
        except ValueError:  # still-empty cell
            return fn
        parts.append(_capture_token(value, _depth))
    defaults = getattr(fn, "__defaults__", None) or ()
    default_parts = tuple(_capture_token(v, _depth) for v in defaults)
    token = (code, tuple(parts), default_parts)
    try:
        hash(token)
    except TypeError:
        return fn
    return token


def _capture_token(value: object, depth: int) -> object:
    if callable(value):
        return callable_identity(value, depth + 1)
    return value


def annotate_plan(
    plan: Plan,
    intern_table: dict,
    tag: Callable[[str, Callable], object],
) -> dict[int, tuple[int, frozenset]]:
    """Assign every subtree a semantic token and its base-relation set.

    Returns ``id(node) -> (token, relations)`` for every node reachable
    from ``plan``.  Tokens are interned integers: two subtrees get the
    same token **iff** they are structurally equal *and* every named
    callable resolves to the same ``tag(name, fn)`` disambiguator.
    Interning makes token comparison exact (no hash-collision exposure)
    and O(1).

    ``intern_table`` carries the interning state; share one table (the
    :class:`~repro.engine.exec.cache.PlanCache` does) to make tokens
    comparable across calls.  The walk is an explicit-stack postorder —
    O(nodes) total, safe at any plan depth.
    """
    info: dict[int, tuple[int, frozenset]] = {}
    stack: list[tuple[Plan, bool]] = [(plan, False)]
    while stack:
        node, ready = stack.pop()
        node_id = id(node)
        if node_id in info:
            continue
        if not ready:
            stack.append((node, True))
            for child in node.children():
                if id(child) not in info:
                    stack.append((child, False))
            continue
        children = node.children()
        child_info = tuple(info[id(c)] for c in children)
        if isinstance(node, Scan):
            relations: frozenset = frozenset((node.relation,))
        elif len(child_info) == 1:
            relations = child_info[0][1]
        elif child_info:
            relations = frozenset().union(*(ci[1] for ci in child_info))
        else:
            relations = frozenset()
        if isinstance(node, Select):
            semantics: object = tag(node.predicate_name, node.predicate)
        elif isinstance(node, MapNode):
            semantics = tag(node.fn_name, node.fn)
        else:
            semantics = None
        key = (
            type(node).__name__,
            node._scalar_key(),
            semantics,
            tuple(ci[0] for ci in child_info),
        )
        token = intern_table.get(key)
        if token is None:
            token = len(intern_table)
            intern_table[key] = token
        info[node_id] = (token, relations)
    return info


def semantic_cache_key(
    token: int, relations: frozenset, db: TMapping[str, CVSet]
) -> tuple[int, tuple[tuple[str, tuple[int, int]], ...]]:
    """The cache key actually stored: a plan's semantic token plus the
    fingerprints of every base relation it reads, in sorted order."""
    return (
        token,
        tuple(
            (name, relation_fingerprint(db.get(name)))
            for name in sorted(relations)
        ),
    )
