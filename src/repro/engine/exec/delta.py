"""Semi-naive delta maintenance of cached plan results.

A cached :class:`~repro.engine.exec.cache.CacheEntry` is a materialized
view of its plan.  When :meth:`~repro.engine.database.Database.insert`
adds rows to a base relation, the classical choice is to *invalidate*
every entry reading that relation — correct, but it turns every write
into a cache catastrophe for serving workloads that interleave inserts
with repeated queries.  The paper's genericity classification (the same
analysis behind the Section 4.4 rewrites, tabulated in
:data:`~repro.optimizer.rules.NODE_MONOTONICITY`) identifies exactly
which operators are *monotone* — distribute over insertions — which is
the licence for semi-naive view maintenance: propagate the delta
``dR`` through the plan instead of recomputing it.

Three maintainability classes (:func:`classify`):

* **delta-monotone** (Scan/Select/Project/Map/Union/Intersect/Product/
  Join) — inserted deltas propagate as ``dout = op(din, ...)``, with
  joins and products probing maintained per-node hash state;
* **semi-maintainable** (Difference) — monotone in its *left* input
  only: a left delta propagates as ``dL - R``, a right delta can
  retract derived rows and forces a recompute of the whole view;
* **opaque** — any node type the table does not know; maintenance
  falls back to invalidation.

:class:`MaintainedView` holds per-node state (value, width-weighted
size, and join probe accounting) for one plan.  The state is
**bootstrapped lazily** on the first maintenance call — one bottom-up
evaluation against the post-insert database, byte-identical to the
reference interpreter by construction — and every later delta is
incremental.  :meth:`MaintainedView.result` regenerates the value,
total work, and the *exact reference postorder ledger* from that state,
so a maintained entry is indistinguishable from a cold recomputation:
the engine's four-way value/work/ledger parity contract extends to
maintained entries (enforced by the ``delta`` fuzz scenario and the
property tests in ``tests/engine/test_delta.py``).

Correctness never regresses: :meth:`~repro.engine.exec.cache.PlanCache.
maintain` wraps every per-entry application in a fallback that drops
the entry on *any* failure (including injected ``"maintenance"``
faults), so the worst case is exactly today's invalidate-then-recompute.
"""

from __future__ import annotations

from typing import Iterable, Mapping as TMapping, Optional

from ...optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
    tuple_weight,
)
from ...optimizer.rules import (
    DELTA_MONOTONE,
    NODE_MONOTONICITY,
    OPAQUE,
    SEMI_MAINTAINABLE,
)
from ...types.values import CVSet, Tup, Value
from .operators import node_label

__all__ = [
    "DeltaError",
    "MaintainabilityReport",
    "MaintainedView",
    "analyze_plan",
    "classify",
    "DELTA_MONOTONE",
    "SEMI_MAINTAINABLE",
    "OPAQUE",
]

_EMPTY = CVSet()


class DeltaError(RuntimeError):
    """A delta cannot be absorbed by a maintained view (right side of a
    difference touched, opaque node, inconsistent state).  The cache's
    maintenance loop treats it like any other failure: invalidate the
    entry and let the next query recompute cold."""


def classify(node: Plan) -> str:
    """The maintainability class of one plan node (by type)."""
    entry = NODE_MONOTONICITY.get(type(node))
    return entry[0] if entry is not None else OPAQUE


def _postorder_unique(plan: Plan) -> list[Plan]:
    """Unique plan nodes, children before parents (explicit stack, safe
    at any depth; shared node objects appear once)."""
    order: list[Plan] = []
    seen: set[int] = set()
    stack: list[tuple[Plan, bool]] = [(plan, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in seen:
            continue
        if ready:
            seen.add(id(node))
            order.append(node)
            continue
        stack.append((node, True))
        for child in node.children():
            if id(child) not in seen:
                stack.append((child, False))
    return order


class MaintainabilityReport:
    """What :func:`analyze_plan` learned about one plan.

    ``maintainable`` — no opaque nodes anywhere; ``recompute_relations``
    — base relations reachable under the *right* child of any
    Difference: a delta to one of those retracts derived rows, so the
    view must be invalidated instead.  ``classes`` counts nodes per
    maintainability class (surfaced by EXPLAIN).
    """

    __slots__ = ("maintainable", "recompute_relations", "classes")

    def __init__(
        self,
        maintainable: bool,
        recompute_relations: frozenset,
        classes: dict,
    ) -> None:
        self.maintainable = maintainable
        self.recompute_relations = recompute_relations
        self.classes = classes

    def maintainable_for(self, relation: str) -> bool:
        """Can a delta to ``relation`` be absorbed incrementally?"""
        return self.maintainable and relation not in self.recompute_relations

    def __repr__(self) -> str:
        return (
            f"MaintainabilityReport(maintainable={self.maintainable}, "
            f"recompute_relations={sorted(self.recompute_relations)})"
        )


def analyze_plan(plan: Plan) -> MaintainabilityReport:
    """Classify every node of ``plan`` and derive the view's
    maintainability (see :class:`MaintainabilityReport`)."""
    order = _postorder_unique(plan)
    classes: dict[str, int] = {}
    maintainable = True
    # relations read by each unique subtree, for the Difference check.
    reads: dict[int, frozenset] = {}
    recompute: set[str] = set()
    for node in order:
        cls = classify(node)
        classes[cls] = classes.get(cls, 0) + 1
        if cls == OPAQUE:
            maintainable = False
        if isinstance(node, Scan):
            reads[id(node)] = frozenset((node.relation,))
        else:
            children = node.children()
            if len(children) == 1:
                reads[id(node)] = reads[id(children[0])]
            else:
                reads[id(node)] = frozenset().union(
                    *(reads[id(c)] for c in children)
                )
        if isinstance(node, Difference):
            recompute |= reads[id(node.right)]
    return MaintainabilityReport(
        maintainable, frozenset(recompute), classes
    )


class _NodeState:
    """Maintained physical state of one unique plan node: the node's
    current value (a plain set of rows), its width-weighted size, and —
    for keyed joins — the first-column hash indexes of both inputs plus
    the running candidate-probe total the reference charges."""

    __slots__ = ("value", "weight", "left_index", "right_index", "probes")

    def __init__(self) -> None:
        self.value: set = set()
        self.weight: int = 0
        self.left_index: Optional[dict] = None
        self.right_index: Optional[dict] = None
        self.probes: int = 0

    def absorb(self, delta: Iterable[Value]) -> None:
        """Add *new* rows (dedup'd; weight counts distinct rows once)."""
        if not isinstance(delta, (set, frozenset)):
            delta = set(delta)
        self.value.update(delta)
        self.weight += sum(tuple_weight(t) for t in delta)


def _first_col_index(rows: Iterable[Value], col: int) -> dict:
    index: dict = {}
    for t in rows:
        index.setdefault(t[col], []).append(t)
    return index


class MaintainedView:
    """Live per-node state for one cached plan, absorbing insert deltas.

    Construction is O(1) — the maintainability analysis and the state
    bootstrap both happen lazily on first use, so registering a view at
    ``PlanCache.put`` time costs one allocation.
    """

    __slots__ = ("plan", "_report", "_order", "_states")

    def __init__(self, plan: Plan) -> None:
        self.plan = plan
        self._report: Optional[MaintainabilityReport] = None
        self._order: Optional[list[Plan]] = None
        self._states: Optional[dict[int, _NodeState]] = None

    @property
    def report(self) -> MaintainabilityReport:
        if self._report is None:
            self._report = analyze_plan(self.plan)
        return self._report

    def maintainable_for(self, relation: str) -> bool:
        return self.report.maintainable_for(relation)

    # ------------------------------------------------------------------
    # Bootstrap: one bottom-up evaluation, mirroring the reference
    # interpreter's value semantics and probe accounting exactly.

    def _bootstrap(self, db: TMapping[str, CVSet]) -> None:
        order = _postorder_unique(self.plan)
        states: dict[int, _NodeState] = {}
        for node in order:
            st = _NodeState()
            if isinstance(node, Scan):
                st.absorb(db.get(node.relation, _EMPTY))
            elif isinstance(node, Project):
                child = states[id(node.child)].value
                st.absorb({t.project(node.columns) for t in child})
            elif isinstance(node, Select):
                child = states[id(node.child)].value
                st.absorb({t for t in child if node.predicate(t)})
            elif isinstance(node, MapNode):
                child = states[id(node.child)].value
                st.absorb({node.fn(t) for t in child})
            elif isinstance(node, Union):
                left = states[id(node.left)].value
                right = states[id(node.right)].value
                st.absorb(left | right)
            elif isinstance(node, Difference):
                left = states[id(node.left)].value
                right = states[id(node.right)].value
                st.absorb(left - right)
            elif isinstance(node, Intersect):
                left = states[id(node.left)].value
                right = states[id(node.right)].value
                st.absorb(left & right)
            elif isinstance(node, Product):
                left = states[id(node.left)].value
                right = states[id(node.right)].value
                st.absorb(
                    Tup(tuple(a) + tuple(b)) for a in left for b in right
                )
            elif isinstance(node, Join):
                left = states[id(node.left)].value
                right = states[id(node.right)].value
                if node.on:
                    i0, j0 = node.on[0]
                    st.left_index = _first_col_index(left, i0)
                    st.right_index = _first_col_index(right, j0)
                    out = set()
                    probes = 0
                    rest = node.on
                    for a in left:
                        for b in st.right_index.get(a[i0], ()):
                            probes += 1
                            if all(a[i] == b[j] for i, j in rest):
                                out.add(Tup(tuple(a) + tuple(b)))
                    st.probes = probes
                    st.absorb(out)
                else:
                    st.absorb(
                        Tup(tuple(a) + tuple(b))
                        for a in left
                        for b in right
                    )
            else:
                raise DeltaError(
                    f"opaque plan node: {type(node).__name__}"
                )
            states[id(node)] = st
        self._order = order
        self._states = states

    # ------------------------------------------------------------------
    # Incremental application.

    def apply(
        self,
        relation: str,
        delta_rows: Iterable[Value],
        db: TMapping[str, CVSet],
    ) -> None:
        """Absorb an insert of ``delta_rows`` into ``relation``.

        ``db`` is the *post-insert* relation mapping.  The first call
        bootstraps the per-node state from ``db`` (already reflecting
        the delta); later calls propagate the delta node by node.
        Raises :class:`DeltaError` when the delta cannot be absorbed
        (the caller invalidates)."""
        if not self.maintainable_for(relation):
            raise DeltaError(
                f"view is not maintainable for relation {relation!r}"
            )
        if self._states is None:
            self._bootstrap(db)
            return
        states = self._states
        deltas: dict[int, frozenset] = {}
        for node in self._order:
            st = states[id(node)]
            if isinstance(node, Scan):
                if node.relation == relation:
                    # Rows arrive as Tup already (``Database.insert``
                    # normalizes); subtract defensively in case a
                    # caller replays rows the view has seen.
                    dnew = frozenset(delta_rows) - st.value
                else:
                    dnew = frozenset()
            elif isinstance(node, Project):
                din = deltas[id(node.child)]
                dnew = (
                    frozenset(t.project(node.columns) for t in din)
                    - st.value
                )
            elif isinstance(node, Select):
                din = deltas[id(node.child)]
                dnew = frozenset(t for t in din if node.predicate(t))
            elif isinstance(node, MapNode):
                din = deltas[id(node.child)]
                dnew = frozenset(node.fn(t) for t in din) - st.value
            elif isinstance(node, Union):
                dl = deltas[id(node.left)]
                dr = deltas[id(node.right)]
                dnew = (dl | dr) - st.value
            elif isinstance(node, Difference):
                dr = deltas[id(node.right)]
                if dr:
                    raise DeltaError(
                        "right-side delta under difference retracts "
                        "derived rows; view must recompute"
                    )
                dl = deltas[id(node.left)]
                dnew = dl - states[id(node.right)].value
            elif isinstance(node, Intersect):
                dl = deltas[id(node.left)]
                dr = deltas[id(node.right)]
                lv = states[id(node.left)].value
                rv = states[id(node.right)].value
                # Children are already updated, so probing their new
                # values covers the dl&dr corner; new-to-old rows can't
                # collide with the old view (delta rows are new to
                # their side).
                dnew = frozenset(t for t in dl if t in rv) | frozenset(
                    t for t in dr if t in lv
                )
            elif isinstance(node, Product):
                dl = deltas[id(node.left)]
                dr = deltas[id(node.right)]
                lv = states[id(node.left)].value
                rv = states[id(node.right)].value
                out = {
                    Tup(tuple(a) + tuple(b)) for a in dl for b in rv
                }
                if dr:
                    out.update(
                        Tup(tuple(a) + tuple(b))
                        for a in lv
                        if a not in dl
                        for b in dr
                    )
                # Concatenated tuples of different splits can collide
                # with existing rows (mixed-width inputs), so subtract.
                dnew = frozenset(out) - st.value
            elif isinstance(node, Join):
                dnew = self._apply_join(node, st, deltas)
            else:
                raise DeltaError(
                    f"opaque plan node: {type(node).__name__}"
                )
            deltas[id(node)] = dnew
            if dnew:
                st.absorb(dnew)

    def _apply_join(
        self, node: Join, st: _NodeState, deltas: dict
    ) -> frozenset:
        dl = deltas[id(node.left)]
        dr = deltas[id(node.right)]
        if not node.on:
            lv = self._states[id(node.left)].value
            rv = self._states[id(node.right)].value
            out = {Tup(tuple(a) + tuple(b)) for a in dl for b in rv}
            if dr:
                out.update(
                    Tup(tuple(a) + tuple(b))
                    for a in lv
                    if a not in dl
                    for b in dr
                )
            return frozenset(out) - st.value
        i0, j0 = node.on[0]
        on = node.on
        out: set = set()
        probes = 0
        # Old-left x delta-right first (left_index still pre-delta)...
        for b in dr:
            for a in st.left_index.get(b[j0], ()):
                probes += 1
                if all(a[i] == b[j] for i, j in on):
                    out.add(Tup(tuple(a) + tuple(b)))
        for b in dr:
            st.right_index.setdefault(b[j0], []).append(b)
        # ...then delta-left x new-right (right_index now post-delta),
        # covering dl x dr exactly once.
        for a in dl:
            for b in st.right_index.get(a[i0], ()):
                probes += 1
                if all(a[i] == b[j] for i, j in on):
                    out.add(Tup(tuple(a) + tuple(b)))
        for a in dl:
            st.left_index.setdefault(a[i0], []).append(a)
        st.probes += probes
        return frozenset(out) - st.value

    # ------------------------------------------------------------------
    # Materialization: regenerate (value, work, ledger) byte-identical
    # to the reference interpreter's.

    def result(self) -> tuple[CVSet, int, tuple[tuple[str, int], ...]]:
        """The view's current answer in cache-entry form.

        The ledger is rebuilt by a full-occurrence postorder walk (a
        shared subtree logs once per occurrence, exactly like the
        reference interpreter), reading each occurrence's work from the
        maintained per-node state via the reference cost formulas."""
        if self._states is None:
            raise DeltaError("view state not bootstrapped")
        states = self._states
        entries: list[tuple[str, int]] = []
        stack: list[tuple[Plan, bool]] = [(self.plan, False)]
        while stack:
            node, ready = stack.pop()
            if not ready:
                stack.append((node, True))
                for child in reversed(node.children()):
                    stack.append((child, False))
                continue
            entries.append((node_label(node), self._node_work(node)))
        work = sum(w for _, w in entries)
        value = CVSet(frozenset(states[id(self.plan)].value))
        return value, work, tuple(entries)

    def _node_work(self, node: Plan) -> int:
        states = self._states
        if isinstance(node, Scan):
            return 0
        if isinstance(node, (Project, Select, MapNode)):
            return states[id(node.child)].weight
        left = states[id(node.left)]
        right = states[id(node.right)]
        if isinstance(node, (Union, Difference, Intersect)):
            return left.weight + right.weight
        if isinstance(node, Product):
            return len(left.value) * right.weight + left.weight
        if isinstance(node, Join):
            if node.on:
                return left.weight + right.weight + states[id(node)].probes
            return (
                left.weight
                + right.weight
                + len(left.value) * len(right.value)
            )
        raise DeltaError(f"opaque plan node: {type(node).__name__}")

