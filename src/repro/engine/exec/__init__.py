"""Physical execution layer: pipelined operators, hash joins, CSE and a
fingerprint-keyed result cache.

See ``docs/EXECUTION.md`` for the operator set, the cache keying and
invalidation rules, and how work accounting maps onto the Section 4.4
cost model.
"""

from .cache import CacheEntry, PlanCache
from .executor import execute_streaming, subtree_counts
from .fingerprint import (
    plan_structural_hash,
    relation_fingerprint,
    result_cache_key,
)
from .operators import Frame, collect_frame, node_label

__all__ = [
    "CacheEntry",
    "PlanCache",
    "execute_streaming",
    "subtree_counts",
    "plan_structural_hash",
    "relation_fingerprint",
    "result_cache_key",
    "Frame",
    "collect_frame",
    "node_label",
]
