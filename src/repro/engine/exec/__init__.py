"""Physical execution layer: pipelined operators, hash joins, CSE and a
semantically-keyed result cache.

See ``docs/EXECUTION.md`` for the operator set, the cache keying and
invalidation rules (including the callable registry that enforces the
predicate-name invariant), deep-plan safety, and how work accounting
maps onto the Section 4.4 cost model.
"""

from .batch import execute_batch
from .cache import CacheEntry, CacheInvariantError, PlanCache, entry_seal
from .compile import CompiledPlan, compile_plan, execute_compiled, plan_depth
from .delta import (
    DeltaError,
    MaintainabilityReport,
    MaintainedView,
    analyze_plan as analyze_maintainability,
    classify as classify_maintainability,
)
from .executor import MAX_PIPELINE_DEPTH, execute_streaming, subtree_counts
from .fingerprint import (
    annotate_plan,
    callable_identity,
    plan_structural_hash,
    relation_fingerprint,
    result_cache_key,
    semantic_cache_key,
)
from .operators import Frame, collect_frame, node_label
from .shard import NotPartitionable, execute_sharded, plan_partitioning

__all__ = [
    "CacheEntry",
    "CacheInvariantError",
    "PlanCache",
    "entry_seal",
    "MAX_PIPELINE_DEPTH",
    "CompiledPlan",
    "compile_plan",
    "execute_batch",
    "execute_compiled",
    "execute_streaming",
    "NotPartitionable",
    "execute_sharded",
    "plan_partitioning",
    "plan_depth",
    "subtree_counts",
    "annotate_plan",
    "callable_identity",
    "plan_structural_hash",
    "relation_fingerprint",
    "result_cache_key",
    "semantic_cache_key",
    "Frame",
    "collect_frame",
    "node_label",
    "DeltaError",
    "MaintainabilityReport",
    "MaintainedView",
    "analyze_maintainability",
    "classify_maintainability",
]
