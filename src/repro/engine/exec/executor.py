"""The streaming plan executor.

Replaces the tuple-at-a-time recursive interpreter
(:func:`repro.optimizer.plan.execute_reference`) with a physical
pipeline:

* **Pipelining** — unary operators and ``Union`` stream tuple by tuple;
  a single pass flows from the scans to the root with no intermediate
  ``CVSet`` construction (no re-hashing whole relations at every level).
  Materialization happens only at pipeline breakers: hash-build sides of
  ``Difference``/``Intersect``/``Product``/``Join``, and the root.
* **Common-subexpression elimination** — subtrees with the same
  *semantic token* (structural equality **and** identical callables —
  see :func:`~repro.engine.exec.fingerprint.annotate_plan`) are detected
  up front; a repeated subtree executes once and later occurrences
  replay its materialized result.  Its work ledger is *spliced* per
  occurrence, so reported work is exactly what the reference
  interpreter charges.  Keying on semantic tokens (not bare structural
  equality) means two same-named selections backed by different
  predicates are never conflated.
* **Result caching** — with a :class:`~repro.engine.exec.cache.PlanCache`
  attached, every non-``Scan`` node consults the cache (keyed by
  semantic token + base-relation fingerprints) before compiling, and
  every node that gets materialized anyway (root, CSE duplicates, hash
  build sides) populates it.  The invariance/classification experiments
  re-run identical sub-plans thousands of times; hits skip execution
  entirely while still reporting as-if-executed work.
* **Index reuse** — single-pair joins whose build side is a bare scan
  can borrow the database's incrementally-maintained secondary hash
  index instead of rebuilding it per query (``key_index`` hook).
* **Deep-plan safety** — plan compilation is an explicit-stack
  traversal (no recursion), and pipelines deeper than
  :data:`MAX_PIPELINE_DEPTH` are cut by forced materialization, so the
  runtime generator chain stays shallow.  Plans thousands of operators
  deep execute without ``RecursionError``; the extra materialization
  points are invisible in the results (value, work, and ledger are
  unchanged — materialized subtrees splice their ledgers exactly like
  CSE hits do).

The executor's contract, enforced by the equivalence property tests and
the differential fuzz harness (:mod:`repro.engine.fuzz`): identical
``CVSet`` answer, identical total work, and identical per-node ledger
(same labels, same postorder) as the reference interpreter, for every
plan over every database.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Callable, Iterator, Mapping as TMapping, Optional

from ...optimizer.plan import (
    Difference,
    ExecutionResult,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
    tuple_weight,
)
from ...obs.trace import Span, Tracer
from ...types.values import CVSet, Value
from .cache import CacheEntry, PlanCache
from .fingerprint import annotate_plan, semantic_cache_key
from .operators import (
    Frame,
    collect_frame,
    difference_gen,
    intersect_gen,
    join_gen,
    map_gen,
    node_label,
    product_gen,
    project_gen,
    select_gen,
    traced_gen,
    union_gen,
)

__all__ = ["execute_streaming", "subtree_counts", "MAX_PIPELINE_DEPTH"]

_EMPTY = CVSet()

#: ``key_index(name, columns)`` returns ``(index, relation_weight)`` for
#: a maintained secondary hash index, or ``None`` when unavailable.
KeyIndex = Callable[[str, tuple[int, ...]], Optional[tuple[dict, int]]]

#: Longest chain of lazily-nested generators allowed before the
#: executor cuts the pipeline with a materialization point.  Each
#: pipelined operator adds one resumed generator frame per pulled
#: tuple, so unbounded chains hit Python's recursion limit around
#: depth ~600; 128 keeps the runtime stack comfortably shallow while
#: leaving ordinary plans fully pipelined.
MAX_PIPELINE_DEPTH = 128

# Work-item tags for the explicit compile stack.
_VISIT, _COMBINE = 0, 1
# Combine flavors.
_GENERIC, _BULK, _PREBUILT = 0, 1, 2


def subtree_counts(plan: Plan) -> Counter:
    """Occurrence count of every subtree, by structural equality."""
    counts: Counter = Counter()
    stack = [plan]
    while stack:
        node = stack.pop()
        counts[node] += 1
        stack.extend(node.children())
    return counts


def _finish_spans(root_frame: Frame, spans: dict[int, Span]) -> Span:
    """Build the span tree mirroring a completed frame tree.

    Spans created during execution (rows, cache, source annotations)
    are reused; frames the operators created internally (bulk-path and
    index-path scan children) get plain spans.  Work is copied from the
    frames: a spliced frame's span carries the stored subtree's as-if
    work, so span works always sum to the execution total.
    """
    stack = [root_frame]
    while stack:
        frame = stack.pop()
        span = spans.get(id(frame))
        if span is None:
            span = spans[id(frame)] = Span(frame.label)
        span.work = frame.spliced[0] if frame.spliced else frame.work
        for child in frame.children:
            child_span = spans.get(id(child))
            if child_span is None:
                child_span = spans[id(child)] = Span(child.label)
            span.children.append(child_span)
            stack.append(child)
    return spans[id(root_frame)]


def execute_streaming(
    plan: Plan,
    db: TMapping[str, CVSet],
    *,
    cache: Optional[PlanCache] = None,
    key_index: Optional[KeyIndex] = None,
    mode: str = "stream",
    relation_stats=None,
    tracer: Optional[Tracer] = None,
    fault_injector=None,
) -> ExecutionResult:
    """Evaluate ``plan`` over ``db`` with the streaming engine.

    Returns an :class:`ExecutionResult` identical (value, work,
    per-node ledger) to :func:`repro.optimizer.plan.execute_reference`.

    ``mode="batch"`` routes to the operator-at-a-time batch executor
    (:func:`~repro.engine.exec.batch.execute_batch`) — same contract,
    same cache keys, no per-tuple generator pipeline; the fastest cold
    path for one-shot plans.  ``mode="compiled"`` routes to the plan
    compiler (:func:`~repro.engine.exec.compile.execute_compiled`) —
    same contract again, with the plan lowered once to a specialized
    function and memoized, the fastest repeated-cold path.
    ``relation_stats`` (batch and compiled modes) supplies cached scan
    weights and uniform tuple widths so base relations are not
    re-weighed per execution.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) records a span
    tree — one span per plan-node occurrence, with rows, work, cache
    and shortcut annotations.  ``None`` (the default) is the zero-
    overhead path; tracing never changes the result or the cache
    contents (see ``docs/OBSERVABILITY.md``).

    ``fault_injector`` (a :class:`~repro.robustness.faults.
    FaultInjector`) draws a seeded ``"operator"`` fault per physical
    operator wired — the chaos adversary for the degradation chain in
    :meth:`~repro.engine.database.Database.run`.  ``None`` (the
    default) costs one ``is not None`` check per operator.  Faults are
    drawn *before* the operator is wired, so a failed execution never
    records spans or pollutes the cache with partial results.
    """
    if mode == "batch":
        from .batch import execute_batch

        return execute_batch(
            plan,
            db,
            cache=cache,
            key_index=key_index,
            relation_stats=relation_stats,
            tracer=tracer,
            fault_injector=fault_injector,
        )
    if mode == "compiled":
        from .compile import execute_compiled

        return execute_compiled(
            plan,
            db,
            cache=cache,
            key_index=key_index,
            relation_stats=relation_stats,
            tracer=tracer,
            fault_injector=fault_injector,
        )
    if mode == "sharded":
        from .shard import execute_sharded

        return execute_sharded(
            plan,
            db,
            cache=cache,
            key_index=key_index,
            relation_stats=relation_stats,
            tracer=tracer,
            fault_injector=fault_injector,
        )
    if mode != "stream":
        raise ValueError(
            f"mode must be 'stream', 'batch', 'compiled' or 'sharded', "
            f"got {mode!r}"
        )
    if cache is not None:
        # Shared interning: tokens (and alias ordinals) are stable
        # across executions, so warm lookups hit.
        info = cache.annotate(plan)
    else:
        # Local interning: ``id`` disambiguators are safe here because
        # the plan keeps every callable alive for the whole call.
        info = annotate_plan(plan, {}, lambda name, fn: (name, id(fn)))

    counts: Counter = Counter()
    walk = [plan]
    while walk:
        node = walk.pop()
        counts[info[id(node)][0]] += 1
        walk.extend(node.children())

    memo: dict[int, CacheEntry] = {}
    # id(frame) -> Span; None is the zero-overhead disabled path.
    spans: Optional[dict[int, Span]] = {} if tracer is not None else None

    def entry_key(node: Plan):
        token, relations = info[id(node)]
        return semantic_cache_key(token, relations, db)

    def _prebuilt_join_index(node: Join) -> Optional[tuple[dict, int]]:
        if (
            key_index is None
            or len(node.on) != 1
            or not isinstance(node.right, Scan)
        ):
            return None
        right_cols = tuple(j for _, j in node.on)
        return key_index(node.right.relation, right_cols)

    def _bulk_set_op(node: Plan, frame: Frame) -> Iterator[Value]:
        """Set operation over two bare scans: both inputs are already
        materialized, so a C-level frozenset op beats any per-tuple
        Python loop.  Work and ledger are charged exactly as the
        streaming operators would — via :func:`tuple_weight`, so
        atom-valued relations weigh 1 per atom instead of raising
        ``TypeError``."""
        left = db.get(node.left.relation, _EMPTY)
        right = db.get(node.right.relation, _EMPTY)
        frame.children.append(Frame(node_label(node.left)))
        frame.children.append(Frame(node_label(node.right)))
        frame.work += sum(tuple_weight(t) for t in left) + sum(
            tuple_weight(t) for t in right
        )
        if isinstance(node, Union):
            return iter(left.union(right))
        if isinstance(node, Difference):
            return iter(left.difference(right))
        return iter(left.intersection(right))

    # ------------------------------------------------------------------
    # Explicit-stack compilation: VISIT items run the pre-order steps
    # (frame creation, memo/cache lookup, fast-path dispatch); COMBINE
    # items run after a node's children compiled and wire the physical
    # operator, deciding materialization.  ``out`` holds each compiled
    # (iterator, pipeline-depth) pair; depth 1 means "materialized".

    out: list[tuple[Iterator[Value], int]] = []
    root_frame: Optional[Frame] = None
    # item: (_VISIT, node, parent_frame, build_side, top)
    #     | (_COMBINE, node, frame, build_side, top, flavor, extra)
    stack: list[tuple] = [(_VISIT, plan, None, False, True)]

    while stack:
        item = stack.pop()
        if item[0] == _VISIT:
            _, node, parent, build_side, top = item
            if not isinstance(node, Plan):
                raise TypeError(f"unknown plan node: {node!r}")
            frame = Frame(node_label(node))
            if parent is not None:
                parent.children.append(frame)
            else:
                root_frame = frame
            if isinstance(node, Scan):
                relation = db.get(node.relation, _EMPTY)
                if spans is not None:
                    span = spans[id(frame)] = Span(frame.label)
                    span.rows = len(relation)
                out.append((iter(relation), 1))
                continue
            token = info[id(node)][0]
            entry = memo.get(token)
            from_memo = entry is not None
            if entry is None and cache is not None:
                entry = cache.get(entry_key(node))
                if entry is not None:
                    memo[token] = entry
            if entry is not None:
                frame.spliced = (entry.work, entry.entries)
                if spans is not None:
                    span = spans[id(frame)] = Span(frame.label)
                    span.rows = len(entry.value)
                    span.cache = "cse" if from_memo else "hit"
                out.append((iter(entry.value), 1))
                continue
            if spans is not None:
                span = spans[id(frame)] = Span(frame.label)
                if cache is not None:
                    span.cache = "miss"
            if isinstance(node, (Union, Difference, Intersect)) and (
                type(node.left) is Scan and type(node.right) is Scan
            ):
                stack.append(
                    (_COMBINE, node, frame, build_side, top, _BULK, None)
                )
                continue
            if isinstance(node, Join):
                prebuilt = _prebuilt_join_index(node)
                if prebuilt is not None:
                    stack.append(
                        (
                            _COMBINE, node, frame, build_side, top,
                            _PREBUILT, prebuilt,
                        )
                    )
                    stack.append((_VISIT, node.left, frame, False, False))
                    continue
            stack.append(
                (_COMBINE, node, frame, build_side, top, _GENERIC, None)
            )
            children = node.children()
            if isinstance(node, (Difference, Intersect, Product, Join)):
                flags: tuple[bool, ...] = (False, True)
            else:
                flags = (False,) * len(children)
            for child, flag in reversed(tuple(zip(children, flags))):
                stack.append((_VISIT, child, frame, flag, False))
            continue

        # _COMBINE
        _, node, frame, build_side, top, flavor, extra = item
        if fault_injector is not None:
            fault_injector.maybe_raise("operator", node_label(node))
        if flavor == _BULK:
            children_depth = 0
            inputs: list[Iterator[Value]] = []
        elif flavor == _PREBUILT:
            left_iter, left_depth = out.pop()
            # Log the scan child for ledger parity with the reference
            # even though it is never re-read.
            frame.children.append(Frame(node_label(node.right)))
            children_depth = left_depth
            inputs = [left_iter]
        else:
            children = node.children()
            n = len(children)
            compiled = out[-n:]
            del out[-n:]
            children_depth = max((d for _, d in compiled), default=0)
            inputs = [it for it, _ in compiled]
        depth = 1 + children_depth

        token = info[id(node)][0]
        materialize = (
            counts[token] > 1
            or (build_side and cache is not None)
            or depth > MAX_PIPELINE_DEPTH
        )
        # Emit-dedup is redundant where the consumer is a ``CVSet``
        # constructor (materialization points and the root): the set
        # build dedups anyway, so skip the per-tuple seen-set there.
        dedup = not (materialize or top)

        if flavor == _BULK:
            gen = _bulk_set_op(node, frame)
            if spans is not None:
                spans[id(frame)].source = "bulk"
                # The scan children were charged but never streamed;
                # report their sizes like ordinary visited scans.
                for child_frame, scan_node in zip(
                    frame.children[-2:], (node.left, node.right)
                ):
                    child_span = Span(child_frame.label)
                    child_span.rows = len(
                        db.get(scan_node.relation, _EMPTY)
                    )
                    spans[id(child_frame)] = child_span
        elif flavor == _PREBUILT:
            gen = join_gen(
                node.on, inputs[0], iter(()), frame,
                prebuilt=extra, dedup=dedup,
            )
            if spans is not None:
                spans[id(frame)].source = "index"
        elif isinstance(node, Project):
            gen = project_gen(inputs[0], node.columns, frame, dedup)
        elif isinstance(node, Select):
            gen = select_gen(inputs[0], node.predicate, frame)
        elif isinstance(node, MapNode):
            gen = map_gen(inputs[0], node.fn, frame, dedup)
        elif isinstance(node, Union):
            gen = union_gen(inputs[0], inputs[1], frame, dedup)
        elif isinstance(node, Difference):
            gen = difference_gen(inputs[0], inputs[1], frame)
        elif isinstance(node, Intersect):
            gen = intersect_gen(inputs[0], inputs[1], frame)
        elif isinstance(node, Product):
            gen = product_gen(inputs[0], inputs[1], frame, dedup)
        elif isinstance(node, Join):
            gen = join_gen(node.on, inputs[0], inputs[1], frame, dedup=dedup)
        else:
            raise TypeError(f"unknown plan node: {node!r}")

        if materialize:
            if spans is not None:
                span = spans[id(frame)]
                start = time.perf_counter()
                value = CVSet(gen)
                span.wall_s += time.perf_counter() - start
                span.rows = len(value)
            else:
                value = CVSet(gen)
            work, entries = collect_frame(frame)
            entry = CacheEntry(
                value, work, tuple(entries), info[id(node)][1]
            )
            memo[token] = entry
            if cache is not None:
                cache.put(entry_key(node), entry, plan=node)
            out.append((iter(value), 1))
        else:
            if spans is not None and not top:
                # Pipelined interior node: count rows / accumulate
                # pull time as the consumer drains it.  The root is
                # measured at the tail materialization instead.
                gen = traced_gen(gen, spans[id(frame)])
            out.append((gen, depth))

    root_iter, _ = out.pop()
    entry = memo.get(info[id(plan)][0])
    if entry is not None:  # root served from cache or materialized
        if tracer is not None:
            tracer.record(_finish_spans(root_frame, spans))
        return ExecutionResult(entry.value, entry.work, list(entry.entries))
    if tracer is not None:
        root_span = spans[id(root_frame)]
        start = time.perf_counter()
        value = CVSet(root_iter)
        root_span.wall_s += time.perf_counter() - start
        root_span.rows = len(value)
    else:
        value = CVSet(root_iter)
    work, entries = collect_frame(root_frame)
    if cache is not None and not isinstance(plan, Scan):
        cache.put(
            entry_key(plan),
            CacheEntry(value, work, tuple(entries), info[id(plan)][1]),
            plan=plan,
        )
    if tracer is not None:
        tracer.record(_finish_spans(root_frame, spans))
    return ExecutionResult(value=value, work=work, per_node=entries)
