"""The streaming plan executor.

Replaces the tuple-at-a-time recursive interpreter
(:func:`repro.optimizer.plan.execute_reference`) with a physical
pipeline:

* **Pipelining** — unary operators and ``Union`` stream tuple by tuple;
  a single pass flows from the scans to the root with no intermediate
  ``CVSet`` construction (no re-hashing whole relations at every level).
  Materialization happens only at pipeline breakers: hash-build sides of
  ``Difference``/``Intersect``/``Product``/``Join``, and the root.
* **Common-subexpression elimination** — structurally identical subtrees
  (plan nodes are frozen dataclasses, so subtree equality is structural)
  are detected up front; a repeated subtree executes once and later
  occurrences replay its materialized result.  Its work ledger is
  *spliced* per occurrence, so reported work is exactly what the
  reference interpreter charges.
* **Result caching** — with a :class:`~repro.engine.exec.cache.PlanCache`
  attached, every non-``Scan`` node consults the cache (keyed by
  structural plan + base-relation fingerprints) before compiling, and
  every node that gets materialized anyway (root, CSE duplicates, hash
  build sides) populates it.  The invariance/classification experiments
  re-run identical sub-plans thousands of times; hits skip execution
  entirely while still reporting as-if-executed work.
* **Index reuse** — single-pair joins whose build side is a bare scan
  can borrow the database's incrementally-maintained secondary hash
  index instead of rebuilding it per query (``key_index`` hook).

The executor's contract, enforced by the equivalence property tests:
identical ``CVSet`` answer, identical total work, and identical
per-node ledger (same labels, same postorder) as the reference
interpreter, for every plan over every database.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterator, Mapping as TMapping, Optional

from ...optimizer.constraints import base_relations
from ...optimizer.plan import (
    Difference,
    ExecutionResult,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from ...types.values import CVSet, Value
from .cache import CacheEntry, PlanCache
from .fingerprint import result_cache_key
from .operators import (
    Frame,
    collect_frame,
    difference_gen,
    intersect_gen,
    join_gen,
    map_gen,
    node_label,
    product_gen,
    project_gen,
    select_gen,
    union_gen,
)

__all__ = ["execute_streaming", "subtree_counts"]

_EMPTY = CVSet()

#: ``key_index(name, columns)`` returns ``(index, relation_weight)`` for
#: a maintained secondary hash index, or ``None`` when unavailable.
KeyIndex = Callable[[str, tuple[int, ...]], Optional[tuple[dict, int]]]


def subtree_counts(plan: Plan) -> Counter:
    """Occurrence count of every subtree, by structural equality."""
    counts: Counter = Counter()
    stack = [plan]
    while stack:
        node = stack.pop()
        counts[node] += 1
        stack.extend(node.children())
    return counts


def execute_streaming(
    plan: Plan,
    db: TMapping[str, CVSet],
    *,
    cache: Optional[PlanCache] = None,
    key_index: Optional[KeyIndex] = None,
) -> ExecutionResult:
    """Evaluate ``plan`` over ``db`` with the streaming engine.

    Returns an :class:`ExecutionResult` identical (value, work,
    per-node ledger) to :func:`repro.optimizer.plan.execute_reference`.
    """
    counts = subtree_counts(plan)
    memo: dict[Plan, CacheEntry] = {}

    def compile_node(
        node: Plan,
        parent: Optional[Frame],
        build_side: bool = False,
        top: bool = False,
    ) -> tuple[Iterator[Value], Frame]:
        frame = Frame(node_label(node))
        if parent is not None:
            parent.children.append(frame)

        entry = memo.get(node)
        if entry is None and cache is not None and not isinstance(node, Scan):
            entry = cache.get(result_cache_key(node, db))
            if entry is not None:
                memo[node] = entry
        if entry is not None:
            frame.spliced = (entry.work, entry.entries)
            return iter(entry.value), frame

        materialize = not isinstance(node, Scan) and (
            counts[node] > 1 or (build_side and cache is not None)
        )
        # Emit-dedup is redundant where the consumer is a ``CVSet``
        # constructor (materialization points and the root): the set
        # build dedups anyway, so skip the per-tuple seen-set there.
        gen = _operator(node, frame, dedup=not (materialize or top))
        if materialize:
            value = CVSet(gen)
            work, entries = collect_frame(frame)
            entry = CacheEntry(
                value, work, tuple(entries), base_relations(node)
            )
            memo[node] = entry
            if cache is not None:
                cache.put(result_cache_key(node, db), entry)
            return iter(value), frame
        return gen, frame

    def _operator(node: Plan, frame: Frame, dedup: bool) -> Iterator[Value]:
        if isinstance(node, Scan):
            return iter(db.get(node.relation, _EMPTY))
        if isinstance(node, Project):
            child, _ = compile_node(node.child, frame)
            return project_gen(child, node.columns, frame, dedup)
        if isinstance(node, Select):
            child, _ = compile_node(node.child, frame)
            return select_gen(child, node.predicate, frame)
        if isinstance(node, MapNode):
            child, _ = compile_node(node.child, frame)
            return map_gen(child, node.fn, frame, dedup)
        if isinstance(node, (Union, Difference, Intersect)):
            if type(node.left) is Scan and type(node.right) is Scan:
                return _bulk_set_op(node, frame)
        if isinstance(node, Union):
            left, _ = compile_node(node.left, frame)
            right, _ = compile_node(node.right, frame)
            return union_gen(left, right, frame, dedup)
        if isinstance(node, Difference):
            left, _ = compile_node(node.left, frame)
            right, _ = compile_node(node.right, frame, build_side=True)
            return difference_gen(left, right, frame)
        if isinstance(node, Intersect):
            left, _ = compile_node(node.left, frame)
            right, _ = compile_node(node.right, frame, build_side=True)
            return intersect_gen(left, right, frame)
        if isinstance(node, Product):
            left, _ = compile_node(node.left, frame)
            right, _ = compile_node(node.right, frame, build_side=True)
            return product_gen(left, right, frame, dedup)
        if isinstance(node, Join):
            left, _ = compile_node(node.left, frame)
            prebuilt = _prebuilt_join_index(node)
            if prebuilt is not None:
                # Log the scan child for ledger parity with the
                # reference even though it is never re-read.
                frame.children.append(Frame(node_label(node.right)))
                right: Iterator[Value] = iter(())
            else:
                right, _ = compile_node(node.right, frame, build_side=True)
            return join_gen(
                node.on, left, right, frame, prebuilt=prebuilt, dedup=dedup
            )
        raise TypeError(f"unknown plan node: {node!r}")

    def _bulk_set_op(node: Plan, frame: Frame) -> Iterator[Value]:
        """Set operation over two bare scans: both inputs are already
        materialized, so a C-level frozenset op beats any per-tuple
        Python loop.  Work and ledger are charged exactly as the
        streaming operators would."""
        left = db.get(node.left.relation, _EMPTY)
        right = db.get(node.right.relation, _EMPTY)
        frame.children.append(Frame(node_label(node.left)))
        frame.children.append(Frame(node_label(node.right)))
        frame.work += sum(max(len(t), 1) for t in left) + sum(
            max(len(t), 1) for t in right
        )
        if isinstance(node, Union):
            return iter(left.union(right))
        if isinstance(node, Difference):
            return iter(left.difference(right))
        return iter(left.intersection(right))

    def _prebuilt_join_index(node: Join) -> Optional[tuple[dict, int]]:
        if (
            key_index is None
            or len(node.on) != 1
            or not isinstance(node.right, Scan)
        ):
            return None
        right_cols = tuple(j for _, j in node.on)
        return key_index(node.right.relation, right_cols)

    root_iter, root_frame = compile_node(plan, None, top=True)
    entry = memo.get(plan)
    if entry is not None:  # root served from cache or materialized
        return ExecutionResult(entry.value, entry.work, list(entry.entries))
    value = CVSet(root_iter)
    work, entries = collect_frame(root_frame)
    if cache is not None and not isinstance(plan, Scan):
        cache.put(
            result_cache_key(plan, db),
            CacheEntry(value, work, tuple(entries), base_relations(plan)),
        )
    return ExecutionResult(value=value, work=work, per_node=entries)
