"""Pipelined physical operators.

Each operator is a generator over the *distinct* tuples of its output —
the dedup-on-emit discipline is what lets a pipeline stream while
preserving set semantics, and it is also what keeps work accounting
identical to the reference interpreter (which materializes a ``CVSet``
at every node, so downstream operators only ever see distinct tuples).

Work is charged to a mutable :class:`Frame` as input is consumed; the
totals equal the reference interpreter's per-node numbers exactly:

* ``Project``/``Select``/``MapNode`` pay the width-weight of every input
  tuple;
* ``Union``/``Difference``/``Intersect`` pay the weight of both inputs;
* ``Product`` pays ``|L| * weight(R) + weight(L)``;
* ``Join`` pays ``weight(L) + weight(R)`` plus one unit per candidate
  pair sharing the *first* join column — the reference's probe count —
  even though the physical operator hashes on **all** join columns and
  never examines non-matching candidates.

Pipeline breakers (build sides of ``Difference``/``Intersect``/
``Product``/``Join``, both for hashing) materialize internally; unary
operators and ``Union`` stream.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional

from ...optimizer.plan import (
    Difference,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
    tuple_weight,
)
from ...types.values import Tup, Value

__all__ = ["Frame", "collect_frame", "node_label", "traced_gen"]


class Frame:
    """Per-node work accumulator; mirrors one plan-node occurrence.

    ``spliced`` is set when the node's result came from the CSE memo or
    the result cache: it carries the (work, per-node entries) the
    subtree *would* have produced, so ledgers stay identical to an
    uncached run.
    """

    __slots__ = ("label", "work", "children", "spliced")

    def __init__(self, label: str) -> None:
        self.label = label
        self.work = 0
        self.children: list["Frame"] = []
        self.spliced: Optional[tuple[int, tuple]] = None


def collect_frame(frame: Frame) -> tuple[int, list[tuple[str, int]]]:
    """Total work and postorder per-node ledger under ``frame`` —
    the same order the reference interpreter logs in.

    Explicit-stack traversal: frame trees mirror plan trees, which can
    be thousands of levels deep."""
    total = 0
    entries: list[tuple[str, int]] = []
    stack: list[tuple[Frame, bool]] = [(frame, False)]
    while stack:
        f, ready = stack.pop()
        if f.spliced is not None:
            work, spliced_entries = f.spliced
            total += work
            entries.extend(spliced_entries)
            continue
        if not ready:
            stack.append((f, True))
            for child in reversed(f.children):
                stack.append((child, False))
            continue
        total += f.work
        entries.append((f.label, f.work))
    return total, entries


def traced_gen(gen: Iterator[Value], span) -> Iterator[Value]:
    """Tracing-mode wrapper around a pipelined operator's output.

    Counts the rows the operator emits and accumulates the wall time
    spent producing them into ``span`` (a
    :class:`~repro.obs.trace.Span`).  The measured time is *inclusive*
    of upstream producers — pulling a row through a pipelined operator
    runs the whole chain below it; that is the pipeline's nature, and
    the number EXPLAIN reports for a pipelined node.  Pure
    pass-through otherwise: values, order, work charging and partial
    consumption are untouched, so a traced run is observationally
    identical to an untraced one.  Only ever attached when a tracer is
    present — the disabled path never pays the wrapper frame.
    """
    clock = time.perf_counter
    rows = 0
    wall = 0.0
    try:
        while True:
            start = clock()
            try:
                row = next(gen)
            except StopIteration:
                return
            finally:
                wall += clock() - start
            rows += 1
            yield row
    finally:
        span.rows = rows
        span.wall_s += wall


def node_label(node: Plan) -> str:
    """The reference interpreter's log label for ``node``."""
    if isinstance(node, Scan):
        return str(node)
    if isinstance(node, Project):
        return f"pi{node.columns}"
    if isinstance(node, Select):
        return f"sigma[{node.predicate_name}]"
    if isinstance(node, MapNode):
        return f"map[{node.fn_name}]"
    if isinstance(node, Union):
        return "union"
    if isinstance(node, Difference):
        return "difference"
    if isinstance(node, Intersect):
        return "intersect"
    if isinstance(node, Product):
        return "product"
    if isinstance(node, Join):
        return f"join{node.on}"
    raise TypeError(f"unknown plan node: {node!r}")


def project_gen(
    child: Iterator[Value],
    columns: tuple[int, ...],
    frame: Frame,
    dedup: bool = True,
) -> Iterator[Value]:
    tw = tuple_weight
    work = 0
    try:
        if dedup:
            seen: set = set()
            add = seen.add
            for t in child:
                work += tw(t)
                out = t.project(columns)
                if out not in seen:
                    add(out)
                    yield out
        else:
            for t in child:
                work += tw(t)
                yield t.project(columns)
    finally:
        frame.work += work


def select_gen(
    child: Iterator[Value], predicate: Callable[[Value], bool], frame: Frame
) -> Iterator[Value]:
    tw = tuple_weight
    work = 0
    try:
        for t in child:
            work += tw(t)
            if predicate(t):
                yield t
    finally:
        frame.work += work


def map_gen(
    child: Iterator[Value],
    fn: Callable[[Value], Value],
    frame: Frame,
    dedup: bool = True,
) -> Iterator[Value]:
    tw = tuple_weight
    work = 0
    try:
        if dedup:
            seen: set = set()
            add = seen.add
            for t in child:
                work += tw(t)
                out = fn(t)
                if out not in seen:
                    add(out)
                    yield out
        else:
            for t in child:
                work += tw(t)
                yield fn(t)
    finally:
        frame.work += work


def union_gen(
    left: Iterator[Value],
    right: Iterator[Value],
    frame: Frame,
    dedup: bool = True,
) -> Iterator[Value]:
    tw = tuple_weight
    work = 0
    try:
        if dedup:
            seen: set = set()
            add = seen.add
            for source in (left, right):
                for t in source:
                    work += tw(t)
                    if t not in seen:
                        add(t)
                        yield t
        else:
            for source in (left, right):
                for t in source:
                    work += tw(t)
                    yield t
    finally:
        frame.work += work


def difference_gen(
    left: Iterator[Value], right: Iterator[Value], frame: Frame
) -> Iterator[Value]:
    tw = tuple_weight
    work = 0
    try:
        build: set = set()
        add = build.add
        for t in right:
            work += tw(t)
            add(t)
        for t in left:
            work += tw(t)
            if t not in build:
                yield t
    finally:
        frame.work += work


def intersect_gen(
    left: Iterator[Value], right: Iterator[Value], frame: Frame
) -> Iterator[Value]:
    tw = tuple_weight
    work = 0
    try:
        build: set = set()
        add = build.add
        for t in right:
            work += tw(t)
            add(t)
        for t in left:
            work += tw(t)
            if t in build:
                yield t
    finally:
        frame.work += work


def product_gen(
    left: Iterator[Value],
    right: Iterator[Value],
    frame: Frame,
    dedup: bool = True,
) -> Iterator[Value]:
    tw = tuple_weight
    work = 0
    try:
        rows: list[tuple] = []
        right_weight = 0
        for b in right:
            rows.append(tuple(b))
            right_weight += tw(b)
        seen: set = set()
        for a in left:
            work += tw(a) + right_weight
            head = tuple(a)
            if dedup:
                for b in rows:
                    out = Tup(head + b)
                    if out not in seen:
                        seen.add(out)
                        yield out
            else:
                for b in rows:
                    yield Tup(head + b)
    finally:
        frame.work += work


def join_gen(
    on: tuple[tuple[int, int], ...],
    left: Iterator[Value],
    right: Iterator[Value],
    frame: Frame,
    prebuilt: Optional[tuple[dict, int]] = None,
    dedup: bool = True,
) -> Iterator[Value]:
    """Multi-column hash join.

    ``prebuilt`` optionally supplies ``(index, right_weight)`` from a
    database-maintained secondary index (single-pair joins over a bare
    scan), skipping the build phase entirely.
    """
    tw = tuple_weight
    work = 0
    try:
        if not on:
            # Degenerate join: every pair is a candidate, one probe
            # unit each.
            rows = []
            for b in right:
                work += tw(b)
                rows.append(tuple(b))
            n = len(rows)
            seen: set = set()
            for a in left:
                work += tw(a) + n
                head = tuple(a)
                if dedup:
                    for b in rows:
                        out = Tup(head + b)
                        if out not in seen:
                            seen.add(out)
                            yield out
                else:
                    for b in rows:
                        yield Tup(head + b)
            return

        left_cols = tuple(i for i, _ in on)
        right_cols = tuple(j for _, j in on)
        i0, j0 = on[0]
        multi = len(on) > 1
        first_counts: dict = {}
        if prebuilt is not None:
            index, right_weight = prebuilt
            work += right_weight
            # Defensive: the prebuilt path is only used for
            # single-pair joins.
            if multi:
                for bucket in index.values():
                    for b in bucket:
                        key0 = b[j0]
                        first_counts[key0] = first_counts.get(key0, 0) + 1
        else:
            index = {}
            for b in right:
                work += tw(b)
                index.setdefault(
                    tuple(b[j] for j in right_cols), []
                ).append(b)
                if multi:
                    key0 = b[j0]
                    first_counts[key0] = first_counts.get(key0, 0) + 1
        seen = set()
        get_bucket = index.get
        if multi:
            # Work parity with the reference, which probes a
            # first-column index and pays one unit per candidate; the
            # full-key hash does strictly less physical comparison work.
            fc = first_counts.get
            for a in left:
                work += tw(a) + fc(a[i0], 0)
                bucket = get_bucket(tuple(a[i] for i in left_cols))
                if bucket:
                    head = tuple(a)
                    for b in bucket:
                        out = Tup(head + tuple(b))
                        if not dedup:
                            yield out
                        elif out not in seen:
                            seen.add(out)
                            yield out
        else:
            for a in left:
                bucket = get_bucket((a[i0],))
                if bucket:
                    work += tw(a) + len(bucket)
                    head = tuple(a)
                    for b in bucket:
                        out = Tup(head + tuple(b))
                        if not dedup:
                            yield out
                        elif out not in seen:
                            seen.add(out)
                            yield out
                else:
                    work += tw(a)
    finally:
        frame.work += work
