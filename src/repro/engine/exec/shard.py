"""Sharded partition-parallel execution (``mode="sharded"``).

The paper's genericity classes license horizontal decomposition: a
mapping generic under domain permutations commutes with any disjoint
repartitioning of its inputs, so a plan can be evaluated shard-by-shard
and merged without changing its meaning (Section 3).  This module turns
that license into an executor with the same observable contract as
every other mode — the merged value, total work, and per-node ledger
are **byte-identical** to a serial streaming run.

How the contract is kept:

* **Partition analysis** (:func:`plan_partitioning`) walks the plan
  against :data:`~repro.optimizer.rules.NODE_PARTITIONABILITY`,
  propagating *demands* top-down: an equi-join demands its inputs
  hash-partitioned on the first join pair (so every candidate pair is
  co-located and cross-shard probes vanish), set operations demand
  whole-tuple co-partition (``L_i - R_i = (L - R)_i``), key-preserving
  projections translate a column demand through their column map, and
  key-free monotone operators fall back to round-robin.  Every base
  relation ends up with one partition scheme; conflicting demands, key
  -free joins, products, non-injective interior maps, or plans too deep
  to analyze make the plan **non-partitionable** and it runs
  single-shard (which *is* serial streaming, so the contract holds
  trivially).

* **Work accounting.**  All per-operator charges in the reference cost
  model are weights of operator *inputs* (plus co-located join probes),
  and the analysis guarantees every interior operator's per-shard
  output is an exact restriction of its serial output to the shard's
  partition class.  Disjoint inputs sum to the serial input, so every
  ledger entry sums across shards to the serial entry — the partition
  and merge steps move rows but never duplicate or drop a charge, and
  are accounted at exactly zero additional work.

* **Merge.**  Shard results come back through the existing
  :func:`~repro.parallel.runner.parallel_map` ProcessPool harness in
  shard order (ordered merge); the value is the union of per-shard
  values (dedup is safe — only the plan root may emit overlapping
  shard outputs), the ledger is the position-wise sum of the per-shard
  ledgers (all shards run the same plan, so the skeletons agree), and
  worker ``MetricsRegistry`` deltas merge via ``merge_metrics=True``.
  Plans carrying unpicklable callables run their shards in-process
  through the same code path — byte-identical either way.

* **Caching.**  Each shard worker runs against a fresh shard-local
  :class:`PlanCache`, so semantic keys fold the *shard's* relation
  fingerprints (shard-local CSE and alias checking); the merged result
  is stored in the caller's cache under the full-database semantic key,
  exactly as streaming would store it, so warm hits and delta
  maintenance behave identically across modes.

* **Faults.**  The ``"shard"`` fault site models worker loss mid-shard:
  the injector draws once per shard before dispatch, and an injected
  fault escapes to ``Database.run``'s degradation chain
  (``sharded -> batch -> stream -> reference``).
"""

from __future__ import annotations

import pickle
from typing import Mapping as TMapping, Optional

from ...obs.metrics import counter
from ...obs.trace import Span, Tracer
from ...optimizer.plan import (
    Difference,
    ExecutionResult,
    Intersect,
    Join,
    MapNode,
    Plan,
    Project,
    Scan,
    Select,
    Union,
)
from ...optimizer.rules import NODE_PARTITIONABILITY, NON_PARTITIONABLE
from ...types.values import CVSet
from .cache import CacheEntry, PlanCache
from .compile import plan_depth
from .fingerprint import semantic_cache_key
from .executor import MAX_PIPELINE_DEPTH, execute_streaming
from .operators import node_label

__all__ = ["NotPartitionable", "execute_sharded", "plan_partitioning"]

#: Default shard count when ``Database.run(mode="sharded")`` is called
#: without ``shards=``; small enough that partitioning overhead stays
#: negligible, large enough to win on multi-core boxes.
DEFAULT_SHARDS = 4

# Demands the analysis pushes down (see module docstring).  A demand
# says what the *parent* needs of a node's output partition:
_ANY = ("any",)          # plan root: overlap allowed, value merge dedups
_DISJOINT = ("disjoint",)  # each tuple in exactly one shard
_TUPLE = ("tuple",)      # hash-partitioned on the whole tuple (aligned)
# ("col", i)             # hash-partitioned on column i (aligned)


class NotPartitionable(Exception):
    """The plan admits no ledger-preserving partition; run single-shard."""


def _merge_scheme(old, new):
    """Combine two partition demands on the same base relation.

    Round-robin is the weakest (any disjoint split) and yields to any
    keyed scheme; two different keyed schemes would need the relation
    stored two ways, which a single shard database cannot do."""
    if old is None or old == new:
        return new
    if old == ("rr",):
        return new
    if new == ("rr",):
        return old
    raise NotPartitionable(
        f"conflicting partition demands {old} vs {new}"
    )


def _analyze(node: Plan, demand, schemes: dict) -> None:
    kind = NODE_PARTITIONABILITY.get(type(node), (NON_PARTITIONABLE,))[0]
    if kind == NON_PARTITIONABLE:
        raise NotPartitionable(f"{node_label(node)} is non-partitionable")
    if isinstance(node, Scan):
        if demand[0] == "col":
            scheme = ("col", demand[1])
        elif demand[0] == "tuple":
            scheme = _TUPLE
        else:
            scheme = ("rr",)
        schemes[node.relation] = _merge_scheme(
            schemes.get(node.relation), scheme
        )
        return
    if isinstance(node, Select):
        # Selection preserves any input partition; its weight charge
        # needs a disjoint input even at the root.
        _analyze(node.child, _DISJOINT if demand == _ANY else demand,
                 schemes)
        return
    if isinstance(node, Project):
        if demand[0] == "col":
            position = demand[1]
            if position >= len(node.columns):
                raise NotPartitionable("projection drops the demanded key")
            _analyze(node.child, ("col", node.columns[position]), schemes)
            return
        if demand == _TUPLE:
            # Whole-tuple alignment of a projection would need a
            # partition on the projected image, which no base scheme
            # expresses.
            raise NotPartitionable("projection cannot align whole-tuple")
        if demand == _ANY:
            # Root projection: shards may emit overlapping projected
            # tuples; the value merge dedups and the weight charge only
            # needs the *input* disjoint.
            _analyze(node.child, _DISJOINT, schemes)
            return
        # Disjoint output: keep all preimages of a projected tuple in
        # one shard by partitioning on a surviving column.  Any column
        # in the map works; take the first that resolves below.
        failure = None
        for column in dict.fromkeys(node.columns):
            attempt = dict(schemes)
            try:
                _analyze(node.child, ("col", column), attempt)
            except NotPartitionable as exc:
                failure = exc
                continue
            schemes.clear()
            schemes.update(attempt)
            return
        raise failure if failure is not None else NotPartitionable(
            "projection with no columns cannot stay disjoint"
        )
    if isinstance(node, MapNode):
        if demand[0] in ("col", "tuple"):
            raise NotPartitionable("no key survives an opaque function")
        if demand == _DISJOINT and not node.injective:
            raise NotPartitionable(
                "non-injective map may emit one tuple from two shards"
            )
        _analyze(node.child, _DISJOINT, schemes)
        return
    if isinstance(node, Union):
        if demand == _ANY:
            # Root union: each side only needs its own disjointness;
            # cross-side overlap dedups in the value merge.
            _analyze(node.left, _DISJOINT, schemes)
            _analyze(node.right, _DISJOINT, schemes)
            return
        child = demand if demand[0] == "col" else _TUPLE
        _analyze(node.left, child, schemes)
        _analyze(node.right, child, schemes)
        return
    if isinstance(node, (Difference, Intersect)):
        # Membership probes need both sides aligned regardless of what
        # the parent wants: L_i - R_i = (L - R)_i only when the same
        # partition function drives both sides.
        child = demand if demand[0] == "col" else _TUPLE
        _analyze(node.left, child, schemes)
        _analyze(node.right, child, schemes)
        return
    if isinstance(node, Join):
        if not node.on:
            raise NotPartitionable("key-free join is a cross product")
        left_key, right_key = node.on[0]
        if demand[0] == "col" and demand[1] != left_key:
            raise NotPartitionable(
                "join output is aligned on its first join column only"
            )
        if demand == _TUPLE:
            raise NotPartitionable("join cannot align whole-tuple")
        _analyze(node.left, ("col", left_key), schemes)
        _analyze(node.right, ("col", right_key), schemes)
        return
    raise NotPartitionable(f"no partition rule for {type(node).__name__}")


def plan_partitioning(plan: Plan) -> dict[str, tuple]:
    """Partition scheme per base relation, or raise :class:`NotPartitionable`.

    Schemes are ``("col", i)`` (hash of column ``i``), ``("tuple",)``
    (hash of the whole tuple) or ``("rr",)`` (round-robin — any
    disjoint split works).
    """
    if plan_depth(plan) > MAX_PIPELINE_DEPTH:
        # The analysis is recursive like the rewriter; past the
        # pipeline cut streaming materializes anyway and sharding deep
        # chains has no parallelism to win.
        raise NotPartitionable("plan too deep to analyze")
    schemes: dict[str, tuple] = {}
    _analyze(plan, _ANY, schemes)
    return schemes


def _partition_relations(
    relations: TMapping[str, CVSet], schemes: dict, shards: int
) -> list[dict[str, CVSet]]:
    """Build one relation mapping per shard.  Only relations the plan
    scans are shipped; a missing relation stays missing so per-shard
    execution raises exactly what serial execution would."""
    shard_dbs: list[dict[str, CVSet]] = [{} for _ in range(shards)]
    for name, scheme in schemes.items():
        relation = relations.get(name)
        if relation is None:
            continue
        parts: list[set] = [set() for _ in range(shards)]
        if scheme == ("rr",):
            for i, row in enumerate(relation):
                parts[i % shards].add(row)
        elif scheme == _TUPLE:
            for row in relation:
                parts[hash(row) % shards].add(row)
        else:
            column = scheme[1]
            for row in relation:
                try:
                    key = row[column]
                except (TypeError, IndexError) as exc:
                    # Atom rows / short tuples admit no column key.
                    raise NotPartitionable(
                        f"rows of {name!r} have no column {column}"
                    ) from exc
                parts[hash(key) % shards].add(row)
        for k in range(shards):
            shard_dbs[k][name] = CVSet(parts[k])
    return shard_dbs


def _run_shard(payload):
    """Worker: run the plan over one shard's relations.

    Top-level so the ProcessPool can pickle it.  The fresh
    :class:`PlanCache` gives the shard its own semantic keys folded
    over the *shard's* relation fingerprints (shard-local CSE and
    alias validation)."""
    plan, relations = payload
    return execute_streaming(plan, relations, cache=PlanCache())


def _shippable(plan: Plan, shard_dbs) -> bool:
    """Whether the per-shard payloads survive pickling (plans carrying
    lambda predicates do not; they run their shards in-process)."""
    try:
        pickle.dumps((plan, shard_dbs[0]))
    except Exception:
        return False
    return True


def _scheme_text(scheme: tuple) -> str:
    if scheme == ("rr",):
        return "round-robin"
    if scheme == _TUPLE:
        return "hash(tuple)"
    return f"hash(col{scheme[1]})"


def execute_sharded(
    plan: Plan,
    db: TMapping[str, CVSet],
    *,
    shards: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[PlanCache] = None,
    key_index=None,
    relation_stats=None,
    tracer: Optional[Tracer] = None,
    fault_injector=None,
) -> ExecutionResult:
    """Evaluate ``plan`` shard-by-shard; byte-identical to streaming.

    ``shards=None`` uses :data:`DEFAULT_SHARDS`; ``jobs`` caps the
    worker processes (default: one per shard).  ``key_index`` and
    ``relation_stats`` are accepted for executor-signature symmetry;
    shard databases carry no maintained indexes, which only changes
    *how* joins build, never the rows, work, or ledger.
    """
    shards = DEFAULT_SHARDS if shards is None else shards
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")

    if cache is not None:
        token, base_relations = cache.annotate(plan)[id(plan)]
        key = semantic_cache_key(token, base_relations, db)
        entry = cache.get(key)
        if entry is not None:
            if tracer is not None:
                root = Span(node_label(plan))
                root.work = entry.work
                root.rows = len(entry.value)
                root.cache = "hit"
                root.merge_meta({"sharded": {"shards": shards,
                                             "partition": "cache-hit"}})
                tracer.record(root)
            return ExecutionResult(
                entry.value, entry.work, list(entry.entries)
            )

    single_reason = None
    shard_dbs = None
    schemes: dict[str, tuple] = {}
    if shards == 1:
        single_reason = "shards=1"
    else:
        try:
            schemes = plan_partitioning(plan)
            shard_dbs = _partition_relations(db, schemes, shards)
        except NotPartitionable as exc:
            single_reason = str(exc)

    if single_reason is not None:
        # Single-shard is serial streaming: the contract holds by
        # construction.  The caller's cache is used directly, so the
        # root get/put happens inside the streaming run.
        counter("shard.single_fallback")
        result = execute_streaming(
            plan,
            db,
            cache=cache,
            key_index=key_index,
            relation_stats=relation_stats,
            tracer=tracer,
            fault_injector=fault_injector,
        )
        if tracer is not None and tracer.last is not None:
            tracer.last.merge_meta({"sharded": {
                "shards": 1,
                "requested": shards,
                "partition": "single",
                "reason": single_reason,
            }})
        return result

    if fault_injector is not None:
        # Worker loss mid-shard: one draw per shard, in shard order,
        # before any work is dispatched — replayable, and an injected
        # fault escapes into Database.run's degradation chain.
        for k in range(shards):
            fault_injector.maybe_raise("shard", f"shard[{k}]")

    payloads = [(plan, shard_dbs[k]) for k in range(shards)]
    workers = shards if jobs is None else max(1, min(jobs, shards))
    parallel = workers > 1 and _shippable(plan, shard_dbs)
    if parallel:
        from ...parallel.runner import parallel_map

        results = parallel_map(
            _run_shard, payloads, jobs=workers, chunk_size=1,
            merge_metrics=True,
        )
    else:
        results = [_run_shard(payload) for payload in payloads]

    skeleton = [label for label, _ in results[0].per_node]
    for result in results[1:]:
        if [label for label, _ in result.per_node] != skeleton:
            # Shards run the same plan through the same code paths, so
            # skeletons agree by construction; anything else is a bug
            # we refuse to merge.  Recompute serially — still correct.
            counter("shard.skeleton_mismatch")
            return execute_streaming(
                plan, db, cache=cache, key_index=key_index,
                relation_stats=relation_stats, tracer=tracer,
                fault_injector=fault_injector,
            )

    value = CVSet(row for result in results for row in result.value)
    entries = [
        (label, sum(result.per_node[pos][1] for result in results))
        for pos, label in enumerate(skeleton)
    ]
    work = sum(result.work for result in results)
    counter("shard.runs")

    if cache is not None:
        cache.put(
            key,
            CacheEntry(value, work, tuple(entries), base_relations),
            plan=plan,
        )

    if tracer is not None:
        root = Span(node_label(plan))
        root.work = work
        root.rows = len(value)
        if cache is not None:
            root.cache = "miss"
        root.merge_meta({"sharded": {
            "shards": shards,
            "parallel": parallel,
            "partition": {
                name: _scheme_text(scheme)
                for name, scheme in sorted(schemes.items())
            },
            "per_shard": [
                {"shard": k, "rows": len(result.value),
                 "work": result.work}
                for k, result in enumerate(results)
            ],
        }})
        tracer.record(root)

    return ExecutionResult(value, work, entries)
