"""Batch-mode (vectorized) plan execution.

The streaming executor (:mod:`repro.engine.exec.executor`) wins when a
warm cache or CSE lets it skip work, but its *cold* path sits at parity
with the reference interpreter: every pipelined operator is a Python
generator, so each tuple pulled through an N-operator pipeline resumes
N generator frames.  At benchmark sizes that per-tuple frame overhead
eats the savings from skipped materialization.

Batch mode replaces the per-tuple pipeline with operator-at-a-time
processing over whole relations (the morsel is the full input — tuples
are never handled one generator frame at a time):

* unary operators are single set-comprehensions over the child's
  materialized distinct tuples;
* ``Union``/``Difference``/``Intersect`` are C-level ``frozenset`` ops;
* ``Join`` builds one full-key dict and probes it in bulk, appending
  whole buckets per probe;
* intermediate results stay plain ``set``/``frozenset`` objects —
  ``CVSet`` (re-hash on construction) is built only at CSE/cache
  materialization points and at the root;
* relation scan weights (and uniform tuple widths, which make most
  intermediate weights O(1) arithmetic) come from the
  ``relation_stats`` hook
  (:meth:`repro.engine.database.Database.relation_stats` maintains
  them incrementally) instead of a per-execution rescan.

The contract is the streaming executor's, unchanged: identical
``CVSet`` answer, identical total work, identical per-node postorder
ledger as :func:`repro.optimizer.plan.execute_reference`, for every
plan over every database, in every cache state.  Batch mode reuses the
same semantic cache keys (:func:`~repro.engine.exec.fingerprint.
annotate_plan` / :func:`~repro.engine.exec.fingerprint.
semantic_cache_key`), so entries written by one mode are hits for the
other.  CSE and cache hits splice the stored ``(work, ledger)`` exactly
as the streaming engine does.  The traversal is an explicit-stack
postorder, so deep-plan safety is inherited for free — there is no
generator pipeline to cut.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Callable, Mapping as TMapping, Optional

from ...obs.trace import Span, Tracer
from ...optimizer.plan import (
    Difference,
    ExecutionResult,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
    tuple_weight,
)
from ...types.values import CVSet, Tup
from .cache import CacheEntry, PlanCache
from .fingerprint import annotate_plan, semantic_cache_key
from .operators import node_label

__all__ = ["execute_batch"]

_EMPTY = CVSet()

#: ``relation_stats(name)`` returns ``(total weight, uniform element
#: length or None)`` for a base relation, or ``None`` when unknown.
#: :meth:`repro.engine.database.Database.relation_stats` maintains both
#: incrementally.
RelationStats = Callable[[str], Optional[tuple[int, Optional[int]]]]

_VISIT, _COMBINE = 0, 1


def _frozen(relation) -> frozenset:
    """The raw element set of a stored relation."""
    if isinstance(relation, CVSet):
        return relation.frozen()
    return frozenset(relation)


class _Slot:
    """One computed (sub)result: its distinct tuples and, lazily, their
    total width weight (what a parent operator pays to consume them).

    ``width`` is the uniform ``len`` of every element when known
    (``None`` otherwise — mixed widths or atom elements).  Because
    :func:`~repro.optimizer.plan.tuple_weight` is ``max(len(t), 1)``,
    a known width makes the total weight ``count * max(width, 1)`` —
    O(1) instead of a per-tuple sum.  Width propagates exactly through
    the operators: projections fix it at ``len(columns)``, selections
    and set ops take subsets of known-width inputs, products and joins
    concatenate widths.
    """

    __slots__ = ("values", "weight", "width")

    def __init__(
        self,
        values,
        weight: Optional[int] = None,
        width: Optional[int] = None,
    ) -> None:
        self.values = values
        self.weight = weight
        self.width = width

    def weigh(self) -> int:
        if self.weight is None:
            if self.width is not None:
                self.weight = len(self.values) * max(self.width, 1)
            else:
                self.weight = sum(map(tuple_weight, self.values))
        return self.weight


def execute_batch(
    plan: Plan,
    db: TMapping[str, CVSet],
    *,
    cache: Optional[PlanCache] = None,
    key_index=None,
    relation_stats: Optional[RelationStats] = None,
    tracer: Optional[Tracer] = None,
    fault_injector=None,
) -> ExecutionResult:
    """Evaluate ``plan`` over ``db`` one whole operator at a time.

    Returns an :class:`ExecutionResult` identical (value, work,
    per-node ledger) to :func:`repro.optimizer.plan.execute_reference`.

    With a ``tracer`` attached, records a span tree whose
    :meth:`~repro.obs.trace.Span.structure` matches a cold streaming
    run of the same plan exactly (labels, rows, work, cache
    annotations); ``wall_s`` here is per-operator compute time.

    ``fault_injector`` draws one seeded ``"operator"`` fault per bulk
    operator evaluated, before the operator runs — the failed
    execution records no spans and caches no partial results.
    """
    if cache is not None:
        info = cache.annotate(plan)
    else:
        info = annotate_plan(plan, {}, lambda name, fn: (name, id(fn)))

    counts: Counter = Counter()
    walk = [plan]
    while walk:
        node = walk.pop()
        counts[info[id(node)][0]] += 1
        walk.extend(node.children())

    memo: dict[int, CacheEntry] = {}

    def entry_key(node: Plan):
        token, relations = info[id(node)]
        return semantic_cache_key(token, relations, db)

    log: list[tuple[str, int]] = []
    work_total = 0
    out: list[_Slot] = []
    # Span stack paralleling ``out``; None is the disabled path.
    sout: Optional[list[Span]] = [] if tracer is not None else None
    # item: (_VISIT, node) | (_COMBINE, node, log_start, work_start, prebuilt)
    stack: list[tuple] = [(_VISIT, plan)]

    while stack:
        item = stack.pop()
        node = item[1]
        if item[0] == _VISIT:
            if not isinstance(node, Plan):
                raise TypeError(f"unknown plan node: {node!r}")
            if isinstance(node, Scan):
                relation = db.get(node.relation, _EMPTY)
                stats = (
                    relation_stats(node.relation)
                    if relation_stats is not None
                    else None
                )
                weight, width = stats if stats is not None else (None, None)
                log.append((str(node), 0))
                values = _frozen(relation)
                if sout is not None:
                    span = Span(str(node))
                    span.rows = len(values)
                    sout.append(span)
                out.append(_Slot(values, weight, width))
                continue
            token = info[id(node)][0]
            entry = memo.get(token)
            from_memo = entry is not None
            if entry is None and cache is not None:
                entry = cache.get(entry_key(node))
                if entry is not None:
                    memo[token] = entry
            if entry is not None:
                # Splice the stored subtree ledger, exactly like a CSE
                # hit in the streaming engine.
                log.extend(entry.entries)
                work_total += entry.work
                if sout is not None:
                    span = Span(node_label(node))
                    span.rows = len(entry.value)
                    span.work = entry.work
                    span.cache = "cse" if from_memo else "hit"
                    sout.append(span)
                out.append(_Slot(entry.value.frozen()))
                continue
            prebuilt = None
            if (
                key_index is not None
                and isinstance(node, Join)
                and len(node.on) == 1
                and isinstance(node.right, Scan)
            ):
                prebuilt = key_index(node.right.relation, (node.on[0][1],))
            stack.append((_COMBINE, node, len(log), work_total, prebuilt))
            if prebuilt is not None:
                # The right scan is served by the database's maintained
                # index; only the left child needs computing.
                stack.append((_VISIT, node.left))
            else:
                for child in reversed(node.children()):
                    stack.append((_VISIT, child))
            continue

        # _COMBINE: children computed, evaluate this operator in bulk.
        _, node, log_start, work_start, prebuilt = item
        if fault_injector is not None:
            fault_injector.maybe_raise("operator", node_label(node))
        n = len(node.children()) - (1 if prebuilt is not None else 0)
        inputs = out[-n:]
        del out[-n:]
        if sout is not None:
            child_spans = sout[-n:]
            del sout[-n:]
            op_start = time.perf_counter()

        width: Optional[int] = None
        if isinstance(node, Project):
            (child,) = inputs
            work = child.weigh()
            columns = node.columns
            result: set = {t.project(columns) for t in child.values}
            width = len(columns)
        elif isinstance(node, Select):
            (child,) = inputs
            work = child.weigh()
            predicate = node.predicate
            result = {t for t in child.values if predicate(t)}
            width = child.width
        elif isinstance(node, MapNode):
            (child,) = inputs
            work = child.weigh()
            fn = node.fn
            result = {fn(t) for t in child.values}
        elif isinstance(node, (Union, Difference, Intersect)):
            left, right = inputs
            work = left.weigh() + right.weigh()
            if isinstance(node, Union):
                result = left.values | right.values
                if left.width == right.width:
                    width = left.width
            elif isinstance(node, Difference):
                result = left.values - right.values
                width = left.width
            else:
                result = left.values & right.values
                width = left.width
        elif isinstance(node, Product):
            left, right = inputs
            rows = [tuple(b) for b in right.values]
            work = len(left.values) * right.weigh() + left.weigh()
            result = {
                Tup(head + b)
                for head in (tuple(a) for a in left.values)
                for b in rows
            }
            if left.width is not None and right.width is not None:
                width = left.width + right.width
        elif isinstance(node, Join):
            result, work, width = _batch_join(node, inputs, prebuilt, log)
        else:
            raise TypeError(f"unknown plan node: {node!r}")

        work_total += work
        log.append((node_label(node), work))
        if sout is not None:
            span = Span(node_label(node))
            span.wall_s = time.perf_counter() - op_start
            span.work = work
            span.rows = len(result)
            if cache is not None:
                span.cache = "miss"
            span.children = child_spans
            if prebuilt is not None:
                # The index-served right scan: logged, never re-read —
                # same childless rows-unknown span as the streaming
                # engine's prebuilt path.
                span.source = "index"
                span.children = child_spans + [Span(str(node.right))]
            sout.append(span)

        token = info[id(node)][0]
        if counts[token] > 1:
            value = CVSet(result)
            entry = CacheEntry(
                value,
                work_total - work_start,
                tuple(log[log_start:]),
                info[id(node)][1],
            )
            memo[token] = entry
            if cache is not None:
                cache.put(entry_key(node), entry, plan=node)
            result = value.frozen()
        out.append(_Slot(result, None, width))

    root = out.pop()
    entry = memo.get(info[id(plan)][0])
    if entry is not None:  # root served from cache or CSE-materialized
        if tracer is not None:
            tracer.record(sout.pop())
        return ExecutionResult(entry.value, entry.work, list(entry.entries))
    if tracer is not None:
        root_span = sout.pop()
        start = time.perf_counter()
        value = CVSet(root.values)
        root_span.wall_s += time.perf_counter() - start
        tracer.record(root_span)
    else:
        value = CVSet(root.values)
    if cache is not None and not isinstance(plan, Scan):
        cache.put(
            entry_key(plan),
            CacheEntry(value, work_total, tuple(log), info[id(plan)][1]),
            plan=plan,
        )
    return ExecutionResult(value=value, work=work_total, per_node=log)


def _batch_join(
    node: Join, inputs: list[_Slot], prebuilt, log: list[tuple[str, int]]
) -> tuple[set, int, Optional[int]]:
    """Bulk hash join; work parity with the reference's first-column
    probe count (one unit per candidate pair sharing the first join
    column), though the physical probe uses all join columns.  Returns
    ``(result, work, width)``; output width is only known for non-index
    joins with both input widths known."""
    on = node.on
    result: set = set()
    emit = result.update

    if prebuilt is not None:
        # Single-pair join over a bare right scan: borrow the database's
        # maintained index.  The scan is logged for ledger parity even
        # though it is never re-read.
        (left,) = inputs
        log.append((str(node.right), 0))
        index, right_w = prebuilt
        work = left.weigh() + right_w
        i0 = on[0][0]
        get = index.get
        candidates = 0
        for a in left.values:
            bucket = get((a[i0],))
            if bucket:
                candidates += len(bucket)
                head = tuple(a)
                emit(Tup(head + tuple(b)) for b in bucket)
        return result, work + candidates, None

    left, right = inputs
    width = (
        left.width + right.width
        if left.width is not None and right.width is not None
        else None
    )
    work = left.weigh() + right.weigh()
    if not on:
        # Degenerate join: every pair is a candidate, one unit each.
        rows = [tuple(b) for b in right.values]
        work += len(left.values) * len(rows)
        result = {
            Tup(head + b)
            for head in (tuple(a) for a in left.values)
            for b in rows
        }
        return result, work, width

    i0, j0 = on[0]
    candidates = 0
    if len(on) == 1:
        index: dict = {}
        for b in right.values:
            index.setdefault(b[j0], []).append(tuple(b))
        get = index.get
        for a in left.values:
            bucket = get(a[i0])
            if bucket:
                candidates += len(bucket)
                head = tuple(a)
                emit(Tup(head + b) for b in bucket)
        return result, work + candidates, width

    left_cols = tuple(i for i, _ in on)
    right_cols = tuple(j for _, j in on)
    index = {}
    first_counts: dict = {}
    for b in right.values:
        row = tuple(b)
        index.setdefault(tuple(row[j] for j in right_cols), []).append(row)
        key0 = row[j0]
        first_counts[key0] = first_counts.get(key0, 0) + 1
    get = index.get
    fc = first_counts.get
    for a in left.values:
        head = tuple(a)
        candidates += fc(head[i0], 0)
        bucket = get(tuple(head[i] for i in left_cols))
        if bucket:
            emit(Tup(head + b) for b in bucket)
    return result, work + candidates, width
