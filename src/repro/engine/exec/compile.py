"""Plan-to-closure compilation: the specialized cold path.

The reference interpreter and both physical executors share one cost:
they *walk the plan tree at execution time*, dispatching per operator
(and, for the streaming engine, resuming a generator frame per tuple).
The paper's Section 4.4 reading is that genericity metadata makes a
plan's behaviour uniform across instantiations, so nothing about the
walk depends on the data — which means the walk can happen **once**,
ahead of time.  This module lowers an annotated physical plan into a
single specialized Python function:

* every operator becomes a straight-line comprehension (or a hash-probe
  loop) in one generated code object — no per-node dispatch, no
  interpreter stack, no generator pipeline;
* ``Scan`` binds directly to the relation's underlying ``frozenset``
  (bound as a default argument of the generated function, so reads are
  local loads), and set operations compile to C-level ``|``/``-``/``&``;
* ``Join`` compiles to a pre-built hash probe: the build side's index
  is constructed at *compile* time when the build side is a bare scan
  (or borrowed from the database's maintained secondary index via the
  ``key_index`` hook), so per-execution cost is probe-only;
* weight/ledger accounting is hoisted out of the per-tuple loop using
  the same ``relation_stats`` width-propagation rules as
  :mod:`repro.engine.exec.batch`: scan weights are compile-time
  constants, and intermediate weights are ``len(v) * width`` arithmetic
  whenever the width is statically known;
* repeated subtrees (CSE) execute once; later occurrences replay their
  ledger segment with a constant-index ``_L.extend(_L[s:e])`` — every
  ledger position is known at compile time.

The contract is unchanged from the other executors: identical ``CVSet``
answer, identical total work, identical per-node postorder ledger as
:func:`repro.optimizer.plan.execute_reference`, for every plan over
every database, in every cache state.  Compiled artifacts are memoized
in the :class:`~repro.engine.exec.cache.PlanCache` under the existing
semantic keys (token + base-relation fingerprints, so callable aliasing
keys apart exactly like results do) and are invalidated per relation —
a mutated relation both changes the fingerprint (stale artifacts become
unreachable) and drops the artifact (space stays bounded).

Plans deeper than :data:`~repro.engine.exec.executor.MAX_PIPELINE_DEPTH`
fall back to the streaming engine rather than generating pathological
source; the fallback preserves the full contract.

One deliberate asymmetry with the reference: projection reads tuple
components as ``t.items[i]`` instead of ``t.project(...)``.  On every
well-typed input (all ``Tup`` rows — everything the generators produce)
the values are identical and the direct read is markedly faster; on an
atom row both raise ``AttributeError``.  Only ``CVList`` rows differ in
the *exception type* raised (``TypeError`` here), never in a value.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Mapping as TMapping, Optional

from ...obs.trace import Span, Tracer
from ...optimizer.plan import (
    Difference,
    ExecutionResult,
    Intersect,
    Join,
    MapNode,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
    tuple_weight,
)
from ...types.values import CVSet, Tup
from .cache import CacheEntry, PlanCache
from .executor import MAX_PIPELINE_DEPTH
from .fingerprint import annotate_plan, semantic_cache_key
from .operators import node_label

__all__ = ["CompiledPlan", "compile_plan", "execute_compiled", "plan_depth"]

_EMPTY = CVSet()

_TUP_NEW = Tup.__new__
_SET = object.__setattr__


def _mk_tup(items, _new=_TUP_NEW, _set=_SET, _cls=Tup) -> Tup:
    """Build a ``Tup`` around an already-constructed ``tuple`` without
    re-running ``Tup.__init__``'s ``tuple(items)`` copy."""
    t = _new(_cls)
    _set(t, "items", items)
    return t


def plan_depth(plan: Plan) -> int:
    """Operator depth of a plan tree (explicit stack, any depth)."""
    depth: dict[int, int] = {}
    stack: list[tuple[Plan, bool]] = [(plan, False)]
    while stack:
        node, ready = stack.pop()
        if ready:
            children = node.children()
            depth[id(node)] = 1 + max(
                (depth[id(c)] for c in children), default=0
            )
            continue
        stack.append((node, True))
        for child in node.children():
            stack.append((child, False))
    return depth[id(plan)]


class CompiledPlan:
    """A plan lowered to one specialized function.

    ``run()`` returns ``(root_values, ledger, cse_values)`` where
    ``root_values`` is an iterable of distinct result rows, ``ledger``
    is the reference-identical per-node log, and ``cse_values`` holds
    the materialized value of every shared (CSE) subtree, aligned with
    :attr:`cse`.
    """

    __slots__ = ("run", "source", "relations", "cse", "span_program")

    def __init__(self, run, source, relations, cse, span_program) -> None:
        self.run = run
        self.source = source
        self.relations = relations
        #: ``(token, relations, ledger_start, ledger_end)`` per shared
        #: subtree, in the postorder the executors populate caches in.
        self.cse = cse
        self.span_program = span_program

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(relations={sorted(self.relations)}, "
            f"cse={len(self.cse)})"
        )


_VISIT, _COMBINE = 0, 1

_SET_OP_SYMBOL = {Union: "|", Difference: "-", Intersect: "&"}


class _Res:
    """Compile-time state of one emitted (sub)result variable."""

    __slots__ = ("var", "width", "weight", "wvar", "rows")

    def __init__(self, var, width, weight=None, rows=None) -> None:
        self.var = var
        self.width = width
        self.weight = weight  # compile-time constant, when known
        self.wvar = None  # runtime weight variable, emitted on demand
        self.rows = rows  # known only for scans


def compile_plan(
    plan: Plan,
    db: TMapping[str, CVSet],
    *,
    info: Optional[dict] = None,
    key_index=None,
    relation_stats=None,
) -> CompiledPlan:
    """Lower ``plan`` (over the *current* contents of ``db``) to a
    :class:`CompiledPlan`.

    The artifact is specialized to the data it was compiled against —
    scan bindings, pre-built join indexes and hoisted weights all
    assume the relations are unchanged — so callers must key it by the
    plan's semantic cache key (:func:`execute_compiled` does).
    """
    if info is None:
        info = annotate_plan(plan, {}, lambda name, fn: (name, id(fn)))

    # Occurrence counts per semantic token (CSE detection) and the set
    # of tokens consumed by a set operation (those must compile to
    # ``set``/``frozenset`` values, not lists).
    counts: Counter = Counter()
    need_set: set[int] = set()
    walk = [plan]
    while walk:
        node = walk.pop()
        if not isinstance(node, Plan):
            raise TypeError(f"unknown plan node: {node!r}")
        counts[info[id(node)][0]] += 1
        if isinstance(node, (Union, Difference, Intersect)):
            need_set.add(info[id(node.left)][0])
            need_set.add(info[id(node.right)][0])
        walk.extend(node.children())

    lines: list[str] = []
    emit = lines.append
    consts: dict[str, object] = {"_tw": tuple_weight, "_mk": _mk_tup}
    fresh_counter = [0]

    def fresh(prefix: str) -> str:
        fresh_counter[0] += 1
        return f"{prefix}{fresh_counter[0]}"

    def const(prefix: str, value) -> str:
        name = fresh(prefix)
        consts[name] = value
        return name

    def weight_expr(res: _Res) -> str:
        """An expression for ``res``'s total tuple weight, hoisting the
        per-tuple sum into O(1) arithmetic when the width is known."""
        if res.weight is not None:
            return str(res.weight)
        if res.wvar is None:
            res.wvar = fresh("_w")
            if res.width is not None:
                emit(f"{res.wvar} = len({res.var}) * {max(res.width, 1)}")
            else:
                emit(f"{res.wvar} = sum(map(_tw, {res.var}))")
        return res.wvar

    # One shared binding (and compile-time stats) per scanned relation.
    scan_res: dict[str, _Res] = {}

    def scan_result(node: Scan) -> _Res:
        res = scan_res.get(node.relation)
        if res is not None:
            return res
        relation = db.get(node.relation, _EMPTY)
        values = (
            relation.frozen()
            if isinstance(relation, CVSet)
            else frozenset(relation)
        )
        stats = (
            relation_stats(node.relation)
            if relation_stats is not None
            else None
        )
        if stats is not None:
            weight, width = stats
        else:
            weight = 0
            width = None
            first = True
            for t in values:
                try:
                    n = len(t)
                except TypeError:
                    n = None
                if first:
                    width, first = n, False
                elif n != width:
                    width = None
                weight += max(n, 1) if n is not None else 1
        res = _Res(const("_s", values), width, weight, rows=len(values))
        scan_res[node.relation] = res
        return res

    pos = 0  # next ledger index — every append below is compile-time static
    # token -> (res, ledger segment) for emitted subtrees (CSE replay).
    done: dict[int, tuple[_Res, int, int]] = {}
    cse_meta: list[tuple[int, frozenset, int, int]] = []
    cse_vars: list[str] = []
    out: list[tuple[_Res, tuple]] = []  # (result, span template)
    stack: list[tuple] = [(_VISIT, plan, None, None)]

    while stack:
        item = stack.pop()
        node = item[1]
        if item[0] == _VISIT:
            if isinstance(node, Scan):
                res = scan_result(node)
                emit(f"_a(({node.relation!r}, 0))")
                out.append((res, ("scan", node.relation, pos, res.rows)))
                pos += 1
                continue
            token = info[id(node)][0]
            prior = done.get(token)
            if prior is not None:
                res, seg_start, seg_end = prior
                emit(f"_L.extend(_L[{seg_start}:{seg_end}])")
                out.append(
                    (res, ("cse", node_label(node), seg_start, seg_end))
                )
                pos += seg_end - seg_start
                continue
            prebuilt = None
            if (
                key_index is not None
                and isinstance(node, Join)
                and len(node.on) == 1
                and isinstance(node.right, Scan)
            ):
                prebuilt = key_index(node.right.relation, (node.on[0][1],))
            stack.append((_COMBINE, node, pos, prebuilt))
            if prebuilt is not None:
                stack.append((_VISIT, node.left, None, None))
            else:
                for child in reversed(node.children()):
                    stack.append((_VISIT, child, None, None))
            continue

        # _COMBINE: children emitted; lower this operator.
        _, node, seg_start, prebuilt = item
        n = len(node.children()) - (1 if prebuilt is not None else 0)
        inputs = out[-n:]
        del out[-n:]
        token = info[id(node)][0]
        shared = counts[token] > 1
        as_set = token in need_set or shared
        is_root = node is plan
        label = node_label(node)
        source = None
        var = fresh("_v")

        if isinstance(node, Project):
            (child, child_span) = inputs[0]
            work = weight_expr(child)
            body = "_mk((%s%s))" % (
                ", ".join(f"t.items[{i}]" for i in node.columns),
                "," if len(node.columns) == 1 else "",
            )
            opener, closer = (
                ("[", "]") if is_root and not as_set else ("{", "}")
            )
            emit(f"{var} = {opener}{body} for t in {child.var}{closer}")
            emit(f"_a(({label!r}, {work}))")
            res = _Res(var, len(node.columns))
            template = ("op", label, pos, (child_span,), source)
            pos += 1
        elif isinstance(node, Select):
            (child, child_span) = inputs[0]
            work = weight_expr(child)
            pred = const("_p", node.predicate)
            opener, closer = ("{", "}") if as_set else ("[", "]")
            emit(
                f"{var} = {opener}t for t in {child.var} "
                f"if {pred}(t){closer}"
            )
            emit(f"_a(({label!r}, {work}))")
            res = _Res(var, child.width)
            template = ("op", label, pos, (child_span,), source)
            pos += 1
        elif isinstance(node, MapNode):
            (child, child_span) = inputs[0]
            work = weight_expr(child)
            fn = const("_f", node.fn)
            opener, closer = (
                ("[", "]") if is_root and not as_set else ("{", "}")
            )
            emit(f"{var} = {opener}{fn}(t) for t in {child.var}{closer}")
            emit(f"_a(({label!r}, {work}))")
            res = _Res(var, None)
            template = ("op", label, pos, (child_span,), source)
            pos += 1
        elif isinstance(node, (Union, Difference, Intersect)):
            (left, left_span), (right, right_span) = inputs
            wl, wr = weight_expr(left), weight_expr(right)
            emit(f"{var} = {left.var} {_SET_OP_SYMBOL[type(node)]} {right.var}")
            emit(f"_a(({label!r}, {wl} + {wr}))")
            if isinstance(node, Union):
                width = left.width if left.width == right.width else None
            else:
                width = left.width
            res = _Res(var, width)
            template = ("op", label, pos, (left_span, right_span), source)
            pos += 1
        elif isinstance(node, Product):
            (left, left_span), (right, right_span) = inputs
            wl, wr = weight_expr(left), weight_expr(right)
            rows_expr = None
            if isinstance(node.right, Scan):
                try:
                    rows_expr = const(
                        "_r", [tuple(b) for b in consts[right.var]]
                    )
                except Exception:
                    rows_expr = None
            if rows_expr is None:
                rows_expr = fresh("_r")
                emit(f"{rows_expr} = [tuple(b) for b in {right.var}]")
            emit(
                f"{var} = {{_mk(h + b) for h in "
                f"(tuple(a) for a in {left.var}) for b in {rows_expr}}}"
            )
            emit(f"_a(({label!r}, len({left.var}) * {wr} + {wl}))")
            width = (
                left.width + right.width
                if left.width is not None and right.width is not None
                else None
            )
            res = _Res(var, width)
            template = ("op", label, pos, (left_span, right_span), source)
            pos += 1
        elif isinstance(node, Join):
            res, template, pos = _emit_join(
                node, inputs, prebuilt, consts, const, fresh, emit,
                weight_expr, var, label, pos,
            )
        else:
            raise TypeError(f"unknown plan node: {node!r}")

        done[token] = (res, seg_start, pos)
        if shared:
            cse_meta.append((token, info[id(node)][1], seg_start, pos))
            cse_vars.append(res.var)
        out.append((res, template))

    root_res, root_template = out.pop()
    cse_tuple = (
        "(" + ", ".join(cse_vars) + ("," if cse_vars else "") + ")"
    )
    emit(f"return {root_res.var}, _L, {cse_tuple}")

    params = ", ".join(f"{name}={name}" for name in consts)
    body = "\n".join("    " + line for line in lines)
    source = (
        f"def _run({params}):\n"
        f"    _L = []\n"
        f"    _a = _L.append\n"
        f"{body}\n"
    )
    namespace = dict(consts)
    exec(compile(source, "<plan-compile>", "exec"), namespace)
    return CompiledPlan(
        namespace["_run"],
        source,
        info[id(plan)][1],
        tuple(cse_meta),
        root_template,
    )


def _emit_join(
    node, inputs, prebuilt, consts, const, fresh, emit, weight_expr,
    var, label, pos,
):
    """Lower one ``Join``; returns ``(res, span template, new pos)``.

    Work parity with the reference's first-column probe count: one unit
    per candidate pair sharing the first join column, plus both input
    weights — exactly :func:`repro.engine.exec.batch._batch_join`.
    """
    on = node.on

    if prebuilt is not None:
        # The right scan is served by the database's maintained index:
        # logged for ledger parity, never re-read.
        (left, left_span) = inputs[0]
        wl = weight_expr(left)
        index, right_w = prebuilt
        emit(f"_a(({str(node.right)!r}, 0))")
        right_idx = pos
        pos += 1
        get = const("_g", index.get)
        cand = fresh("_c")
        upd = fresh("_u")
        i0 = on[0][0]
        emit(f"{cand} = 0")
        emit(f"{var} = set()")
        emit(f"{upd} = {var}.update")
        emit(f"for _t in {left.var}:")
        emit(f"    _b = {get}((_t[{i0}],))")
        emit("    if _b:")
        emit(f"        {cand} += len(_b)")
        emit("        _h = tuple(_t)")
        emit(f"        {upd}(_mk(_h + tuple(_x)) for _x in _b)")
        emit(f"_a(({label!r}, {wl} + {right_w} + {cand}))")
        template = (
            "op", label, pos,
            (left_span, ("scan", str(node.right), right_idx, None)),
            "index",
        )
        return _Res(var, None), template, pos + 1

    (left, left_span), (right, right_span) = inputs
    wl, wr = weight_expr(left), weight_expr(right)
    width = (
        left.width + right.width
        if left.width is not None and right.width is not None
        else None
    )
    template = ("op", label, pos, (left_span, right_span), None)

    if not on:
        # Degenerate join: every pair is a candidate, one unit each.
        rows_expr = None
        rows_len = None
        if isinstance(node.right, Scan):
            try:
                rows = [tuple(b) for b in consts[right.var]]
                rows_expr = const("_r", rows)
                rows_len = str(len(rows))
            except Exception:
                rows_expr = None
        if rows_expr is None:
            rows_expr = fresh("_r")
            emit(f"{rows_expr} = [tuple(b) for b in {right.var}]")
            rows_len = f"len({rows_expr})"
        emit(
            f"{var} = {{_mk(h + b) for h in "
            f"(tuple(a) for a in {left.var}) for b in {rows_expr}}}"
        )
        emit(
            f"_a(({label!r}, {wl} + {wr} + len({left.var}) * {rows_len}))"
        )
        return _Res(var, width), template, pos + 1

    i0, j0 = on[0]
    cand = fresh("_c")
    upd = fresh("_u")

    if len(on) == 1:
        get = None
        if isinstance(node.right, Scan):
            # Hoist the build side to compile time: the relation is
            # frozen for the artifact's lifetime (fingerprint-keyed).
            try:
                index: dict = {}
                for b in consts[right.var]:
                    index.setdefault(b[j0], []).append(tuple(b))
                get = const("_g", index.get)
            except Exception:
                get = None
        if get is None:
            ivar = fresh("_i")
            sd = fresh("_d")
            emit(f"{ivar} = {{}}")
            emit(f"{sd} = {ivar}.setdefault")
            emit(f"for _b in {right.var}:")
            emit(f"    {sd}(_b[{j0}], []).append(tuple(_b))")
            get = fresh("_g")
            emit(f"{get} = {ivar}.get")
        emit(f"{cand} = 0")
        emit(f"{var} = set()")
        emit(f"{upd} = {var}.update")
        emit(f"for _t in {left.var}:")
        emit(f"    _b = {get}(_t[{i0}])")
        emit("    if _b:")
        emit(f"        {cand} += len(_b)")
        emit("        _h = tuple(_t)")
        emit(f"        {upd}(_mk(_h + _x) for _x in _b)")
        emit(f"_a(({label!r}, {wl} + {wr} + {cand}))")
        return _Res(var, width), template, pos + 1

    left_cols = tuple(i for i, _ in on)
    right_cols = tuple(j for _, j in on)
    right_key = "(" + ", ".join(f"_row[{j}]" for j in right_cols) + ",)"
    left_key = "(" + ", ".join(f"_h[{i}]" for i in left_cols) + ",)"
    get = fc = None
    if isinstance(node.right, Scan):
        try:
            index = {}
            first_counts: dict = {}
            for b in consts[right.var]:
                row = tuple(b)
                index.setdefault(
                    tuple(row[j] for j in right_cols), []
                ).append(row)
                key0 = row[j0]
                first_counts[key0] = first_counts.get(key0, 0) + 1
            get = const("_g", index.get)
            fc = const("_fc", first_counts.get)
        except Exception:
            get = fc = None
    if get is None:
        ivar = fresh("_i")
        fvar = fresh("_fd")
        emit(f"{ivar} = {{}}")
        emit(f"{fvar} = {{}}")
        emit(f"for _b in {right.var}:")
        emit("    _row = tuple(_b)")
        emit(f"    {ivar}.setdefault({right_key}, []).append(_row)")
        emit(f"    _k = _row[{j0}]")
        emit(f"    {fvar}[_k] = {fvar}.get(_k, 0) + 1")
        get = fresh("_g")
        fc = fresh("_fc")
        emit(f"{get} = {ivar}.get")
        emit(f"{fc} = {fvar}.get")
    emit(f"{cand} = 0")
    emit(f"{var} = set()")
    emit(f"{upd} = {var}.update")
    emit(f"for _t in {left.var}:")
    emit("    _h = tuple(_t)")
    emit(f"    {cand} += {fc}(_h[{i0}], 0)")
    emit(f"    _b = {get}({left_key})")
    emit("    if _b:")
    emit(f"        {upd}(_mk(_h + _x) for _x in _b)")
    emit(f"_a(({label!r}, {wl} + {wr} + {cand}))")
    return _Res(var, width), template, pos + 1


def _build_spans(template: tuple, log: list) -> Span:
    """Instantiate the compile-time span program against one run's
    ledger.  Each ledger entry's work lands on exactly one span, so the
    tree's total work equals the execution total by construction."""
    out: list[Span] = []
    stack: list[tuple[tuple, bool]] = [(template, False)]
    while stack:
        t, ready = stack.pop()
        kind = t[0]
        if kind == "op" and not ready:
            stack.append((t, True))
            for child in reversed(t[3]):
                stack.append((child, False))
            continue
        if kind == "scan":
            span = Span(t[1])
            span.work = log[t[2]][1]
            span.rows = t[3]
            out.append(span)
            continue
        if kind == "cse":
            span = Span(t[1])
            span.cache = "cse"
            span.work = sum(w for _, w in log[t[2] : t[3]])
            out.append(span)
            continue
        _, spanlabel, idx, children, source = t
        span = Span(spanlabel)
        span.work = log[idx][1]
        span.source = source
        count = len(children)
        if count:
            span.children = out[-count:]
            del out[-count:]
        out.append(span)
    return out[-1]


def execute_compiled(
    plan: Plan,
    db: TMapping[str, CVSet],
    *,
    cache: Optional[PlanCache] = None,
    compile_store: Optional[PlanCache] = None,
    key_index=None,
    relation_stats=None,
    tracer: Optional[Tracer] = None,
    fault_injector=None,
) -> ExecutionResult:
    """Evaluate ``plan`` over ``db`` through the plan compiler.

    Returns an :class:`ExecutionResult` identical (value, work,
    per-node ledger) to :func:`repro.optimizer.plan.execute_reference`.

    ``cache`` is the result cache: consulted at the root before
    running, populated with the root and every CSE subtree after —
    entries interoperate with the streaming/batch executors.
    ``compile_store`` holds memoized :class:`CompiledPlan` artifacts
    (defaults to ``cache``); artifacts live in the cache's side table,
    keyed semantically and invalidated per relation, so disabling the
    *result* cache does not force recompilation.  Plans deeper than
    :data:`~repro.engine.exec.executor.MAX_PIPELINE_DEPTH` fall back to
    the streaming engine (identical contract, no giant generated
    source).

    ``fault_injector`` draws a seeded ``"compile"`` fault before plan
    lowering and an ``"operator"`` fault before the compiled function
    runs; a cache hit skips both draws (a stored answer involves no
    compilation and no operators).
    """
    if plan_depth(plan) > MAX_PIPELINE_DEPTH:
        from .executor import execute_streaming

        return execute_streaming(
            plan,
            db,
            cache=cache,
            key_index=key_index,
            relation_stats=relation_stats,
            tracer=tracer,
            fault_injector=fault_injector,
        )

    store = compile_store if compile_store is not None else cache
    # Tokens must be stable across calls to make keys meaningful; the
    # interning table lives on whichever cache object is available.
    annotator = cache if cache is not None else store
    if annotator is not None:
        info = annotator.annotate(plan)
    else:
        info = annotate_plan(plan, {}, lambda name, fn: (name, id(fn)))
    token, relations = info[id(plan)]

    if cache is not None and not isinstance(plan, Scan):
        entry = cache.get(semantic_cache_key(token, relations, db))
        if entry is not None:
            if tracer is not None:
                span = Span(node_label(plan))
                span.rows = len(entry.value)
                span.work = entry.work
                span.cache = "hit"
                tracer.record(span)
            return ExecutionResult(
                entry.value, entry.work, list(entry.entries)
            )

    compiled = None
    store_key = None
    if store is not None:
        if store is annotator:
            store_info = info
        else:
            store_info = store.annotate(plan)
        store_key = semantic_cache_key(*store_info[id(plan)], db)
        compiled = store.get_compiled(store_key)
    if compiled is None:
        if fault_injector is not None:
            fault_injector.maybe_raise("compile", node_label(plan))
        compiled = compile_plan(
            plan,
            db,
            info=info,
            key_index=key_index,
            relation_stats=relation_stats,
        )
        if store is not None:
            store.put_compiled(store_key, compiled)

    if fault_injector is not None:
        fault_injector.maybe_raise("operator", node_label(plan))
    start = time.perf_counter() if tracer is not None else 0.0
    values, log, cse_values = compiled.run()
    value = CVSet(values)
    elapsed = time.perf_counter() - start if tracer is not None else 0.0
    work_total = sum(w for _, w in log)

    if cache is not None:
        for (cse_token, cse_relations, s, e), vals in zip(
            compiled.cse, cse_values
        ):
            cache.put(
                semantic_cache_key(cse_token, cse_relations, db),
                CacheEntry(
                    CVSet(vals),
                    sum(w for _, w in log[s:e]),
                    tuple(log[s:e]),
                    cse_relations,
                ),
            )
        if not isinstance(plan, Scan):
            # ``plan=`` registers the root entry for delta maintenance;
            # the CSE segment entries above have no plan node handy, so
            # they stay invalidate-only.
            cache.put(
                semantic_cache_key(token, relations, db),
                CacheEntry(value, work_total, tuple(log), relations),
                plan=plan,
            )

    if tracer is not None:
        root_span = _build_spans(compiled.span_program, log)
        root_span.rows = len(value)
        root_span.wall_s = elapsed
        tracer.record(root_span)

    return ExecutionResult(value=value, work=work_total, per_node=log)
