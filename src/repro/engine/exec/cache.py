"""Semantically-keyed plan-result cache with per-relation invalidation.

Entries are keyed by :func:`~repro.engine.exec.fingerprint.semantic_cache_key`
— an interned **semantic token** (structural plan identity *plus* a
per-cache disambiguator for every named callable) and the fingerprints
of every base relation the plan reads — so a stale or aliased entry can
never be *returned*: a mutated relation changes its fingerprint, and a
``predicate_name``/``fn_name`` rebound to a different callable changes
its token.  Per-relation invalidation and the LRU cap exist to bound
*space* and keep the table dense with live entries.

The callable registry enforces what used to be an unenforced "standing
invariant" (a name identifies its semantics).  Two policies:

* ``on_alias="distinct"`` (default) — each distinct callable bound to a
  name gets its own alias ordinal, so aliased plans transparently key
  apart and both get correct answers;
* ``on_alias="error"`` — rebinding a name to a different callable
  raises :class:`CacheInvariantError`, for callers that want the old
  invariant actually checked.

Cached entries store the answer **and** the work ledger the streaming
executor would have produced, so a cache hit reports costs as if the
plan had run: the Section 4.4 cost model (``optimizer/cost.py``, the
E-OPT experiments) keeps its meaning regardless of cache state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping as TMapping, Optional

from ...optimizer.plan import Plan
from ...types.values import CVSet
from .delta import MaintainedView
from .fingerprint import annotate_plan, callable_identity, semantic_cache_key

__all__ = ["CacheEntry", "CacheInvariantError", "PlanCache", "entry_seal"]


class CacheInvariantError(RuntimeError):
    """A predicate/function name was rebound to a different callable
    while the cache runs in ``on_alias="error"`` mode."""


class _NotMaintainable(Exception):
    """Internal control flow for :meth:`PlanCache.maintain`: the entry
    is *expected* to invalidate (no registered plan, or the delta's
    relation feeds the right side of a difference) — a plain
    invalidation, not a maintenance fallback."""


@dataclass(frozen=True)
class CacheEntry:
    """A materialized plan result: answer, total work, per-node ledger,
    and the base relations the plan read (for invalidation).

    ``seal`` is a content fingerprint over ``(value, work, entries)``,
    stamped by :meth:`PlanCache.put` and re-checked by
    :meth:`PlanCache.get` — an entry whose contents no longer match its
    seal (a poisoned or bit-flipped entry) is dropped and served as a
    miss instead of returned.  O(1) for the value (``CVSet`` hashes are
    precomputed at construction) plus a tuple hash over the ledger.
    """

    value: CVSet
    work: int
    entries: tuple[tuple[str, int], ...]
    relations: frozenset[str]
    seal: Optional[int] = None


def entry_seal(value: CVSet, work: int, entries: tuple) -> int:
    """The content fingerprint :meth:`PlanCache.put` stamps entries with."""
    return hash((value, work, entries))


class PlanCache:
    """LRU cache of plan results with hit/miss accounting.

    ``capacity <= 0`` disables caching entirely: ``put`` is a no-op (no
    entry churn) and ``get`` always misses.
    """

    def __init__(
        self, capacity: int = 256, *, on_alias: str = "distinct"
    ) -> None:
        if on_alias not in ("distinct", "error"):
            raise ValueError(
                f"on_alias must be 'distinct' or 'error', got {on_alias!r}"
            )
        self.capacity = capacity
        self.on_alias = on_alias
        self._entries: OrderedDict = OrderedDict()
        self._by_relation: dict[str, set] = {}
        #: Interning state for semantic tokens (see ``annotate_plan``).
        self._intern: dict = {}
        #: name -> callable identity -> alias ordinal.  Identity tokens
        #: hold strong references, so a freed callable's ``id`` can
        #: never be recycled into a stale ordinal.
        self._aliases: dict[str, dict] = {}
        #: ``id(fn) -> (fn, identity)``.  Identity is computed once per
        #: callable *object*: closures may capture mutable state (e.g. a
        #: ``nonlocal`` counter), and re-deriving the identity after such
        #: state drifts would silently retire warm entries.  The stored
        #: ``fn`` keeps the object alive so its ``id`` is never reused.
        self._identity_memo: dict[int, tuple[Callable, object]] = {}
        #: Compiled-plan artifacts (``CompiledPlan``), a side table under
        #: the same semantic keys and per-relation invalidation as
        #: results but with its own LRU budget and counters: an artifact
        #: is a *program*, not an answer, so disabling the result cache
        #: (``use_cache=False``) must not force recompilation, and
        #: result-cache pressure must not evict hot artifacts.
        self._compiled: OrderedDict = OrderedDict()
        self._compiled_by_relation: dict[str, set] = {}
        self.compiled_capacity = max(capacity, 0)
        self.compiled_hits = 0
        self.compiled_misses = 0
        self.compiled_puts = 0
        self.compiled_evictions = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.invalidations = 0
        #: Entries dropped because their contents no longer matched
        #: their seal (see :func:`entry_seal`).
        self.corruptions = 0
        #: Entries patched in place by :meth:`maintain` (semi-naive
        #: delta maintenance) instead of being invalidated.
        self.maintained = 0
        #: Maintenance attempts that failed and fell back to
        #: invalidation (the entry recomputes cold on its next use).
        self.maintain_fallback = 0
        #: ``False`` restores the pre-maintenance behaviour: every
        #: insert invalidates (the benchmark's legacy baseline).
        self.maintenance_enabled = True
        #: ``key -> MaintainedView`` for entries whose plan was handed
        #: to :meth:`put`; the delta-maintenance side table.
        self._views: dict = {}
        #: Optional :class:`~repro.robustness.faults.FaultInjector`
        #: whose ``cache`` site tampers entries on ``get`` — the test
        #: adversary for the seal revalidation above.  ``None`` (the
        #: default) costs one attribute check per hit.
        self.fault_injector = None

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Semantic keys.

    def _tag(self, name: str, fn: Callable) -> tuple[str, int]:
        """The alias ordinal of ``fn`` under ``name`` in this cache."""
        memoized = self._identity_memo.get(id(fn))
        if memoized is None:
            identity = callable_identity(fn)
            self._identity_memo[id(fn)] = (fn, identity)
        else:
            identity = memoized[1]
        bindings = self._aliases.setdefault(name, {})
        ordinal = bindings.get(identity)
        if ordinal is None:
            if bindings and self.on_alias == "error":
                raise CacheInvariantError(
                    f"name {name!r} is already bound to a different "
                    f"callable in this cache; aliasing a predicate/"
                    f"function name breaks result reuse "
                    f"(on_alias='error')"
                )
            ordinal = len(bindings)
            bindings[identity] = ordinal
        return (name, ordinal)

    def annotate(self, plan: Plan) -> dict[int, tuple[int, frozenset]]:
        """Semantic token + base relations for every subtree of ``plan``
        (``id(node) -> (token, relations)``), interned against this
        cache's registry so tokens are stable across executions."""
        return annotate_plan(plan, self._intern, self._tag)

    def key_for(self, plan: Plan, db: TMapping[str, CVSet]):
        token, relations = self.annotate(plan)[id(plan)]
        return semantic_cache_key(token, relations, db)

    # ------------------------------------------------------------------
    # Storage.

    def get(self, key) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self.fault_injector is not None:
            entry = self.fault_injector.tamper_entry(entry)
        if entry.seal is not None and entry.seal != entry_seal(
            entry.value, entry.work, entry.entries
        ):
            # Revalidation failed: the entry's contents drifted from
            # the fingerprint stamped at put time.  Never return it —
            # drop the stored entry and report a miss, so the caller
            # recomputes and re-puts a clean one.
            self.corruptions += 1
            self._discard(key)
            self.misses += 1
            from ...obs.metrics import counter

            counter("robustness.cache.corruption_detected")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def _discard(self, key) -> None:
        """Drop one entry and its relation back-pointers (no counters)."""
        self._views.pop(key, None)
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for name in entry.relations:
            keys = self._by_relation.get(name)
            if keys is not None:
                keys.discard(key)

    def put(self, key, entry: CacheEntry, plan: Plan = None) -> None:
        """Store ``entry`` under ``key``.

        ``plan`` (when the caller has the plan node the entry
        materializes) registers the entry for semi-naive delta
        maintenance: later inserts may patch it in place via
        :meth:`maintain` instead of invalidating it."""
        if self.capacity <= 0:
            return
        self.puts += 1
        if plan is not None:
            self._views[key] = MaintainedView(plan)
        else:
            self._views.pop(key, None)
        if entry.seal is None:
            entry = CacheEntry(
                entry.value,
                entry.work,
                entry.entries,
                entry.relations,
                entry_seal(entry.value, entry.work, entry.entries),
            )
        old = self._entries.pop(key, None)
        if old is not None:
            # Re-put refreshes the entry (and its LRU position); drop
            # relation back-pointers the new entry no longer needs.
            for name in old.relations - entry.relations:
                keys = self._by_relation.get(name)
                if keys is not None:
                    keys.discard(key)
        self._entries[key] = entry
        for name in entry.relations:
            self._by_relation.setdefault(name, set()).add(key)
        while len(self._entries) > self.capacity:
            evicted_key, evicted = self._entries.popitem(last=False)
            self.evictions += 1
            self._views.pop(evicted_key, None)
            for name in evicted.relations:
                keys = self._by_relation.get(name)
                if keys is not None:
                    keys.discard(evicted_key)

    # ------------------------------------------------------------------
    # Compiled artifacts (see ``repro.engine.exec.compile``).

    def get_compiled(self, key):
        """Look up a memoized :class:`CompiledPlan` artifact."""
        artifact = self._compiled.get(key)
        if artifact is None:
            self.compiled_misses += 1
            return None
        self._compiled.move_to_end(key)
        self.compiled_hits += 1
        return artifact

    def put_compiled(self, key, artifact) -> None:
        """Memoize a compiled artifact under its semantic key."""
        if self.compiled_capacity <= 0:
            return
        self.compiled_puts += 1
        old = self._compiled.pop(key, None)
        if old is not None:
            for name in old.relations - artifact.relations:
                keys = self._compiled_by_relation.get(name)
                if keys is not None:
                    keys.discard(key)
        self._compiled[key] = artifact
        for name in artifact.relations:
            self._compiled_by_relation.setdefault(name, set()).add(key)
        while len(self._compiled) > self.compiled_capacity:
            evicted_key, evicted = self._compiled.popitem(last=False)
            self.compiled_evictions += 1
            for name in evicted.relations:
                keys = self._compiled_by_relation.get(name)
                if keys is not None:
                    keys.discard(evicted_key)

    def compiled_stats(self) -> dict:
        return {
            "hits": self.compiled_hits,
            "misses": self.compiled_misses,
            "puts": self.compiled_puts,
            "evictions": self.compiled_evictions,
            "entries": len(self._compiled),
            "capacity": self.compiled_capacity,
        }

    def invalidate(self, relation: Optional[str] = None) -> None:
        """Drop every entry reading ``relation`` (or everything).

        ``invalidations`` counts dropped *entries*, not calls — an
        invalidate that touches nothing is free and counts nothing."""
        if relation is None:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self._by_relation.clear()
            self._views.clear()
            self._compiled.clear()
            self._compiled_by_relation.clear()
            self._intern.clear()
            self._aliases.clear()
            self._identity_memo.clear()
            return
        for key in self._compiled_by_relation.pop(relation, ()):
            artifact = self._compiled.pop(key, None)
            if artifact is None:
                continue
            for name in artifact.relations:
                if name != relation:
                    keys = self._compiled_by_relation.get(name)
                    if keys is not None:
                        keys.discard(key)
        for key in self._by_relation.pop(relation, ()):
            entry = self._entries.pop(key, None)
            self._views.pop(key, None)
            if entry is None:
                continue
            self.invalidations += 1
            for name in entry.relations:
                if name != relation:
                    keys = self._by_relation.get(name)
                    if keys is not None:
                        keys.discard(key)

    def maintain(self, relation: str, delta_rows, db) -> None:
        """Absorb an insert of ``delta_rows`` into ``relation``:
        patch every maintainable cached entry in place (semi-naive
        delta propagation, re-keyed under the relation's new
        fingerprint, fresh seal), invalidate the rest.

        The fallback contract: *any* failure while maintaining an
        entry — an opaque node, a right-side difference delta, an
        injected ``"maintenance"`` fault, an unexpected exception —
        drops that entry exactly as :meth:`invalidate` would, counts
        ``maintain_fallback``, and bumps the
        ``robustness.maintenance.fallback`` metrics counter.  The next
        query recomputes cold, so correctness can never regress.

        Compiled artifacts always invalidate: they bind relation
        contents at compile time, so there is nothing to patch.
        """
        if not self.maintenance_enabled:
            self.invalidate(relation)
            return
        # Compiled artifacts for the relation: same drop as invalidate.
        for key in self._compiled_by_relation.pop(relation, ()):
            artifact = self._compiled.pop(key, None)
            if artifact is None:
                continue
            for name in artifact.relations:
                if name != relation:
                    keys = self._compiled_by_relation.get(name)
                    if keys is not None:
                        keys.discard(key)
        touched = self._by_relation.pop(relation, None)
        if not touched:
            return
        from ...obs.metrics import counter

        for key in list(touched):
            entry = self._entries.get(key)
            if entry is None:
                continue
            view = self._views.get(key)
            try:
                if view is None or not view.maintainable_for(relation):
                    raise _NotMaintainable()
                if self.fault_injector is not None:
                    self.fault_injector.maybe_raise("maintenance", relation)
                view.apply(relation, delta_rows, db)
                value, work, entries = view.result()
            except _NotMaintainable:
                self._drop_maintained(key, entry, relation)
                self.invalidations += 1
                continue
            except Exception:
                # Degradation, not failure: fall back to the legacy
                # invalidate-then-recompute path for this entry.
                self._drop_maintained(key, entry, relation)
                self.invalidations += 1
                self.maintain_fallback += 1
                counter("robustness.maintenance.fallback")
                continue
            new_key = semantic_cache_key(key[0], entry.relations, db)
            self._drop_maintained(key, entry, relation)
            patched = CacheEntry(
                value,
                work,
                entries,
                entry.relations,
                entry_seal(value, work, entries),
            )
            self._entries[new_key] = patched
            for name in patched.relations:
                self._by_relation.setdefault(name, set()).add(new_key)
            self._views[new_key] = view
            self.maintained += 1
            counter("cache.maintained")

    def _drop_maintained(self, key, entry: CacheEntry, relation: str) -> None:
        """Remove ``key`` during :meth:`maintain` (the ``relation``
        back-pointer set is already popped)."""
        self._entries.pop(key, None)
        self._views.pop(key, None)
        for name in entry.relations:
            if name != relation:
                keys = self._by_relation.get(name)
                if keys is not None:
                    keys.discard(key)

    def clear(self) -> None:
        self.invalidate(None)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.invalidations = 0
        self.corruptions = 0
        self.maintained = 0
        self.maintain_fallback = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "puts": self.puts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "corruptions": self.corruptions,
            "maintained": self.maintained,
            "maintain_fallback": self.maintain_fallback,
            "entries": len(self._entries),
            "views": len(self._views),
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
