"""Fingerprint-keyed plan-result cache with per-relation invalidation.

Entries are keyed by :func:`~repro.engine.exec.fingerprint.result_cache_key`
— structural plan identity plus the fingerprints of every base relation
the plan reads — so a stale entry can never be *returned* (a mutated
relation changes its fingerprint and the key no longer matches).
Per-relation invalidation and the LRU cap exist to bound *space* and
keep the table dense with live entries.

Cached entries store the answer **and** the work ledger the streaming
executor would have produced, so a cache hit reports costs as if the
plan had run: the Section 4.4 cost model (``optimizer/cost.py``, the
E-OPT experiments) keeps its meaning regardless of cache state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping as TMapping, Optional

from ...optimizer.plan import Plan
from ...types.values import CVSet
from .fingerprint import result_cache_key

__all__ = ["CacheEntry", "PlanCache"]


@dataclass(frozen=True)
class CacheEntry:
    """A materialized plan result: answer, total work, per-node ledger,
    and the base relations the plan read (for invalidation)."""

    value: CVSet
    work: int
    entries: tuple[tuple[str, int], ...]
    relations: frozenset[str]


class PlanCache:
    """LRU cache of plan results with hit/miss accounting."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._by_relation: dict[str, set] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, plan: Plan, db: TMapping[str, CVSet]):
        return result_cache_key(plan, db)

    def get(self, key) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, entry: CacheEntry) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = entry
        for name in entry.relations:
            self._by_relation.setdefault(name, set()).add(key)
        while len(self._entries) > self.capacity:
            evicted_key, evicted = self._entries.popitem(last=False)
            for name in evicted.relations:
                keys = self._by_relation.get(name)
                if keys is not None:
                    keys.discard(evicted_key)

    def invalidate(self, relation: Optional[str] = None) -> None:
        """Drop every entry reading ``relation`` (or everything)."""
        if relation is None:
            self._entries.clear()
            self._by_relation.clear()
            return
        for key in self._by_relation.pop(relation, ()):
            entry = self._entries.pop(key, None)
            if entry is None:
                continue
            for name in entry.relations:
                if name != relation:
                    keys = self._by_relation.get(name)
                    if keys is not None:
                        keys.discard(key)

    def clear(self) -> None:
        self.invalidate(None)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
