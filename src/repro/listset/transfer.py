"""Transferring parametricity from lists to sets (Section 4.2).

* **Lemma 4.6** relates ``toset`` to the ``rel`` set-extension:
  (1) related lists have rel-related ``toset`` images;
  (2) rel-related sets have related list preimages — proved here
  *constructively* by :func:`lists_witness`.
* **Lemma 4.11 / Theorem 4.13**: for an LtoS type, list-side
  relatedness of analogous values transfers to set-side relatedness.
* **Corollary 4.15** becomes the :func:`transfer_parametricity`
  pipeline: given a list value of LtoS type and an analogous set value,
  certify the set value parametric at the related set type.

The checkers are exact on the supplied instances; the experiments run
them over both the paper's witnesses and randomized instance families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..mappings.extensions import ListRel, SetRelExt
from ..mappings.function_maps import ForAllRel, FuncRel
from ..mappings.mapping import Budget, Rel
from ..lambda2.parametricity import (
    Candidate,
    ParametricityReport,
    logical_relation,
)
from ..types.ast import FuncType, ListType, Type, strip_foralls
from ..types.values import CVList, CVSet, Value
from .analogy import analogous
from .typeclasses import is_ltos, to_set_type

__all__ = [
    "lemma_4_6_part1",
    "lemma_4_6_part2",
    "lists_witness",
    "lift_to_lists",
    "check_list_to_set_transfer",
    "transfer_parametricity",
    "TransferReport",
]


def lemma_4_6_part1(h: Rel, l1: CVList, l2: CVList) -> bool:
    """If ``<H>(l1, l2)`` then ``{H}^rel(toset l1, toset l2)``.

    Returns True when the implication holds on this instance (vacuously
    if the premise fails)."""
    list_rel = ListRel(h)
    if not list_rel.holds(l1, l2):
        return True
    set_rel = SetRelExt(h)
    return set_rel.holds(CVSet(l1), CVSet(l2))


def lists_witness(
    h: Rel, s1: CVSet, s2: CVSet
) -> Optional[tuple[CVList, CVList]]:
    """Construct lists ``l1, l2`` with ``toset(l_i) = s_i`` and
    ``<H>(l1, l2)`` — the constructive content of Lemma 4.6(2).

    The construction walks both sides: every element of ``s1`` is paired
    with some partner in ``s2``, then every yet-uncovered element of
    ``s2`` is paired with some partner in ``s1``.  Returns ``None`` when
    the premise ``{H}^rel(s1, s2)`` fails."""
    if not SetRelExt(h).holds(s1, s2):
        return None
    pairs: list[tuple[Value, Value]] = []
    covered_right: set = set()
    for x in sorted(s1, key=repr):
        partner = next(
            (y for y in sorted(s2, key=repr) if h.holds(x, y)), None
        )
        if partner is None:
            return None
        pairs.append((x, partner))
        covered_right.add(partner)
    for y in sorted(s2, key=repr):
        if y in covered_right:
            continue
        partner = next(
            (x for x in sorted(s1, key=repr) if h.holds(x, y)), None
        )
        if partner is None:
            return None
        pairs.append((partner, y))
    l1 = CVList(x for x, _ in pairs)
    l2 = CVList(y for _, y in pairs)
    return l1, l2


def lift_to_lists(
    h: Rel, t_list: Type, v1: Value, v2: Value
) -> Optional[tuple[Value, Value]]:
    """Lemma 4.9, constructively, for arbitrary s-to-l types.

    Given set-side values ``v1, v2`` of the *set* translation of an
    s-to-l type ``t_list`` that are related by the (rel-mode) extension
    of ``h``, build analogous list-side values related by the list
    extension.  Recurses through products and nested sets; function
    components are returned unchanged (an s-to-l type has no list under
    an arrow, so the set and list types coincide there — the paper's
    key observation in the Lemma 4.9 proof sketch).

    Returns ``None`` when the inputs are not actually related.
    """
    from ..types.ast import BaseType, FuncType, ListType, Product, TypeVar

    if isinstance(t_list, (BaseType, TypeVar)):
        return (v1, v2) if h.holds(v1, v2) or v1 == v2 else None
    if isinstance(t_list, Product):
        lifted = []
        for component, a, b in zip(t_list.components, v1, v2):
            pair = lift_to_lists(h, component, a, b)
            if pair is None:
                return None
            lifted.append(pair)
        from ..types.values import Tup

        return Tup(x for x, _ in lifted), Tup(y for _, y in lifted)
    if isinstance(t_list, ListType):
        # v1, v2 are sets (the set translation); pair their elements the
        # way lists_witness does, recursing element-wise.
        element = t_list.element
        pairs: list[tuple[Value, Value]] = []
        covered_right: set = set()
        for x in sorted(v1, key=repr):
            partner = None
            for y in sorted(v2, key=repr):
                inner = lift_to_lists(h, element, x, y)
                if inner is not None:
                    partner = inner
                    covered_right.add(y)
                    break
            if partner is None:
                return None
            pairs.append(partner)
        for y in sorted(v2, key=repr):
            if y in covered_right:
                continue
            partner = None
            for x in sorted(v1, key=repr):
                inner = lift_to_lists(h, element, x, y)
                if inner is not None:
                    partner = inner
                    break
            if partner is None:
                return None
            pairs.append(partner)
        return (
            CVList(x for x, _ in pairs),
            CVList(y for _, y in pairs),
        )
    if isinstance(t_list, FuncType):
        # s-to-l: no lists under the arrow, so functions transfer as is.
        return v1, v2
    raise TypeError(f"lift_to_lists undefined at {t_list}")


def lemma_4_6_part2(h: Rel, s1: CVSet, s2: CVSet) -> bool:
    """If ``{H}^rel(s1, s2)`` then related lists with those ``toset``
    images exist (checked constructively)."""
    if not SetRelExt(h).holds(s1, s2):
        return True
    witness = lists_witness(h, s1, s2)
    if witness is None:
        return False
    l1, l2 = witness
    return (
        CVSet(l1) == s1
        and CVSet(l2) == s2
        and ListRel(h).holds(l1, l2)
    )


def check_list_to_set_transfer(
    f_list: Callable[[Value], Value],
    f_set: Callable[[Value], Value],
    body_list_type: FuncType,
    h: Rel,
    set_inputs: Sequence[tuple[Value, Value]],
    budget: Optional[Budget] = None,
) -> bool:
    """The heart of Lemma 4.11, on one quantifier instance ``H``.

    Given analogous functions and set-side inputs related by the set
    relation, checks that the set-side *outputs* are related — going
    through the list side: lift each related set pair to related lists
    (Lemma 4.9 via :func:`lists_witness`), apply ``f_list``, and use
    analogy to land back on the set side.
    """
    # Build the set-side relation at the result type with H substituted
    # for every type variable.
    from ..types.ast import free_type_vars

    variables = free_type_vars(body_list_type)
    var_rels = {name: h for name in variables}
    result_set_rel = logical_relation(
        to_set_type(body_list_type.result), var_rels=var_rels
    )
    for s1, s2 in set_inputs:
        out1 = f_set(s1)
        out2 = f_set(s2)
        if isinstance(result_set_rel, (FuncRel, ForAllRel)):
            ok = result_set_rel.holds(out1, out2, budget)
        else:
            ok = result_set_rel.holds(out1, out2)
        if not ok:
            return False
    return True


@dataclass
class TransferReport:
    """Outcome of the Corollary 4.15 pipeline for one function."""

    name: str
    list_type: Type
    ltos: bool
    analogy_validated: bool
    set_parametric: bool

    @property
    def transferred(self) -> bool:
        return self.ltos and self.analogy_validated and self.set_parametric

    def __repr__(self) -> str:
        return (
            f"TransferReport({self.name}: LtoS={self.ltos}, "
            f"analogy={self.analogy_validated}, "
            f"set-parametric={self.set_parametric})"
        )


def transfer_parametricity(
    name: str,
    list_value,
    set_value,
    list_type: Type,
    analogy_samples: Sequence[Value],
    candidates: Optional[Sequence[Candidate]] = None,
    budget: Optional[Budget] = None,
) -> TransferReport:
    """Corollary 4.15 as a pipeline.

    1. verify ``list_type`` is LtoS (Def 4.12);
    2. validate the analogy ``list_value -->^{l to s} set_value`` on the
       supplied sample inputs (instantiated at a base type when the
       values are polymorphic);
    3. check the set value parametric at the related set type
       ``T^set`` via the logical relation.
    """
    from ..lambda2.parametricity import check_parametricity
    from ..mappings.function_maps import PolyValue
    from ..types.ast import INT

    ltos = is_ltos(list_type)
    _binders, body = strip_foralls(list_type)

    list_component = (
        list_value[INT] if isinstance(list_value, PolyValue) else list_value
    )
    set_component = (
        set_value[INT] if isinstance(set_value, PolyValue) else set_value
    )
    # Instantiate the body's variables at int for the analogy check.
    from ..types.ast import free_type_vars, substitute

    mono_body = substitute(
        body, {v: INT for v in free_type_vars(body)}
    )
    try:
        analogy_ok = analogous(
            list_component, set_component, mono_body, analogy_samples
        )
    except Exception:
        analogy_ok = False

    set_type = to_set_type(list_type)
    report: ParametricityReport = check_parametricity(
        set_value, set_type, name=f"{name}^set", candidates=candidates,
        budget=budget,
    )
    return TransferReport(name, list_type, ltos, analogy_ok, report.parametric)
