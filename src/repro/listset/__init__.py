"""List-to-set parametricity transfer (paper Section 4.2)."""

from .analogy import (
    AnalogyError,
    analogous,
    deep_fromset,
    deep_toset,
    induced_set_function,
    toset,
)
from .setfuncs import (
    cardinality,
    poly,
    set_difference,
    set_filter,
    set_ins,
    set_map_fn,
    set_union,
)
from .transfer import (
    TransferReport,
    check_list_to_set_transfer,
    lemma_4_6_part1,
    lemma_4_6_part2,
    lift_to_lists,
    lists_witness,
    transfer_parametricity,
)
from .typeclasses import (
    classify_type,
    is_l_to_s,
    is_ltos,
    is_s_to_l,
    to_list_type,
    to_set_type,
)

__all__ = [name for name in dir() if not name.startswith("_")]
