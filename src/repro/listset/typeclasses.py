"""Type classifiers for the list-to-set transfer (Defs 4.8, 4.10, 4.12).

* **s-to-l** (Def 4.8): no universal quantifiers, and no list
  constructor occurs *under* a function arrow.
* **l-to-s** (Def 4.10): for every ``T1 -> T2`` occurring in the type,
  ``T1`` is s-to-l; no universal quantifiers.
* **LtoS** (Def 4.12): ``forall X1...Xn. T`` with ``T`` l-to-s.

Also provides the *related type* translation ``T^list <-> T^set``
(Section 4.2): replacing every list constructor by the set constructor
and vice versa.
"""

from __future__ import annotations

from ..types.ast import (
    BagType,
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    Type,
    strip_foralls,
)

__all__ = [
    "is_s_to_l",
    "is_l_to_s",
    "is_ltos",
    "to_set_type",
    "to_list_type",
    "classify_type",
]


def _contains_list_under_arrow(t: Type, under_arrow: bool = False) -> bool:
    if isinstance(t, ListType):
        if under_arrow:
            return True
        return _contains_list_under_arrow(t.element, under_arrow)
    if isinstance(t, SetType) or isinstance(t, BagType):
        return _contains_list_under_arrow(t.element, under_arrow)
    if isinstance(t, Product):
        return any(_contains_list_under_arrow(c, under_arrow) for c in t.components)
    if isinstance(t, FuncType):
        return _contains_list_under_arrow(
            t.arg, True
        ) or _contains_list_under_arrow(t.result, True)
    if isinstance(t, ForAll):
        return _contains_list_under_arrow(t.body, under_arrow)
    return False


def _has_forall(t: Type) -> bool:
    if isinstance(t, ForAll):
        return True
    if isinstance(t, Product):
        return any(_has_forall(c) for c in t.components)
    if isinstance(t, (SetType, BagType, ListType)):
        return _has_forall(t.element)
    if isinstance(t, FuncType):
        return _has_forall(t.arg) or _has_forall(t.result)
    return False


def is_s_to_l(t: Type) -> bool:
    """Definition 4.8 membership test."""
    if _has_forall(t):
        return False
    return not _contains_list_under_arrow(t)


def is_l_to_s(t: Type) -> bool:
    """Definition 4.10 membership test."""
    if _has_forall(t):
        return False

    def arrows_ok(node: Type) -> bool:
        if isinstance(node, FuncType):
            return (
                is_s_to_l(node.arg)
                and arrows_ok(node.arg)
                and arrows_ok(node.result)
            )
        if isinstance(node, Product):
            return all(arrows_ok(c) for c in node.components)
        if isinstance(node, (SetType, BagType, ListType)):
            return arrows_ok(node.element)
        return True

    return arrows_ok(t)


def is_ltos(t: Type) -> bool:
    """Definition 4.12: an outermost forall prefix over an l-to-s body."""
    _binders, body = strip_foralls(t)
    return is_l_to_s(body)


def to_set_type(t: Type) -> Type:
    """Replace every list constructor by the set constructor: T^set."""
    if isinstance(t, ListType):
        return SetType(to_set_type(t.element))
    if isinstance(t, SetType):
        return SetType(to_set_type(t.element))
    if isinstance(t, BagType):
        return BagType(to_set_type(t.element))
    if isinstance(t, Product):
        return Product(tuple(to_set_type(c) for c in t.components))
    if isinstance(t, FuncType):
        return FuncType(to_set_type(t.arg), to_set_type(t.result))
    if isinstance(t, ForAll):
        return ForAll(t.var, to_set_type(t.body), t.requires_eq)
    return t


def to_list_type(t: Type) -> Type:
    """Replace every set constructor by the list constructor: T^list."""
    if isinstance(t, SetType):
        return ListType(to_list_type(t.element))
    if isinstance(t, ListType):
        return ListType(to_list_type(t.element))
    if isinstance(t, BagType):
        return BagType(to_list_type(t.element))
    if isinstance(t, Product):
        return Product(tuple(to_list_type(c) for c in t.components))
    if isinstance(t, FuncType):
        return FuncType(to_list_type(t.arg), to_list_type(t.result))
    if isinstance(t, ForAll):
        return ForAll(t.var, to_list_type(t.body), t.requires_eq)
    return t


def classify_type(t: Type) -> dict[str, bool]:
    """Classification summary used by the Example 4.14 experiment."""
    _binders, body = strip_foralls(t)
    return {
        "s_to_l": is_s_to_l(t),
        "l_to_s": is_l_to_s(t),
        "ltos": is_ltos(t),
        "body_l_to_s": is_l_to_s(body),
    }
