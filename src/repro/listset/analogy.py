"""``toset`` and the analogy relation between list and set values.

Section 4.2 relates list values to set values through ``toset`` (the
function forgetting order and multiplicity) and its extension to all
nesting levels; Definition 4.7 then defines when a list value and a set
value of *related* types are **analogous** (``l -->^{l to s} s``):

* base types: equal;
* products: component-wise;
* list vs set: replacing each element of the list by an analogous set
  value gives a list whose ``toset`` is the set;
* functions: analogous inputs go to analogous outputs;
* forall: component-wise at every base type.

For pure complex value types the analogy is a *total surjective
function* from lists to sets (deep ``toset``); for function types it is
partial — e.g. ``head`` has no analogous set function, and neither does
``count`` (two analogous lists of different lengths map to the same
set), which the experiments demonstrate.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..types.ast import (
    BaseType,
    ForAll,
    FuncType,
    ListType,
    Product,
    SetType,
    Type,
    TypeVar,
)
from ..types.values import CVList, CVSet, Tup, Value

__all__ = [
    "toset",
    "deep_toset",
    "deep_fromset",
    "analogous",
    "induced_set_function",
    "AnalogyError",
]


class AnalogyError(Exception):
    """Raised when the analogy cannot be decided or constructed."""


def toset(l: CVList) -> CVSet:
    """The paper's ``toset``: forget order and multiplicity, one level."""
    return CVSet(l)


def deep_toset(v: Value, t_list: Type) -> Value:
    """Extend ``toset`` through all nesting levels of a complex value
    type — the canonical analogous set value of a list value."""
    if isinstance(t_list, (BaseType, TypeVar)):
        return v
    if isinstance(t_list, Product):
        if not isinstance(v, Tup):
            raise AnalogyError(f"expected a tuple at {t_list}, got {v!r}")
        return Tup(
            deep_toset(item, ct) for item, ct in zip(v, t_list.components)
        )
    if isinstance(t_list, ListType):
        if not isinstance(v, CVList):
            raise AnalogyError(f"expected a list at {t_list}, got {v!r}")
        return CVSet(deep_toset(item, t_list.element) for item in v)
    if isinstance(t_list, SetType):
        if not isinstance(v, CVSet):
            raise AnalogyError(f"expected a set at {t_list}, got {v!r}")
        return CVSet(deep_toset(item, t_list.element) for item in v)
    raise AnalogyError(f"deep_toset undefined at type {t_list}")


def deep_fromset(v: Value, t_list: Type) -> Value:
    """A canonical section of ``deep_toset``: rebuild a list value from
    a set value by ordering elements deterministically (sorted repr).

    Any list value with ``deep_toset`` equal to ``v`` would do; the
    deterministic choice keeps experiments reproducible."""
    if isinstance(t_list, (BaseType, TypeVar)):
        return v
    if isinstance(t_list, Product):
        if not isinstance(v, Tup):
            raise AnalogyError(f"expected a tuple at {t_list}, got {v!r}")
        return Tup(
            deep_fromset(item, ct) for item, ct in zip(v, t_list.components)
        )
    if isinstance(t_list, ListType):
        if not isinstance(v, CVSet):
            raise AnalogyError(f"expected a set at {t_list}, got {v!r}")
        items = [deep_fromset(item, t_list.element) for item in v]
        return CVList(sorted(items, key=repr))
    if isinstance(t_list, SetType):
        if not isinstance(v, CVSet):
            raise AnalogyError(f"expected a set at {t_list}, got {v!r}")
        return CVSet(deep_fromset(item, t_list.element) for item in v)
    raise AnalogyError(f"deep_fromset undefined at type {t_list}")


def analogous(
    l: Value,
    s: Value,
    t_list: Type,
    sample_inputs: Optional[Sequence[Value]] = None,
) -> bool:
    """Decide Definition 4.7 for value pair ``(l, s)`` at ``t_list``.

    Exact for complex value types.  For function types the definition
    quantifies over all analogous inputs; we check over
    ``sample_inputs`` (list-side inputs of the argument type), raising
    :class:`AnalogyError` when none are supplied.
    """
    if isinstance(t_list, (BaseType, TypeVar)):
        return l == s
    if isinstance(t_list, Product):
        return (
            isinstance(l, Tup)
            and isinstance(s, Tup)
            and len(l) == len(s)
            and all(
                analogous(li, si, ct, sample_inputs)
                for li, si, ct in zip(l, s, t_list.components)
            )
        )
    if isinstance(t_list, (ListType, SetType)):
        try:
            return deep_toset(l, t_list) == s
        except AnalogyError:
            return False
    if isinstance(t_list, FuncType):
        if sample_inputs is None:
            raise AnalogyError(
                "function analogy needs sample inputs for the argument type"
            )
        for x in sample_inputs:
            x_set = deep_toset(x, t_list.arg)
            try:
                lx = l(x)
                sx = s(x_set)
            except Exception:
                return False
            if not analogous(lx, sx, t_list.result, sample_inputs):
                return False
        return True
    if isinstance(t_list, ForAll):
        raise AnalogyError(
            "instantiate polymorphic values before checking analogy"
        )
    raise AnalogyError(f"analogy undefined at type {t_list}")


def induced_set_function(
    f_list: Callable[[Value], Value],
    t_list: FuncType,
) -> Callable[[Value], Value]:
    """The candidate set function analogous to ``f_list``:
    ``deep_toset . f_list . deep_fromset``.

    Well defined (independent of the section) exactly when an analogous
    set function exists; :func:`analogous` with samples validates that.
    For ``count`` the construction yields *cardinality*, which fails the
    validation — the paper's point that not every list function has a
    set analogue."""
    if not isinstance(t_list, FuncType):
        raise AnalogyError("induced_set_function needs a function type")

    def f_set(v: Value) -> Value:
        list_input = deep_fromset(v, t_list.arg)
        return deep_toset(f_list(list_input), t_list.result)

    return f_set
