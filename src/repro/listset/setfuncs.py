"""Set-side analogues of the prelude's list functions.

The paper's running examples: ``#  -->^{l to s}  union`` and the list
``sigma`` analogous to set selection.  These are the set functions whose
parametricity Corollary 4.15 derives from their list counterparts; they
are also exactly the operations the optimizer's rewrite rules are
justified for (Section 4.4).
"""

from __future__ import annotations

from typing import Callable

from ..mappings.function_maps import PolyValue
from ..types.values import CVSet, Tup, Value

__all__ = [
    "set_union",
    "set_filter",
    "set_map_fn",
    "set_ins",
    "set_difference",
    "cardinality",
    "poly",
]


def poly(component: object) -> PolyValue:
    """Wrap a type-uniform implementation as a polymorphic value."""
    from ..types.ast import ForAll, TypeVar

    return PolyValue(lambda _t: component, ForAll("X", TypeVar("X")))


def set_union(pair: Tup) -> CVSet:
    """``union : forall X. {X} * {X} -> {X}`` — analogous to append."""
    left, right = pair
    return left.union(right)


def set_filter(predicate: Callable[[Value], bool]) -> Callable[[CVSet], CVSet]:
    """``sigma : forall X. (X -> bool) -> {X} -> {X}`` (Example 4.14)."""

    def apply(s: CVSet) -> CVSet:
        return CVSet(x for x in s if predicate(x))

    return apply


def set_map_fn(f: Callable[[Value], Value]) -> Callable[[CVSet], CVSet]:
    """``map : forall X. forall Y. (X -> Y) -> {X} -> {Y}``."""

    def apply(s: CVSet) -> CVSet:
        return CVSet(f(x) for x in s)

    return apply


def set_ins(c: Value) -> Callable[[CVSet], CVSet]:
    """``ins : forall X. X -> {X} -> {X}`` (Section 4.3)."""

    def apply(s: CVSet) -> CVSet:
        return s.add(c)

    return apply


def set_difference(pair: Tup) -> CVSet:
    """``- : forall X=. {X=} * {X=} -> {X=}`` — needs equality."""
    left, right = pair
    return left.difference(right)


def cardinality(s: CVSet) -> int:
    """``card : {X} -> int`` — the would-be set analogue of ``count``.

    *Not* analogous to ``count`` (Def 4.7 fails on duplicate lists) and
    *not* rel-parametric; the experiments exhibit both failures."""
    return len(s)
