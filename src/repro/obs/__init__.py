"""Engine observability: tracing, metrics, EXPLAIN ANALYZE.

Three pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`~repro.obs.trace` — hierarchical per-operator spans; attach a
  :class:`Tracer` via the ``tracer=`` kwarg on ``execute_reference``,
  ``execute_streaming``, ``execute_batch`` or ``Database.run``.
  Zero overhead when not attached; zero observer effect when attached.
* :mod:`~repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms) whose snapshots merge
  deterministically across the parallel harness's worker processes.
* :mod:`~repro.obs.explain` — :func:`explain` runs a plan traced and
  renders an EXPLAIN ANALYZE-style tree (text or JSON); also the
  ``python -m repro explain`` subcommand.
"""

from .explain import MODES, ExplainReport, explain, render_span_tree
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    observe,
    snapshot_delta,
)
from .trace import Span, Tracer

__all__ = [
    "MODES",
    "ExplainReport",
    "explain",
    "render_span_tree",
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "MetricsRegistry",
    "counter",
    "gauge",
    "observe",
    "snapshot_delta",
    "Span",
    "Tracer",
]
