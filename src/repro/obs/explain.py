"""EXPLAIN ANALYZE: render a completed trace as a per-operator tree.

:func:`explain` executes a plan under a :class:`~repro.obs.trace.Tracer`
in one of the executor modes (``"reference"``, ``"stream"``,
``"batch"``, ``"compiled"``, partition-parallel ``"sharded"``, or
cost-model-driven ``"auto"``) and
packages the result as an :class:`ExplainReport` — the answer, the span
tree, the cache activity the execution caused, and (for ``"auto"``) the
mode decision with its per-candidate score table.
Rendered as text (a tree with per-operator rows/work/cache/source
annotations, wall time optional) or as JSON (``to_dict``, with
``wall=False`` for byte-deterministic output).

``db`` may be a plain relation mapping or a
:class:`~repro.engine.database.Database`; a ``Database`` contributes
its result cache (so EXPLAIN shows real hits and misses — pass
``use_cache=False`` for a pure cold run), its maintained join indexes,
and its relation statistics, exactly as ``Database.run`` would.

CLI: ``python -m repro explain [PLAN] [--mode all|reference|stream|
batch] [--json] [--warm N]`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .trace import Span, Tracer

__all__ = ["MODES", "ExplainReport", "explain", "render_span_tree"]

#: Executor modes :func:`explain` understands, in canonical order.
#: ``"compiled"`` runs the plan compiler; ``"auto"`` lets the cost
#: model pick the executor (the report carries the decision).
MODES = ("reference", "stream", "batch", "compiled", "sharded", "auto")


def _span_line(span: Span, *, wall: bool) -> str:
    parts = [span.label]
    fields = []
    if span.rows is not None:
        fields.append(f"rows={span.rows}")
    fields.append(f"work={span.work}")
    if span.cache is not None:
        fields.append(f"cache={span.cache}")
    if span.source is not None:
        fields.append(f"via={span.source}")
    if wall:
        fields.append(f"wall={span.wall_s * 1e3:.3f}ms")
    parts.append("  [" + " ".join(fields) + "]")
    return "".join(parts)


def render_span_tree(root: Span, *, wall: bool = True) -> str:
    """The span tree as indented text (explicit stack, any depth)."""
    lines: list[str] = []
    # (span, this line's branch prefix, the prefix its children extend)
    stack: list[tuple[Span, str, str]] = [(root, "", "")]
    while stack:
        span, branch, child_prefix = stack.pop()
        lines.append(branch + _span_line(span, wall=wall))
        last_index = len(span.children) - 1
        for i in range(last_index, -1, -1):
            connector = "└─ " if i == last_index else "├─ "
            extension = "   " if i == last_index else "│  "
            stack.append((
                span.children[i],
                child_prefix + connector,
                child_prefix + extension,
            ))
    return "\n".join(lines)


@dataclass
class ExplainReport:
    """One traced execution: mode, plan text, answer stats, span tree,
    and the cache-counter delta the execution caused (``None`` when no
    cache was attached)."""

    mode: str
    plan: str
    rows: int
    work: int
    root: Span
    cache_stats: Optional[dict] = None
    #: ``mode="auto"`` only: the cost model's decision —
    #: ``{"mode", "estimated_work", "scores"}``.
    decision: Optional[dict] = None
    #: Graceful-degradation events (``Database.run`` fallbacks), each
    #: ``{"mode", "to", "error"}`` — why a mode was not used.
    degraded: Optional[list] = None

    def to_dict(self, *, wall: bool = True) -> dict:
        out = {
            "mode": self.mode,
            "plan": self.plan,
            "rows": self.rows,
            "work": self.work,
            "tree": self.root.to_dict(wall=wall),
        }
        if self.cache_stats is not None:
            out["cache"] = self.cache_stats
        if self.decision is not None:
            out["decision"] = self.decision
        if self.degraded is not None:
            out["degraded"] = self.degraded
        return out

    def render(self, *, wall: bool = True) -> str:
        header = (
            f"EXPLAIN ANALYZE (mode={self.mode}) {self.plan}\n"
            f"rows={self.rows} work={self.work}"
        )
        if self.cache_stats is not None:
            header += (
                f" cache[hits={self.cache_stats['hits']}"
                f" misses={self.cache_stats['misses']}"
                f" puts={self.cache_stats['puts']}]"
            )
            maintained = self.cache_stats.get("maintained", 0)
            fallback = self.cache_stats.get("maintain_fallback", 0)
            if maintained or fallback:
                # Entries this query found alive because inserts since
                # the last run were absorbed by delta maintenance
                # (see docs/EXECUTION.md, "Incremental maintenance").
                header += (
                    f"\nmaintained: {maintained} entr"
                    f"{'y' if maintained == 1 else 'ies'} patched in "
                    f"place by delta maintenance"
                )
                if fallback:
                    header += (
                        f" ({fallback} fell back to invalidation)"
                    )
        if self.decision is not None:
            scores = " ".join(
                f"{m}={s:g}"
                for m, s in sorted(self.decision["scores"].items())
            )
            header += (
                f"\nauto: chose {self.decision['mode']}"
                f" (est work {self.decision['estimated_work']:g};"
                f" scores {scores})"
            )
        if self.degraded:
            for event in self.degraded:
                header += (
                    f"\ndegraded: {event['mode']} -> {event['to']}"
                    f" ({event['error']})"
                )
        return header + "\n" + render_span_tree(self.root, wall=wall)


def explain(plan, db, mode: str = "stream", *, use_cache: bool = True,
            shards: Optional[int] = None,
            tracer: Optional[Tracer] = None) -> ExplainReport:
    """Execute ``plan`` over ``db`` with tracing on; return the report.

    ``db`` is a relation mapping or a ``Database``.  ``use_cache``
    only matters for a ``Database`` (plain mappings carry no cache):
    with it, stream/batch runs go through the database's plan cache
    and the report carries the get/put/evict counter delta.  ``shards``
    only matters for ``mode="sharded"`` (default: the executor's
    ``DEFAULT_SHARDS``).  Pass your own ``tracer`` to keep the raw span
    for further inspection.
    """
    # Imported here so `repro.obs` stays import-light (no engine
    # dependency at module import time).
    from ..engine.exec import execute_streaming
    from ..optimizer.plan import execute_reference

    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    tracer = tracer if tracer is not None else Tracer()

    relations = getattr(db, "relations", db)
    cache = None
    key_index = None
    relation_stats = None
    if hasattr(db, "plan_cache"):
        key_index = db._join_index
        relation_stats = db.relation_stats
        if use_cache:
            cache = db.plan_cache

    before = cache.stats() if cache is not None else None
    decision = None
    if hasattr(db, "run"):
        # A ``Database`` executes through ``Database.run``, so EXPLAIN
        # sees exactly what production sees: the auto-mode decision
        # *and* any graceful-degradation fallbacks, both merged onto
        # the root span's meta by ``run`` itself.
        result = db.run(plan, mode=mode, use_cache=use_cache,
                        shards=shards, tracer=tracer)
        if mode == "auto":
            decision = db.plan_mode(plan)  # memoized: same decision
    else:
        run_mode = mode
        if mode == "auto":
            from ..engine.exec import MAX_PIPELINE_DEPTH, plan_depth
            from ..optimizer.cost import Stats, choose_mode

            candidates = ("reference", "stream", "batch", "compiled")
            if plan_depth(plan) > MAX_PIPELINE_DEPTH:
                candidates = ("reference", "stream", "batch")
            decision = choose_mode(
                plan, Stats.of_database(relations), candidates=candidates
            )
            run_mode = decision.mode
        if run_mode == "reference":
            result = execute_reference(plan, relations, tracer=tracer)
        elif run_mode == "sharded":
            from ..engine.exec import execute_sharded

            result = execute_sharded(
                plan,
                relations,
                shards=shards,
                cache=cache,
                key_index=key_index,
                relation_stats=relation_stats,
                tracer=tracer,
            )
        else:
            result = execute_streaming(
                plan,
                relations,
                cache=cache,
                key_index=key_index,
                mode=run_mode,
                relation_stats=relation_stats,
                tracer=tracer,
            )
        if decision is not None and tracer.last is not None:
            # Merge, never clobber — the executor may have attached
            # meta of its own.
            tracer.last.merge_meta({"auto": decision.to_dict()})
    degraded = None
    if tracer.last is not None and tracer.last.meta is not None:
        degraded = tracer.last.meta.get("degraded")
    cache_stats = None
    if cache is not None:
        after = cache.stats()
        cache_stats = {
            key: after[key] - before[key]
            for key in ("hits", "misses", "puts", "evictions")
        }
        cache_stats["entries"] = after["entries"]
        # Cumulative, not a delta: maintenance runs inside
        # ``Database.insert``, between queries — the totals say how
        # many cached entries survived writes via delta patching.
        cache_stats["maintained"] = after["maintained"]
        cache_stats["maintain_fallback"] = after["maintain_fallback"]
    return ExplainReport(
        mode=mode,
        plan=str(plan),
        rows=len(result.value),
        work=result.work,
        root=tracer.last,
        cache_stats=cache_stats,
        decision=decision.to_dict() if decision is not None else None,
        degraded=degraded,
    )
